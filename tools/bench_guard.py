#!/usr/bin/env python3
"""Bench-regression guard: compare a fresh BENCH_micro_kernels.json against
the committed baseline and fail on real regressions of the guarded hot-path
benchmarks.

Raw wall-clock numbers are not comparable across machines, so the guard
first computes a machine-speed scale from a calibration benchmark present
in both files (a single-threaded integer kernel whose cost tracks raw CPU
speed), then checks every guarded benchmark against its scaled baseline:

    fail  iff  current_time > baseline_time * scale * (1 + threshold)

Usage (what CI runs):
    python3 tools/bench_guard.py \
        --baseline bench/baselines/BENCH_micro_kernels.json \
        --current  build/BENCH_micro_kernels.json
"""

import argparse
import json
import re
import sys


_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bm in data.get("benchmarks", []):
        if bm.get("run_type", "iteration") != "iteration":
            continue
        # Prefer real_time (what UseRealTime sweeps report), normalised to
        # nanoseconds via the entry's time_unit.
        unit = _NS_PER_UNIT[bm.get("time_unit", "ns")]
        out[bm["name"]] = {
            "time": float(bm.get("real_time", bm.get("cpu_time"))) * unit,
            # Simd-tier benches report whether a real ISA ran (1) or the
            # scalar fallback (0); absent means not a Simd entry. The same
            # convention covers the dot-product GEMM generation rows
            # (dot_active: AVX-VNNI / NEON sdot ran, vs pair-madd).
            "simd_active": bm.get("simd_active"),
            "dot_active": bm.get("dot_active"),
        }
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--guard",
        default=r"^BM_(RepeatedPatchRun|ParallelPatchRun|PipelinedPatchRun"
                r"|Conv2dInt8Simd|PackedConvTierSweep|LutGemm"
                r"|GemmTierSweep|FcTierSweep)\b",
        help="regex of benchmark names that must not regress",
    )
    parser.add_argument(
        "--calibrate",
        default="BM_Conv2dInt8Ref/32",
        help="benchmark used to normalise machine speed between files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed slowdown after calibration (0.10 = 10%%)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    calibrate = args.calibrate
    if calibrate not in baseline or calibrate not in current:
        # A --benchmark_filter that excludes the default calibration entry
        # (e.g. a CI leg running only one family) shouldn't crash the
        # guard: fall back to any Reference-tier entry both runs share —
        # scalar single-threaded kernels that track raw machine speed
        # exactly like the default.
        shared = sorted(n for n in baseline
                        if n in current and "Ref" in n)
        if not shared:
            print(f"bench_guard: calibration benchmark '{calibrate}' "
                  "missing from baseline or current run, and no shared "
                  "*Ref* entry to fall back to", file=sys.stderr)
            return 2
        calibrate = shared[0]
        print(f"bench_guard: calibration benchmark '{args.calibrate}' "
              f"not in both runs; falling back to '{calibrate}'")
    scale = current[calibrate]["time"] / baseline[calibrate]["time"]
    print(f"bench_guard: machine scale {scale:.3f} "
          f"(current {calibrate} / baseline)")

    guard = re.compile(args.guard)
    guarded = sorted(n for n in baseline if guard.search(n))
    if not guarded:
        print("bench_guard: no guarded benchmarks in the baseline",
              file=sys.stderr)
        return 2

    failures = []

    # Every baseline benchmark must appear in the current run, guarded or
    # not: each bench runs on every host (vector entries fall back to
    # scalar), so absence means the name, the filter, or the bench itself
    # was silently dropped — exactly the kind of coverage loss that should
    # fail loudly instead of shrinking the guard.
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"{name}: missing from the current run")

    checked = 0
    skipped = 0
    for name in guarded:
        if name not in current:
            continue  # already recorded as a hard failure above
        # Vector-tier entries are only comparable when the host actually
        # ran a vector body. The baseline records which entries had one
        # (simd_active=1: Simd GEMM rows, LUT rows with a vpshufb/vtbl
        # body); if the current host reports the scalar fallback
        # (simd_active=0, e.g. no usable ISA or QMCU_FORCE_SCALAR), the
        # comparison is meaningless, not a regression.
        if baseline[name].get("simd_active") and \
                not current[name].get("simd_active"):
            print(f"  skip  {name}: scalar fallback on this host "
                  "(baseline simd_active=1, current 0)")
            skipped += 1
            continue
        # Same trick for the dot-product generation rows: a baseline
        # recorded on an AVX-VNNI / sdot host is not a bar a pair-madd
        # host can be held to.
        if baseline[name].get("dot_active") and \
                not current[name].get("dot_active"):
            print(f"  skip  {name}: no dot-product generation on this host "
                  "(baseline dot_active=1, current 0)")
            skipped += 1
            continue
        checked += 1
        cur = current[name]["time"]
        base = baseline[name]["time"]
        allowed = base * scale * (1.0 + args.threshold)
        ratio = cur / (base * scale)
        status = "FAIL" if cur > allowed else "ok"
        print(f"  {status}  {name}: {cur / 1e6:.3f} ms vs "
              f"scaled baseline {base * scale / 1e6:.3f} ms "
              f"({ratio:.2f}x)")
        if cur > allowed:
            failures.append(
                f"{name}: {ratio:.2f}x the scaled baseline "
                f"(> {1.0 + args.threshold:.2f}x allowed)")

    if failures:
        print("bench_guard: regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_guard: {checked} guarded benchmarks within "
          f"{args.threshold:.0%} of the scaled baseline "
          f"({skipped} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
