#!/usr/bin/env python3
"""Bench-regression guard: compare fresh bench artifacts against the
committed baselines and fail on real regressions of the guarded hot-path
benchmarks.

Accepts multiple --baseline/--current pairs (each flag may repeat); all
baseline files are merged into one namespace, all current files into
another, so one invocation guards e.g. the micro-kernel latencies and the
serving throughput sweep together:

    python3 tools/bench_guard.py \
        --baseline bench/baselines/BENCH_micro_kernels.json \
        --baseline bench/baselines/BENCH_serving.json \
        --current  build/BENCH_micro_kernels.json \
        --current  build/BENCH_serving.json

Two artifact formats are understood:
  * google-benchmark JSON (real_time/time_unit iteration entries) — these
    are latency entries: lower is better.
  * the repo's JsonReport format ({"name", "value", "unit"}) — the unit
    decides the direction: time units (ns/us/ms/s) are latencies,
    rate/ratio units (req/s, x) are throughputs guarded as MUST NOT DROP,
    and anything else (cores, frac, count) is informational — presence-
    checked but never speed-compared.

Raw numbers are not comparable across machines, so the guard first
computes a machine-speed scale from a calibration benchmark present in
both runs (a single-threaded kernel whose cost tracks raw CPU speed):

    latency    fails  iff  current > baseline * scale * (1 + threshold)
    throughput fails  iff  current < baseline / scale * (1 - threshold)
"""

import argparse
import json
import re
import sys


_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}
# JsonReport units guarded as higher-is-better throughput.
_THROUGHPUT_UNITS = {"req/s", "items/s", "GB/s", "x"}


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bm in data.get("benchmarks", []):
        if "value" in bm:
            # JsonReport entry: the unit decides whether it's a latency, a
            # throughput, or informational.
            unit = bm.get("unit", "")
            if unit in _NS_PER_UNIT:
                out[bm["name"]] = {
                    "kind": "time",
                    "value": float(bm["value"]) * _NS_PER_UNIT[unit],
                }
            elif unit in _THROUGHPUT_UNITS:
                out[bm["name"]] = {
                    "kind": "throughput",
                    "value": float(bm["value"]),
                    # "x" entries are same-machine ratios (one path timed
                    # against another in the same process); the machine
                    # scale cancels out, so they compare unscaled.
                    "scale_free": unit == "x",
                }
            else:
                out[bm["name"]] = {"kind": "info",
                                   "value": float(bm["value"])}
            continue
        if bm.get("run_type", "iteration") != "iteration":
            continue
        # google-benchmark entry. Prefer real_time (what UseRealTime
        # sweeps report), normalised to nanoseconds via time_unit.
        unit = _NS_PER_UNIT[bm.get("time_unit", "ns")]
        out[bm["name"]] = {
            "kind": "time",
            "value": float(bm.get("real_time", bm.get("cpu_time"))) * unit,
            # Simd-tier benches report whether a real ISA ran (1) or the
            # scalar fallback (0); absent means not a Simd entry. The same
            # convention covers the dot-product GEMM generation rows
            # (dot_active: AVX-VNNI / NEON sdot ran, vs pair-madd).
            "simd_active": bm.get("simd_active"),
            "dot_active": bm.get("dot_active"),
        }
    return out


def load_merged(paths):
    merged = {}
    for path in paths:
        entries = load_benchmarks(path)
        dup = sorted(set(merged) & set(entries))
        if dup:
            print(f"bench_guard: warning: {path} redefines {dup[0]}"
                  f"{' (+%d more)' % (len(dup) - 1) if len(dup) > 1 else ''}",
                  file=sys.stderr)
        merged.update(entries)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, action="append",
                        help="committed baseline artifact (repeatable)")
    parser.add_argument("--current", required=True, action="append",
                        help="fresh artifact from this run (repeatable)")
    parser.add_argument(
        "--guard",
        default=r"^BM_(RepeatedPatchRun|ParallelPatchRun|PipelinedPatchRun"
                r"|Conv2dInt8Simd|PackedConvTierSweep|LutGemm"
                r"|GemmTierSweep|FcTierSweep)\b"
                r"|^serving/closed/.*req_per_s$"
                r"|^cold_start/speedup_x$"
                r"|^streaming/.*speedup_x$",
        help="regex of benchmark names that must not regress",
    )
    parser.add_argument(
        "--calibrate",
        default="BM_Conv2dInt8Ref/32",
        help="benchmark used to normalise machine speed between files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed slowdown after calibration (0.10 = 10%%)",
    )
    args = parser.parse_args()

    baseline = load_merged(args.baseline)
    current = load_merged(args.current)

    def is_time(entries, name):
        return name in entries and entries[name]["kind"] == "time"

    calibrate = args.calibrate
    if not (is_time(baseline, calibrate) and is_time(current, calibrate)):
        # A --benchmark_filter that excludes the default calibration entry
        # (e.g. a CI leg running only one family) shouldn't crash the
        # guard: fall back to any Reference-tier latency entry both runs
        # share — scalar single-threaded kernels that track raw machine
        # speed exactly like the default (the serving bench contributes
        # serving/calibration/RefSingleRun for exactly this purpose).
        shared = sorted(n for n in baseline
                        if is_time(baseline, n) and is_time(current, n)
                        and "Ref" in n)
        if not shared:
            print(f"bench_guard: calibration benchmark '{calibrate}' "
                  "missing from baseline or current run, and no shared "
                  "*Ref* latency entry to fall back to", file=sys.stderr)
            return 2
        calibrate = shared[0]
        print(f"bench_guard: calibration benchmark '{args.calibrate}' "
              f"not in both runs; falling back to '{calibrate}'")
    scale = current[calibrate]["value"] / baseline[calibrate]["value"]
    print(f"bench_guard: machine scale {scale:.3f} "
          f"(current {calibrate} / baseline)")

    guard = re.compile(args.guard)
    guarded = sorted(n for n in baseline if guard.search(n))
    if not guarded:
        print("bench_guard: no guarded benchmarks in the baseline",
              file=sys.stderr)
        return 2

    failures = []

    # Every baseline benchmark must appear in the current run, guarded or
    # not: each bench runs on every host (vector entries fall back to
    # scalar, serving entry names are host-independent), so absence means
    # the name, the filter, or the bench itself was silently dropped —
    # exactly the kind of coverage loss that should fail loudly instead of
    # shrinking the guard.
    for name in sorted(baseline):
        if name not in current:
            failures.append(f"{name}: missing from the current run")

    checked = 0
    skipped = 0
    for name in guarded:
        if name not in current:
            continue  # already recorded as a hard failure above
        base_entry = baseline[name]
        cur_entry = current[name]
        if base_entry["kind"] == "info":
            skipped += 1
            continue
        # Vector-tier entries are only comparable when the host actually
        # ran a vector body. The baseline records which entries had one
        # (simd_active=1: Simd GEMM rows, LUT rows with a vpshufb/vtbl
        # body); if the current host reports the scalar fallback
        # (simd_active=0, e.g. no usable ISA or QMCU_FORCE_SCALAR), the
        # comparison is meaningless, not a regression.
        if base_entry.get("simd_active") and \
                not cur_entry.get("simd_active"):
            print(f"  skip  {name}: scalar fallback on this host "
                  "(baseline simd_active=1, current 0)")
            skipped += 1
            continue
        # Same trick for the dot-product generation rows: a baseline
        # recorded on an AVX-VNNI / sdot host is not a bar a pair-madd
        # host can be held to.
        if base_entry.get("dot_active") and \
                not cur_entry.get("dot_active"):
            print(f"  skip  {name}: no dot-product generation on this host "
                  "(baseline dot_active=1, current 0)")
            skipped += 1
            continue
        checked += 1
        cur = cur_entry["value"]
        base = base_entry["value"]
        if base_entry["kind"] == "time":
            allowed = base * scale * (1.0 + args.threshold)
            ratio = cur / (base * scale)
            bad = cur > allowed
            print(f"  {'FAIL' if bad else 'ok'}  {name}: "
                  f"{cur / 1e6:.3f} ms vs scaled baseline "
                  f"{base * scale / 1e6:.3f} ms ({ratio:.2f}x)")
            if bad:
                failures.append(
                    f"{name}: {ratio:.2f}x the scaled baseline "
                    f"(> {1.0 + args.threshold:.2f}x allowed)")
        else:  # throughput: must not drop below the scaled baseline
            expected = base if base_entry.get("scale_free") else base / scale
            allowed = expected * (1.0 - args.threshold)
            ratio = cur / expected
            bad = cur < allowed
            print(f"  {'FAIL' if bad else 'ok'}  {name}: "
                  f"{cur:.1f} vs scaled baseline {expected:.1f} "
                  f"({ratio:.2f}x)")
            if bad:
                failures.append(
                    f"{name}: dropped to {ratio:.2f}x the scaled baseline "
                    f"(< {1.0 - args.threshold:.2f}x allowed)")

    if failures:
        print("bench_guard: regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_guard: {checked} guarded benchmarks within "
          f"{args.threshold:.0%} of the scaled baseline "
          f"({skipped} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
