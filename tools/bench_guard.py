#!/usr/bin/env python3
"""Bench-regression guard: compare a fresh BENCH_micro_kernels.json against
the committed baseline and fail on real regressions of the guarded hot-path
benchmarks.

Raw wall-clock numbers are not comparable across machines, so the guard
first computes a machine-speed scale from a calibration benchmark present
in both files (a single-threaded integer kernel whose cost tracks raw CPU
speed), then checks every guarded benchmark against its scaled baseline:

    fail  iff  current_time > baseline_time * scale * (1 + threshold)

Usage (what CI runs):
    python3 tools/bench_guard.py \
        --baseline bench/baselines/BENCH_micro_kernels.json \
        --current  build/BENCH_micro_kernels.json
"""

import argparse
import json
import re
import sys


_NS_PER_UNIT = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bm in data.get("benchmarks", []):
        if bm.get("run_type", "iteration") != "iteration":
            continue
        # Prefer real_time (what UseRealTime sweeps report), normalised to
        # nanoseconds via the entry's time_unit.
        unit = _NS_PER_UNIT[bm.get("time_unit", "ns")]
        out[bm["name"]] = float(bm.get("real_time", bm.get("cpu_time"))) * unit
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--guard",
        default=r"^BM_(RepeatedPatchRun|ParallelPatchRun|PipelinedPatchRun)\b",
        help="regex of benchmark names that must not regress",
    )
    parser.add_argument(
        "--calibrate",
        default="BM_Conv2dInt8Ref/32",
        help="benchmark used to normalise machine speed between files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed slowdown after calibration (0.10 = 10%%)",
    )
    args = parser.parse_args()

    baseline = load_benchmarks(args.baseline)
    current = load_benchmarks(args.current)

    if args.calibrate not in baseline or args.calibrate not in current:
        print(f"bench_guard: calibration benchmark '{args.calibrate}' "
              "missing from baseline or current run", file=sys.stderr)
        return 2
    scale = current[args.calibrate] / baseline[args.calibrate]
    print(f"bench_guard: machine scale {scale:.3f} "
          f"(current {args.calibrate} / baseline)")

    guard = re.compile(args.guard)
    guarded = sorted(n for n in baseline if guard.search(n))
    if not guarded:
        print("bench_guard: no guarded benchmarks in the baseline",
              file=sys.stderr)
        return 2

    failures = []
    for name in guarded:
        if name not in current:
            failures.append(f"{name}: missing from the current run")
            continue
        allowed = baseline[name] * scale * (1.0 + args.threshold)
        ratio = current[name] / (baseline[name] * scale)
        status = "FAIL" if current[name] > allowed else "ok"
        print(f"  {status}  {name}: {current[name] / 1e6:.3f} ms vs "
              f"scaled baseline {baseline[name] * scale / 1e6:.3f} ms "
              f"({ratio:.2f}x)")
        if current[name] > allowed:
            failures.append(
                f"{name}: {ratio:.2f}x the scaled baseline "
                f"(> {1.0 + args.threshold:.2f}x allowed)")

    if failures:
        print("bench_guard: regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"bench_guard: {len(guarded)} guarded benchmarks within "
          f"{args.threshold:.0%} of the scaled baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
