// qmcu_pack — bake, verify and inspect QMCP plan artifacts from the
// command line.
//
// Build mode compiles a model (zoo registry entry or a saved .qmcu graph)
// into a plan artifact; --verify reloads the written file through the
// mmap path and proves its inference bit-identical to a model compiled
// in-memory from the same graph. --check does the verification half
// against an EXISTING artifact — that is the cross-generation /
// cross-architecture CI step: bake on one host, re-derive the reference
// on another (the synthetic zoo is bit-identical across toolchains) and
// require equality. --inspect prints the header and section table.
//
//   qmcu_pack --model mobilenetv2 --kind quant --bits 8 \
//             --out mbv2_int8.qmcp --verify
//   qmcu_pack --model mobilenetv2 --kind quant --bits 8 \
//             --check mbv2_int8.qmcp          # no write, just compare
//   qmcu_pack --inspect mbv2_int8.qmcp
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "models/zoo.h"
#include "nn/compiled_model.h"
#include "nn/plan_artifact.h"
#include "nn/rng.h"
#include "nn/serialize.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_artifact.h"
#include "quant/calibration.h"

namespace {

using namespace qmcu;

struct Options {
  std::string model;          // zoo registry name
  std::string graph_path;     // or a saved .qmcu graph
  std::string kind = "quant"; // float | quant | patch
  int bits = 8;
  int grid = 2;
  int calib = 2;
  int resolution = 48;
  float width = 0.25f;
  int classes = 10;
  std::string out;
  std::string check;          // verify an existing artifact, write nothing
  std::string inspect;
  bool verify = false;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --model NAME | --graph FILE.qmcu\n"
      "          [--kind float|quant|patch] [--bits N] [--grid G]\n"
      "          [--calib N] [--resolution N] [--width W] [--classes N]\n"
      "          --out FILE.qmcp [--verify]\n"
      "       %s --model NAME ... --check FILE.qmcp\n"
      "       %s --inspect FILE.qmcp\n",
      argv0, argv0, argv0);
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (a == "--model") {
      o.model = value();
    } else if (a == "--graph") {
      o.graph_path = value();
    } else if (a == "--kind") {
      o.kind = value();
    } else if (a == "--bits") {
      o.bits = std::atoi(value().c_str());
    } else if (a == "--grid") {
      o.grid = std::atoi(value().c_str());
    } else if (a == "--calib") {
      o.calib = std::atoi(value().c_str());
    } else if (a == "--resolution") {
      o.resolution = std::atoi(value().c_str());
    } else if (a == "--width") {
      o.width = static_cast<float>(std::atof(value().c_str()));
    } else if (a == "--classes") {
      o.classes = std::atoi(value().c_str());
    } else if (a == "--out") {
      o.out = value();
    } else if (a == "--check") {
      o.check = value();
    } else if (a == "--inspect") {
      o.inspect = value();
    } else if (a == "--verify") {
      o.verify = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      usage(argv[0]);
    }
  }
  if (!o.inspect.empty()) return o;
  if (o.model.empty() == o.graph_path.empty()) usage(argv[0]);
  if (o.out.empty() && o.check.empty()) usage(argv[0]);
  return o;
}

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

bool q_equal(const nn::QTensor& a, const nn::QTensor& b) {
  if (a.shape() != b.shape() || !(a.params() == b.params())) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

bool f_equal(const nn::Tensor& a, const nn::Tensor& b) {
  if (a.shape() != b.shape()) return false;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] != b.data()[i]) return false;
  }
  return true;
}

int inspect(const std::string& path) {
  const auto art = nn::PlanArtifact::map(path);
  const char* kind = "?";
  switch (art->kind()) {
    case nn::ArtifactModelKind::Float: kind = "float"; break;
    case nn::ArtifactModelKind::Quant: kind = "quant"; break;
    case nn::ArtifactModelKind::PatchQuant: kind = "patch-quant"; break;
  }
  const nn::KernelFingerprint& fp = art->fingerprint();
  std::printf("%s: %zu bytes, kind %s\n", path.c_str(), art->mapped_bytes(),
              kind);
  std::printf("  baked kernel generation: %u (a_bias %d, lut_mask 0x%x)%s\n",
              fp.gemm_generation, fp.gemm_a_bias, fp.lut_mask,
              art->fingerprint_matches()
                  ? ""
                  : "  [differs from this host: offset rows re-derived]");
  std::printf("  graph: %d layers, arena peak %lld bytes (%zu slots)\n",
              art->graph().size(),
              static_cast<long long>(art->arena_plan().peak_bytes),
              art->arena_plan().slots.size());
  for (const std::uint32_t tag :
       {nn::artifact_tag('G', 'R', 'P', 'H'), nn::artifact_tag('Q', 'C', 'F', 'G'),
        nn::artifact_tag('L', 'I', 'D', 'X'), nn::artifact_tag('P', 'L', 'A', 'N'),
        nn::artifact_tag('F', 'I', 'D', 'X'), nn::artifact_tag('P', 'T', 'C', 'H'),
        nn::artifact_tag('B', 'B', 'I', 'A'), nn::artifact_tag('P', 'I', 'P', 'E'),
        nn::artifact_tag('B', 'L', 'O', 'B')}) {
    const auto bytes = art->section(tag);
    if (bytes.empty()) continue;
    const char name[5] = {static_cast<char>(tag & 0xff),
                          static_cast<char>((tag >> 8) & 0xff),
                          static_cast<char>((tag >> 16) & 0xff),
                          static_cast<char>((tag >> 24) & 0xff), '\0'};
    std::printf("  section %s: %zu bytes\n", name, bytes.size());
  }
  return 0;
}

// Verifies `path` against a reference compiled in-memory from `g`:
// bit-identical outputs on deterministic inputs, for the artifact's kind.
int verify_artifact(const std::string& path, const nn::Graph& g,
                    const Options& o) {
  const nn::Tensor in = random_input(g.shape(0), 7);
  if (o.kind == "float") {
    const nn::LoadedModel loaded = nn::load_compiled(path);
    const nn::CompiledModel ref(g);
    if (!f_equal(loaded.float_model->run(in), ref.run(in))) {
      std::fprintf(stderr, "FAIL: artifact inference differs from in-memory "
                           "compilation\n");
      return 1;
    }
  } else {
    std::vector<nn::Tensor> calib;
    for (int i = 0; i < o.calib; ++i) {
      calib.push_back(random_input(g.shape(0), 100 + static_cast<unsigned>(i)));
    }
    const auto ranges = quant::calibrate_ranges(g, calib);
    const auto cfg =
        quant::make_quant_config(g, ranges, nn::uniform_bits(g, o.bits));
    if (o.kind == "quant") {
      const nn::LoadedModel loaded = nn::load_compiled(path);
      const nn::CompiledQuantModel ref(g, cfg);
      if (!q_equal(loaded.model->run(in), ref.run(in))) {
        std::fprintf(stderr, "FAIL: artifact inference differs from "
                             "in-memory compilation\n");
        return 1;
      }
    } else {
      const patch::PatchSpec spec = patch::plan_mcunetv2(g, {o.grid, o.grid});
      const patch::LoadedPatchModel loaded = patch::load_compiled_patch(path);
      const patch::CompiledPatchQuantModel ref(
          g, patch::build_patch_plan(g, spec), cfg);
      if (!q_equal(loaded.model->run(in), ref.run(in))) {
        std::fprintf(stderr, "FAIL: artifact inference differs from "
                             "in-memory compilation\n");
        return 1;
      }
    }
  }
  const auto art = nn::PlanArtifact::map(path);
  std::printf("OK: %s bit-identical to in-memory compilation (%s kernel "
              "generation)\n",
              path.c_str(),
              art->fingerprint_matches() ? "matching" : "re-derived");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  try {
    if (!o.inspect.empty()) return inspect(o.inspect);

    models::ModelConfig mc;
    mc.width_multiplier = o.width;
    mc.resolution = o.resolution;
    mc.num_classes = o.classes;
    const nn::Graph g = o.model.empty() ? nn::load_graph(o.graph_path)
                                        : models::make_model(o.model, mc);

    if (!o.check.empty()) return verify_artifact(o.check, g, o);

    if (o.kind == "float") {
      nn::compile_to_artifact(g, o.out);
    } else {
      std::vector<nn::Tensor> calib;
      for (int i = 0; i < o.calib; ++i) {
        calib.push_back(
            random_input(g.shape(0), 100 + static_cast<unsigned>(i)));
      }
      const auto ranges = quant::calibrate_ranges(g, calib);
      const auto cfg =
          quant::make_quant_config(g, ranges, nn::uniform_bits(g, o.bits));
      if (o.kind == "quant") {
        nn::compile_to_artifact(g, cfg, o.out);
      } else if (o.kind == "patch") {
        const patch::PatchSpec spec =
            patch::plan_mcunetv2(g, {o.grid, o.grid});
        patch::compile_to_artifact(g, spec, cfg, {}, o.out);
      } else {
        std::fprintf(stderr, "unknown --kind: %s\n", o.kind.c_str());
        return 2;
      }
    }
    std::printf("wrote %s\n", o.out.c_str());
    if (o.verify) return verify_artifact(o.out, g, o);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "qmcu_pack: %s\n", e.what());
    return 1;
  }
}
