#include "nn/quant_params.h"

#include <algorithm>
#include <cmath>

namespace qmcu::nn {

std::int32_t QuantParams::quantize(float real) const {
  QMCU_ENSURE(scale > 0.0f, "quantization scale must be positive");
  const float q = std::nearbyint(real / scale) + static_cast<float>(zero_point);
  const float clamped = std::clamp(q, static_cast<float>(qmin()),
                                   static_cast<float>(qmax()));
  return static_cast<std::int32_t>(clamped);
}

QuantParams choose_quant_params(float min_v, float max_v, int bits) {
  QMCU_REQUIRE(bits >= 2 && bits <= 8, "activation bits must be in [2, 8]");
  QMCU_REQUIRE(min_v <= max_v, "min must not exceed max");
  // Widen to include zero so it is exactly representable.
  min_v = std::min(min_v, 0.0f);
  max_v = std::max(max_v, 0.0f);

  QuantParams p;
  p.bits = bits;
  const float qrange =
      static_cast<float>(p.qmax()) - static_cast<float>(p.qmin());
  float range = max_v - min_v;
  if (range <= 0.0f) {
    // Degenerate (all-zero) tensor: any positive scale round-trips zero.
    p.scale = 1.0f;
    p.zero_point = 0;
    return p;
  }
  p.scale = range / qrange;
  // Zero-point that maps min_v -> qmin exactly, then rounded into range.
  const float zp_real = static_cast<float>(p.qmin()) - min_v / p.scale;
  p.zero_point = static_cast<std::int32_t>(std::nearbyint(
      std::clamp(zp_real, static_cast<float>(p.qmin()),
                 static_cast<float>(p.qmax()))));
  return p;
}

QuantParams choose_symmetric_quant_params(float absmax, int bits) {
  QMCU_REQUIRE(bits >= 2 && bits <= 8, "weight bits must be in [2, 8]");
  QuantParams p;
  p.bits = bits;
  p.zero_point = 0;
  p.scale = (absmax > 0.0f)
                ? absmax / static_cast<float>(p.qmax())
                : 1.0f;
  return p;
}

}  // namespace qmcu::nn
