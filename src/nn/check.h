// check.h — lightweight precondition / invariant checking for the qmcu
// libraries.
//
// Policy (C++ Core Guidelines I.6 / E.2): violations of *caller-facing*
// preconditions throw std::invalid_argument so that misuse is diagnosable
// from tests and examples; violations of *internal* invariants throw
// std::logic_error because they indicate a bug inside the library itself.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qmcu {

namespace detail {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant violated: (" << expr << ") at " << file << ':'
     << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace detail

}  // namespace qmcu

// Caller-facing precondition: throws std::invalid_argument on failure.
#define QMCU_REQUIRE(cond, msg)                                         \
  do {                                                                  \
    if (!(cond))                                                        \
      ::qmcu::detail::throw_precondition(#cond, __FILE__, __LINE__,     \
                                         (msg));                        \
  } while (false)

// Internal invariant: throws std::logic_error on failure.
#define QMCU_ENSURE(cond, msg)                                        \
  do {                                                                \
    if (!(cond))                                                      \
      ::qmcu::detail::throw_invariant(#cond, __FILE__, __LINE__,      \
                                      (msg));                         \
  } while (false)
