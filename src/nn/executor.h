// executor.h — layer-based (whole feature map) execution.
//
// Two executors share the Graph IR:
//   Executor      — float32 reference; also the calibration vehicle.
//   QuantExecutor — integer inference with per-layer activation QuantParams
//                   (the per-feature-map bitwidth assignment the paper's
//                   VDQS produces) and 8-bit symmetric weights.
//
// `run_all` keeps every intermediate feature map alive, which the entropy
// analysis and the patch-executor equivalence tests need; `run` returns only
// the final output.
#pragma once

#include <vector>

#include "nn/graph.h"
#include "nn/ops/backend.h"
#include "nn/ops/int8_kernels.h"
#include "nn/tensor.h"

namespace qmcu::nn {

// Executes one non-Input layer of `g` against already-computed producer
// tensors (memo is indexed by layer id; only the layer's inputs are read).
// Shared by the layer-based executor and the patch executor's tail phase.
// Kernels dispatch through `backend`; the overload without one uses a
// shared thread-local Fast backend.
Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo,
                     ops::KernelBackend& backend);
Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo);

class Executor {
 public:
  explicit Executor(const Graph& g,
                    ops::KernelTier tier = ops::KernelTier::Fast)
      : graph_(&g), backend_(tier) {}

  // Runs the whole graph; result[i] is the output feature map of layer i.
  [[nodiscard]] std::vector<Tensor> run_all(const Tensor& input) const;

  // Runs the whole graph and returns the final layer's output.
  [[nodiscard]] Tensor run(const Tensor& input) const;

  // Incremental re-execution: `memo` holds a full run's feature maps with
  // memo[changed_layer] already replaced (e.g. by a fake-quantized copy);
  // recomputes only the layers downstream of the change and returns the
  // updated memo. Used by sensitivity analyses (HAWQ-style perturbation)
  // that would otherwise pay a full forward pass per probed layer.
  [[nodiscard]] std::vector<Tensor> run_from(std::vector<Tensor> memo,
                                             int changed_layer) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }

 private:
  const Graph* graph_;  // non-owning; graph must outlive the executor
  // Kernel dispatch + scratch arena; mutated (scratch reuse) during const
  // runs, which does not affect observable results but does mean a single
  // executor instance must not run concurrently from multiple threads —
  // use one executor per thread instead.
  mutable ops::KernelBackend backend_;
};

// Per-layer activation quantization parameters, indexed by layer id.
// `params[i].bits` is the feature-map bitwidth b_i of the paper.
struct ActivationQuantConfig {
  std::vector<QuantParams> params;

  [[nodiscard]] int bits(int layer_id) const {
    return params[static_cast<std::size_t>(layer_id)].bits;
  }
};

// Ahead-of-time converted model parameters: 8-bit symmetric weights and
// int32 biases rescaled to in_scale * weight_scale, per MAC layer. Shared
// by the layer-based QuantExecutor and the patch-based quantized executor.
struct QuantizedParameters {
  std::vector<ops::QuantizedWeights> weights;  // indexed by layer id
  std::vector<std::vector<std::int32_t>> bias;

  static QuantizedParameters build(const Graph& g,
                                   const ActivationQuantConfig& cfg);
};

// Executes one non-Input layer in the quantized domain. `memo` holds the
// producers' quantized feature maps; `out_params` is the layer's output
// quantization (from the ActivationQuantConfig). The overload without a
// backend uses a shared thread-local Fast backend.
QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_params,
                    ops::KernelBackend& backend);
QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_params);

class QuantExecutor {
 public:
  // Weights are quantized (8-bit symmetric) and biases rescaled at
  // construction, mirroring ahead-of-time conversion on the MCU.
  QuantExecutor(const Graph& g, ActivationQuantConfig cfg,
                ops::KernelTier tier = ops::KernelTier::Fast);

  [[nodiscard]] std::vector<QTensor> run_all(const Tensor& input) const;
  [[nodiscard]] QTensor run(const Tensor& input) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const ActivationQuantConfig& config() const { return cfg_; }

 private:
  const Graph* graph_;
  ActivationQuantConfig cfg_;
  QuantizedParameters params_;
  mutable ops::KernelBackend backend_;
};

}  // namespace qmcu::nn
