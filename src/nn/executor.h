// executor.h — layer-based (whole feature map) execution.
//
// Two executors share the Graph IR:
//   Executor      — float32 reference; also the calibration vehicle.
//   QuantExecutor — integer inference with per-layer activation QuantParams
//                   (the per-feature-map bitwidth assignment the paper's
//                   VDQS produces) and 8-bit symmetric weights.
//
// Both compile the graph once on construction (see nn/compiled_model.h):
// `run` executes the compiled schedule against a static tensor arena with
// zero per-layer allocation, bit-identical to the memo-based path.
// `run_all` keeps every intermediate feature map alive — which the entropy
// analysis and the patch-executor equivalence tests need, and which a
// single overwriting arena cannot provide — so it stays on the
// heap-per-layer memo path; `run` returns only the final output.
#pragma once

#include <vector>

#include "nn/compiled_model.h"
#include "nn/graph.h"
#include "nn/ops/backend.h"
#include "nn/ops/int8_kernels.h"
#include "nn/tensor.h"

namespace qmcu::nn {

// Executes one non-Input layer of `g` against already-computed producer
// tensors (memo is indexed by layer id; only the layer's inputs are read).
// Shared by the layer-based executor and the patch executor's tail phase.
// Kernels dispatch through `backend`; the overload without one uses a
// shared thread-local Fast backend. The `_into` form writes into a
// caller-bound destination (shape = g.shape(id); for quantized pools its
// params must equal the producer's) — the compiled arena executors' path.
Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo,
                     ops::KernelBackend& backend);
Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo);
void run_layer_f32_into(const Graph& g, int id, std::span<const Tensor> memo,
                        ops::KernelBackend& backend, Tensor& out);

class Executor {
 public:
  explicit Executor(const Graph& g,
                    ops::KernelTier tier = ops::KernelTier::Simd)
      : graph_(&g), compiled_(g, tier) {}

  // Runs the whole graph; result[i] is the output feature map of layer i.
  [[nodiscard]] std::vector<Tensor> run_all(const Tensor& input) const;

  // Runs the whole graph through the compiled arena schedule and returns
  // the final layer's output.
  [[nodiscard]] Tensor run(const Tensor& input) const;

  // Incremental re-execution: `memo` holds a full run's feature maps with
  // memo[changed_layer] already replaced (e.g. by a fake-quantized copy);
  // recomputes only the layers downstream of the change and returns the
  // updated memo. Used by sensitivity analyses (HAWQ-style perturbation)
  // that would otherwise pay a full forward pass per probed layer.
  [[nodiscard]] std::vector<Tensor> run_from(std::vector<Tensor> memo,
                                             int changed_layer) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const CompiledModel& compiled() const { return compiled_; }

 private:
  const Graph* graph_;  // non-owning; graph must outlive the executor
  // All paths dispatch through the compiled model's backend (one scratch
  // arena + weight-panel cache per executor); its state is mutated during
  // const runs, so a single executor instance must not run concurrently
  // from multiple threads — use one executor per thread instead.
  CompiledModel compiled_;
};

// Executes one non-Input layer in the quantized domain. `memo` holds the
// producers' quantized feature maps; `out_params` is the layer's output
// quantization (from the ActivationQuantConfig). The overload without a
// backend uses a shared thread-local Fast backend.
QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_params,
                    ops::KernelBackend& backend);
QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_params);
void run_layer_q_into(const Graph& g, int id, std::span<const QTensor> memo,
                      const QuantizedParameters& params,
                      ops::KernelBackend& backend, QTensor& out);

class QuantExecutor {
 public:
  // Weights are quantized (8-bit symmetric) and biases rescaled at
  // construction, mirroring ahead-of-time conversion on the MCU. Pass
  // prebuilt shared parameters to amortise that conversion across several
  // executors over the same graph (e.g. bench sweeps).
  QuantExecutor(const Graph& g, ActivationQuantConfig cfg,
                ops::KernelTier tier = ops::KernelTier::Simd,
                std::shared_ptr<const QuantizedParameters> params = {});

  [[nodiscard]] std::vector<QTensor> run_all(const Tensor& input) const;
  // Compiled arena path; bit-identical to run_all's final feature map.
  [[nodiscard]] QTensor run(const Tensor& input) const;

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const ActivationQuantConfig& config() const {
    return compiled_.config();
  }
  [[nodiscard]] const CompiledQuantModel& compiled() const {
    return compiled_;
  }
  [[nodiscard]] const std::shared_ptr<const QuantizedParameters>&
  shared_parameters() const {
    return compiled_.shared_parameters();
  }

 private:
  const Graph* graph_;
  CompiledQuantModel compiled_;
};

}  // namespace qmcu::nn
