// graph_io.h — human-readable graph inspection.
//
// `summarize` prints the per-layer table an engineer reaches for first
// (id, op, geometry, output shape, MACs, parameter count); `to_dot` emits
// Graphviz for the topology. Both are pure functions of the graph — no
// side effects, easy to golden-test.
#pragma once

#include <string>

#include "nn/graph.h"

namespace qmcu::nn {

// Multi-line table: one row per layer plus a totals footer.
std::string summarize(const Graph& g);

// Graphviz DOT (digraph) of the layer topology. Layer ids are node names,
// labels carry op kind and output shape. Optionally highlights the layers
// of a patch stage (e.g. everything up to a cut point).
std::string to_dot(const Graph& g, int highlight_through = -1);

}  // namespace qmcu::nn
