// dtype.h — element types supported by the qmcu tensor library.
//
// The deployable activation bitwidths follow the paper (§III-B): "due to the
// constraint of the software library, the feature map is only able to be
// quantized to 8, 4, and 2 bits" (TensorFlow Lite for 8-bit, CMix-NN for
// sub-byte). F32 is the reference type, I32 the accumulator type.
#pragma once

#include <array>
#include <string_view>

#include "nn/check.h"

namespace qmcu::nn {

enum class DType {
  F32,  // float reference path
  I8,   // TFLite-Micro style 8-bit affine quantized
  I4,   // CMix-NN style sub-byte (stored bit-packed, computed unpacked)
  I2,   // CMix-NN style sub-byte
  I32,  // accumulator / bias type
};

// Number of bits one element of `t` occupies in *storage*.
constexpr int bit_width(DType t) {
  switch (t) {
    case DType::F32: return 32;
    case DType::I8: return 8;
    case DType::I4: return 4;
    case DType::I2: return 2;
    case DType::I32: return 32;
  }
  return 0;  // unreachable; keeps -Wreturn-type quiet
}

constexpr std::string_view to_string(DType t) {
  switch (t) {
    case DType::F32: return "f32";
    case DType::I8: return "i8";
    case DType::I4: return "i4";
    case DType::I2: return "i2";
    case DType::I32: return "i32";
  }
  return "?";
}

// The quantized activation dtype for a given bitwidth (8, 4 or 2).
inline DType quantized_dtype_for_bits(int bits) {
  switch (bits) {
    case 8: return DType::I8;
    case 4: return DType::I4;
    case 2: return DType::I2;
    default:
      QMCU_REQUIRE(false, "supported quantized bitwidths are 8, 4, 2");
  }
}

// Candidate activation bitwidths available to the quantization search
// (m = 3 in the paper's Algorithm 1).
inline constexpr std::array<int, 3> kCandidateBitwidths{8, 4, 2};

}  // namespace qmcu::nn
