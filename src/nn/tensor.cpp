#include "nn/tensor.h"

#include <algorithm>

namespace qmcu::nn {

QTensor quantize(const Tensor& t, const QuantParams& params) {
  QTensor out(t.shape(), params);
  quantize_into(t, out);
  return out;
}

void quantize_into(const Tensor& t, QTensor& out) {
  QMCU_REQUIRE(out.shape() == t.shape(), "quantize destination shape mismatch");
  const auto src = t.data();
  auto dst = out.data();
  const QuantParams& params = out.params();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = static_cast<std::int8_t>(params.quantize(src[i]));
  }
}

Tensor dequantize(const QTensor& q) {
  Tensor out(q.shape());
  dequantize_into(q, out);
  return out;
}

void dequantize_into(const QTensor& q, Tensor& out) {
  QMCU_REQUIRE(out.shape() == q.shape(),
               "dequantize destination shape mismatch");
  const auto src = q.data();
  auto dst = out.data();
  const auto& p = q.params();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = p.dequantize(src[i]);
  }
}

Tensor fake_quantize(const Tensor& t, const QuantParams& params) {
  Tensor out(t.shape());
  const auto src = t.data();
  auto dst = out.data();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = params.quantize_dequantize(src[i]);
  }
  return out;
}

MinMax tensor_min_max(const Tensor& t) {
  const auto d = t.data();
  if (d.empty()) return {};
  const auto [lo, hi] = std::minmax_element(d.begin(), d.end());
  return {*lo, *hi};
}

}  // namespace qmcu::nn
