#include "nn/runtime/cpu_affinity.h"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace qmcu::nn::runtime {

#if defined(__linux__)

namespace {

// Builds the cpu_set_t for `cpus`; false when the list is empty or names a
// core the mask cannot represent.
bool build_mask(std::span<const int> cpus, cpu_set_t* mask) {
  CPU_ZERO(mask);
  bool any = false;
  for (const int c : cpus) {
    if (c < 0 || c >= CPU_SETSIZE) return false;
    CPU_SET(c, mask);
    any = true;
  }
  return any;
}

}  // namespace

bool affinity_supported() { return true; }

int usable_cpus() {
  cpu_set_t mask;
  if (sched_getaffinity(0, sizeof(mask), &mask) == 0) {
    const int n = CPU_COUNT(&mask);
    if (n >= 1) return n;
  }
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool pin_current_thread(std::span<const int> cpus) {
  cpu_set_t mask;
  if (!build_mask(cpus, &mask)) return false;
  return pthread_setaffinity_np(pthread_self(), sizeof(mask), &mask) == 0;
}

bool pin_thread(std::thread::native_handle_type handle,
                std::span<const int> cpus) {
  cpu_set_t mask;
  if (!build_mask(cpus, &mask)) return false;
  return pthread_setaffinity_np(handle, sizeof(mask), &mask) == 0;
}

#else  // !__linux__ — pinning is a no-op hint; callers run unpinned.

bool affinity_supported() { return false; }

int usable_cpus() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool pin_current_thread(std::span<const int>) { return false; }

bool pin_thread(std::thread::native_handle_type, std::span<const int>) {
  return false;
}

#endif

}  // namespace qmcu::nn::runtime
