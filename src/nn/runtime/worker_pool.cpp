#include "nn/runtime/worker_pool.h"

#include <algorithm>

#include "nn/check.h"
#include "nn/runtime/cpu_affinity.h"

namespace qmcu::nn {

// --- TaskGraph ---------------------------------------------------------------

int TaskGraph::add(Fn fn) {
  QMCU_REQUIRE(fn != nullptr, "task graph node needs a body");
  nodes_.push_back(Node{std::move(fn), {}, 0});
  return static_cast<int>(nodes_.size()) - 1;
}

void TaskGraph::depend(int task, int prereq) {
  QMCU_REQUIRE(task >= 0 && task < size() && prereq >= 0 && prereq < size(),
               "task graph edge out of range");
  QMCU_REQUIRE(task != prereq, "task cannot depend on itself");
  nodes_[static_cast<std::size_t>(prereq)].successors.push_back(task);
  ++nodes_[static_cast<std::size_t>(task)].preds;
}

void TaskGraph::clear() { nodes_.clear(); }

// --- WorkerPool --------------------------------------------------------------

WorkerPool::WorkerPool(int workers) {
  const int w = std::max(workers, 1);
  lanes_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(static_cast<std::size_t>(w - 1));
  for (int i = 1; i < w; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::hardware_workers() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool WorkerPool::pin_workers(std::span<const int> cpus) {
  bool all = runtime::affinity_supported() && !cpus.empty();
  for (std::thread& t : threads_) {
    all = runtime::pin_thread(t.native_handle(), cpus) && all;
  }
  return all;
}

bool WorkerPool::take_own(int lane, int& out) {
  Lane& l = *lanes_[static_cast<std::size_t>(lane)];
  std::lock_guard<std::mutex> lock(l.mu);
  if (l.tasks.empty()) return false;
  out = l.tasks.front();
  l.tasks.pop_front();
  return true;
}

bool WorkerPool::steal_any(int thief, int& out) {
  const int w = num_workers();
  for (int d = 1; d < w; ++d) {
    Lane& victim = *lanes_[static_cast<std::size_t>((thief + d) % w)];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    // Steal from the opposite end the owner pops from: the freshest (and
    // for block-dealt ranges, the most distant) work migrates first.
    out = victim.tasks.back();
    victim.tasks.pop_back();
    return true;
  }
  return false;
}

void WorkerPool::record_exception() {
  std::lock_guard<std::mutex> lock(job_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

// Makes a now-ready task visible: onto the publishing lane's own deque
// (front — it is the natural continuation of what just finished), then a
// ready-epoch bump so an idle worker that scanned the deques just before
// the push re-checks instead of sleeping through it.
void WorkerPool::publish(int lane, int task) {
  {
    Lane& l = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lock(l.mu);
    l.tasks.push_front(task);
  }
  {
    std::lock_guard<std::mutex> lock(ready_mu_);
    ++ready_epoch_;
  }
  ready_cv_.notify_all();
}

void WorkerPool::execute(int task, int lane) {
  TaskGraph::Node& node = graph_->nodes_[static_cast<std::size_t>(task)];
  bool failed = false;
  try {
    node.fn(lane);
  } catch (...) {
    record_exception();
    abort_.store(true, std::memory_order_release);
    failed = true;
  }
  // acq_rel on the counters chains the happens-before edge: this task's
  // writes are released by the decrement, and whichever thread takes the
  // counter to zero (or sees remaining_ hit zero) acquires them. A failed
  // task publishes nothing: its successors' counters never reach zero, so
  // no dependent can observe its half-written output — abort_ terminates
  // the drain loops and dispatch_and_wait clears the leftover deques.
  if (!failed) {
    for (const int s : node.successors) {
      if (preds_[static_cast<std::size_t>(s)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        publish(lane, s);
      }
    }
  }
  if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1 ||
      abort_.load(std::memory_order_acquire)) {
    {
      std::lock_guard<std::mutex> lock(ready_mu_);
      ++ready_epoch_;
    }
    ready_cv_.notify_all();
  }
}

// How many empty deque scans an idle worker tolerates before parking on
// ready_cv_. Pipelined graphs publish successors within microseconds of a
// band finishing, so a short spin (each round yields the timeslice) dodges
// a futex sleep/wake round-trip per publication — but the spin MUST be
// bounded: under the serving front-end's core budget several lanes share
// the machine, and an idle worker that spun indefinitely would keep
// burning a core another lane was promised. Parking on the condition
// variable is what actually cedes the core.
constexpr int kIdleSpinRounds = 32;

void WorkerPool::drain(int lane) {
  int task = -1;
  int spins = 0;
  for (;;) {
    if (abort_.load(std::memory_order_acquire)) return;
    if (remaining_.load(std::memory_order_acquire) == 0) return;
    if (take_own(lane, task) || steal_any(lane, task)) {
      execute(task, lane);
      spins = 0;
      continue;
    }
    // Nothing runnable: spin briefly (new work usually arrives within the
    // publish latency of a running task), then park until a publish (or
    // completion/abort). The epoch is read before the deque scan above
    // could miss a concurrent publish — the publisher bumps it under
    // ready_mu_ after pushing, so either the scan saw the task or the
    // epoch moved.
    if (spins < kIdleSpinRounds) {
      ++spins;
      std::this_thread::yield();
      continue;
    }
    spins = 0;
    std::unique_lock<std::mutex> lock(ready_mu_);
    const std::uint64_t seen = ready_epoch_;
    ready_cv_.wait(lock, [&] {
      return ready_epoch_ != seen ||
             remaining_.load(std::memory_order_acquire) == 0 ||
             abort_.load(std::memory_order_acquire);
    });
  }
}

void WorkerPool::worker_main(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
    }
    drain(lane);
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::dispatch_and_wait() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    first_error_ = nullptr;
    active_workers_ = num_workers() - 1;
    ++generation_;
  }
  job_cv_.notify_all();

  drain(0);  // the caller is worker 0

  std::unique_lock<std::mutex> lock(job_mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  graph_ = nullptr;
  // An aborted graph leaves never-ready and never-popped tasks behind;
  // clear the deques so the next run starts clean.
  for (auto& lane : lanes_) {
    std::lock_guard<std::mutex> l(lane->mu);
    lane->tasks.clear();
  }
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void WorkerPool::run_graph(TaskGraph& graph) {
  if (graph.empty()) return;
  const int w = num_workers();
  const std::size_t n = graph.nodes_.size();

  // A cycle would stall the workers forever (no counter ever reaches
  // zero), so reject it up front — on every worker count, before any task
  // runs — with a dry Kahn pass over the static counts. Graphs here are
  // dozens of nodes; the check is free.
  {
    std::vector<int> preds(n);
    std::vector<int> stack;
    for (std::size_t i = 0; i < n; ++i) {
      preds[i] = graph.nodes_[i].preds;
      if (preds[i] == 0) stack.push_back(static_cast<int>(i));
    }
    std::size_t reached = 0;
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      ++reached;
      for (const int s : graph.nodes_[static_cast<std::size_t>(t)].successors) {
        if (--preds[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
      }
    }
    QMCU_REQUIRE(reached == n, "task graph has a dependency cycle");
  }

  if (w == 1) {
    // Inline sequential path: run tasks in dependency order (Kahn over the
    // static counters), no scheduler involved.
    std::vector<int> preds(n);
    for (std::size_t i = 0; i < n; ++i) preds[i] = graph.nodes_[i].preds;
    std::vector<int> stack;
    for (std::size_t i = n; i-- > 0;) {
      if (preds[i] == 0) stack.push_back(static_cast<int>(i));
    }
    while (!stack.empty()) {
      const int t = stack.back();
      stack.pop_back();
      graph.nodes_[static_cast<std::size_t>(t)].fn(0);
      for (const int s : graph.nodes_[static_cast<std::size_t>(t)].successors) {
        if (--preds[static_cast<std::size_t>(s)] == 0) stack.push_back(s);
      }
    }
    return;
  }

  if (preds_capacity_ < n) {
    preds_ = std::make_unique<std::atomic<int>[]>(n);
    preds_capacity_ = n;
  }
  for (std::size_t i = 0; i < n; ++i) {
    preds_[i].store(graph.nodes_[i].preds, std::memory_order_relaxed);
  }
  std::size_t ready = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (graph.nodes_[i].preds == 0) ++ready;
  }
  graph_ = &graph;
  remaining_.store(static_cast<std::int64_t>(n), std::memory_order_relaxed);
  abort_.store(false, std::memory_order_relaxed);

  // Deal the initially-ready tasks lane by lane (block distribution): each
  // worker starts on a compact stretch of the ready set and stealing moves
  // whole tasks from the far end of a loaded lane.
  const std::size_t per_lane = ready / static_cast<std::size_t>(w);
  std::size_t extra = ready % static_cast<std::size_t>(w);
  std::size_t next = 0;
  for (int lane = 0; lane < w; ++lane) {
    std::size_t take =
        per_lane + (static_cast<std::size_t>(lane) < extra ? 1 : 0);
    Lane& l = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lock(l.mu);
    QMCU_ENSURE(l.tasks.empty(), "a graph run is already in flight");
    while (take > 0 && next < n) {
      if (graph.nodes_[next].preds == 0) {
        l.tasks.push_back(static_cast<int>(next));
        --take;
      }
      ++next;
    }
  }

  dispatch_and_wait();
}

void WorkerPool::parallel_ranges(std::span<const IndexRange> ranges,
                                 const Body& body) {
  if (ranges.empty()) return;
  if (num_workers() == 1) {
    for (const IndexRange& r : ranges) {
      QMCU_REQUIRE(r.begin < r.end, "parallel range must be non-empty");
      body(r.begin, r.end, 0);
    }
    return;
  }
  TaskGraph graph;
  for (const IndexRange& r : ranges) {
    QMCU_REQUIRE(r.begin < r.end, "parallel range must be non-empty");
    graph.add([&body, r](int lane) { body(r.begin, r.end, lane); });
  }
  run_graph(graph);
}

void WorkerPool::parallel_for(std::int64_t count, std::int64_t grain,
                              const Body& body) {
  if (count <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);

  if (num_workers() == 1) {
    // Inline sequential path: identical chunking, no scheduler involved.
    for (std::int64_t b = 0; b < count; b += grain) {
      body(b, std::min(b + grain, count), 0);
    }
    return;
  }

  std::vector<IndexRange> ranges;
  ranges.reserve(static_cast<std::size_t>((count + grain - 1) / grain));
  for (std::int64_t b = 0; b < count; b += grain) {
    ranges.push_back({b, std::min(b + grain, count)});
  }
  parallel_ranges(ranges, body);
}

}  // namespace qmcu::nn
