#include "nn/runtime/worker_pool.h"

#include <algorithm>

#include "nn/check.h"

namespace qmcu::nn {

WorkerPool::WorkerPool(int workers) {
  const int w = std::max(workers, 1);
  lanes_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(static_cast<std::size_t>(w - 1));
  for (int i = 1; i < w; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int WorkerPool::hardware_workers() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

bool WorkerPool::take_own(int lane, Chunk& out) {
  Lane& l = *lanes_[static_cast<std::size_t>(lane)];
  std::lock_guard<std::mutex> lock(l.mu);
  if (l.chunks.empty()) return false;
  out = l.chunks.front();
  l.chunks.pop_front();
  return true;
}

bool WorkerPool::steal_any(int thief, Chunk& out) {
  const int w = num_workers();
  for (int d = 1; d < w; ++d) {
    Lane& victim = *lanes_[static_cast<std::size_t>((thief + d) % w)];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (victim.chunks.empty()) continue;
    // Steal from the opposite end the owner pops from: the freshest (and
    // for block-dealt ranges, the most distant) work migrates first.
    out = victim.chunks.back();
    victim.chunks.pop_back();
    return true;
  }
  return false;
}

void WorkerPool::record_exception() {
  std::lock_guard<std::mutex> lock(job_mu_);
  if (!first_error_) first_error_ = std::current_exception();
}

void WorkerPool::drain(int lane, const Body& body) {
  Chunk c{};
  while (take_own(lane, c) || steal_any(lane, c)) {
    try {
      body(c.begin, c.end, lane);
    } catch (...) {
      record_exception();
    }
  }
}

void WorkerPool::worker_main(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const Body* body = nullptr;
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock,
                   [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      body = body_;
    }
    drain(lane, *body);
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      if (--active_workers_ == 0) done_cv_.notify_one();
    }
  }
}

void WorkerPool::parallel_for(std::int64_t count, std::int64_t grain,
                              const Body& body) {
  if (count <= 0) return;
  grain = std::max<std::int64_t>(grain, 1);
  const int w = num_workers();

  if (w == 1) {
    // Inline sequential path: identical chunking, no scheduler involved.
    for (std::int64_t b = 0; b < count; b += grain) {
      body(b, std::min(b + grain, count), 0);
    }
    return;
  }

  // Deal contiguous chunk runs lane by lane (block distribution): each
  // worker starts on a compact stretch of the range and stealing moves
  // whole chunks from the far end of a loaded lane.
  const std::int64_t chunks = (count + grain - 1) / grain;
  const std::int64_t per_lane = chunks / w;
  std::int64_t extra = chunks % w;
  std::int64_t next = 0;
  for (int lane = 0; lane < w; ++lane) {
    const std::int64_t take = per_lane + (lane < extra ? 1 : 0);
    Lane& l = *lanes_[static_cast<std::size_t>(lane)];
    std::lock_guard<std::mutex> lock(l.mu);
    QMCU_ENSURE(l.chunks.empty(), "parallel_for is not reentrant");
    for (std::int64_t i = 0; i < take; ++i, ++next) {
      l.chunks.push_back(
          {next * grain, std::min((next + 1) * grain, count)});
    }
  }

  {
    std::lock_guard<std::mutex> lock(job_mu_);
    body_ = &body;
    first_error_ = nullptr;
    active_workers_ = w - 1;
    ++generation_;
  }
  job_cv_.notify_all();

  drain(0, body);  // the caller is worker 0

  std::unique_lock<std::mutex> lock(job_mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  body_ = nullptr;
  if (first_error_) {
    std::exception_ptr e = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace qmcu::nn
