// cpu_affinity.h — best-effort thread-to-core pinning for serving lanes.
//
// The serving front-end partitions the host's cores into per-lane slices
// (CoreBudget) and pins each lane's serving thread + WorkerPool threads to
// its slice, so a lane's per-worker arenas and weight-panel caches stay
// resident in that slice's private caches instead of bouncing whenever the
// scheduler migrates a thread across the machine.
//
// Everything here is best-effort by contract: pinning is a performance
// hint, never a correctness requirement. On platforms without
// sched_setaffinity (or when the process's cpuset forbids a requested
// core) the functions return false and callers run unpinned — results are
// bit-identical either way.
#pragma once

#include <span>
#include <thread>

namespace qmcu::nn::runtime {

// True when this build can pin threads to CPUs at all (Linux). When false,
// every pin_* call below returns false without side effects.
[[nodiscard]] bool affinity_supported();

// CPUs this process may actually run on: CPU_COUNT of the process affinity
// mask where available (a container cpuset can be far smaller than the
// machine), falling back to hardware_concurrency. Always >= 1.
[[nodiscard]] int usable_cpus();

// Pins the calling thread / `handle`'s thread to the given CPU ids.
// Returns true iff the mask was applied; false on unsupported platforms,
// an empty or out-of-range cpu list, or a rejected mask (e.g. cpuset
// excludes every requested core).
bool pin_current_thread(std::span<const int> cpus);
bool pin_thread(std::thread::native_handle_type handle,
                std::span<const int> cpus);

}  // namespace qmcu::nn::runtime
