// worker_pool.h — fixed thread pool with a dependency-driven task-graph
// scheduler over chunked work-stealing deques.
//
// The patch stage of the paper's runtime is embarrassingly parallel: every
// branch (patch) computes a spatially independent slice of the cut layer's
// feature map. The tail after the cut is *not* — each tail layer reads a
// few rows of the assembled map — but it is still far from sequential: its
// row bands only depend on the branches (and earlier bands) that produce
// their input rows. WorkerPool therefore schedules a TaskGraph: tasks carry
// atomic dependency counters; a task whose counter hits zero is pushed onto
// the finishing worker's deque, and idle workers steal from the back of a
// victim's deque — so an unlucky worker stuck on an expensive border patch
// does not serialise the grid, and tail bands start on spare workers while
// interior branches are still running.
//
// parallel_for / parallel_ranges are the degenerate single-stage graph: one
// task per chunk, no dependencies.
//
// Contracts the patch runtime depends on:
//   * The calling thread participates as worker 0, so a pool with
//     num_workers() == 1 runs loops inline with no locks, no thread
//     hand-off and no memory-ordering surprises — exactly the sequential
//     code path.
//   * Each task invocation receives the worker lane index [0, W) it runs
//     on; lanes map 1:1 to threads for the duration of one run, which is
//     what makes per-worker arenas and per-worker KernelBackend scratch
//     sound.
//   * run_graph / parallel_for are barriers: they return only after every
//     reachable task has executed (or the graph aborted on an exception).
//     The first exception thrown by a task wins and is rethrown on the
//     calling thread after the barrier; tasks whose dependencies never
//     resolved because of the abort are skipped.
//   * Dependency edges are also memory-publication edges: everything a
//     task wrote is visible to every task that (transitively) depended on
//     it, without further synchronisation. That is what lets a branch task
//     merge rows of the assembled map lock-free and a tail band read them.
//
// A WorkerPool is itself thread-affine: only one graph/loop may be in
// flight at a time (the patch models and benches own their pools), and it
// must be driven from one thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace qmcu::nn {

// A contiguous index range [begin, end) — one chunk of a parallel loop.
struct IndexRange {
  std::int64_t begin = 0;
  std::int64_t end = 0;
};

// A DAG of tasks built once per run and executed by WorkerPool::run_graph.
// Build is single-threaded (not locked); execution mutates only the
// scheduler-owned dependency counters, so a graph must not be rebuilt
// while it runs. Task ids are dense, in add() order.
class TaskGraph {
 public:
  // A task body; receives the worker lane index it runs on.
  using Fn = std::function<void(int)>;

  // Adds a task with no dependencies yet; returns its id.
  int add(Fn fn);

  // `task` must not start until `prereq` has finished. Duplicate edges are
  // allowed (each counts once more, harmlessly — the counter just reaches
  // zero after all copies fire). Self-edges and forward edges to
  // not-yet-added tasks are rejected.
  void depend(int task, int prereq);

  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  void clear();

 private:
  friend class WorkerPool;
  struct Node {
    Fn fn;
    std::vector<int> successors;
    int preds = 0;  // static dependency count (copied to a counter per run)
  };
  std::vector<Node> nodes_;
};

class WorkerPool {
 public:
  // One chunk of a parallel_for range, executed by body(begin, end, worker).
  using Body = std::function<void(std::int64_t, std::int64_t, int)>;

  // `workers` total lanes including the caller; clamped to >= 1. The pool
  // spawns workers-1 parked threads.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(lanes_.size());
  }

  // Executes `graph` to completion: ready tasks are dealt across the lane
  // deques, finished tasks decrement their successors' counters, and a
  // successor reaching zero is published onto the finisher's deque (idle
  // workers steal it). Blocks until every task ran or the graph aborted on
  // a task exception (first exception rethrown here).
  void run_graph(TaskGraph& graph);

  // Runs body over [0, count) split into chunks of `grain` indices
  // (last chunk may be short). Blocks until all chunks are done. The
  // degenerate single-stage graph; a 1-worker pool runs inline.
  void parallel_for(std::int64_t count, std::int64_t grain, const Body& body);

  // Like parallel_for, but over caller-chosen chunks — the entry point for
  // cost-weighted chunking, where cheap border branches coalesce into one
  // task and expensive interior branches stay alone. Ranges must be
  // non-empty; they need not be contiguous or sorted.
  void parallel_ranges(std::span<const IndexRange> ranges, const Body& body);

  // Pins the pool's spawned worker threads to `cpus` (the caller — worker
  // 0 — is a thread the pool does not own; the driver pins it itself).
  // Best-effort serving-lane placement: returns true iff every worker was
  // pinned, false where affinity is unsupported or rejected. Never affects
  // results, only which cores the lane's arenas stay resident on.
  bool pin_workers(std::span<const int> cpus);

  // Reasonable default worker count for this host (>= 1).
  static int hardware_workers();

 private:
  // One worker's task deque. The owner pops from the front, thieves steal
  // from the back; tasks are coarse (whole dataflow branches, tail row
  // bands), so a plain mutex per lane costs nothing measurable next to the
  // kernels.
  struct Lane {
    std::mutex mu;
    std::deque<int> tasks;
  };

  void worker_main(int lane);
  void drain(int lane);
  void execute(int task, int lane);
  void publish(int lane, int task);
  [[nodiscard]] bool take_own(int lane, int& out);
  [[nodiscard]] bool steal_any(int thief, int& out);
  void record_exception();
  void dispatch_and_wait();  // wake workers, drain as lane 0, barrier

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;

  // Dispatch state: generation bumps wake the parked workers for one graph.
  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int active_workers_ = 0;
  bool shutdown_ = false;
  std::exception_ptr first_error_;

  // Per-run graph state. `preds_` holds the live dependency counters
  // (index = task id); `remaining_` counts unfinished tasks; `abort_`
  // flips on the first task exception. Idle workers wait on ready_cv_;
  // ready_epoch_ is bumped under ready_mu_ on every publish so a publish
  // racing an idle worker's deque scan is never lost.
  TaskGraph* graph_ = nullptr;
  std::unique_ptr<std::atomic<int>[]> preds_;
  std::size_t preds_capacity_ = 0;
  std::atomic<std::int64_t> remaining_{0};
  std::atomic<bool> abort_{false};
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::uint64_t ready_epoch_ = 0;
};

}  // namespace qmcu::nn
