// worker_pool.h — fixed thread pool with a chunked work-stealing scheduler.
//
// The patch stage of the paper's runtime is embarrassingly parallel: every
// branch (patch) computes a spatially independent slice of the cut layer's
// feature map, and the only cross-branch interaction is the final region
// merge into disjoint tiles. WorkerPool is the execution substrate for that
// stage: parallel_for splits an index range into chunks, deals the chunks
// into per-worker deques, and lets idle workers steal from the back of a
// victim's deque — so an unlucky worker stuck on an expensive border patch
// does not serialise the whole grid.
//
// Contracts the patch runtime depends on:
//   * The calling thread participates as worker 0, so a pool with
//     num_workers() == 1 runs the loop inline with no locks, no thread
//     hand-off and no memory-ordering surprises — exactly the sequential
//     code path.
//   * Each invocation of `body` receives the worker lane index [0, W) it
//     runs on; lanes map 1:1 to threads for the duration of one
//     parallel_for, which is what makes per-worker arenas and per-worker
//     KernelBackend scratch sound.
//   * parallel_for is a barrier: it returns only after every chunk has
//     executed. Exceptions thrown by `body` are captured (first one wins)
//     and rethrown on the calling thread after the barrier.
//
// A WorkerPool is itself thread-affine: only one parallel_for may be in
// flight at a time (the patch models and benches own their pools), and it
// must be driven from one thread.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace qmcu::nn {

class WorkerPool {
 public:
  // One chunk of a parallel_for range, executed by body(begin, end, worker).
  using Body = std::function<void(std::int64_t, std::int64_t, int)>;

  // `workers` total lanes including the caller; clamped to >= 1. The pool
  // spawns workers-1 parked threads.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(lanes_.size());
  }

  // Runs body over [0, count) split into chunks of `grain` indices
  // (last chunk may be short). Blocks until all chunks are done.
  void parallel_for(std::int64_t count, std::int64_t grain, const Body& body);

  // Reasonable default worker count for this host (>= 1).
  static int hardware_workers();

 private:
  struct Chunk {
    std::int64_t begin;
    std::int64_t end;
  };
  // One worker's chunk deque. The owner pops from the front, thieves steal
  // from the back; patch chunks are coarse (whole dataflow branches), so a
  // plain mutex per lane costs nothing measurable next to the kernels.
  struct Lane {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  void worker_main(int lane);
  void drain(int lane, const Body& body);
  [[nodiscard]] bool take_own(int lane, Chunk& out);
  [[nodiscard]] bool steal_any(int thief, Chunk& out);
  void record_exception();

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread> threads_;

  // Dispatch state: generation bumps wake the parked workers for one job.
  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  int active_workers_ = 0;
  const Body* body_ = nullptr;
  bool shutdown_ = false;
  std::exception_ptr first_error_;
};

}  // namespace qmcu::nn
