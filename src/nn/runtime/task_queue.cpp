#include "nn/runtime/task_queue.h"

#include <utility>

namespace qmcu::nn::runtime {

void TaskQueue::push(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    tasks_.push_back(Entry{std::move(task), false, 0});
    ++requests_;
  }
  cv_.notify_one();
}

bool TaskQueue::try_push(Task task, std::size_t max_depth) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || requests_ >= max_depth) return false;
    tasks_.push_back(Entry{std::move(task), false, 0});
    ++requests_;
  }
  cv_.notify_one();
  return true;
}

void TaskQueue::push_to(std::size_t lane, Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    tasks_.push_back(Entry{std::move(task), true, lane});
  }
  // Any lane may be the addressee — wake them all; non-addressees re-check
  // and sleep again.
  cv_.notify_all();
}

bool TaskQueue::pop(std::size_t lane, Task& out) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    // Oldest entry this lane may run: requests are eligible to everyone,
    // control tasks only to their addressee.
    for (auto it = tasks_.begin(); it != tasks_.end(); ++it) {
      if (it->targeted && it->lane != lane) continue;
      if (!it->targeted) --requests_;
      out = std::move(it->fn);
      tasks_.erase(it);
      return true;
    }
    if (closed_) return false;  // drained of everything this lane may run
    cv_.wait(lock);
  }
}

void TaskQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TaskQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

}  // namespace qmcu::nn::runtime
