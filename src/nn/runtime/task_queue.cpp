#include "nn/runtime/task_queue.h"

#include <utility>

namespace qmcu::nn::runtime {

void TaskQueue::push(Task task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool TaskQueue::try_push(Task task, std::size_t max_depth) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || tasks_.size() >= max_depth) return false;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

bool TaskQueue::pop(Task& out) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !tasks_.empty(); });
  if (tasks_.empty()) return false;  // closed and drained
  out = std::move(tasks_.front());
  tasks_.pop_front();
  return true;
}

void TaskQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t TaskQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

}  // namespace qmcu::nn::runtime
