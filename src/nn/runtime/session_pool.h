// session_pool.h — the concurrent serving front-end.
//
// Every compiled model in this repo is compile-once / run-many but
// single-flight: one arena, one scratch arena, one weight-panel cache, all
// rebound per run. Serving concurrent traffic therefore needs N pre-built
// execution contexts, not per-request compilation. That is exactly what
// this layer owns:
//
//   InferenceSession — one (model, arena, scratch) triple. The model owns
//     its static tensor arena and its KernelBackend (scratch + panel
//     cache); the session adds request accounting and is the unit of
//     exclusive execution: at most one request runs on a session at a time.
//
//   SessionPool — N sessions plus N serving threads and one blocking
//     request queue. submit() enqueues a request and returns a future;
//     whichever serving thread frees up first pops it and runs it on *its
//     own* session, so a session is only ever driven by one thread (the
//     backend's thread-affinity guard holds by construction) and requests
//     reuse compiled state instead of paying compilation per request.
//     submit_batch() enqueues a whole batch as ONE queue entry — one
//     wakeup instead of batch-size wakeups — and the serving session loops
//     over the batch reusing its bound arena, which is what lifts
//     small-model throughput (ROADMAP "batched submission").
//
// Both are templates over the model type — CompiledModel,
// CompiledQuantModel, the patch models, or any type with
// `Output run(const nn::Tensor&) const`. Construction runs the factory N
// times on the calling thread (compilation + weight prepack happen here,
// before any traffic); destruction drains already-queued requests, then
// joins the serving threads.
//
// A pool can own an ArenaSlab shared by several pools (pass one in, or let
// the pool create its own): factories wire it into their models via
// set_arena_source, so every model leases its run arena for the duration
// of a request and the fleet's arena memory is capped by concurrent
// traffic (max model arena x busy lanes), not by the number of models.
//
// swap_session() hot-swaps one lane's model under live traffic: the
// replacement is built on the calling thread, then installed by the lane's
// own serving thread via a lane-addressed control task (task_queue.h), so
// the lane drains, rebinds between two requests, and resumes — no admitted
// request is dropped and no session is ever touched by two threads.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "nn/check.h"
#include "nn/runtime/arena_slab.h"
#include "nn/runtime/task_queue.h"
#include "nn/tensor.h"

namespace qmcu::nn {

template <class Model>
class InferenceSession {
 public:
  using Output =
      decltype(std::declval<const Model&>().run(std::declval<const Tensor&>()));

  explicit InferenceSession(std::unique_ptr<Model> model)
      : model_(std::move(model)) {
    QMCU_REQUIRE(model_ != nullptr, "session needs a model");
  }

  // Exclusive execution: callers (SessionPool serving threads, or a user
  // managing their own threads) must not run one session concurrently —
  // the backend's affinity guard turns violations into exceptions.
  Output run(const Tensor& input) {
    ++requests_;
    return model_->run(input);
  }

  // Pool-run flavour for models with intra-request parallelism
  // (CompiledPatchModel::run(input, WorkerPool*)): the session's request
  // accounting, the model's parallel path. Only instantiated when called,
  // so plain run(input)-only models cost nothing.
  template <class Pool>
  Output run(const Tensor& input, Pool* pool) {
    ++requests_;
    return model_->run(input, pool);
  }

  // Rebinds this session to a new model. Must only run on the thread that
  // owns the session's execution (the pool routes it there as a
  // lane-addressed control task), so it can never race a run() — the old
  // model is destroyed here, after its last request finished.
  void replace_model(std::unique_ptr<Model> model) {
    QMCU_REQUIRE(model != nullptr, "session needs a model");
    model_ = std::move(model);
  }

  [[nodiscard]] const Model& model() const { return *model_; }
  [[nodiscard]] Model& model() { return *model_; }
  [[nodiscard]] std::uint64_t requests_served() const { return requests_; }

 private:
  std::unique_ptr<Model> model_;
  std::uint64_t requests_ = 0;  // touched only by the serving thread
};

template <class Model>
class SessionPool {
 public:
  using Output = typename InferenceSession<Model>::Output;
  using Factory = std::function<std::unique_ptr<Model>()>;
  // Factory form that receives the pool's slab, for wiring it into each
  // model (model->set_arena_source(slab)) as it is built.
  using SlabFactory =
      std::function<std::unique_ptr<Model>(const std::shared_ptr<ArenaSlab>&)>;
  // Runs on serving thread i before it pops its first request — the
  // serving front-end's hook for pinning each lane to its core-budget
  // slice. Must not throw.
  using LaneStart = std::function<void(std::size_t)>;

  // `slab`: the arena pool this SessionPool's models may lease run arenas
  // from. Defaults to a pool-owned slab; pass a shared one to cap arena
  // memory across several SessionPools serving different models.
  explicit SessionPool(int sessions, const Factory& factory,
                       std::shared_ptr<ArenaSlab> slab = nullptr,
                       LaneStart lane_start = nullptr)
      : slab_(slab ? std::move(slab) : std::make_shared<ArenaSlab>()),
        lane_start_(std::move(lane_start)) {
    QMCU_REQUIRE(sessions >= 1, "session pool needs at least one session");
    sessions_.reserve(static_cast<std::size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      sessions_.push_back(
          std::make_unique<InferenceSession<Model>>(factory()));
    }
    start_serving();
  }

  // Same, with the slab handed to the factory so each model can lease its
  // run arenas from it (model->set_arena_source(slab)).
  SessionPool(int sessions, const SlabFactory& factory,
              std::shared_ptr<ArenaSlab> slab = nullptr,
              LaneStart lane_start = nullptr)
      : slab_(slab ? std::move(slab) : std::make_shared<ArenaSlab>()),
        lane_start_(std::move(lane_start)) {
    QMCU_REQUIRE(sessions >= 1, "session pool needs at least one session");
    sessions_.reserve(static_cast<std::size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      sessions_.push_back(
          std::make_unique<InferenceSession<Model>>(factory(slab_)));
    }
    start_serving();
  }

  ~SessionPool() {
    queue_.shutdown();  // serving threads drain queued requests, then exit
    for (std::thread& t : threads_) t.join();
  }

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  // Enqueues one request; the future resolves with the output (or the
  // exception the model threw). The input is captured by value — the
  // caller's tensor may die before the request runs.
  std::future<Output> submit(Tensor input) {
    auto promise = std::make_shared<std::promise<Output>>();
    std::future<Output> result = promise->get_future();
    queue_.push([this, promise, input = std::move(input)](std::size_t si) {
      try {
        Output out = sessions_[si]->run(input);
        // Count before fulfilling the promise so completed() is already
        // up to date when the submitter's future.get() returns.
        completed_.fetch_add(1, std::memory_order_relaxed);
        promise->set_value(std::move(out));
      } catch (...) {
        promise->set_exception(std::current_exception());
      }
    });
    return result;
  }

  // Enqueues a whole batch as one queue entry — a single wakeup, and the
  // serving session that pops it runs every input back to back on its
  // already-bound arena (no per-item re-dispatch). Futures resolve in
  // batch order as items finish; an item that throws fails only its own
  // future, the rest of the batch still runs.
  std::vector<std::future<Output>> submit_batch(std::vector<Tensor> inputs) {
    std::vector<std::future<Output>> results;
    results.reserve(inputs.size());
    auto promises =
        std::make_shared<std::vector<std::promise<Output>>>(inputs.size());
    for (auto& p : *promises) results.push_back(p.get_future());
    if (inputs.empty()) return results;
    queue_.push([this, promises,
                 inputs = std::move(inputs)](std::size_t si) {
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        try {
          Output out = sessions_[si]->run(inputs[i]);
          completed_.fetch_add(1, std::memory_order_relaxed);
          (*promises)[i].set_value(std::move(out));
        } catch (...) {
          (*promises)[i].set_exception(std::current_exception());
        }
      }
    });
    return results;
  }

  // Synchronous convenience: submit + wait. Unlike calling a model
  // directly, this is safe from any number of caller threads at once.
  Output run(const Tensor& input) { return submit(input).get(); }

  // Raw task entry points for serving front-ends that own their request
  // envelope (deadlines, shed accounting, batch spreading): the task runs
  // on whichever serving thread frees up first and receives that lane's
  // index. The task owns its promise — SessionPool's completed() counter
  // does NOT see these requests. try_submit_raw enforces a bounded queue:
  // false = full (or shut down), the task was dropped and the caller must
  // fail the request itself.
  void submit_raw(runtime::TaskQueue::Task task) {
    queue_.push(std::move(task));
  }
  [[nodiscard]] bool try_submit_raw(runtime::TaskQueue::Task task,
                                    std::size_t max_depth) {
    return queue_.try_push(std::move(task), max_depth);
  }
  // Lane-addressed raw task: runs on lane `lane` specifically, in FIFO
  // order with everything else addressed to that lane. This is what pins a
  // frame stream to one session — per-stream state (retained arenas, diff
  // baselines) is only coherent if every frame of the stream runs on the
  // same lane, in order.
  void submit_raw_to(std::size_t lane, runtime::TaskQueue::Task task) {
    QMCU_REQUIRE(lane < sessions_.size(), "lane out of range");
    queue_.push_to(lane, std::move(task));
  }

  // Lane i's session. Only lane i's serving thread may run() it (sessions
  // are exclusive); other threads may read accounting.
  [[nodiscard]] InferenceSession<Model>& session(std::size_t i) {
    return *sessions_[i];
  }

  // Hot-swaps lane `lane`'s model: builds the replacement HERE (on the
  // calling thread — compilation and prepack never block a serving
  // thread), then routes a lane-addressed rebind through the queue and
  // blocks until the lane has executed it. FIFO queue order gives the
  // drain → rebind → resume contract per lane: every request admitted
  // before the swap is either claimed by another lane or runs on this
  // lane before the rebind; requests admitted after it run on the new
  // model (on this lane). Nothing is dropped. Throws
  // std::future_error(broken_promise) if the pool shuts down first.
  void swap_session(std::size_t lane, const SlabFactory& factory) {
    QMCU_REQUIRE(lane < sessions_.size(), "lane out of range");
    auto fresh = std::make_shared<std::unique_ptr<Model>>(factory(slab_));
    QMCU_REQUIRE(*fresh != nullptr, "swap factory returned no model");
    auto rebound = std::make_shared<std::promise<void>>();
    std::future<void> done = rebound->get_future();
    queue_.push_to(lane, [this, fresh, rebound](std::size_t si) {
      sessions_[si]->replace_model(std::move(*fresh));
      rebound->set_value();
    });
    done.get();
  }

  // The arena slab this pool's models lease from (shared across pools when
  // passed at construction).
  [[nodiscard]] const std::shared_ptr<ArenaSlab>& slab() const {
    return slab_;
  }

  [[nodiscard]] int num_sessions() const {
    return static_cast<int>(sessions_.size());
  }
  // Requests completed successfully across all sessions.
  [[nodiscard]] std::uint64_t completed() const {
    return completed_.load(std::memory_order_relaxed);
  }
  // Requests queued but not yet picked up by a serving thread.
  [[nodiscard]] std::size_t pending() const { return queue_.depth(); }
  // Sessions not currently executing a request (instantaneous; a batch
  // spreader uses it to decide how many chunks are worth splitting off).
  [[nodiscard]] int idle_sessions() const {
    const int busy = busy_.load(std::memory_order_relaxed);
    return std::max(0, num_sessions() - busy);
  }
  // Per-session request counts (read when no traffic is in flight).
  [[nodiscard]] std::vector<std::uint64_t> per_session_requests() const {
    std::vector<std::uint64_t> counts;
    counts.reserve(sessions_.size());
    for (const auto& s : sessions_) counts.push_back(s->requests_served());
    return counts;
  }

 private:
  void start_serving() {
    const int sessions = static_cast<int>(sessions_.size());
    threads_.reserve(static_cast<std::size_t>(sessions));
    for (int i = 0; i < sessions; ++i) {
      threads_.emplace_back([this, i] { serve(static_cast<std::size_t>(i)); });
    }
  }

  void serve(std::size_t session_index) {
    if (lane_start_) lane_start_(session_index);
    runtime::TaskQueue::Task task;
    while (queue_.pop(session_index, task)) {
      busy_.fetch_add(1, std::memory_order_relaxed);
      task(session_index);
      busy_.fetch_sub(1, std::memory_order_relaxed);
    }
  }

  std::shared_ptr<ArenaSlab> slab_;
  LaneStart lane_start_;
  std::vector<std::unique_ptr<InferenceSession<Model>>> sessions_;
  runtime::TaskQueue queue_;
  std::vector<std::thread> threads_;
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<int> busy_{0};
};

}  // namespace qmcu::nn
