// task_queue.h — blocking MPMC queue of serving-lane tasks.
//
// The non-template half of SessionPool: producers (any thread calling
// submit) push closures, consumers (the pool's serving threads) block in
// pop until a task or shutdown arrives. Each task receives the index of
// the serving lane that runs it — that is how a queued request gets bound
// to whichever pre-compiled session frees up first without ever sharing a
// session between threads. shutdown() lets consumers drain what is already
// queued, then releases them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace qmcu::nn::runtime {

class TaskQueue {
 public:
  // Argument: the serving-lane index executing the task.
  using Task = std::function<void(std::size_t)>;

  // Enqueues a task. After shutdown the task is dropped: any promise it
  // owned is destroyed unfulfilled, so the submitter's future.get() throws
  // std::future_error(broken_promise) — a submit/teardown race is loud,
  // not a hang.
  void push(Task task);

  // Bounded-admission push: enqueues only if fewer than `max_depth` tasks
  // are already queued (checked under the queue lock, so concurrent
  // submitters cannot overshoot the bound). Returns false — dropping the
  // task — when the queue is full or shut down; the serving front-end
  // turns that into an explicit load-shed rejection instead of letting a
  // backlog grow without bound.
  bool try_push(Task task, std::size_t max_depth);

  // Blocks until a task is available or the queue is shut down *and*
  // drained. Returns false only in the latter case.
  bool pop(Task& out);

  void shutdown();

  [[nodiscard]] std::size_t depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  bool closed_ = false;
};

}  // namespace qmcu::nn::runtime
