// task_queue.h — blocking MPMC queue of serving-lane tasks.
//
// The non-template half of SessionPool: producers (any thread calling
// submit) push closures, consumers (the pool's serving threads) block in
// pop until a task or shutdown arrives. Each task receives the index of
// the serving lane that runs it — that is how a queued request gets bound
// to whichever pre-compiled session frees up first without ever sharing a
// session between threads. shutdown() lets consumers drain what is already
// queued, then releases them.
//
// Two task classes share the queue in FIFO order:
//
//   * requests (push / try_push) — eligible to every lane; whichever
//     serving thread frees up first takes the oldest one. try_push bounds
//     THIS class only: control tasks never consume admission budget.
//   * control tasks (push_to) — addressed to ONE lane; other lanes skip
//     over them. The model hot-swap rebinds a lane's session through this:
//     the rebind runs on the lane's own serving thread, between requests,
//     after every request queued ahead of it has been taken — exclusive
//     session execution is preserved by construction.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>

namespace qmcu::nn::runtime {

class TaskQueue {
 public:
  // Argument: the serving-lane index executing the task.
  using Task = std::function<void(std::size_t)>;

  // Enqueues a task any lane may run. After shutdown the task is dropped:
  // any promise it owned is destroyed unfulfilled, so the submitter's
  // future.get() throws std::future_error(broken_promise) — a
  // submit/teardown race is loud, not a hang.
  void push(Task task);

  // Bounded-admission push: enqueues only if fewer than `max_depth`
  // requests are already queued (checked under the queue lock, so
  // concurrent submitters cannot overshoot the bound; lane-addressed
  // control tasks do not count). Returns false — dropping the task — when
  // the queue is full or shut down; the serving front-end turns that into
  // an explicit load-shed rejection instead of letting a backlog grow
  // without bound.
  bool try_push(Task task, std::size_t max_depth);

  // Enqueues a control task only lane `lane` may run. FIFO with respect to
  // requests: the lane takes it after every request pushed before it has
  // been claimed (by any lane), and before any request pushed after it.
  void push_to(std::size_t lane, Task task);

  // Blocks until a task eligible to `lane` is available or the queue is
  // shut down *and* holds no task this lane may run. Returns false only in
  // the latter case.
  bool pop(std::size_t lane, Task& out);

  void shutdown();

  // Queued *requests* (control tasks excluded — this is the admission
  // backlog the serving front-end sheds on).
  [[nodiscard]] std::size_t depth() const;

 private:
  struct Entry {
    Task fn;
    bool targeted = false;
    std::size_t lane = 0;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Entry> tasks_;
  std::size_t requests_ = 0;  // untargeted entries currently queued
  bool closed_ = false;
};

}  // namespace qmcu::nn::runtime
