// arena_slab.h — a shared pool of run-arena blocks leased across models.
//
// Every compiled model owns (or leases) one arena sized to its own plan.
// When a serving deployment holds many compiled models — a SessionPool per
// model family, A/B variants, per-resolution builds — the per-model sum is
// wasted memory: at most one request runs per serving lane at a time, so
// only as many arenas are ever live as there are lanes. An ArenaSlab makes
// that sharing concrete: models acquire a lease for the duration of one
// run and release it on return, so the slab's high water is
//
//   max_arena_bytes x concurrent_runs   instead of   sum over models,
//
// and for parallel patch models the leased block covers the per-worker
// slices too (W x slice_stride + shared), i.e. the slab leases worker
// slices across models exactly as ROADMAP's "per-worker arena sharing"
// item asks.
//
// Blocks are recycled best-fit and grow-only: a release returns the block
// to the free list, an acquire reuses the smallest free block that fits or
// allocates a new one. Thread-safe; the lease itself is move-only RAII.
//
// A slab may carry a capacity (bytes it will ever back). Serving
// deployments use it as a hard memory budget: an acquire that cannot be
// satisfied without growing past the capacity throws ArenaSlabExhausted —
// a graceful, catchable error on the requesting lane (its future carries
// it), never a deadlock or a partial lease. Capacity 0 = unbounded.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/check.h"

namespace qmcu::nn {

// Thrown by ArenaSlab::acquire when satisfying the lease would grow the
// slab past its capacity. Distinct from QMCU_REQUIRE misuse errors so
// serving layers can shed the one request instead of treating it as a bug.
class ArenaSlabExhausted : public std::runtime_error {
 public:
  ArenaSlabExhausted(std::int64_t requested, std::int64_t capacity,
                     std::int64_t footprint)
      : std::runtime_error(
            "arena slab exhausted: lease of " + std::to_string(requested) +
            " B would grow footprint " + std::to_string(footprint) +
            " B past capacity " + std::to_string(capacity) + " B") {}
};

class ArenaSlab {
 public:
  ArenaSlab() = default;
  // `capacity_bytes` > 0 bounds the total bytes the slab will ever back;
  // 0 keeps the grow-only unbounded behaviour.
  explicit ArenaSlab(std::int64_t capacity_bytes)
      : capacity_(capacity_bytes) {
    QMCU_REQUIRE(capacity_bytes >= 0, "slab capacity must be non-negative");
  }
  ArenaSlab(const ArenaSlab&) = delete;
  ArenaSlab& operator=(const ArenaSlab&) = delete;

  // RAII over one leased block; empty leases are valid and inert. Moving
  // transfers the block; destruction (or release()) returns it to the
  // slab. A lease must not outlive its slab.
  class Lease {
   public:
    Lease() = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : slab_(other.slab_), block_(other.block_), bytes_(other.bytes_) {
      other.slab_ = nullptr;
      other.block_ = -1;
      other.bytes_ = {};
    }
    Lease& operator=(Lease&& other) noexcept {
      if (this != &other) {
        release();
        slab_ = other.slab_;
        block_ = other.block_;
        bytes_ = other.bytes_;
        other.slab_ = nullptr;
        other.block_ = -1;
        other.bytes_ = {};
      }
      return *this;
    }
    ~Lease() { release(); }

    [[nodiscard]] std::span<std::uint8_t> bytes() const { return bytes_; }
    [[nodiscard]] bool empty() const { return slab_ == nullptr; }
    void release() {
      if (slab_ != nullptr) slab_->release_block(block_);
      slab_ = nullptr;
      block_ = -1;
      bytes_ = {};
    }

   private:
    friend class ArenaSlab;
    Lease(ArenaSlab* slab, int block, std::span<std::uint8_t> bytes)
        : slab_(slab), block_(block), bytes_(bytes) {}
    ArenaSlab* slab_ = nullptr;
    int block_ = -1;
    std::span<std::uint8_t> bytes_;
  };

  // Leases a block of at least `bytes` bytes (16-byte aligned storage, the
  // arena planners' alignment): the smallest free block that fits, or a
  // fresh allocation when none does.
  [[nodiscard]] Lease acquire(std::int64_t bytes) {
    QMCU_REQUIRE(bytes >= 0, "lease size must be non-negative");
    std::lock_guard<std::mutex> lock(mu_);
    int best = -1;
    for (int i = 0; i < static_cast<int>(blocks_.size()); ++i) {
      const Block& b = blocks_[static_cast<std::size_t>(i)];
      if (b.in_use || b.size < bytes) continue;
      if (best < 0 || b.size < blocks_[static_cast<std::size_t>(best)].size) {
        best = i;
      }
    }
    if (best < 0) {
      if (capacity_ > 0) {
        std::int64_t footprint = 0;
        for (const Block& b : blocks_) footprint += b.size;
        if (footprint + bytes > capacity_) {
          // No free block fits and growing would bust the budget: fail
          // this one lease loudly. The lock releases on unwind, leased
          // blocks are untouched, and a later release makes room — the
          // canonical recovery is "shed the request, retry later".
          throw ArenaSlabExhausted(bytes, capacity_, footprint);
        }
      }
      blocks_.push_back(Block{
          std::make_unique<std::uint8_t[]>(static_cast<std::size_t>(bytes)),
          bytes, false});
      best = static_cast<int>(blocks_.size()) - 1;
    }
    Block& b = blocks_[static_cast<std::size_t>(best)];
    b.in_use = true;
    leased_ += b.size;
    high_water_ = std::max(high_water_, leased_);
    return Lease(this, best,
                 std::span<std::uint8_t>(b.data.get(),
                                         static_cast<std::size_t>(b.size)));
  }

  // Total bytes backing the slab (free + leased blocks).
  [[nodiscard]] std::int64_t footprint_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::int64_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  // Largest concurrently-leased byte count the slab ever saw — the number
  // the "max x lanes vs per-model sum" serving-memory math is about.
  [[nodiscard]] std::int64_t high_water_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }
  [[nodiscard]] int outstanding_leases() const {
    std::lock_guard<std::mutex> lock(mu_);
    int n = 0;
    for (const Block& b : blocks_) n += b.in_use ? 1 : 0;
    return n;
  }
  // The configured byte budget (0 = unbounded).
  [[nodiscard]] std::int64_t capacity_bytes() const { return capacity_; }

 private:
  friend class Lease;
  struct Block {
    std::unique_ptr<std::uint8_t[]> data;
    std::int64_t size = 0;
    bool in_use = false;
  };

  void release_block(int index) {
    std::lock_guard<std::mutex> lock(mu_);
    Block& b = blocks_[static_cast<std::size_t>(index)];
    QMCU_ENSURE(b.in_use, "double release of a slab block");
    b.in_use = false;
    leased_ -= b.size;
  }

  mutable std::mutex mu_;
  std::vector<Block> blocks_;
  std::int64_t capacity_ = 0;  // 0 = unbounded
  std::int64_t leased_ = 0;
  std::int64_t high_water_ = 0;
};

}  // namespace qmcu::nn
