// plan_artifact.h — ahead-of-time compiled plan artifacts ("QMCP").
//
// A CompiledQuantModel performs real work at construction: weight
// quantization, bias rescaling, k-major panel packing, LUT recode tables,
// zero-point offset rows, and the arena placement pass. compile_to_artifact
// runs all of it once, offline, and serializes the results into a single
// binary file; load_compiled mmaps that file read-only (MAP_SHARED) and
// constructs a model whose weight, panel and table storage is *span views
// into the mapping* — no deserialization copy, and every process that maps
// the same artifact shares one physical copy of the weights, so a serving
// fleet's RSS grows by ~one model, not N.
//
// Layout (all integers little-endian; sections 64-byte aligned):
//
//   header      "QMCP" | version | endian sentinel | model kind |
//               kernel fingerprint | section count | file size
//   section     { tag, offset, size, crc32 } per section
//   table
//   sections    GRPH  framed topology-only graph stream (serialize.h v2)
//               QCFG  framed ActivationQuantConfig stream (quant kinds)
//               LIDX  per-MAC-layer index: geometry + blob offsets
//               PLAN  the construction-time ArenaPlan
//               FIDX  float parameter index (Float kind)
//               BLOB  all bulk data: quantized weights, int32 biases,
//                     k-major panels, column sums, offset rows, LUT
//                     tables, float parameters — each blob 64-aligned
//               (+ caller sections, e.g. the patch artifact's PTCH/BBIA)
//
// Every section carries a CRC32 verified at map time before any byte is
// interpreted, so truncated or bit-flipped artifacts fail loudly.
//
// The header records the *kernel generation* the artifact was baked under
// (scalar / pair-madd / dot-product GEMM and which LUT widths were
// planned). Panels, column sums and LUT tables are generation-independent
// (pure weight recodes); only the per-column offset rows depend on the
// activation zero-point bias of the dot-product generations. On a
// fingerprint mismatch the loader re-derives just those rows into private
// memory — an artifact baked on an AVX-VNNI host loads bit-exactly under
// QMCU_FORCE_NO_DOT, on NEON, or on plain AVX2.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nn/compiled_model.h"
#include "nn/graph.h"

namespace qmcu::nn {

enum class ArtifactModelKind : std::uint32_t {
  Float = 0,
  Quant = 1,
  PatchQuant = 2,
};

// The kernel-generation fingerprint baked into an artifact header.
struct KernelFingerprint {
  std::uint32_t gemm_generation = 0;  // 0 scalar, 1 pair-madd, 2 dot-product
  std::int32_t gemm_a_bias = 0;       // activation bias of gemm_block_i8
  std::uint32_t lut_mask = 0;         // bit0: 2-bit planned, bit1: 4-bit

  // The generation the current process would dispatch (honours the live
  // QMCU_FORCE_* environment).
  static KernelFingerprint current();
  bool operator==(const KernelFingerprint&) const = default;
};

constexpr std::uint32_t artifact_tag(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

// Extra named section appended by a higher layer (the patch artifact
// writer): raw payload bytes, checksummed and aligned like built-ins.
struct ArtifactSection {
  std::uint32_t tag = 0;
  std::string bytes;
};

// --- writers ---------------------------------------------------------------

// Float model: topology + float parameters (zero-copy at load) + plan.
void compile_to_artifact(const Graph& g, const std::string& path);

// Quantized model: everything a CompiledQuantModel computes at
// construction. `extra` appends caller sections (the patch writer's).
void compile_to_artifact(const Graph& g, const ActivationQuantConfig& cfg,
                         const std::string& path,
                         std::span<const ArtifactSection> extra = {},
                         ArtifactModelKind kind = ArtifactModelKind::Quant);

// --- loader ----------------------------------------------------------------

// A mapped artifact. Owns the mmap; every model constructed from it views
// the mapping, so the artifact must outlive the models (load_compiled
// returns both under shared ownership).
class PlanArtifact {
 public:
  static std::shared_ptr<const PlanArtifact> map(const std::string& path);

  ~PlanArtifact();
  PlanArtifact(const PlanArtifact&) = delete;
  PlanArtifact& operator=(const PlanArtifact&) = delete;

  [[nodiscard]] ArtifactModelKind kind() const { return kind_; }
  [[nodiscard]] const KernelFingerprint& fingerprint() const {
    return fingerprint_;
  }
  // False when the artifact was baked under a different kernel generation
  // than this process dispatches (the loader then re-derived offset rows).
  [[nodiscard]] bool fingerprint_matches() const {
    return fingerprint_ == KernelFingerprint::current();
  }
  [[nodiscard]] std::size_t mapped_bytes() const { return mapped_size_; }

  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const ActivationQuantConfig& config() const;
  [[nodiscard]] const std::shared_ptr<const QuantizedParameters>&
  parameters() const {
    return params_;
  }
  [[nodiscard]] const std::shared_ptr<const PrecompiledBundle>& bundle()
      const {
    return bundle_;
  }
  [[nodiscard]] const ArenaPlan& arena_plan() const { return plan_; }

  // Raw payload of a caller section (empty span when absent) — the patch
  // artifact loader parses its own sections through this.
  [[nodiscard]] std::span<const std::uint8_t> section(
      std::uint32_t tag) const;

  // Model factories. The caller must keep this artifact alive for the
  // model's lifetime (the models view the mapping).
  [[nodiscard]] std::unique_ptr<CompiledModel> make_float_model(
      ops::KernelTier tier = ops::KernelTier::Simd) const;
  [[nodiscard]] std::unique_ptr<CompiledQuantModel> make_quant_model(
      ops::KernelTier tier = ops::KernelTier::Simd) const;

 private:
  PlanArtifact() = default;

  void* mapped_ = nullptr;
  std::size_t mapped_size_ = 0;
  ArtifactModelKind kind_ = ArtifactModelKind::Quant;
  KernelFingerprint fingerprint_;
  struct Section {
    std::uint32_t tag = 0;
    std::span<const std::uint8_t> bytes;
  };
  std::vector<Section> sections_;
  std::optional<Graph> graph_;
  std::optional<ActivationQuantConfig> config_;
  std::shared_ptr<const QuantizedParameters> params_;
  std::shared_ptr<const PrecompiledBundle> bundle_;
  ArenaPlan plan_;
  // Offset rows recomputed at map time when the baked kernel generation
  // differs from the running one (the only generation-dependent data).
  std::vector<std::vector<std::int32_t>> rederived_offsets_;
};

// Artifact + model under shared ownership: the mapping outlives every view.
struct LoadedModel {
  std::shared_ptr<const PlanArtifact> artifact;
  std::unique_ptr<CompiledModel> float_model;     // Float kind
  std::unique_ptr<CompiledQuantModel> model;      // Quant kind

  [[nodiscard]] ArtifactModelKind kind() const { return artifact->kind(); }
};

// Maps `path` and constructs the model it describes (Float or Quant kind;
// PatchQuant artifacts load through patch::load_compiled_patch).
LoadedModel load_compiled(const std::string& path,
                          ops::KernelTier tier = ops::KernelTier::Simd);

// --- wire helpers (shared with the patch artifact writer/loader) -----------

namespace artifact_detail {

class ByteWriter {
 public:
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);

  std::string out;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  [[nodiscard]] bool done() const { return pos_ == bytes_.size(); }

 private:
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace artifact_detail

}  // namespace qmcu::nn
