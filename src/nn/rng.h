// rng.h — deterministic, platform-independent random stream.
//
// SplitMix64 (public domain, Sebastiano Vigna) + Box–Muller. Used instead
// of <random> distributions because std::normal_distribution's output is
// implementation-defined and this project promises bit-identical synthetic
// models and datasets across toolchains.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace qmcu::nn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    state_ += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1) with 53 mantissa bits.
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  // Standard normal via Box–Muller.
  double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    const double v = uniform();
    const double r = std::sqrt(-2.0 * std::log(u));
    const double theta = 2.0 * std::numbers::pi * v;
    spare_ = r * std::sin(theta);
    have_spare_ = true;
    return r * std::cos(theta);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

 private:
  std::uint64_t state_;
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace qmcu::nn
