// shape.h — spatial tensor shapes (batch is always 1 on an MCU).
#pragma once

#include <cstdint>
#include <ostream>

#include "nn/check.h"

namespace qmcu::nn {

// Height x Width x Channels, NHWC layout with N == 1. A rank-1 tensor
// (e.g. the output of a fully-connected head) is represented as 1 x 1 x C.
struct TensorShape {
  int h = 0;
  int w = 0;
  int c = 0;

  constexpr TensorShape() = default;
  constexpr TensorShape(int h_, int w_, int c_) : h(h_), w(w_), c(c_) {}

  [[nodiscard]] constexpr std::int64_t elements() const {
    return static_cast<std::int64_t>(h) * w * c;
  }

  // Storage bytes at `bits` per element, rounded up to whole bytes the way a
  // bit-packed buffer would be allocated.
  [[nodiscard]] constexpr std::int64_t bytes(int bits) const {
    return (elements() * bits + 7) / 8;
  }

  [[nodiscard]] constexpr bool valid() const { return h > 0 && w > 0 && c > 0; }

  friend constexpr bool operator==(const TensorShape&,
                                   const TensorShape&) = default;
};

inline std::ostream& operator<<(std::ostream& os, const TensorShape& s) {
  return os << s.h << 'x' << s.w << 'x' << s.c;
}

// Row-major NHWC flat index.
constexpr std::int64_t flat_index(const TensorShape& s, int y, int x, int ch) {
  return (static_cast<std::int64_t>(y) * s.w + x) * s.c + ch;
}

}  // namespace qmcu::nn
