// graph.h — a small DAG IR for convolutional networks.
//
// Layers are appended in topological order (an input must already exist when
// it is referenced), which keeps execution, liveness analysis and
// receptive-field propagation simple and allocation-free. Shapes are
// inferred eagerly on insertion so misconfigured layers fail fast at graph
// construction time rather than mid-inference.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "nn/check.h"
#include "nn/shape.h"
#include "nn/tensor.h"

namespace qmcu::nn {

enum class OpKind {
  Input,
  Conv2D,
  DepthwiseConv2D,
  FullyConnected,
  MaxPool,
  AvgPool,
  GlobalAvgPool,
  Add,      // element-wise residual add
  Concat,   // channel concatenation
  Softmax,
};

// Activation fused into the producing layer (TFLite convention).
enum class Activation { None, ReLU, ReLU6 };

constexpr std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::Input: return "input";
    case OpKind::Conv2D: return "conv2d";
    case OpKind::DepthwiseConv2D: return "dwconv2d";
    case OpKind::FullyConnected: return "fc";
    case OpKind::MaxPool: return "maxpool";
    case OpKind::AvgPool: return "avgpool";
    case OpKind::GlobalAvgPool: return "gavgpool";
    case OpKind::Add: return "add";
    case OpKind::Concat: return "concat";
    case OpKind::Softmax: return "softmax";
  }
  return "?";
}

// True for layers whose cost is dominated by multiply-accumulates; these are
// the layers that contribute BitOPs (Eq. 2 of the paper).
constexpr bool is_mac_op(OpKind k) {
  return k == OpKind::Conv2D || k == OpKind::DepthwiseConv2D ||
         k == OpKind::FullyConnected;
}

// True for layers with a spatial kernel window (participate in receptive
// field propagation).
constexpr bool is_windowed_op(OpKind k) {
  return k == OpKind::Conv2D || k == OpKind::DepthwiseConv2D ||
         k == OpKind::MaxPool || k == OpKind::AvgPool;
}

// True for pooling layers, which never requantize: their output carries the
// producer's QuantParams (TFLite contract), a rule the executors, the
// quantized-parameter builder and the compiled models all share.
constexpr bool is_pool_op(OpKind k) {
  return k == OpKind::MaxPool || k == OpKind::AvgPool ||
         k == OpKind::GlobalAvgPool;
}

struct Layer {
  OpKind kind = OpKind::Input;
  std::string name;
  std::vector<int> inputs;  // producer layer ids, already in the graph

  // Spatial window parameters (conv / pool); identity for other ops.
  int kernel_h = 1, kernel_w = 1;
  int stride_h = 1, stride_w = 1;
  int pad_h = 0, pad_w = 0;  // symmetric zero padding

  int out_channels = 0;  // Conv2D / FullyConnected
  Activation act = Activation::None;
  bool has_bias = true;
};

class Graph {
 public:
  explicit Graph(std::string name) : name_(std::move(name)) {}

  // --- construction -------------------------------------------------------
  int add_input(TensorShape shape);
  int add_conv2d(int input, int out_channels, int kernel, int stride, int pad,
                 Activation act, std::string name = "");
  int add_depthwise_conv2d(int input, int kernel, int stride, int pad,
                           Activation act, std::string name = "");
  int add_fully_connected(int input, int out_features, Activation act,
                          std::string name = "");
  int add_max_pool(int input, int kernel, int stride, int pad,
                   std::string name = "");
  int add_avg_pool(int input, int kernel, int stride, int pad,
                   std::string name = "");
  int add_global_avg_pool(int input, std::string name = "");
  int add_residual_add(int lhs, int rhs, Activation act,
                       std::string name = "");
  int add_concat(std::span<const int> inputs, std::string name = "");
  int add_softmax(int input, std::string name = "");

  // Attach trained (or synthetic) parameters to a MAC layer. Layouts:
  //   Conv2D          [out_c][kh][kw][in_c]
  //   DepthwiseConv2D [kh][kw][c]
  //   FullyConnected  [out][in]  (input flattened NHWC row-major)
  void set_parameters(int id, std::vector<float> weights,
                      std::vector<float> bias);

  // Attach parameters as *views* into caller-owned storage (the plan-
  // artifact loader points these straight into a read-only mmap, so a fleet
  // of processes shares one physical copy). Same layout and validation as
  // set_parameters; the backing memory must outlive the graph. A view takes
  // precedence over owned parameters for the same layer.
  void set_parameter_views(int id, std::span<const float> weights,
                           std::span<const float> bias);

  // --- inspection ---------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] int size() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const Layer& layer(int id) const;
  [[nodiscard]] const TensorShape& shape(int id) const;
  [[nodiscard]] int output() const;
  [[nodiscard]] std::vector<int> inputs() const;  // all Input layer ids

  // Layers that read the output of `id` (computed once, cached).
  [[nodiscard]] const std::vector<int>& consumers(int id) const;

  [[nodiscard]] std::span<const float> weights(int id) const;
  [[nodiscard]] std::span<const float> bias(int id) const;
  [[nodiscard]] bool has_parameters(int id) const;

  // Expected weight element count for a MAC layer (0 otherwise).
  [[nodiscard]] std::int64_t weight_count(int id) const;

  // Multiply-accumulate count of layer `id` (0 for non-MAC layers).
  [[nodiscard]] std::int64_t macs(int id) const;
  [[nodiscard]] std::int64_t total_macs() const;

  // Per-element (non-MAC) arithmetic ops of layer `id`: pooling window
  // reductions, residual adds, softmax exponentials.
  [[nodiscard]] std::int64_t element_ops(int id) const;

 private:
  int append(Layer layer, TensorShape out_shape);
  [[nodiscard]] TensorShape windowed_out_shape(const TensorShape& in,
                                               const Layer& l) const;

  std::string name_;
  std::vector<Layer> layers_;
  std::vector<TensorShape> shapes_;
  std::vector<std::vector<float>> weights_;
  std::vector<std::vector<float>> biases_;
  // Non-owning parameter views (set_parameter_views); lazily sized, checked
  // before the owned vectors.
  std::vector<std::span<const float>> weight_views_;
  std::vector<std::span<const float>> bias_views_;
  mutable std::vector<std::vector<int>> consumers_;  // lazily built cache
  mutable bool consumers_valid_ = false;
};

}  // namespace qmcu::nn
