#include "nn/compiled_model.h"

#include <cstring>

#include "nn/executor.h"
#include "nn/ops/im2col.h"
#include "nn/ops/lut/lut_kernels.h"

namespace qmcu::nn {

// Layer-based arena requests: layer i's (unpacked, host-execution) feature
// map is live from its producing step through its last consumer.
ArenaPlan plan_execution_arena(const Graph& g, std::int64_t elem_bytes) {
  std::vector<ArenaRequest> requests(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) {
    requests[static_cast<std::size_t>(i)] = {
        g.shape(i).elements() * elem_bytes, i, last_use_step(g, i)};
  }
  return ArenaPlanner().plan(requests);
}

namespace {

void prepack_conv_panels(const Graph& g, const QuantizedParameters& params,
                         std::span<const QuantParams> effective,
                         ops::KernelBackend& backend) {
  // Every non-Reference tier runs the im2col + panel GEMM path. Gate on
  // the quantized params (not the graph): the artifact path loads a
  // topology-only graph, but its params views still identify every MAC
  // layer — and an adopted panel makes the prepack a no-op anyway.
  if (backend.tier() == ops::KernelTier::Reference) return;
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    if (params.weights[static_cast<std::size_t>(id)].data.empty()) continue;
    if (l.kind == OpKind::Conv2D) {
      const int k = static_cast<int>(
          ops::im2col_row_elements(g.shape(l.inputs[0]), l));
      const auto& w = params.weights[static_cast<std::size_t>(id)];
      backend.prepack(w.data, l.out_channels, k);
      // Sub-byte inputs may take the LUT path: bake its weight recode too,
      // so the first inference pays no table construction either. Only
      // tables the current force mode can actually run are baked — 4-bit
      // tables cost 32*n*k bytes and only run under QMCU_FORCE_LUT.
      const int in_bits =
          effective[static_cast<std::size_t>(l.inputs[0])].bits;
      if (ops::lut::lut_planned(in_bits)) {
        backend.prepack_lut(w.data, l.out_channels, k, in_bits);
      }
    } else if (l.kind == OpKind::FullyConnected) {
      const auto& w = params.weights[static_cast<std::size_t>(id)];
      const int k = static_cast<int>(g.shape(l.inputs[0]).elements());
      // fc runs the same k-major panel GEMM as conv since the microkernel
      // rewrite; bake its panel so the first inference pays no repack.
      backend.prepack(w.data, l.out_channels, k);
      const int in_bits =
          effective[static_cast<std::size_t>(l.inputs[0])].bits;
      if (ops::lut::lut_planned(in_bits)) {
        backend.prepack_lut(w.data, l.out_channels, k, in_bits);
      }
    }
  }
}

}  // namespace

void PrecompiledBundle::apply(ops::KernelBackend& backend) const {
  for (const PanelEntry& p : panels) {
    backend.adopt_panel(p.key, p.bt, p.wsum);
  }
  for (const LutEntry& l : luts) {
    backend.adopt_lut_panel(l.key, l.bits, l.tables, l.wsum);
  }
  for (const OffsetEntry& o : offsets) {
    backend.register_offset_row(o.key, o.a_zp, o.offset);
  }
}

void check_arena(std::span<const std::uint8_t> arena, std::int64_t need,
                 std::size_t alignment) {
  QMCU_REQUIRE(static_cast<std::int64_t>(arena.size()) >= need,
               "arena smaller than the planned peak");
  QMCU_REQUIRE(reinterpret_cast<std::uintptr_t>(arena.data()) % alignment == 0,
               "arena base pointer is insufficiently aligned");
}

std::vector<QuantParams> effective_output_params(
    const Graph& g, const ActivationQuantConfig& cfg) {
  QMCU_REQUIRE(static_cast<int>(cfg.params.size()) == g.size(),
               "quant config must cover every layer");
  std::vector<QuantParams> effective;
  effective.reserve(cfg.params.size());
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    effective.push_back(
        is_pool_op(l.kind)
            ? effective[static_cast<std::size_t>(l.inputs[0])]
            : cfg.params[static_cast<std::size_t>(id)]);
  }
  return effective;
}

// --- float -----------------------------------------------------------------

CompiledModel::CompiledModel(const Graph& g, ops::KernelTier tier)
    : graph_(&g),
      plan_(plan_execution_arena(g, static_cast<std::int64_t>(sizeof(float)))),
      backend_(tier) {
  QMCU_REQUIRE(g.inputs().size() == 1, "compiled model expects one input");
}

CompiledModel::CompiledModel(const Graph& g, ArenaPlan plan,
                             ops::KernelTier tier)
    : graph_(&g), plan_(std::move(plan)), backend_(tier) {
  QMCU_REQUIRE(g.inputs().size() == 1, "compiled model expects one input");
  QMCU_REQUIRE(static_cast<int>(plan_.slots.size()) == g.size(),
               "arena plan does not cover every layer");
}

Tensor CompiledModel::run(const Tensor& input) const {
  if (arena_source_ != nullptr) {
    // Leased for exactly this run; the returned tensor deep-copies out of
    // the arena before the lease releases the block.
    const ArenaSlab::Lease lease = arena_source_->acquire(plan_.peak_bytes);
    return run(input, lease.bytes());
  }
  if (static_cast<std::int64_t>(arena_.size()) < plan_.peak_bytes) {
    arena_.resize(static_cast<std::size_t>(plan_.peak_bytes));
  }
  return run(input, arena_);
}

Tensor CompiledModel::run(const Tensor& input,
                          std::span<std::uint8_t> arena) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  check_arena(arena, plan_.peak_bytes, alignof(float));
  // Compiled runs are per-run thread-affine: a session pool may serve this
  // model from a different thread than the one that compiled it.
  backend_.rebind_thread();

  memo_.resize(static_cast<std::size_t>(g.size()));
  measured_ = 0;
  for (int id = 0; id < g.size(); ++id) {
    const ArenaSlot& slot = plan_.slots[static_cast<std::size_t>(id)];
    const std::int64_t n = g.shape(id).elements();
    auto* base = reinterpret_cast<float*>(arena.data() + slot.offset);
    memo_[static_cast<std::size_t>(id)] =
        Tensor(g.shape(id), std::span<float>(base, static_cast<std::size_t>(n)));
    measured_ = std::max(
        measured_,
        slot.offset + n * static_cast<std::int64_t>(sizeof(float)));
    Tensor& out = memo_[static_cast<std::size_t>(id)];
    if (g.layer(id).kind == OpKind::Input) {
      std::memcpy(out.data().data(), input.data().data(),
                  static_cast<std::size_t>(n) * sizeof(float));
    } else {
      run_layer_f32_into(g, id, memo_, backend_, out);
    }
  }
  // Copying the borrowed view materialises an owning tensor for the caller.
  return memo_[static_cast<std::size_t>(g.output())];
}

// --- quantized -------------------------------------------------------------

CompiledQuantModel::CompiledQuantModel(
    const Graph& g, ActivationQuantConfig cfg, ops::KernelTier tier,
    std::shared_ptr<const QuantizedParameters> params)
    : graph_(&g),
      cfg_(std::move(cfg)),
      effective_(effective_output_params(g, cfg_)),
      params_(params ? std::move(params)
                     : QuantizedParameters::build_shared(g, cfg_)),
      plan_(plan_execution_arena(g, 1)),
      backend_(tier) {
  QMCU_REQUIRE(g.inputs().size() == 1, "compiled model expects one input");
  prepack_conv_panels(g, *params_, effective_, backend_);
}

CompiledQuantModel::CompiledQuantModel(
    const Graph& g, ActivationQuantConfig cfg,
    std::shared_ptr<const QuantizedParameters> params, ArenaPlan plan,
    std::shared_ptr<const PrecompiledBundle> bundle, ops::KernelTier tier)
    : graph_(&g),
      cfg_(std::move(cfg)),
      effective_(effective_output_params(g, cfg_)),
      params_(std::move(params)),
      bundle_(std::move(bundle)),
      plan_(std::move(plan)),
      backend_(tier) {
  QMCU_REQUIRE(g.inputs().size() == 1, "compiled model expects one input");
  QMCU_REQUIRE(params_ != nullptr, "artifact path requires prebuilt params");
  QMCU_REQUIRE(static_cast<int>(plan_.slots.size()) == g.size(),
               "arena plan does not cover every layer");
  if (bundle_ != nullptr) bundle_->apply(backend_);
  // With an adopted bundle every panel the model needs is already resident;
  // this only builds tables the artifact's kernel generation did not bake
  // (e.g. a LUT width that only the current force mode enables).
  prepack_conv_panels(g, *params_, effective_, backend_);
}

QTensor CompiledQuantModel::run(const Tensor& input) const {
  if (arena_source_ != nullptr) {
    const ArenaSlab::Lease lease = arena_source_->acquire(plan_.peak_bytes);
    return run(input, lease.bytes());
  }
  if (static_cast<std::int64_t>(arena_.size()) < plan_.peak_bytes) {
    arena_.resize(static_cast<std::size_t>(plan_.peak_bytes));
  }
  return run(input, arena_);
}

QTensor CompiledQuantModel::run(const Tensor& input,
                                std::span<std::uint8_t> arena) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  check_arena(arena, plan_.peak_bytes, 1);
  // Per-run thread affinity (see CompiledModel::run).
  backend_.rebind_thread();

  memo_.resize(static_cast<std::size_t>(g.size()));
  measured_ = 0;
  for (int id = 0; id < g.size(); ++id) {
    const ArenaSlot& slot = plan_.slots[static_cast<std::size_t>(id)];
    const std::int64_t n = g.shape(id).elements();
    auto* base = reinterpret_cast<std::int8_t*>(arena.data() + slot.offset);
    memo_[static_cast<std::size_t>(id)] = QTensor(
        g.shape(id), effective_[static_cast<std::size_t>(id)],
        std::span<std::int8_t>(base, static_cast<std::size_t>(n)));
    measured_ = std::max(measured_, slot.offset + n);
    QTensor& out = memo_[static_cast<std::size_t>(id)];
    if (g.layer(id).kind == OpKind::Input) {
      quantize_into(input, out);
    } else {
      run_layer_q_into(g, id, memo_, *params_, backend_, out);
    }
  }
  return memo_[static_cast<std::size_t>(g.output())];
}

}  // namespace qmcu::nn
