// serialize.h — binary model (de)serialization.
//
// Format "QMCU" v2, little-endian, self-contained: graph topology, layer
// geometry, float parameters, and optionally an ActivationQuantConfig (the
// deployment package a converter would hand to the device runtime). Each
// stream frames its payload with an explicit byte count, an endianness
// sentinel, and a trailing CRC32, so truncated or bit-flipped files are
// rejected before any payload byte is interpreted. Loading then validates
// structural invariants through the regular Graph construction API, so a
// corrupted file fails loudly instead of producing a malformed graph.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/executor.h"
#include "nn/graph.h"

namespace qmcu::nn {

// --- whole-model files -----------------------------------------------------
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

// --- stream variants (testable without touching the filesystem) ------------
// `include_parameters = false` writes every layer parameterless (topology
// and geometry only) — the plan-artifact writer uses it because weights
// travel in their own zero-copy sections. read_graph handles both forms.
void write_graph(const Graph& g, std::ostream& os,
                 bool include_parameters = true);
Graph read_graph(std::istream& is);

// --- quantization configs ----------------------------------------------------
void save_quant_config(const ActivationQuantConfig& cfg,
                       const std::string& path);
ActivationQuantConfig load_quant_config(const std::string& path);
void write_quant_config(const ActivationQuantConfig& cfg, std::ostream& os);
ActivationQuantConfig read_quant_config(std::istream& is);

}  // namespace qmcu::nn
