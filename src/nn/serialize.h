// serialize.h — binary model (de)serialization.
//
// Format "QMCU" v1, little-endian, self-contained: graph topology, layer
// geometry, float parameters, and optionally an ActivationQuantConfig (the
// deployment package a converter would hand to the device runtime).
// Loading validates magic, version, and structural invariants through the
// regular Graph construction API, so a corrupted file fails loudly instead
// of producing a malformed graph.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/executor.h"
#include "nn/graph.h"

namespace qmcu::nn {

// --- whole-model files -----------------------------------------------------
void save_graph(const Graph& g, const std::string& path);
Graph load_graph(const std::string& path);

// --- stream variants (testable without touching the filesystem) ------------
void write_graph(const Graph& g, std::ostream& os);
Graph read_graph(std::istream& is);

// --- quantization configs ----------------------------------------------------
void save_quant_config(const ActivationQuantConfig& cfg,
                       const std::string& path);
ActivationQuantConfig load_quant_config(const std::string& path);
void write_quant_config(const ActivationQuantConfig& cfg, std::ostream& os);
ActivationQuantConfig read_quant_config(std::istream& is);

}  // namespace qmcu::nn
