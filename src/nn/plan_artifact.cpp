#include "nn/plan_artifact.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "nn/checksum.h"
#include "nn/ops/gemm_int8.h"
#include "nn/ops/im2col.h"
#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/simd/simd_kernels.h"
#include "nn/serialize.h"

namespace qmcu::nn {

namespace artifact_detail {

void ByteWriter::f32(float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  u32(bits);
}

std::uint32_t ByteReader::u32() {
  QMCU_REQUIRE(pos_ + 4 <= bytes_.size(), "truncated artifact section");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  QMCU_REQUIRE(pos_ + 8 <= bytes_.size(), "truncated artifact section");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

}  // namespace artifact_detail

using artifact_detail::ByteReader;
using artifact_detail::ByteWriter;

namespace {

constexpr char kArtifactMagic[4] = {'Q', 'M', 'C', 'P'};
constexpr std::uint32_t kArtifactVersion = 1;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;
constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kSectionEntryBytes = 32;
constexpr std::size_t kBlobAlign = 64;

constexpr std::uint32_t kTagGraph = artifact_tag('G', 'R', 'P', 'H');
constexpr std::uint32_t kTagQuantConfig = artifact_tag('Q', 'C', 'F', 'G');
constexpr std::uint32_t kTagLayerIndex = artifact_tag('L', 'I', 'D', 'X');
constexpr std::uint32_t kTagArenaPlan = artifact_tag('P', 'L', 'A', 'N');
constexpr std::uint32_t kTagFloatIndex = artifact_tag('F', 'I', 'D', 'X');
constexpr std::uint32_t kTagBlob = artifact_tag('B', 'L', 'O', 'B');

// Per-MAC-layer LIDX record flags.
constexpr std::uint32_t kLayerHasPanel = 1u << 0;  // Conv2D / FullyConnected
constexpr std::uint32_t kLayerHasLut2 = 1u << 1;
constexpr std::uint32_t kLayerHasLut4 = 1u << 2;

// Bulk-data region under construction: every blob 64-aligned so mapped
// pointers carry the alignment of the page-aligned mmap base. Offsets are
// relative to the BLOB section payload start (the section itself is
// 64-aligned in the file).
class BlobBuilder {
 public:
  std::uint64_t add(const void* p, std::size_t bytes) {
    data_.resize((data_.size() + kBlobAlign - 1) / kBlobAlign * kBlobAlign,
                 '\0');
    const std::uint64_t off = data_.size();
    data_.append(static_cast<const char*>(p), bytes);
    return off;
  }
  [[nodiscard]] std::string take() { return std::move(data_); }

 private:
  std::string data_;
};

struct SectionOut {
  std::uint32_t tag = 0;
  std::string payload;
};

void write_u32_at(std::string& buf, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void write_u64_at(std::string& buf, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf[pos + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void write_artifact_file(const std::string& path, ArtifactModelKind kind,
                         const KernelFingerprint& fp,
                         std::span<const SectionOut> sections) {
  std::string file(kHeaderBytes + sections.size() * kSectionEntryBytes, '\0');

  struct Placed {
    std::uint64_t offset = 0;
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
  };
  std::vector<Placed> placed(sections.size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    file.resize((file.size() + kBlobAlign - 1) / kBlobAlign * kBlobAlign,
                '\0');
    placed[i].offset = file.size();
    placed[i].size = sections[i].payload.size();
    placed[i].crc =
        crc32(sections[i].payload.data(), sections[i].payload.size());
    file.append(sections[i].payload);
  }

  std::memcpy(file.data(), kArtifactMagic, 4);
  write_u32_at(file, 4, kArtifactVersion);
  write_u32_at(file, 8, kEndianSentinel);
  write_u32_at(file, 12, static_cast<std::uint32_t>(kind));
  write_u32_at(file, 16, fp.gemm_generation);
  write_u32_at(file, 20, static_cast<std::uint32_t>(fp.gemm_a_bias));
  write_u32_at(file, 24, fp.lut_mask);
  write_u32_at(file, 28, static_cast<std::uint32_t>(sections.size()));
  write_u64_at(file, 32, file.size());
  for (std::size_t i = 0; i < sections.size(); ++i) {
    const std::size_t e = kHeaderBytes + i * kSectionEntryBytes;
    write_u32_at(file, e, sections[i].tag);
    write_u64_at(file, e + 8, placed[i].offset);
    write_u64_at(file, e + 16, placed[i].size);
    write_u32_at(file, e + 24, placed[i].crc);
  }

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  QMCU_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  os.write(file.data(), static_cast<std::streamsize>(file.size()));
  QMCU_REQUIRE(os.good(), "write failed: " + path);
}

std::string graph_section(const Graph& g) {
  std::ostringstream os;
  write_graph(g, os, /*include_parameters=*/false);
  return os.str();
}

std::string plan_section(const ArenaPlan& plan) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(plan.slots.size()));
  for (const ArenaSlot& s : plan.slots) {
    w.i64(s.offset);
    w.i64(s.size);
    w.i32(s.first_step);
    w.i32(s.last_step);
  }
  w.i64(plan.peak_bytes);
  w.i64(plan.live_peak_bytes);
  return std::move(w.out);
}

ArenaPlan parse_plan_section(std::span<const std::uint8_t> bytes) {
  ByteReader r(bytes);
  const std::uint32_t count = r.u32();
  QMCU_REQUIRE(count <= (1u << 20), "implausible slot count in artifact");
  ArenaPlan plan;
  plan.slots.resize(count);
  for (ArenaSlot& s : plan.slots) {
    s.offset = r.i64();
    s.size = r.i64();
    s.first_step = r.i32();
    s.last_step = r.i32();
    QMCU_REQUIRE(s.offset >= 0 && s.size >= 0, "negative arena slot");
  }
  plan.peak_bytes = r.i64();
  plan.live_peak_bytes = r.i64();
  QMCU_REQUIRE(r.done(), "trailing bytes in artifact arena plan");
  for (const ArenaSlot& s : plan.slots) {
    QMCU_REQUIRE(s.offset + s.size <= plan.peak_bytes,
                 "arena slot outside the planned peak");
  }
  return plan;
}

}  // namespace

KernelFingerprint KernelFingerprint::current() {
  const ops::simd::SimdKernels* k = ops::simd::kernels();
  KernelFingerprint fp;
  fp.gemm_generation = (k == nullptr || k->gemm_block_i8 == nullptr)
                           ? 0u
                           : (k->gemm_dot ? 2u : 1u);
  fp.gemm_a_bias = ops::simd::gemm_activation_bias(k);
  fp.lut_mask = (ops::lut::lut_planned(2) ? 1u : 0u) |
                (ops::lut::lut_planned(4) ? 2u : 0u);
  return fp;
}

// --- writers ---------------------------------------------------------------

void compile_to_artifact(const Graph& g, const std::string& path) {
  QMCU_REQUIRE(g.inputs().size() == 1, "artifact expects one input layer");
  BlobBuilder blob;
  ByteWriter fidx;
  std::uint32_t records = 0;
  for (int id = 0; id < g.size(); ++id) {
    if (!g.has_parameters(id)) continue;
    const std::span<const float> w = g.weights(id);
    const std::span<const float> b = g.bias(id);
    fidx.i32(id);
    fidx.u64(blob.add(w.data(), w.size_bytes()));
    fidx.u64(w.size());
    fidx.u64(b.empty() ? 0 : blob.add(b.data(), b.size_bytes()));
    fidx.u64(b.size());
    ++records;
  }
  ByteWriter head;
  head.u32(records);
  fidx.out.insert(0, head.out);

  std::vector<SectionOut> sections;
  sections.push_back({kTagGraph, graph_section(g)});
  sections.push_back({kTagFloatIndex, std::move(fidx.out)});
  sections.push_back(
      {kTagArenaPlan,
       plan_section(plan_execution_arena(
           g, static_cast<std::int64_t>(sizeof(float))))});
  sections.push_back({kTagBlob, blob.take()});
  write_artifact_file(path, ArtifactModelKind::Float,
                      KernelFingerprint::current(), sections);
}

void compile_to_artifact(const Graph& g, const ActivationQuantConfig& cfg,
                         const std::string& path,
                         std::span<const ArtifactSection> extra,
                         ArtifactModelKind kind) {
  QMCU_REQUIRE(g.inputs().size() == 1, "artifact expects one input layer");
  QMCU_REQUIRE(kind != ArtifactModelKind::Float,
               "float artifacts carry no quant config");
  const QuantizedParameters params = QuantizedParameters::build(g, cfg);
  const std::vector<QuantParams> effective = effective_output_params(g, cfg);
  const std::int32_t a_bias =
      ops::simd::gemm_activation_bias(ops::simd::kernels());

  BlobBuilder blob;
  ByteWriter lidx;
  std::uint32_t records = 0;
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    const auto i = static_cast<std::size_t>(id);
    if (!is_mac_op(l.kind) || params.weights[i].data.empty()) continue;
    const std::span<const std::int8_t> qw = params.weights[i].data;
    const std::span<const std::int32_t> bias = params.bias[i];
    const int in_bits = effective[static_cast<std::size_t>(l.inputs[0])].bits;

    std::uint32_t flags = 0;
    int n = 0;
    std::int64_t k = 0;
    std::int32_t a_zp = 0;
    std::vector<std::int8_t> bt;
    std::vector<std::int32_t> wsum;
    std::vector<std::int32_t> offr;
    std::vector<std::int8_t> lut2, lut4;
    if (l.kind != OpKind::DepthwiseConv2D) {
      flags |= kLayerHasPanel;
      n = l.out_channels;
      k = l.kind == OpKind::Conv2D
              ? ops::im2col_row_elements(g.shape(l.inputs[0]), l)
              : g.shape(l.inputs[0]).elements();
      QMCU_ENSURE(static_cast<std::int64_t>(qw.size()) == k * n,
                  "weight blob does not match panel geometry");
      bt.resize(static_cast<std::size_t>(k * n));
      ops::pack_weights_kmajor(qw, n, static_cast<int>(k), bt.data());
      wsum.resize(static_cast<std::size_t>(n));
      ops::weight_column_sums(qw, n, static_cast<int>(k), wsum.data());
      // The per-column requantization offset bias[j] − a_zp·wsum[j] — the
      // only kernel-generation-dependent table (dot-product GEMMs shift
      // activations by gemm_a_bias). Baked for the writer's generation;
      // the loader re-derives on a fingerprint mismatch.
      a_zp = effective[static_cast<std::size_t>(l.inputs[0])].zero_point +
             a_bias;
      offr.resize(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::int32_t bj =
            bias.empty() ? 0 : bias[static_cast<std::size_t>(j)];
        offr[static_cast<std::size_t>(j)] =
            bj - a_zp * wsum[static_cast<std::size_t>(j)];
      }
      // LUT recode tables for the widths the writer's dispatch mode plans
      // (mirrors prepack_conv_panels): generation-independent weight data.
      if (ops::lut::lut_planned(in_bits)) {
        auto& dst = in_bits == 4 ? lut4 : lut2;
        dst.resize(static_cast<std::size_t>(
            ops::lut::lut_table_bytes(n, static_cast<int>(k), in_bits)));
        ops::lut::pack_weights_lut(qw, n, static_cast<int>(k), in_bits,
                                   dst.data());
        flags |= in_bits == 4 ? kLayerHasLut4 : kLayerHasLut2;
      }
    }

    lidx.i32(id);
    lidx.u32(flags);
    lidx.i32(n);
    lidx.i64(k);
    lidx.i32(a_zp);
    lidx.f32(params.weights[i].params.scale);
    lidx.u64(blob.add(qw.data(), qw.size_bytes()));
    lidx.u64(qw.size());
    lidx.u64(bias.empty() ? 0 : blob.add(bias.data(), bias.size_bytes()));
    lidx.u64(bias.size());
    lidx.u64(bt.empty() ? 0 : blob.add(bt.data(), bt.size()));
    lidx.u64(wsum.empty() ? 0
                          : blob.add(wsum.data(), wsum.size() * 4));
    lidx.u64(offr.empty() ? 0
                          : blob.add(offr.data(), offr.size() * 4));
    lidx.u64(lut2.empty() ? 0 : blob.add(lut2.data(), lut2.size()));
    lidx.u64(lut2.size());
    lidx.u64(lut4.empty() ? 0 : blob.add(lut4.data(), lut4.size()));
    lidx.u64(lut4.size());
    ++records;
  }
  ByteWriter head;
  head.u32(records);
  lidx.out.insert(0, head.out);

  std::ostringstream qcfg;
  write_quant_config(cfg, qcfg);

  std::vector<SectionOut> sections;
  sections.push_back({kTagGraph, graph_section(g)});
  sections.push_back({kTagQuantConfig, qcfg.str()});
  sections.push_back({kTagLayerIndex, std::move(lidx.out)});
  sections.push_back({kTagArenaPlan, plan_section(plan_execution_arena(g, 1))});
  for (const ArtifactSection& s : extra) {
    sections.push_back({s.tag, s.bytes});
  }
  sections.push_back({kTagBlob, blob.take()});
  write_artifact_file(path, kind, KernelFingerprint::current(), sections);
}

// --- loader ----------------------------------------------------------------

PlanArtifact::~PlanArtifact() {
  if (mapped_ != nullptr) {
    ::munmap(mapped_, mapped_size_);
  }
}

const ActivationQuantConfig& PlanArtifact::config() const {
  QMCU_REQUIRE(config_.has_value(), "float artifacts carry no quant config");
  return *config_;
}

std::span<const std::uint8_t> PlanArtifact::section(std::uint32_t tag) const {
  for (const Section& s : sections_) {
    if (s.tag == tag) return s.bytes;
  }
  return {};
}

std::shared_ptr<const PlanArtifact> PlanArtifact::map(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  QMCU_REQUIRE(fd >= 0, "cannot open artifact: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    QMCU_REQUIRE(false, "cannot stat artifact: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    QMCU_REQUIRE(false, "truncated artifact (no header): " + path);
  }
  // MAP_SHARED + PROT_READ: the kernel backs every process mapping this
  // artifact with the same physical pages — the fleet-wide weight sharing
  // the artifact exists for. The mapping is never written.
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  QMCU_REQUIRE(mem != MAP_FAILED, "mmap failed: " + path);

  std::shared_ptr<PlanArtifact> art(new PlanArtifact());
  art->mapped_ = mem;
  art->mapped_size_ = size;
  const auto* base = static_cast<const std::uint8_t*>(mem);

  // Header: magic, version, endianness, kind, fingerprint, section table.
  QMCU_REQUIRE(std::memcmp(base, kArtifactMagic, 4) == 0,
               "bad magic: not a QMCP artifact: " + path);
  ByteReader hdr(std::span<const std::uint8_t>(base + 4, kHeaderBytes - 4));
  QMCU_REQUIRE(hdr.u32() == kArtifactVersion,
               "unsupported artifact version: " + path);
  QMCU_REQUIRE(hdr.u32() == kEndianSentinel,
               "endianness sentinel mismatch: artifact written on an "
               "incompatible host");
  const std::uint32_t kind = hdr.u32();
  QMCU_REQUIRE(kind <= static_cast<std::uint32_t>(ArtifactModelKind::PatchQuant),
               "unknown artifact model kind");
  art->kind_ = static_cast<ArtifactModelKind>(kind);
  art->fingerprint_.gemm_generation = hdr.u32();
  art->fingerprint_.gemm_a_bias = hdr.i32();
  art->fingerprint_.lut_mask = hdr.u32();
  const std::uint32_t nsections = hdr.u32();
  QMCU_REQUIRE(nsections <= 64, "implausible artifact section count");
  QMCU_REQUIRE(hdr.u64() == size,
               "artifact size mismatch: truncated or padded file");
  QMCU_REQUIRE(kHeaderBytes + nsections * kSectionEntryBytes <= size,
               "truncated artifact section table");

  // Every section's checksum is verified before any payload byte is
  // interpreted — corruption anywhere fails loudly here, not downstream.
  for (std::uint32_t i = 0; i < nsections; ++i) {
    ByteReader e(std::span<const std::uint8_t>(
        base + kHeaderBytes + i * kSectionEntryBytes, kSectionEntryBytes));
    Section s;
    s.tag = e.u32();
    (void)e.u32();
    const std::uint64_t off = e.u64();
    const std::uint64_t len = e.u64();
    const std::uint32_t crc = e.u32();
    QMCU_REQUIRE(off <= size && len <= size - off,
                 "artifact section outside the file");
    s.bytes = std::span<const std::uint8_t>(base + off,
                                            static_cast<std::size_t>(len));
    QMCU_REQUIRE(crc == crc32(s.bytes.data(), s.bytes.size()),
                 "checksum mismatch: corrupt artifact section");
    art->sections_.push_back(s);
  }

  const auto section_of = [&](std::uint32_t tag,
                              const char* what) -> std::span<const std::uint8_t> {
    const std::span<const std::uint8_t> s = art->section(tag);
    QMCU_REQUIRE(!s.empty(), std::string("artifact missing section: ") + what);
    return s;
  };

  {
    const std::span<const std::uint8_t> grph = section_of(kTagGraph, "GRPH");
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(grph.data()), grph.size()));
    art->graph_.emplace(read_graph(is));
  }
  const Graph& g = *art->graph_;
  art->plan_ = parse_plan_section(section_of(kTagArenaPlan, "PLAN"));

  const std::span<const std::uint8_t> blob = art->section(kTagBlob);
  const auto blob_bytes = [&](std::uint64_t off, std::uint64_t len,
                              std::size_t align) -> const std::uint8_t* {
    QMCU_REQUIRE(off <= blob.size() && len <= blob.size() - off,
                 "artifact blob reference outside the data section");
    QMCU_REQUIRE(off % align == 0, "misaligned artifact blob");
    return blob.data() + off;
  };

  if (art->kind_ == ArtifactModelKind::Float) {
    ByteReader r(section_of(kTagFloatIndex, "FIDX"));
    const std::uint32_t records = r.u32();
    for (std::uint32_t i = 0; i < records; ++i) {
      const std::int32_t id = r.i32();
      QMCU_REQUIRE(id >= 0 && id < g.size(), "layer id out of range");
      const std::uint64_t w_off = r.u64();
      const std::uint64_t w_count = r.u64();
      const std::uint64_t b_off = r.u64();
      const std::uint64_t b_count = r.u64();
      const auto* w = reinterpret_cast<const float*>(
          blob_bytes(w_off, w_count * 4, alignof(float)));
      const auto* b = reinterpret_cast<const float*>(
          blob_bytes(b_off, b_count * 4, alignof(float)));
      // set_parameter_views revalidates counts against layer geometry.
      art->graph_->set_parameter_views(
          id, std::span<const float>(w, static_cast<std::size_t>(w_count)),
          std::span<const float>(b, static_cast<std::size_t>(b_count)));
    }
    QMCU_REQUIRE(r.done(), "trailing bytes in artifact float index");
    return art;
  }

  // Quant kinds: parameters, panels, LUT tables and offset rows are all
  // span views into the mapping (zero copy). Offset rows are the one
  // generation-dependent table; on a fingerprint mismatch they are
  // re-derived here into private memory — everything else loads as-is.
  {
    const std::span<const std::uint8_t> qcfg =
        section_of(kTagQuantConfig, "QCFG");
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(qcfg.data()), qcfg.size()));
    art->config_.emplace(read_quant_config(is));
  }
  QMCU_REQUIRE(static_cast<int>(art->config_->params.size()) == g.size(),
               "artifact quant config does not cover the graph");
  const std::vector<QuantParams> effective =
      effective_output_params(g, *art->config_);
  const std::int32_t a_bias_now =
      ops::simd::gemm_activation_bias(ops::simd::kernels());

  auto params = std::make_shared<QuantizedParameters>();
  params->weights.resize(static_cast<std::size_t>(g.size()));
  params->bias.resize(static_cast<std::size_t>(g.size()));
  auto bundle = std::make_shared<PrecompiledBundle>();

  ByteReader r(section_of(kTagLayerIndex, "LIDX"));
  const std::uint32_t records = r.u32();
  for (std::uint32_t rec = 0; rec < records; ++rec) {
    const std::int32_t id = r.i32();
    QMCU_REQUIRE(id >= 0 && id < g.size(), "layer id out of range");
    const Layer& l = g.layer(id);
    QMCU_REQUIRE(is_mac_op(l.kind), "artifact parameters on a non-MAC layer");
    const std::uint32_t flags = r.u32();
    const std::int32_t n = r.i32();
    const std::int64_t k = r.i64();
    const std::int32_t baked_a_zp = r.i32();
    const float wscale = r.f32();
    QMCU_REQUIRE(wscale > 0.0f, "invalid weight scale in artifact");
    const std::uint64_t qw_off = r.u64();
    const std::uint64_t qw_count = r.u64();
    const std::uint64_t bias_off = r.u64();
    const std::uint64_t bias_count = r.u64();
    const std::uint64_t panel_off = r.u64();
    const std::uint64_t wsum_off = r.u64();
    const std::uint64_t offr_off = r.u64();
    const std::uint64_t lut2_off = r.u64();
    const std::uint64_t lut2_size = r.u64();
    const std::uint64_t lut4_off = r.u64();
    const std::uint64_t lut4_size = r.u64();

    QMCU_REQUIRE(static_cast<std::int64_t>(qw_count) == g.weight_count(id),
                 "artifact weight count does not match layer geometry");
    const auto* qw = reinterpret_cast<const std::int8_t*>(
        blob_bytes(qw_off, qw_count, 1));
    const auto i = static_cast<std::size_t>(id);
    params->weights[i] = {
        std::span<const std::int8_t>(qw, static_cast<std::size_t>(qw_count)),
        QuantParams{wscale, 0, 8}};
    if (bias_count != 0) {
      const auto* bias = reinterpret_cast<const std::int32_t*>(
          blob_bytes(bias_off, bias_count * 4, alignof(std::int32_t)));
      params->bias[i] = std::span<const std::int32_t>(
          bias, static_cast<std::size_t>(bias_count));
    }

    if ((flags & kLayerHasPanel) != 0) {
      QMCU_REQUIRE(n == l.out_channels && k > 0 &&
                       k * n == static_cast<std::int64_t>(qw_count),
                   "artifact panel geometry does not match the layer");
      const auto* bt = reinterpret_cast<const std::int8_t*>(
          blob_bytes(panel_off, static_cast<std::uint64_t>(k * n), 1));
      const auto* wsum = reinterpret_cast<const std::int32_t*>(blob_bytes(
          wsum_off, static_cast<std::uint64_t>(n) * 4, alignof(std::int32_t)));
      const std::span<const std::int32_t> wsum_span(
          wsum, static_cast<std::size_t>(n));
      bundle->panels.push_back(
          {qw,
           std::span<const std::int8_t>(bt, static_cast<std::size_t>(k * n)),
           wsum_span});

      const std::int32_t a_zp_now =
          effective[static_cast<std::size_t>(l.inputs[0])].zero_point +
          a_bias_now;
      const auto* offr = reinterpret_cast<const std::int32_t*>(blob_bytes(
          offr_off, static_cast<std::uint64_t>(n) * 4, alignof(std::int32_t)));
      if (a_zp_now == baked_a_zp) {
        bundle->offsets.push_back(
            {qw, baked_a_zp,
             std::span<const std::int32_t>(offr,
                                           static_cast<std::size_t>(n))});
      } else {
        // Kernel-generation mismatch: re-derive this small row for the
        // running generation (offset[j] = bias[j] − a_zp·wsum[j]).
        std::vector<std::int32_t> row(static_cast<std::size_t>(n));
        for (int j = 0; j < n; ++j) {
          const std::int32_t bj =
              params->bias[i].empty()
                  ? 0
                  : params->bias[i][static_cast<std::size_t>(j)];
          row[static_cast<std::size_t>(j)] =
              bj - a_zp_now * wsum_span[static_cast<std::size_t>(j)];
        }
        art->rederived_offsets_.push_back(std::move(row));
        bundle->offsets.push_back(
            {qw, a_zp_now,
             std::span<const std::int32_t>(art->rederived_offsets_.back())});
      }

      const auto adopt_lut = [&](int bits, std::uint64_t off,
                                 std::uint64_t len) {
        QMCU_REQUIRE(static_cast<std::int64_t>(len) ==
                         ops::lut::lut_table_bytes(n, static_cast<int>(k),
                                                   bits),
                     "artifact LUT table size does not match the layer");
        const auto* tables =
            reinterpret_cast<const std::int8_t*>(blob_bytes(off, len, 1));
        bundle->luts.push_back(
            {qw, bits,
             std::span<const std::int8_t>(tables,
                                          static_cast<std::size_t>(len)),
             wsum_span});
      };
      if ((flags & kLayerHasLut2) != 0) adopt_lut(2, lut2_off, lut2_size);
      if ((flags & kLayerHasLut4) != 0) adopt_lut(4, lut4_off, lut4_size);
    }
  }
  QMCU_REQUIRE(r.done(), "trailing bytes in artifact layer index");

  art->params_ = std::move(params);
  art->bundle_ = std::move(bundle);
  return art;
}

std::unique_ptr<CompiledModel> PlanArtifact::make_float_model(
    ops::KernelTier tier) const {
  QMCU_REQUIRE(kind_ == ArtifactModelKind::Float,
               "artifact does not describe a float model");
  return std::make_unique<CompiledModel>(*graph_, plan_, tier);
}

std::unique_ptr<CompiledQuantModel> PlanArtifact::make_quant_model(
    ops::KernelTier tier) const {
  QMCU_REQUIRE(kind_ == ArtifactModelKind::Quant,
               "artifact does not describe a layer-based quant model");
  return std::make_unique<CompiledQuantModel>(*graph_, *config_, params_,
                                              plan_, bundle_, tier);
}

LoadedModel load_compiled(const std::string& path, ops::KernelTier tier) {
  LoadedModel out;
  out.artifact = PlanArtifact::map(path);
  switch (out.artifact->kind()) {
    case ArtifactModelKind::Float:
      out.float_model = out.artifact->make_float_model(tier);
      break;
    case ArtifactModelKind::Quant:
      out.model = out.artifact->make_quant_model(tier);
      break;
    case ArtifactModelKind::PatchQuant:
      QMCU_REQUIRE(false,
                   "patch artifacts load through patch::load_compiled_patch");
  }
  return out;
}

}  // namespace qmcu::nn
