#include "nn/executor.h"

#include "nn/ops/float_kernels.h"

namespace qmcu::nn {

namespace {

// Backend for the legacy entry points that do not thread one through.
// Weight-panel caching stays off: this backend outlives any particular
// graph, so cached panels could dangle behind reused weight addresses.
ops::KernelBackend& shared_backend() {
  thread_local ops::KernelBackend backend(ops::KernelTier::Fast,
                                          /*cache_weight_panels=*/false);
  return backend;
}

}  // namespace

Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo,
                     ops::KernelBackend& backend) {
  const Layer& l = g.layer(id);
  QMCU_REQUIRE(l.kind != OpKind::Input, "input layers are seeded, not run");
  const auto in0 = [&]() -> const Tensor& {
    return memo[static_cast<std::size_t>(l.inputs[0])];
  };
  switch (l.kind) {
    case OpKind::Conv2D:
      return backend.conv2d_f32(in0(), l, g.weights(id), g.bias(id));
    case OpKind::DepthwiseConv2D:
      return backend.depthwise_conv2d_f32(in0(), l, g.weights(id),
                                          g.bias(id));
    case OpKind::FullyConnected:
      return backend.fully_connected_f32(in0(), l, g.weights(id), g.bias(id));
    case OpKind::MaxPool:
      return ops::max_pool_f32(in0(), l);
    case OpKind::AvgPool:
      return ops::avg_pool_f32(in0(), l);
    case OpKind::GlobalAvgPool:
      return ops::global_avg_pool_f32(in0());
    case OpKind::Add:
      return ops::add_f32(memo[static_cast<std::size_t>(l.inputs[0])],
                          memo[static_cast<std::size_t>(l.inputs[1])], l.act);
    case OpKind::Concat: {
      std::vector<const Tensor*> ins;
      ins.reserve(l.inputs.size());
      for (int in : l.inputs) {
        ins.push_back(&memo[static_cast<std::size_t>(in)]);
      }
      return ops::concat_f32(ins);
    }
    case OpKind::Softmax:
      return ops::softmax_f32(in0());
    case OpKind::Input:
      break;
  }
  QMCU_ENSURE(false, "unhandled op kind");
}

Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo) {
  return run_layer_f32(g, id, memo, shared_backend());
}

std::vector<Tensor> Executor::run_all(const Tensor& input) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(g.inputs().size() == 1, "executor expects one input layer");
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");

  std::vector<Tensor> memo(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind == OpKind::Input) {
      memo[static_cast<std::size_t>(id)] = input;
    } else {
      memo[static_cast<std::size_t>(id)] = run_layer_f32(g, id, memo, backend_);
    }
  }
  return memo;
}

Tensor Executor::run(const Tensor& input) const {
  auto memo = run_all(input);
  return std::move(memo[static_cast<std::size_t>(graph_->output())]);
}

std::vector<Tensor> Executor::run_from(std::vector<Tensor> memo,
                                       int changed_layer) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(static_cast<int>(memo.size()) == g.size(),
               "memo must cover every layer");
  QMCU_REQUIRE(changed_layer >= 0 && changed_layer < g.size(),
               "changed layer out of range");
  std::vector<bool> dirty(static_cast<std::size_t>(g.size()), false);
  dirty[static_cast<std::size_t>(changed_layer)] = true;
  for (int id = changed_layer + 1; id < g.size(); ++id) {
    bool needs = false;
    for (int in : g.layer(id).inputs) {
      if (dirty[static_cast<std::size_t>(in)]) {
        needs = true;
        break;
      }
    }
    if (needs) {
      memo[static_cast<std::size_t>(id)] = run_layer_f32(g, id, memo, backend_);
      dirty[static_cast<std::size_t>(id)] = true;
    }
  }
  return memo;
}

QuantizedParameters QuantizedParameters::build(
    const Graph& g, const ActivationQuantConfig& cfg) {
  QMCU_REQUIRE(static_cast<int>(cfg.params.size()) == g.size(),
               "quant config must cover every layer");
  // The bias scale must match the *actual* scale of the tensor the kernel
  // reads. Pools never requantize (TFLite contract), so a pool's output
  // carries its producer's params, not cfg.params[pool] — resolve the
  // chain before scaling biases.
  std::vector<float> effective_scale(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    const bool pool = l.kind == OpKind::MaxPool || l.kind == OpKind::AvgPool ||
                      l.kind == OpKind::GlobalAvgPool;
    effective_scale[static_cast<std::size_t>(id)] =
        pool ? effective_scale[static_cast<std::size_t>(l.inputs[0])]
             : cfg.params[static_cast<std::size_t>(id)].scale;
  }

  QuantizedParameters out;
  out.weights.resize(static_cast<std::size_t>(g.size()));
  out.bias.resize(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    if (!is_mac_op(l.kind)) continue;
    QMCU_REQUIRE(g.has_parameters(id),
                 "MAC layer missing parameters: " + l.name);
    out.weights[static_cast<std::size_t>(id)] =
        ops::quantize_weights(g.weights(id));
    if (!g.bias(id).empty()) {
      const float in_scale =
          effective_scale[static_cast<std::size_t>(l.inputs[0])];
      out.bias[static_cast<std::size_t>(id)] = ops::quantize_bias(
          g.bias(id), in_scale,
          out.weights[static_cast<std::size_t>(id)].params.scale);
    }
  }
  return out;
}

QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_p, ops::KernelBackend& backend) {
  const Layer& l = g.layer(id);
  const auto& in0 = memo[static_cast<std::size_t>(l.inputs[0])];
  switch (l.kind) {
    case OpKind::Conv2D:
      return backend.conv2d(in0, l,
                            params.weights[static_cast<std::size_t>(id)].data,
                            params.weights[static_cast<std::size_t>(id)].params,
                            params.bias[static_cast<std::size_t>(id)], out_p);
    case OpKind::DepthwiseConv2D:
      return backend.depthwise_conv2d(
          in0, l, params.weights[static_cast<std::size_t>(id)].data,
          params.weights[static_cast<std::size_t>(id)].params,
          params.bias[static_cast<std::size_t>(id)], out_p);
    case OpKind::FullyConnected:
      return backend.fully_connected(
          in0, l, params.weights[static_cast<std::size_t>(id)].data,
          params.weights[static_cast<std::size_t>(id)].params,
          params.bias[static_cast<std::size_t>(id)], out_p);
    case OpKind::MaxPool:
      return backend.max_pool(in0, l);
    case OpKind::AvgPool:
      return backend.avg_pool(in0, l);
    case OpKind::GlobalAvgPool:
      return backend.global_avg_pool(in0);
    case OpKind::Add:
      return backend.add(in0, memo[static_cast<std::size_t>(l.inputs[1])],
                         l.act, out_p);
    case OpKind::Concat: {
      std::vector<const QTensor*> ins;
      ins.reserve(l.inputs.size());
      for (int in : l.inputs) {
        ins.push_back(&memo[static_cast<std::size_t>(in)]);
      }
      return backend.concat(ins, out_p);
    }
    case OpKind::Softmax:
      return backend.softmax(in0, out_p);
    case OpKind::Input:
      QMCU_ENSURE(false, "input handled by caller");
  }
  QMCU_ENSURE(false, "unhandled op kind");
}

QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_p) {
  return run_layer_q(g, id, memo, params, out_p, shared_backend());
}

QuantExecutor::QuantExecutor(const Graph& g, ActivationQuantConfig cfg,
                             ops::KernelTier tier)
    : graph_(&g),
      cfg_(std::move(cfg)),
      params_(QuantizedParameters::build(g, cfg_)),
      backend_(tier) {}

std::vector<QTensor> QuantExecutor::run_all(const Tensor& input) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(g.inputs().size() == 1, "executor expects one input layer");
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");

  std::vector<QTensor> memo(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind == OpKind::Input) {
      memo[static_cast<std::size_t>(id)] =
          quantize(input, cfg_.params[static_cast<std::size_t>(id)]);
    } else {
      memo[static_cast<std::size_t>(id)] =
          run_layer_q(g, id, memo, params_,
                      cfg_.params[static_cast<std::size_t>(id)], backend_);
    }
  }
  return memo;
}

QTensor QuantExecutor::run(const Tensor& input) const {
  auto memo = run_all(input);
  return std::move(memo[static_cast<std::size_t>(graph_->output())]);
}

}  // namespace qmcu::nn
