#include "nn/executor.h"

#include "nn/ops/float_kernels.h"

namespace qmcu::nn {

namespace {

// Backend for the legacy entry points that do not thread one through.
// Weight-panel caching stays off: this backend outlives any particular
// graph, so cached panels could dangle behind reused weight addresses.
ops::KernelBackend& shared_backend() {
  thread_local ops::KernelBackend backend(ops::KernelTier::Simd,
                                          /*cache_weight_panels=*/false);
  return backend;
}

}  // namespace

void run_layer_f32_into(const Graph& g, int id, std::span<const Tensor> memo,
                        ops::KernelBackend& backend, Tensor& out) {
  const Layer& l = g.layer(id);
  QMCU_REQUIRE(l.kind != OpKind::Input, "input layers are seeded, not run");
  const auto in0 = [&]() -> const Tensor& {
    return memo[static_cast<std::size_t>(l.inputs[0])];
  };
  switch (l.kind) {
    case OpKind::Conv2D:
      backend.conv2d_f32_into(in0(), l, g.weights(id), g.bias(id), out);
      return;
    case OpKind::DepthwiseConv2D:
      backend.depthwise_conv2d_f32_into(in0(), l, g.weights(id), g.bias(id),
                                        out);
      return;
    case OpKind::FullyConnected:
      backend.fully_connected_f32_into(in0(), l, g.weights(id), g.bias(id),
                                       out);
      return;
    case OpKind::MaxPool:
      ops::max_pool_f32_into(in0(), l, out);
      return;
    case OpKind::AvgPool:
      ops::avg_pool_f32_into(in0(), l, out);
      return;
    case OpKind::GlobalAvgPool:
      ops::global_avg_pool_f32_into(in0(), out);
      return;
    case OpKind::Add:
      ops::add_f32_into(memo[static_cast<std::size_t>(l.inputs[0])],
                        memo[static_cast<std::size_t>(l.inputs[1])], l.act,
                        out);
      return;
    case OpKind::Concat: {
      std::vector<const Tensor*> ins;
      ins.reserve(l.inputs.size());
      for (int in : l.inputs) {
        ins.push_back(&memo[static_cast<std::size_t>(in)]);
      }
      ops::concat_f32_into(ins, out);
      return;
    }
    case OpKind::Softmax:
      ops::softmax_f32_into(in0(), out);
      return;
    case OpKind::Input:
      break;
  }
  QMCU_ENSURE(false, "unhandled op kind");
}

Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo,
                     ops::KernelBackend& backend) {
  Tensor out(g.shape(id));
  run_layer_f32_into(g, id, memo, backend, out);
  return out;
}

Tensor run_layer_f32(const Graph& g, int id, std::span<const Tensor> memo) {
  return run_layer_f32(g, id, memo, shared_backend());
}

std::vector<Tensor> Executor::run_all(const Tensor& input) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(g.inputs().size() == 1, "executor expects one input layer");
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");

  std::vector<Tensor> memo(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind == OpKind::Input) {
      memo[static_cast<std::size_t>(id)] = input;
    } else {
      memo[static_cast<std::size_t>(id)] =
          run_layer_f32(g, id, memo, compiled_.backend());
    }
  }
  return memo;
}

Tensor Executor::run(const Tensor& input) const {
  return compiled_.run(input);
}

std::vector<Tensor> Executor::run_from(std::vector<Tensor> memo,
                                       int changed_layer) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(static_cast<int>(memo.size()) == g.size(),
               "memo must cover every layer");
  QMCU_REQUIRE(changed_layer >= 0 && changed_layer < g.size(),
               "changed layer out of range");
  std::vector<bool> dirty(static_cast<std::size_t>(g.size()), false);
  dirty[static_cast<std::size_t>(changed_layer)] = true;
  for (int id = changed_layer + 1; id < g.size(); ++id) {
    bool needs = false;
    for (int in : g.layer(id).inputs) {
      if (dirty[static_cast<std::size_t>(in)]) {
        needs = true;
        break;
      }
    }
    if (needs) {
      memo[static_cast<std::size_t>(id)] =
          run_layer_f32(g, id, memo, compiled_.backend());
      dirty[static_cast<std::size_t>(id)] = true;
    }
  }
  return memo;
}

QuantizedParameters QuantizedParameters::build(
    const Graph& g, const ActivationQuantConfig& cfg) {
  QMCU_REQUIRE(static_cast<int>(cfg.params.size()) == g.size(),
               "quant config must cover every layer");
  // The bias scale must match the *actual* scale of the tensor the kernel
  // reads. Pools never requantize (TFLite contract), so a pool's output
  // carries its producer's params, not cfg.params[pool] — resolve the
  // chain before scaling biases.
  const std::vector<QuantParams> effective = effective_output_params(g, cfg);

  QuantizedParameters out;
  out.weights.resize(static_cast<std::size_t>(g.size()));
  out.bias.resize(static_cast<std::size_t>(g.size()));
  out.weight_store.resize(static_cast<std::size_t>(g.size()));
  out.bias_store.resize(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    if (!is_mac_op(l.kind)) continue;
    QMCU_REQUIRE(g.has_parameters(id),
                 "MAC layer missing parameters: " + l.name);
    const auto i = static_cast<std::size_t>(id);
    out.weight_store[i] = ops::quantize_weights(g.weights(id));
    out.weights[i] = {out.weight_store[i].data, out.weight_store[i].params};
    if (!g.bias(id).empty()) {
      const float in_scale =
          effective[static_cast<std::size_t>(l.inputs[0])].scale;
      out.bias_store[i] = ops::quantize_bias(
          g.bias(id), in_scale, out.weight_store[i].params.scale);
      out.bias[i] = out.bias_store[i];
    }
  }
  return out;
}

std::shared_ptr<const QuantizedParameters> QuantizedParameters::build_shared(
    const Graph& g, const ActivationQuantConfig& cfg) {
  return std::make_shared<const QuantizedParameters>(build(g, cfg));
}

void run_layer_q_into(const Graph& g, int id, std::span<const QTensor> memo,
                      const QuantizedParameters& params,
                      ops::KernelBackend& backend, QTensor& out) {
  const Layer& l = g.layer(id);
  QMCU_REQUIRE(l.kind != OpKind::Input, "input layers are seeded, not run");
  const auto& in0 = memo[static_cast<std::size_t>(l.inputs[0])];
  switch (l.kind) {
    case OpKind::Conv2D:
      backend.conv2d_into(in0, l,
                          params.weights[static_cast<std::size_t>(id)].data,
                          params.weights[static_cast<std::size_t>(id)].params,
                          params.bias[static_cast<std::size_t>(id)], out);
      return;
    case OpKind::DepthwiseConv2D:
      backend.depthwise_conv2d_into(
          in0, l, params.weights[static_cast<std::size_t>(id)].data,
          params.weights[static_cast<std::size_t>(id)].params,
          params.bias[static_cast<std::size_t>(id)], out);
      return;
    case OpKind::FullyConnected:
      backend.fully_connected_into(
          in0, l, params.weights[static_cast<std::size_t>(id)].data,
          params.weights[static_cast<std::size_t>(id)].params,
          params.bias[static_cast<std::size_t>(id)], out);
      return;
    case OpKind::MaxPool:
      backend.max_pool_into(in0, l, out);
      return;
    case OpKind::AvgPool:
      backend.avg_pool_into(in0, l, out);
      return;
    case OpKind::GlobalAvgPool:
      backend.global_avg_pool_into(in0, out);
      return;
    case OpKind::Add:
      backend.add_into(in0, memo[static_cast<std::size_t>(l.inputs[1])],
                       l.act, out);
      return;
    case OpKind::Concat: {
      std::vector<const QTensor*> ins;
      ins.reserve(l.inputs.size());
      for (int in : l.inputs) {
        ins.push_back(&memo[static_cast<std::size_t>(in)]);
      }
      backend.concat_into(ins, out);
      return;
    }
    case OpKind::Softmax:
      backend.softmax_into(in0, out);
      return;
    case OpKind::Input:
      break;
  }
  QMCU_ENSURE(false, "unhandled op kind");
}

QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_p, ops::KernelBackend& backend) {
  const Layer& l = g.layer(id);
  // Pools never requantize: their output carries the producer's params
  // regardless of the nominal out_p (TFLite contract).
  const QuantParams& p =
      is_pool_op(l.kind)
          ? memo[static_cast<std::size_t>(l.inputs[0])].params()
          : out_p;
  QTensor out(g.shape(id), p);
  run_layer_q_into(g, id, memo, params, backend, out);
  return out;
}

QTensor run_layer_q(const Graph& g, int id, std::span<const QTensor> memo,
                    const QuantizedParameters& params,
                    const QuantParams& out_p) {
  return run_layer_q(g, id, memo, params, out_p, shared_backend());
}

QuantExecutor::QuantExecutor(const Graph& g, ActivationQuantConfig cfg,
                             ops::KernelTier tier,
                             std::shared_ptr<const QuantizedParameters> params)
    : graph_(&g), compiled_(g, std::move(cfg), tier, std::move(params)) {}

std::vector<QTensor> QuantExecutor::run_all(const Tensor& input) const {
  const Graph& g = *graph_;
  QMCU_REQUIRE(g.inputs().size() == 1, "executor expects one input layer");
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");

  const ActivationQuantConfig& cfg = compiled_.config();
  std::vector<QTensor> memo(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    if (g.layer(id).kind == OpKind::Input) {
      memo[static_cast<std::size_t>(id)] =
          quantize(input, cfg.params[static_cast<std::size_t>(id)]);
    } else {
      memo[static_cast<std::size_t>(id)] = run_layer_q(
          g, id, memo, *compiled_.shared_parameters(),
          cfg.params[static_cast<std::size_t>(id)], compiled_.backend());
    }
  }
  return memo;
}

QTensor QuantExecutor::run(const Tensor& input) const {
  return compiled_.run(input);
}

}  // namespace qmcu::nn
