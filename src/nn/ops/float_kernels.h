// float_kernels.h — float32 reference kernels, NHWC, batch 1.
//
// These are the golden-path implementations: every quantized kernel and the
// patch executor are validated against them. Geometry (kernel, stride,
// symmetric zero padding, fused activation) comes from the Layer spec so the
// kernels stay in lock-step with graph shape inference.
#pragma once

#include <span>

#include "nn/graph.h"
#include "nn/tensor.h"

namespace qmcu::nn::ops {

// 2-D convolution. `weights` layout [out_c][kh][kw][in_c]; `bias` may be
// empty (treated as zero).
Tensor conv2d_f32(const Tensor& in, const Layer& l,
                  std::span<const float> weights, std::span<const float> bias);

// Depthwise convolution (channel multiplier 1). `weights` layout [kh][kw][c].
Tensor depthwise_conv2d_f32(const Tensor& in, const Layer& l,
                            std::span<const float> weights,
                            std::span<const float> bias);

// Fully connected over the flattened input. `weights` layout [out][in].
Tensor fully_connected_f32(const Tensor& in, const Layer& l,
                           std::span<const float> weights,
                           std::span<const float> bias);

Tensor max_pool_f32(const Tensor& in, const Layer& l);
Tensor avg_pool_f32(const Tensor& in, const Layer& l);
Tensor global_avg_pool_f32(const Tensor& in);

Tensor add_f32(const Tensor& lhs, const Tensor& rhs, Activation act);
Tensor concat_f32(std::span<const Tensor* const> inputs);
Tensor softmax_f32(const Tensor& in);

// Fused activation applied in place.
void apply_activation_f32(Tensor& t, Activation act);
float activate(float v, Activation act);

}  // namespace qmcu::nn::ops
