// float_kernels.h — float32 reference kernels, NHWC, batch 1.
//
// These are the golden-path implementations: every quantized kernel and the
// patch executor are validated against them. Geometry (kernel, stride,
// symmetric zero padding, fused activation) comes from the Layer spec so the
// kernels stay in lock-step with graph shape inference.
//
// Every kernel has two entry points: the value-returning form (allocates its
// output) and an `_into` form that writes into a caller-provided, correctly
// shaped destination — the form the compiled arena executors use so the hot
// path performs no per-layer allocation. Both compute bit-identical results.
#pragma once

#include <span>

#include "nn/graph.h"
#include "nn/tensor.h"

namespace qmcu::nn::ops {

// 2-D convolution. `weights` layout [out_c][kh][kw][in_c]; `bias` may be
// empty (treated as zero).
Tensor conv2d_f32(const Tensor& in, const Layer& l,
                  std::span<const float> weights, std::span<const float> bias);
void conv2d_f32_into(const Tensor& in, const Layer& l,
                     std::span<const float> weights,
                     std::span<const float> bias, Tensor& out);

// Depthwise convolution (channel multiplier 1). `weights` layout [kh][kw][c].
Tensor depthwise_conv2d_f32(const Tensor& in, const Layer& l,
                            std::span<const float> weights,
                            std::span<const float> bias);
void depthwise_conv2d_f32_into(const Tensor& in, const Layer& l,
                               std::span<const float> weights,
                               std::span<const float> bias, Tensor& out);

// Fully connected over the flattened input. `weights` layout [out][in].
Tensor fully_connected_f32(const Tensor& in, const Layer& l,
                           std::span<const float> weights,
                           std::span<const float> bias);
void fully_connected_f32_into(const Tensor& in, const Layer& l,
                              std::span<const float> weights,
                              std::span<const float> bias, Tensor& out);

Tensor max_pool_f32(const Tensor& in, const Layer& l);
void max_pool_f32_into(const Tensor& in, const Layer& l, Tensor& out);
Tensor avg_pool_f32(const Tensor& in, const Layer& l);
void avg_pool_f32_into(const Tensor& in, const Layer& l, Tensor& out);
Tensor global_avg_pool_f32(const Tensor& in);
void global_avg_pool_f32_into(const Tensor& in, Tensor& out);

Tensor add_f32(const Tensor& lhs, const Tensor& rhs, Activation act);
void add_f32_into(const Tensor& lhs, const Tensor& rhs, Activation act,
                  Tensor& out);
Tensor concat_f32(std::span<const Tensor* const> inputs);
void concat_f32_into(std::span<const Tensor* const> inputs, Tensor& out);
Tensor softmax_f32(const Tensor& in);
void softmax_f32_into(const Tensor& in, Tensor& out);

// Fused activation applied in place.
void apply_activation_f32(Tensor& t, Activation act);
float activate(float v, Activation act);

}  // namespace qmcu::nn::ops
