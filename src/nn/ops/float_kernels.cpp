#include "nn/ops/float_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qmcu::nn::ops {

float activate(float v, Activation act) {
  switch (act) {
    case Activation::None: return v;
    case Activation::ReLU: return v > 0.0f ? v : 0.0f;
    case Activation::ReLU6: return std::clamp(v, 0.0f, 6.0f);
  }
  return v;
}

void apply_activation_f32(Tensor& t, Activation act) {
  if (act == Activation::None) return;
  for (float& v : t.data()) v = activate(v, act);
}

namespace {

TensorShape windowed_shape(const TensorShape& in, const Layer& l,
                           int out_channels) {
  const int oh = (in.h + 2 * l.pad_h - l.kernel_h) / l.stride_h + 1;
  const int ow = (in.w + 2 * l.pad_w - l.kernel_w) / l.stride_w + 1;
  return {oh, ow, out_channels};
}

void require_out_shape(const Tensor& out, const TensorShape& expect,
                       const char* what) {
  QMCU_REQUIRE(out.shape() == expect, std::string(what) +
                                          ": destination shape mismatch");
}

}  // namespace

void conv2d_f32_into(const Tensor& in, const Layer& l,
                     std::span<const float> weights,
                     std::span<const float> bias, Tensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, l.out_channels);
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) ==
                   static_cast<std::int64_t>(l.out_channels) * l.kernel_h *
                       l.kernel_w * is.c,
               "conv weight count mismatch");
  require_out_shape(out, os, "conv2d_f32");
  const std::span<const float> x = in.data();
  const std::span<float> y = out.data();

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int oc = 0; oc < os.c; ++oc) {
        float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(oc)];
        const std::size_t wbase = static_cast<std::size_t>(oc) *
                                  static_cast<std::size_t>(l.kernel_h) *
                                  static_cast<std::size_t>(l.kernel_w) *
                                  static_cast<std::size_t>(is.c);
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            const std::size_t xoff =
                static_cast<std::size_t>(flat_index(is, iy, ix, 0));
            const std::size_t woff =
                wbase + (static_cast<std::size_t>(ky) *
                             static_cast<std::size_t>(l.kernel_w) +
                         static_cast<std::size_t>(kx)) *
                            static_cast<std::size_t>(is.c);
            for (int ic = 0; ic < is.c; ++ic) {
              acc += x[xoff + static_cast<std::size_t>(ic)] *
                     weights[woff + static_cast<std::size_t>(ic)];
            }
          }
        }
        y[static_cast<std::size_t>(flat_index(os, oy, ox, oc))] =
            activate(acc, l.act);
      }
    }
  }
}

Tensor conv2d_f32(const Tensor& in, const Layer& l,
                  std::span<const float> weights, std::span<const float> bias) {
  Tensor out(windowed_shape(in.shape(), l, l.out_channels));
  conv2d_f32_into(in, l, weights, bias, out);
  return out;
}

void depthwise_conv2d_f32_into(const Tensor& in, const Layer& l,
                               std::span<const float> weights,
                               std::span<const float> bias, Tensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) ==
                   static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * is.c,
               "dwconv weight count mismatch");
  require_out_shape(out, os, "depthwise_conv2d_f32");
  const std::span<const float> x = in.data();
  const std::span<float> y = out.data();

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(c)];
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            const std::size_t widx =
                (static_cast<std::size_t>(ky) *
                     static_cast<std::size_t>(l.kernel_w) +
                 static_cast<std::size_t>(kx)) *
                    static_cast<std::size_t>(is.c) +
                static_cast<std::size_t>(c);
            acc += x[static_cast<std::size_t>(flat_index(is, iy, ix, c))] *
                   weights[widx];
          }
        }
        y[static_cast<std::size_t>(flat_index(os, oy, ox, c))] =
            activate(acc, l.act);
      }
    }
  }
}

Tensor depthwise_conv2d_f32(const Tensor& in, const Layer& l,
                            std::span<const float> weights,
                            std::span<const float> bias) {
  Tensor out(windowed_shape(in.shape(), l, in.shape().c));
  depthwise_conv2d_f32_into(in, l, weights, bias, out);
  return out;
}

void fully_connected_f32_into(const Tensor& in, const Layer& l,
                              std::span<const float> weights,
                              std::span<const float> bias, Tensor& out) {
  const std::int64_t in_features = in.elements();
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) ==
                   in_features * l.out_channels,
               "fc weight count mismatch");
  require_out_shape(out, TensorShape{1, 1, l.out_channels},
                    "fully_connected_f32");
  const std::span<const float> x = in.data();
  const std::span<float> y = out.data();
  for (int o = 0; o < l.out_channels; ++o) {
    float acc = bias.empty() ? 0.0f : bias[static_cast<std::size_t>(o)];
    const std::size_t wbase = static_cast<std::size_t>(o) *
                              static_cast<std::size_t>(in_features);
    for (std::int64_t i = 0; i < in_features; ++i) {
      acc += x[static_cast<std::size_t>(i)] *
             weights[wbase + static_cast<std::size_t>(i)];
    }
    y[static_cast<std::size_t>(o)] = activate(acc, l.act);
  }
}

Tensor fully_connected_f32(const Tensor& in, const Layer& l,
                           std::span<const float> weights,
                           std::span<const float> bias) {
  Tensor out(TensorShape{1, 1, l.out_channels});
  fully_connected_f32_into(in, l, weights, bias, out);
  return out;
}

void max_pool_f32_into(const Tensor& in, const Layer& l, Tensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  require_out_shape(out, os, "max_pool_f32");
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        float best = std::numeric_limits<float>::lowest();
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            best = std::max(best, in.at(iy, ix, c));
          }
        }
        out.at(oy, ox, c) = best;
      }
    }
  }
}

Tensor max_pool_f32(const Tensor& in, const Layer& l) {
  Tensor out(windowed_shape(in.shape(), l, in.shape().c));
  max_pool_f32_into(in, l, out);
  return out;
}

void avg_pool_f32_into(const Tensor& in, const Layer& l, Tensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  require_out_shape(out, os, "avg_pool_f32");
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        float sum = 0.0f;
        int count = 0;
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            sum += in.at(iy, ix, c);
            ++count;
          }
        }
        out.at(oy, ox, c) = count > 0 ? sum / static_cast<float>(count) : 0.0f;
      }
    }
  }
}

Tensor avg_pool_f32(const Tensor& in, const Layer& l) {
  Tensor out(windowed_shape(in.shape(), l, in.shape().c));
  avg_pool_f32_into(in, l, out);
  return out;
}

void global_avg_pool_f32_into(const Tensor& in, Tensor& out) {
  const TensorShape& is = in.shape();
  require_out_shape(out, TensorShape{1, 1, is.c}, "global_avg_pool_f32");
  const float inv = 1.0f / static_cast<float>(is.h * is.w);
  for (int c = 0; c < is.c; ++c) {
    float sum = 0.0f;
    for (int y = 0; y < is.h; ++y) {
      for (int x = 0; x < is.w; ++x) sum += in.at(y, x, c);
    }
    out.at(0, 0, c) = sum * inv;
  }
}

Tensor global_avg_pool_f32(const Tensor& in) {
  Tensor out(TensorShape{1, 1, in.shape().c});
  global_avg_pool_f32_into(in, out);
  return out;
}

void add_f32_into(const Tensor& lhs, const Tensor& rhs, Activation act,
                  Tensor& out) {
  QMCU_REQUIRE(lhs.shape() == rhs.shape(), "add operand shape mismatch");
  require_out_shape(out, lhs.shape(), "add_f32");
  const auto a = lhs.data();
  const auto b = rhs.data();
  auto y = out.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = activate(a[i] + b[i], act);
  }
}

Tensor add_f32(const Tensor& lhs, const Tensor& rhs, Activation act) {
  Tensor out(lhs.shape());
  add_f32_into(lhs, rhs, act, out);
  return out;
}

void concat_f32_into(std::span<const Tensor* const> inputs, Tensor& out) {
  QMCU_REQUIRE(!inputs.empty(), "concat needs inputs");
  const TensorShape& first = inputs[0]->shape();
  int channels = 0;
  for (const Tensor* t : inputs) {
    QMCU_REQUIRE(t->shape().h == first.h && t->shape().w == first.w,
                 "concat inputs must agree spatially");
    channels += t->shape().c;
  }
  require_out_shape(out, TensorShape{first.h, first.w, channels},
                    "concat_f32");
  for (int y = 0; y < first.h; ++y) {
    for (int x = 0; x < first.w; ++x) {
      int co = 0;
      for (const Tensor* t : inputs) {
        for (int c = 0; c < t->shape().c; ++c) {
          out.at(y, x, co++) = t->at(y, x, c);
        }
      }
    }
  }
}

Tensor concat_f32(std::span<const Tensor* const> inputs) {
  QMCU_REQUIRE(!inputs.empty(), "concat needs inputs");
  const TensorShape& first = inputs[0]->shape();
  int channels = 0;
  for (const Tensor* t : inputs) channels += t->shape().c;
  Tensor out(TensorShape{first.h, first.w, channels});
  concat_f32_into(inputs, out);
  return out;
}

void softmax_f32_into(const Tensor& in, Tensor& out) {
  require_out_shape(out, in.shape(), "softmax_f32");
  const auto x = in.data();
  auto y = out.data();
  const float maxv = *std::max_element(x.begin(), x.end());
  float sum = 0.0f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    y[i] = std::exp(x[i] - maxv);
    sum += y[i];
  }
  const float inv = 1.0f / sum;
  for (float& v : y) v *= inv;
}

Tensor softmax_f32(const Tensor& in) {
  Tensor out(in.shape());
  softmax_f32_into(in, out);
  return out;
}

}  // namespace qmcu::nn::ops
