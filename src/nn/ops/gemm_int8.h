// gemm_int8.h — register-tiled integer GEMM with fused requantization.
//
// The Fast conv/fc tier computes C = A · Bᵀ where A is the im2col matrix
// (M output pixels × K window elements) and B the weight matrix
// (N output channels × K, the Graph's native [oc][kh][kw][ic] layout).
// Weights are first repacked k-major (Bt[k][n]) so the inner loop walks
// both operands with unit stride; the kernel then processes four A rows at
// a time against the full Bt panel, giving each loaded weight lane four
// uses and each loaded activation lane N uses.
//
// Zero-point handling follows CMSIS-NN: the GEMM accumulates raw x·w
// products and the input-offset term is folded into a per-column constant
//   offset[n] = bias[n] - input_zp * Σ_k w[n][k]
// applied once per output, which keeps the inner loop subtraction-free and
// the result bit-identical to the reference Σ (x − zp) · w accumulator.
#pragma once

#include <cstdint>
#include <span>

#include "nn/graph.h"
#include "nn/ops/requantize.h"

namespace qmcu::nn::ops {

namespace simd {
struct SimdKernels;
}  // namespace simd

// Repacks row-major B [n][k] into k-major Bt [k][n]. The transpose walks
// 16x16 tiles so both the source rows and the destination columns stay
// within a cache line per tile instead of striding the whole panel
// column-wise per source row; output bytes are identical to the naive
// row-by-row transpose.
void pack_weights_kmajor(std::span<const std::int8_t> b, int n, int k,
                         std::int8_t* bt);
void pack_weights_kmajor_f32(std::span<const float> b, int n, int k,
                             float* bt);

// Per-output-channel weight sums Σ_k w[n][k] for the zero-point correction.
void weight_column_sums(std::span<const std::int8_t> b, int n, int k,
                        std::int32_t* wsum);

// Requantization applied to each finished int32 accumulator column.
struct GemmQuantPost {
  const std::int32_t* offset = nullptr;  // per-column bias − zp·wsum, size n
  FixedPointMultiplier multiplier;
  std::int32_t output_zp = 0;
  std::int32_t act_lo = -128;
  std::int32_t act_hi = 127;
};

// C[m][n] (row-major, stride n) = requant(A[m][:] · Bt[:][n] + offset[n]).
// `acc` is caller-provided scratch of at least min(4, m) * n int32 (the
// block walks at most 4 A rows at a time; fc calls with m == 1 need only
// one accumulator row). When `simd` is
// non-null, the accumulator block and the fused requantize epilogue run on
// its microkernels (per-entry scalar fallback; results are bit-identical
// either way — that is the Simd tier's contract).
void gemm_int8_requant(const std::int8_t* a, const std::int8_t* bt, int m,
                       int n, int k, const GemmQuantPost& post,
                       std::int32_t* acc, std::int8_t* c,
                       const simd::SimdKernels* simd = nullptr);

// Float flavour: C[m][n] = act(A·Bt + bias[n]). Accumulation order over k is
// ascending with one scalar accumulator per output, bit-identical to the
// reference kernels (zero-padded lanes contribute exact +0.0f).
// `acc` is caller-provided scratch of at least 4 * n floats.
void gemm_f32(const float* a, const float* bt, int m, int n, int k,
              std::span<const float> bias, Activation act, float* acc,
              float* c);

}  // namespace qmcu::nn::ops
