#include "nn/ops/lut/lut_kernels.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "nn/check.h"
#include "nn/ops/simd/simd_kernels.h"

namespace qmcu::nn::ops::lut {

namespace {

// Two's-complement decode of a truncated b-bit field, matching
// quant/bitpack.h's sign extension: dec_b(x & mask_b) == x for any x in
// the signed b-bit range.
inline std::int32_t dec4(std::uint32_t code) {
  return static_cast<std::int32_t>((code ^ 8u)) - 8;
}
inline std::int32_t dec2(std::uint32_t code) {
  return static_cast<std::int32_t>((code ^ 2u)) - 2;
}

}  // namespace

int lut_groups(int k, int bits) {
  QMCU_REQUIRE(bits == 2 || bits == 4, "lut_groups: bits must be 2 or 4");
  return bits == 4 ? k : (k + 1) / 2;
}

std::int64_t lut_table_bytes(int n, int k, int bits) {
  return static_cast<std::int64_t>(n) * lut_groups(k, bits) * kLutGroupBytes;
}

void pack_weights_lut(std::span<const std::int8_t> qweights, int n, int k,
                      int bits, std::int8_t* tables) {
  QMCU_REQUIRE(static_cast<std::int64_t>(qweights.size()) ==
                   static_cast<std::int64_t>(n) * k,
               "pack_weights_lut: weight count mismatch");
  const int groups = lut_groups(k, bits);
  for (int j = 0; j < n; ++j) {
    const std::int8_t* wr = qweights.data() + static_cast<std::size_t>(j) * k;
    for (int g = 0; g < groups; ++g) {
      std::int8_t* t =
          tables + (static_cast<std::size_t>(j) * groups + g) * kLutGroupBytes;
      for (std::uint32_t code = 0; code < 16; ++code) {
        std::int32_t v;
        if (bits == 4) {
          v = dec4(code) * wr[g];
        } else {
          const std::int32_t w0 = wr[2 * g];
          const std::int32_t w1 = (2 * g + 1 < k) ? wr[2 * g + 1] : 0;
          v = dec2(code & 3u) * w0 + dec2(code >> 2) * w1;
        }
        // Little-endian int16 split across the two shuffle planes.
        t[code] = static_cast<std::int8_t>(v & 0xFF);
        t[16 + code] = static_cast<std::int8_t>((v >> 8) & 0xFF);
      }
    }
  }
}

void lut_build_index_tile(const std::int8_t* a, int rows, int k, int bits,
                          std::uint8_t* idx_t) {
  const int groups = lut_groups(k, bits);
  if (bits == 4) {
    for (int g = 0; g < groups; ++g) {
      std::uint8_t* dst = idx_t + static_cast<std::size_t>(g) * kLutTileM;
      for (int r = 0; r < rows; ++r) {
        dst[r] = static_cast<std::uint8_t>(
            a[static_cast<std::size_t>(r) * k + g] & 0x0F);
      }
      if (rows < kLutTileM) {
        std::memset(dst + rows, 0, static_cast<std::size_t>(kLutTileM - rows));
      }
    }
    return;
  }
  for (int g = 0; g < groups; ++g) {
    const int k0 = 2 * g;
    std::uint8_t* dst = idx_t + static_cast<std::size_t>(g) * kLutTileM;
    if (k0 + 1 < k) {
      for (int r = 0; r < rows; ++r) {
        const std::int8_t* ar = a + static_cast<std::size_t>(r) * k + k0;
        dst[r] = static_cast<std::uint8_t>((ar[0] & 3) |
                                           ((ar[1] & 3) << 2));
      }
    } else {  // odd k tail: upper field 0 selects the padded zero weight
      for (int r = 0; r < rows; ++r) {
        dst[r] = static_cast<std::uint8_t>(
            a[static_cast<std::size_t>(r) * k + k0] & 3);
      }
    }
    if (rows < kLutTileM) {
      std::memset(dst + rows, 0, static_cast<std::size_t>(kLutTileM - rows));
    }
  }
}

void lut_gemm_block_scalar(const std::uint8_t* idx_t,
                           const std::int8_t* tables, int rows, int n,
                           int groups, std::int32_t* acc) {
  for (int j = 0; j < n; ++j) {
    const std::int8_t* tbl =
        tables + static_cast<std::size_t>(j) * groups * kLutGroupBytes;
    std::int32_t tmp[kLutTileM];
    std::fill_n(tmp, rows, 0);
    for (int g = 0; g < groups; ++g, tbl += kLutGroupBytes) {
      const std::uint8_t* idx = idx_t + static_cast<std::size_t>(g) * kLutTileM;
      for (int r = 0; r < rows; ++r) {
        const std::uint8_t code = idx[r];
        const std::int16_t entry = static_cast<std::int16_t>(
            static_cast<std::uint16_t>(static_cast<std::uint8_t>(tbl[code])) |
            (static_cast<std::uint16_t>(
                 static_cast<std::uint8_t>(tbl[16 + code]))
             << 8));
        tmp[r] += entry;
      }
    }
    for (int r = 0; r < rows; ++r) {
      acc[static_cast<std::size_t>(r) * n + j] = tmp[r];
    }
  }
}

void lut_gemm_requant(const std::int8_t* a, const std::int8_t* tables, int m,
                      int n, int k, int bits, const GemmQuantPost& post,
                      std::uint8_t* idx_t, std::int32_t* acc, std::int8_t* c,
                      const simd::SimdKernels* simd) {
  const int groups = lut_groups(k, bits);
  const auto vector_block =
      (simd != nullptr) ? simd->lut_gemm_block : nullptr;
  const auto requant_row =
      (simd != nullptr) ? simd->requant_i32_row : nullptr;
  for (int m0 = 0; m0 < m; m0 += kLutTileM) {
    const int rows = std::min(kLutTileM, m - m0);
    // The shuffle bodies always compute all kLutTileM lanes; for a mostly
    // empty tile (fc's m == 1, short conv tails) the scalar core's
    // rows-bounded loop is cheaper. Both are bit-identical.
    const auto block = (vector_block != nullptr && rows >= 8)
                           ? vector_block
                           : &lut_gemm_block_scalar;
    lut_build_index_tile(a + static_cast<std::size_t>(m0) * k, rows, k, bits,
                         idx_t);
    block(idx_t, tables, rows, n, groups, acc);
    for (int r = 0; r < rows; ++r) {
      const std::int32_t* row = acc + static_cast<std::size_t>(r) * n;
      std::int8_t* out = c + static_cast<std::size_t>(m0 + r) * n;
      if (requant_row != nullptr) {
        requant_row(row, post.offset, n, post.multiplier, post.output_zp,
                    post.act_lo, post.act_hi, out);
        continue;
      }
      for (int j = 0; j < n; ++j) {
        const std::int32_t total = row[j] + post.offset[j];
        const std::int32_t q =
            clamp_to(apply_multiplier(total, post.multiplier) + post.output_zp,
                     post.act_lo, post.act_hi);
        out[j] = static_cast<std::int8_t>(q);
      }
    }
  }
}

namespace {

bool env_set(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

LutForce lut_force() {
  if (env_set("QMCU_FORCE_LUT")) return LutForce::On;
  if (env_set("QMCU_NO_LUT")) return LutForce::Off;
  return LutForce::Auto;
}

bool lut_use(int bits, int zero_point, int n, int k, int m, bool fc,
             bool cached_panels, const simd::SimdKernels* simd) {
  if (bits != 2 && bits != 4) return false;
  // im2col pads with the zero point; it must round-trip the b-bit encode
  // for the lookup to stay bit-exact, so an out-of-range zp disables the
  // path even when forced.
  const int lo = -(1 << (bits - 1));
  const int hi = (1 << (bits - 1)) - 1;
  if (zero_point < lo || zero_point > hi) return false;
  const LutForce force = lut_force();
  if (force == LutForce::Off) return false;
  if (force == LutForce::On) return true;
  // Auto: the win comes from the vector shuffle body amortized over cached
  // tables — without either, unpack+GEMM stays ahead. Only the 2-bit
  // recode wins end-to-end with this repo's 8-bit weights (one vpshufb
  // retires two k elements; at 4 bits it retires one and the measured
  // packed conv runs ~0.8x the pinned GEMM path on AVX2), so Auto keeps
  // GEMM at 4 bits and QMCU_FORCE_LUT remains the 4-bit opt-in.
  if (bits != 2) return false;
  if (!cached_panels) return false;
  if (simd == nullptr || simd->lut_gemm_block == nullptr) return false;
  // The 2-bit edge was measured against the pair-madd GEMM (~1.11x on
  // AVX2). A dot-product gemm_block_i8 generation (AVX-VNNI / NEON sdot)
  // retires 4 k-elements per lane and clears that bar, so Auto keeps the
  // GEMM path whenever the active table is a dot generation
  // (QMCU_FORCE_NO_DOT demotes the table and restores the LUT win).
  if (simd->gemm_dot) return false;
  if (fc) return k >= 64;
  if (m < 16) return false;  // partial m-tiles waste shuffle lanes
  return n >= 8 && k >= 16;
}

bool lut_planned(int bits) {
  if (bits != 2 && bits != 4) return false;
  switch (lut_force()) {
    case LutForce::Off: return false;
    case LutForce::On: return true;
    case LutForce::Auto:
      // Mirror lut_use: a dot-product GEMM generation outruns the 2-bit
      // shuffle body, so Auto never dispatches the LUT there — don't bake
      // its tables. QMCU_FORCE_NO_DOT is read live inside kernels(), so
      // flipping it after construction costs at most one lazy table build.
      return bits == 2 &&
             !(simd::kernels() != nullptr && simd::kernels()->gemm_dot);
  }
  return false;
}

}  // namespace qmcu::nn::ops::lut
