// lut_gemm_avx2.cpp — AVX2 vpshufb body of the LUT-GEMM tier.
//
// Per (output channel, k-group): broadcast the 16-byte low and high table
// planes across both 128-bit lanes, gather all kLutTileM = 32 index lanes
// with two vpshufb, and interleave the planes back into int16 entries.
// Entries are summed in int16 for at most kLutChunkGroups groups (bounded
// in lut_kernels.h so the partial sums cannot wrap), then widened into
// four int32 accumulators — arithmetic identical to the scalar core.
//
// Compiled with -mavx2 (see CMakeLists); the guard keeps a flagless build
// compiling to an empty TU, which leaves the table entry null.
#include "nn/ops/lut/lut_simd_bodies.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include "nn/ops/lut/lut_kernels.h"

namespace qmcu::nn::ops::lut {

void lut_gemm_block_avx2(const std::uint8_t* idx_t, const std::int8_t* tables,
                         int rows, int n, int groups, std::int32_t* acc) {
  for (int j = 0; j < n; ++j) {
    const std::int8_t* tbl =
        tables + static_cast<std::size_t>(j) * groups * kLutGroupBytes;
    __m256i acc0 = _mm256_setzero_si256();  // m 0..7
    __m256i acc1 = _mm256_setzero_si256();  // m 8..15
    __m256i acc2 = _mm256_setzero_si256();  // m 16..23
    __m256i acc3 = _mm256_setzero_si256();  // m 24..31
    for (int g0 = 0; g0 < groups; g0 += kLutChunkGroups) {
      const int g1 = g0 + kLutChunkGroups < groups ? g0 + kLutChunkGroups
                                                   : groups;
      // s_a holds the int16 entries of m {0..7 | 16..23}, s_b of
      // m {8..15 | 24..31} (the unpack instructions interleave per
      // 128-bit lane).
      __m256i s_a = _mm256_setzero_si256();
      __m256i s_b = _mm256_setzero_si256();
      for (int g = g0; g < g1; ++g) {
        const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
            idx_t + static_cast<std::size_t>(g) * kLutTileM));
        const __m256i tlo =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(
                    tbl + static_cast<std::size_t>(g) * kLutGroupBytes)));
        const __m256i thi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(
                reinterpret_cast<const __m128i*>(
                    tbl + static_cast<std::size_t>(g) * kLutGroupBytes + 16)));
        const __m256i lo = _mm256_shuffle_epi8(tlo, idx);
        const __m256i hi = _mm256_shuffle_epi8(thi, idx);
        s_a = _mm256_add_epi16(s_a, _mm256_unpacklo_epi8(lo, hi));
        s_b = _mm256_add_epi16(s_b, _mm256_unpackhi_epi8(lo, hi));
      }
      acc0 = _mm256_add_epi32(
          acc0, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(s_a)));
      acc1 = _mm256_add_epi32(
          acc1, _mm256_cvtepi16_epi32(_mm256_castsi256_si128(s_b)));
      acc2 = _mm256_add_epi32(
          acc2, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(s_a, 1)));
      acc3 = _mm256_add_epi32(
          acc3, _mm256_cvtepi16_epi32(_mm256_extracti128_si256(s_b, 1)));
    }
    alignas(32) std::int32_t buf[kLutTileM];
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf), acc0);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 8), acc1);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 16), acc2);
    _mm256_store_si256(reinterpret_cast<__m256i*>(buf + 24), acc3);
    for (int r = 0; r < rows; ++r) {
      acc[static_cast<std::size_t>(r) * n + j] = buf[r];
    }
  }
}

}  // namespace qmcu::nn::ops::lut

#endif  // defined(__AVX2__)
