// lut_gemm_neon.cpp — AArch64 NEON vqtbl1q body of the LUT-GEMM tier.
//
// Same structure as the AVX2 body at half the register width: per
// (channel, group) the two 16-byte table planes are looked up with one
// vqtbl1q_u8 per plane per 16-lane half of the index tile, vzipq_u8
// reassembles the little-endian int16 entries, and int16 chunk sums
// (bounded by kLutChunkGroups, see lut_kernels.h) widen into int32 —
// arithmetic identical to the scalar core. vqtbl1q is AArch64-only, so
// 32-bit ARM builds leave the table entry null (scalar fallback).
#include "nn/ops/lut/lut_simd_bodies.h"

#if defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))

#include <arm_neon.h>

#include "nn/ops/lut/lut_kernels.h"

namespace qmcu::nn::ops::lut {

void lut_gemm_block_neon(const std::uint8_t* idx_t, const std::int8_t* tables,
                         int rows, int n, int groups, std::int32_t* acc) {
  for (int j = 0; j < n; ++j) {
    const std::uint8_t* tbl = reinterpret_cast<const std::uint8_t*>(
        tables + static_cast<std::size_t>(j) * groups * kLutGroupBytes);
    int32x4_t acc32[kLutTileM / 4];
    for (auto& v : acc32) v = vdupq_n_s32(0);
    for (int g0 = 0; g0 < groups; g0 += kLutChunkGroups) {
      const int g1 = g0 + kLutChunkGroups < groups ? g0 + kLutChunkGroups
                                                   : groups;
      int16x8_t s0 = vdupq_n_s16(0);  // m 0..7
      int16x8_t s1 = vdupq_n_s16(0);  // m 8..15
      int16x8_t s2 = vdupq_n_s16(0);  // m 16..23
      int16x8_t s3 = vdupq_n_s16(0);  // m 24..31
      for (int g = g0; g < g1; ++g) {
        const std::uint8_t* ig =
            idx_t + static_cast<std::size_t>(g) * kLutTileM;
        const uint8x16_t idx_lo = vld1q_u8(ig);
        const uint8x16_t idx_hi = vld1q_u8(ig + 16);
        const uint8x16_t tlo =
            vld1q_u8(tbl + static_cast<std::size_t>(g) * kLutGroupBytes);
        const uint8x16_t thi =
            vld1q_u8(tbl + static_cast<std::size_t>(g) * kLutGroupBytes + 16);
        const uint8x16x2_t e_lo =
            vzipq_u8(vqtbl1q_u8(tlo, idx_lo), vqtbl1q_u8(thi, idx_lo));
        const uint8x16x2_t e_hi =
            vzipq_u8(vqtbl1q_u8(tlo, idx_hi), vqtbl1q_u8(thi, idx_hi));
        s0 = vaddq_s16(s0, vreinterpretq_s16_u8(e_lo.val[0]));
        s1 = vaddq_s16(s1, vreinterpretq_s16_u8(e_lo.val[1]));
        s2 = vaddq_s16(s2, vreinterpretq_s16_u8(e_hi.val[0]));
        s3 = vaddq_s16(s3, vreinterpretq_s16_u8(e_hi.val[1]));
      }
      acc32[0] = vaddw_s16(acc32[0], vget_low_s16(s0));
      acc32[1] = vaddw_s16(acc32[1], vget_high_s16(s0));
      acc32[2] = vaddw_s16(acc32[2], vget_low_s16(s1));
      acc32[3] = vaddw_s16(acc32[3], vget_high_s16(s1));
      acc32[4] = vaddw_s16(acc32[4], vget_low_s16(s2));
      acc32[5] = vaddw_s16(acc32[5], vget_high_s16(s2));
      acc32[6] = vaddw_s16(acc32[6], vget_low_s16(s3));
      acc32[7] = vaddw_s16(acc32[7], vget_high_s16(s3));
    }
    std::int32_t buf[kLutTileM];
    for (int q = 0; q < kLutTileM / 4; ++q) {
      vst1q_s32(buf + 4 * q, acc32[q]);
    }
    for (int r = 0; r < rows; ++r) {
      acc[static_cast<std::size_t>(r) * n + j] = buf[r];
    }
  }
}

}  // namespace qmcu::nn::ops::lut

#endif  // aarch64 NEON
