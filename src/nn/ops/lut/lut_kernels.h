// lut_kernels.h — T-MAC-style table-lookup GEMM for sub-byte activations.
//
// The paper's value-driven assignment leaves most layer *inputs* at 2 or 4
// bits while weights stay 8-bit symmetric, so the classic T-MAC orientation
// (tables over weight codes) flips here: the weights are the static side.
// pack_weights_lut builds, per output channel and per k-group, the table of
// partial dot products over every 2^b activation code, and the inner loop
// becomes one table lookup per group instead of a widen -> multiply ->
// accumulate chain per element:
//
//   4-bit: group = 1 input lane,   T[c] = dec4(c) * w[n][g]
//   2-bit: group = 2 input lanes,  T[c] = dec2(c & 3) * w[n][2g]
//                                       + dec2(c >> 2) * w[n][2g + 1]
//
// dec_b is the two's-complement decode of a truncated b-bit field — the
// same round-trip quant/bitpack.h relies on — so for any activation value
// inside the signed b-bit range the lookup reproduces x*w exactly, and the
// whole path is bit-identical to the Reference tier (the zero-point
// correction folds into the per-channel offset exactly as in the GEMM
// path; an odd 2-bit k-tail pads its missing lane with weight 0 and index
// bits 0, both of which contribute nothing).
//
// Table layout is [n][groups][2][16] int8: per (channel, group), 16 low
// bytes then 16 high bytes of the int16 entries — each plane is one
// 16-byte lane for vpshufb/vtbl, reassembled as lo | hi << 8. Entries fit
// int16 (|entry| <= 8 * 128 = 1024 at 4-bit, 2 * 2 * 128 = 512 at 2-bit);
// the vector bodies sum at most kLutChunkGroups tables in int16 before
// widening (16 * 1024 = 16384 < 2^15), so chunked int16 partial sums equal
// the scalar int32 sums exactly for every input.
#pragma once

#include <cstdint>
#include <span>

#include "nn/ops/gemm_int8.h"

namespace qmcu::nn::ops::simd {
struct SimdKernels;
}  // namespace qmcu::nn::ops::simd

namespace qmcu::nn::ops::lut {

// m-lanes per index tile: one vpshufb/vtbl covers 32/16 lanes, and 32 keeps
// the int16 chunk accumulators to four vector registers.
inline constexpr int kLutTileM = 32;
// Bytes per (channel, group) table: a 16-byte low plane + 16-byte high one.
inline constexpr int kLutGroupBytes = 32;
// Max tables summed in int16 before widening to int32 (overflow bound
// above). Shared by the AVX2 and NEON bodies so both match the scalar core.
inline constexpr int kLutChunkGroups = 16;

// Number of k-groups a row of `k` sub-byte lanes folds into. bits must be
// 2 or 4.
int lut_groups(int k, int bits);

// Size in bytes of the pack_weights_lut blob for an [n][k] weight matrix.
std::int64_t lut_table_bytes(int n, int k, int bits);

// Builds the [n][groups][2][16] table blob from row-major [n][k] int8
// weights (the export-time weight recode; baked once at CompiledModel
// construction via KernelBackend::prepack_lut).
void pack_weights_lut(std::span<const std::int8_t> qweights, int n, int k,
                      int bits, std::int8_t* tables);

// Encodes one m-tile of the im2col strip `a` ([rows][k] int8 lanes,
// rows <= kLutTileM) into group-major lookup indices
// idx_t[groups][kLutTileM]. Unused tail lanes are zeroed so the vector
// bodies can always run full-width (index 0 selects a real table entry,
// but rows beyond `rows` are never stored).
void lut_build_index_tile(const std::int8_t* a, int rows, int k, int bits,
                          std::uint8_t* idx_t);

// Scalar LUT-GEMM core: acc[r * n + j] = sum over groups of the table
// entry selected by idx_t[g * kLutTileM + r]. Writes (not accumulates
// into) rows * n int32 lanes. Same contract as the
// SimdKernels::lut_gemm_block vector bodies.
void lut_gemm_block_scalar(const std::uint8_t* idx_t,
                           const std::int8_t* tables, int rows, int n,
                           int groups, std::int32_t* acc);

// LUT analogue of gemm_int8_requant: `a` is the [m][k] im2col strip of
// unpacked sub-byte lanes, `tables` the pack_weights_lut blob. `idx_t`
// must hold lut_groups(k, bits) * kLutTileM bytes and `acc`
// min(m, kLutTileM) * n int32 lanes. Applies the identical GemmQuantPost
// epilogue (the Simd requantizer when available), so outputs are
// bit-identical to the GEMM path on the same strip.
void lut_gemm_requant(const std::int8_t* a, const std::int8_t* tables, int m,
                      int n, int k, int bits, const GemmQuantPost& post,
                      std::uint8_t* idx_t, std::int32_t* acc, std::int8_t* c,
                      const simd::SimdKernels* simd);

enum class LutForce { Auto, On, Off };

// Reads QMCU_FORCE_LUT / QMCU_NO_LUT afresh on every call — unlike
// QMCU_FORCE_SCALAR, which is latched at first ISA detection — so tests
// and benches can flip the mode mid-process. FORCE wins when both are set.
LutForce lut_force();

// Per-layer dispatch heuristic shared by KernelBackend and the memory
// planner. `m` is the GEMM row count per tile (conv: output row width,
// fc: 1); `cached_panels` whether the backend amortizes table construction
// across calls; `simd` the backend's microkernel table (null = scalar).
// The zero-point range check is an exactness precondition — im2col pads
// with the zero point, which must survive the b-bit encode round-trip —
// and is enforced even under LutForce::On.
bool lut_use(int bits, int zero_point, int n, int k, int m, bool fc,
             bool cached_panels, const simd::SimdKernels* simd);

// Whether the LUT recode for b-bit activations is resident under the
// current force mode: never when forced off, 2-bit in Auto (the only
// width whose table path wins end-to-end with 8-bit weights), and both
// sub-byte widths under QMCU_FORCE_LUT. Gates prepack (compiled models
// bake only tables that can run) and the memory planner's table pricing;
// a later env flip still works through the lazy panel build, it just
// pays table construction on first use.
bool lut_planned(int bits);

}  // namespace qmcu::nn::ops::lut
