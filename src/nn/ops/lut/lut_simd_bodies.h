// lut_simd_bodies.h — declarations of the per-ISA LUT-GEMM bodies, for the
// SimdKernels table initializers in nn/ops/simd/. Each body lives in its
// own TU under nn/ops/lut/ so it can carry the ISA-specific compile flags;
// the declarations are guarded the same way the defining TUs are, so a
// build without the ISA simply leaves the table entry null (scalar
// fallback), never an unresolved symbol.
#pragma once

#include <cstdint>

namespace qmcu::nn::ops::lut {

#if defined(__AVX2__)
// vpshufb body: both 16-byte table planes are broadcast across the 256-bit
// register, one shuffle per plane gathers all kLutTileM lanes' bytes, and
// byte interleaving reassembles the int16 entries.
void lut_gemm_block_avx2(const std::uint8_t* idx_t, const std::int8_t* tables,
                         int rows, int n, int groups, std::int32_t* acc);
#endif

#if defined(__aarch64__) && (defined(__ARM_NEON) || defined(__ARM_NEON__))
// vqtbl1q body (AArch64 only — the 16-byte table lookup is not available
// as a single instruction on 32-bit ARM, which keeps the entry null there).
void lut_gemm_block_neon(const std::uint8_t* idx_t, const std::int8_t* tables,
                         int rows, int n, int groups, std::int32_t* acc);
#endif

}  // namespace qmcu::nn::ops::lut
