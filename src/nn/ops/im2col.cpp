#include "nn/ops/im2col.h"

#include <algorithm>
#include <cstring>

#include "quant/bitpack.h"

namespace qmcu::nn::ops {

TensorShape conv_output_shape(const TensorShape& in, const Layer& l,
                              int out_channels) {
  const int oh = (in.h + 2 * l.pad_h - l.kernel_h) / l.stride_h + 1;
  const int ow = (in.w + 2 * l.pad_w - l.kernel_w) / l.stride_w + 1;
  return {oh, ow, out_channels};
}

std::int64_t im2col_row_elements(const TensorShape& in, const Layer& l) {
  return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * in.c;
}

KernelRange valid_kernel_range(int i0, int kernel, int extent) {
  return {std::max(0, -i0), std::min(kernel, extent - i0)};
}

namespace {

// Shared packing skeleton. `copy(dst, src_element_offset, count)` transfers
// `count` lanes from the source representation; `fill(dst, count)` writes
// the padding value. Both operate on T lanes.
template <typename T, typename Copy, typename Fill>
void pack_row_impl(const TensorShape& in, const Layer& l, int oy, int out_w,
                   T* dst, const Copy& copy, const Fill& fill) {
  const int c = in.c;
  const int kw_row = l.kernel_w * c;  // lanes per kernel row segment
  const int iy0 = oy * l.stride_h - l.pad_h;
  for (int ox = 0; ox < out_w; ++ox) {
    const int ix0 = ox * l.stride_w - l.pad_w;
    T* row = dst + static_cast<std::size_t>(ox) *
                       static_cast<std::size_t>(l.kernel_h) * kw_row;
    const bool x_interior = ix0 >= 0 && ix0 + l.kernel_w <= in.w;
    for (int ky = 0; ky < l.kernel_h; ++ky) {
      const int iy = iy0 + ky;
      T* seg = row + static_cast<std::size_t>(ky) * kw_row;
      if (iy < 0 || iy >= in.h) {
        fill(seg, kw_row);
        continue;
      }
      if (x_interior) {
        // Interior: the kernel row is one contiguous NHWC slab.
        copy(seg, static_cast<std::int64_t>(flat_index(in, iy, ix0, 0)),
             kw_row);
        continue;
      }
      for (int kx = 0; kx < l.kernel_w; ++kx) {
        const int ix = ix0 + kx;
        T* lane = seg + static_cast<std::size_t>(kx) * c;
        if (ix < 0 || ix >= in.w) {
          fill(lane, c);
        } else {
          copy(lane, static_cast<std::int64_t>(flat_index(in, iy, ix, 0)), c);
        }
      }
    }
  }
}

}  // namespace

void im2col_pack_row(std::span<const std::int8_t> x, const TensorShape& in,
                     const Layer& l, int oy, int out_w, std::int8_t pad_value,
                     std::int8_t* dst) {
  pack_row_impl<std::int8_t>(
      in, l, oy, out_w, dst,
      [&](std::int8_t* d, std::int64_t off, int n) {
        std::memcpy(d, x.data() + off, static_cast<std::size_t>(n));
      },
      [&](std::int8_t* d, int n) {
        std::memset(d, pad_value, static_cast<std::size_t>(n));
      });
}

void im2col_pack_row_f32(std::span<const float> x, const TensorShape& in,
                         const Layer& l, int oy, int out_w, float* dst) {
  pack_row_impl<float>(
      in, l, oy, out_w, dst,
      [&](float* d, std::int64_t off, int n) {
        std::memcpy(d, x.data() + off, static_cast<std::size_t>(n) *
                                           sizeof(float));
      },
      [&](float* d, int n) { std::fill_n(d, n, 0.0f); });
}

void im2col_pack_row_subbyte(std::span<const std::uint8_t> packed, int bits,
                             const TensorShape& in, const Layer& l, int oy,
                             int out_w, std::int8_t pad_value,
                             std::int8_t* dst,
                             const simd::SimdKernels* simd) {
  pack_row_impl<std::int8_t>(
      in, l, oy, out_w, dst,
      [&](std::int8_t* d, std::int64_t off, int n) {
        quant::unpack_into(packed, off, n, bits, d, simd);
      },
      [&](std::int8_t* d, int n) {
        std::memset(d, pad_value, static_cast<std::size_t>(n));
      });
}

}  // namespace qmcu::nn::ops
