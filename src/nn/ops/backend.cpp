#include "nn/ops/backend.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "nn/ops/float_kernels.h"
#include "nn/ops/gemm_int8.h"
#include "nn/ops/im2col.h"
#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/simd/simd_kernels.h"
#include "quant/bitpack.h"

namespace qmcu::nn::ops {

KernelBackend::KernelBackend(KernelTier tier, bool cache_weight_panels)
    : tier_(tier),
      simd_(tier == KernelTier::Simd ? simd::kernels() : nullptr),
      cache_weight_panels_(cache_weight_panels) {}

namespace {

template <typename T>
std::span<T> take_block(std::vector<std::vector<T>>& blocks, std::size_t& next,
                        std::size_t n) {
  if (next == blocks.size()) blocks.emplace_back();
  std::vector<T>& block = blocks[next++];
  if (block.size() < n) block.resize(n);
  return std::span<T>(block.data(), n);
}

}  // namespace

std::span<std::int8_t> ScratchArena::i8(std::size_t n) {
  affinity_.check("ScratchArena");
  return take_block(i8_blocks_, i8_next_, n);
}

std::span<std::int32_t> ScratchArena::i32(std::size_t n) {
  affinity_.check("ScratchArena");
  return take_block(i32_blocks_, i32_next_, n);
}

std::span<float> ScratchArena::f32(std::size_t n) {
  affinity_.check("ScratchArena");
  return take_block(f32_blocks_, f32_next_, n);
}

void ScratchArena::reset() {
  affinity_.check("ScratchArena");
  i8_next_ = 0;
  i32_next_ = 0;
  f32_next_ = 0;
}

std::size_t ScratchArena::footprint_bytes() const {
  std::size_t total = 0;
  for (const auto& b : i8_blocks_) total += b.capacity();
  for (const auto& b : i32_blocks_) total += b.capacity() * sizeof(std::int32_t);
  for (const auto& b : f32_blocks_) total += b.capacity() * sizeof(float);
  return total;
}

// ---------------------------------------------------------------------------
// Fast integer tier.

namespace {

// Output-index range [lo, hi) along one axis whose windows lie fully inside
// the input — the interior that runs branch-free; everything outside is the
// border handled with per-position bounds checks.
struct OutputInterior {
  int lo;
  int hi;  // exclusive
};

OutputInterior output_interior(int kernel, int stride, int pad, int extent,
                               int out_extent) {
  int lo = pad <= 0 ? 0 : (pad + stride - 1) / stride;
  int hi_inclusive = (extent - kernel + pad) / stride;
  lo = std::max(lo, 0);
  hi_inclusive = std::min(hi_inclusive, out_extent - 1);
  return {lo, hi_inclusive + 1};
}

// Shared im2col + GEMM driver. `pack_row(oy, dst)` fills one output row's
// im2col strip; everything else (zero-point folding, requantization) is
// common to the unpacked and packed-input paths. `bt`/`wsum` come from
// KernelBackend::weight_panel; the arena must already be reset by the
// caller (the panel may live in it). Writes into the caller-bound `out`.
// `simd` routes the GEMM block + epilogue through the Simd tier's
// microkernels (null = Fast scalar; outputs identical either way).
template <typename PackRow>
void fast_conv2d_impl(ScratchArena& arena, const TensorShape& is,
                      const QuantParams& ip, const Layer& l,
                      std::span<const std::int8_t> bt,
                      std::span<const std::int32_t> wsum,
                      const QuantParams& wparams,
                      std::span<const std::int32_t> qbias,
                      const PackRow& pack_row, QTensor& out,
                      const simd::SimdKernels* simd,
                      std::span<const std::int32_t> pre_offset = {}) {
  const TensorShape os = conv_output_shape(is, l, l.out_channels);
  const int n = l.out_channels;
  const int k = static_cast<int>(im2col_row_elements(is, l));
  QMCU_REQUIRE(out.shape() == os, "conv2d: destination shape mismatch");
  const QuantParams& out_params = out.params();

  // Per-column constant folding bias and the input zero-point correction.
  // The AVX-VNNI generation's GEMM block biases every activation lane by
  // +128 (see SimdKernels::gemm_a_bias); treating the bias as part of the
  // zero point folds its -128*Σw correction into the same constant.
  // `pre_offset` (a registered artifact row validated by the caller against
  // the live a_zp) skips the per-run recomputation.
  std::span<const std::int32_t> offset = pre_offset;
  if (offset.empty()) {
    const std::int32_t a_zp =
        ip.zero_point + simd::gemm_activation_bias(simd);
    auto row = arena.i32(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const std::int32_t bias =
          qbias.empty() ? 0 : qbias[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(j)] =
          bias - a_zp * wsum[static_cast<std::size_t>(j)];
    }
    offset = row;
  }
  auto a = arena.i8(static_cast<std::size_t>(os.w) * k);
  auto acc = arena.i32(4 * static_cast<std::size_t>(n));

  GemmQuantPost post;
  post.offset = offset.data();
  post.multiplier = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  post.output_zp = out_params.zero_point;
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  post.act_lo = act_lo;
  post.act_hi = act_hi;

  std::int8_t* y = out.data().data();
  for (int oy = 0; oy < os.h; ++oy) {
    pack_row(oy, a.data());
    gemm_int8_requant(a.data(), bt.data(), os.w, n, k, post, acc.data(),
                      y + static_cast<std::size_t>(oy) * os.w * n, simd);
  }
}

// LUT twin of fast_conv2d_impl: same zero-point folding and epilogue, but
// the inner product runs over the prepacked lookup tables instead of the
// k-major panel. `tables`/`wsum` come from KernelBackend::lut_panel; the
// arena must already be reset by the caller (the tables may live in it).
template <typename PackRow>
void lut_conv2d_impl(ScratchArena& arena, const TensorShape& is,
                     const QuantParams& ip, const Layer& l,
                     std::span<const std::int8_t> tables,
                     std::span<const std::int32_t> wsum,
                     const QuantParams& wparams,
                     std::span<const std::int32_t> qbias,
                     const PackRow& pack_row, QTensor& out,
                     const simd::SimdKernels* simd,
                     std::span<const std::int32_t> pre_offset = {}) {
  const TensorShape os = conv_output_shape(is, l, l.out_channels);
  const int n = l.out_channels;
  const int k = static_cast<int>(im2col_row_elements(is, l));
  const int groups = lut::lut_groups(k, ip.bits);
  QMCU_REQUIRE(out.shape() == os, "conv2d: destination shape mismatch");
  const QuantParams& out_params = out.params();

  // The LUT path has no activation bias, so its registered rows are keyed
  // at a_zp == ip.zero_point exactly.
  std::span<const std::int32_t> offset = pre_offset;
  if (offset.empty()) {
    auto row = arena.i32(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const std::int32_t bias =
          qbias.empty() ? 0 : qbias[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(j)] =
          bias - ip.zero_point * wsum[static_cast<std::size_t>(j)];
    }
    offset = row;
  }
  auto a = arena.i8(static_cast<std::size_t>(os.w) * k);
  auto idx = arena.i8(static_cast<std::size_t>(groups) * lut::kLutTileM);
  auto acc = arena.i32(
      static_cast<std::size_t>(std::min(lut::kLutTileM, os.w)) * n);

  GemmQuantPost post;
  post.offset = offset.data();
  post.multiplier = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  post.output_zp = out_params.zero_point;
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  post.act_lo = act_lo;
  post.act_hi = act_hi;

  std::int8_t* y = out.data().data();
  for (int oy = 0; oy < os.h; ++oy) {
    pack_row(oy, a.data());
    lut::lut_gemm_requant(a.data(), tables.data(), os.w, n, k, ip.bits, post,
                          reinterpret_cast<std::uint8_t*>(idx.data()),
                          acc.data(),
                          y + static_cast<std::size_t>(oy) * os.w * n, simd);
  }
}

void fast_depthwise_conv2d(ScratchArena& arena, const QTensor& in,
                           const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias, QTensor& out,
                           const simd::SimdKernels* simd) {
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, is.c);
  const int c = is.c;
  QMCU_REQUIRE(static_cast<std::int64_t>(qweights.size()) ==
                   static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * c,
               "dwconv weight count mismatch");
  QMCU_REQUIRE(out.shape() == os,
               "depthwise_conv2d: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const std::int32_t zp = ip.zero_point;
  const std::int8_t* x = in.data().data();
  const std::int8_t* w = qweights.data();
  std::int8_t* y = out.data().data();

  arena.reset();
  auto acc = arena.i32(static_cast<std::size_t>(c));

  const OutputInterior oy_int =
      output_interior(l.kernel_h, l.stride_h, l.pad_h, is.h, os.h);
  const OutputInterior ox_int =
      output_interior(l.kernel_w, l.stride_w, l.pad_w, is.w, os.w);

  const auto accumulate =
      (simd != nullptr) ? simd->dw_accumulate : nullptr;
  const auto requant_row =
      (simd != nullptr) ? simd->requant_i32_row : nullptr;

  const auto run_pixel = [&](int oy, int ox, bool border) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    const int ix0 = ox * l.stride_w - l.pad_w;
    const KernelRange kyr =
        border ? valid_kernel_range(iy0, l.kernel_h, is.h)
               : KernelRange{0, l.kernel_h};
    const KernelRange kxr =
        border ? valid_kernel_range(ix0, l.kernel_w, is.w)
               : KernelRange{0, l.kernel_w};
    const int ky_lo = kyr.lo;
    const int ky_hi = kyr.hi;
    const int kx_lo = kxr.lo;
    const int kx_hi = kxr.hi;
    if (qbias.empty()) {
      std::fill(acc.begin(), acc.end(), 0);
    } else {
      std::memcpy(acc.data(), qbias.data(),
                  static_cast<std::size_t>(c) * sizeof(std::int32_t));
    }
    for (int ky = ky_lo; ky < ky_hi; ++ky) {
      const std::int8_t* xrow =
          x + static_cast<std::size_t>(
                  flat_index(is, iy0 + ky, ix0 + kx_lo, 0));
      const std::int8_t* wrow =
          w + (static_cast<std::size_t>(ky) *
                   static_cast<std::size_t>(l.kernel_w) +
               static_cast<std::size_t>(kx_lo)) *
                  static_cast<std::size_t>(c);
      // One contiguous channel run per kernel position; the Simd MAC row
      // computes the identical (x - zp) * w int32 sums.
      for (int kx = kx_lo; kx < kx_hi; ++kx) {
        if (accumulate != nullptr) {
          accumulate(xrow, wrow, c, zp, acc.data());
        } else {
          for (int ch = 0; ch < c; ++ch) {
            acc[static_cast<std::size_t>(ch)] +=
                (static_cast<std::int32_t>(xrow[ch]) - zp) * wrow[ch];
          }
        }
        xrow += c;
        wrow += c;
      }
    }
    std::int8_t* yrow =
        y + static_cast<std::size_t>(flat_index(os, oy, ox, 0));
    if (requant_row != nullptr) {
      requant_row(acc.data(), nullptr, c, m, out_params.zero_point, act_lo,
                  act_hi, yrow);
      return;
    }
    for (int ch = 0; ch < c; ++ch) {
      yrow[ch] = static_cast<std::int8_t>(
          clamp_to(apply_multiplier(acc[static_cast<std::size_t>(ch)], m) +
                       out_params.zero_point,
                   act_lo, act_hi));
    }
  };

  for (int oy = 0; oy < os.h; ++oy) {
    const bool y_border = oy < oy_int.lo || oy >= oy_int.hi;
    for (int ox = 0; ox < os.w; ++ox) {
      const bool border = y_border || ox < ox_int.lo || ox >= ox_int.hi;
      run_pixel(oy, ox, border);
    }
  }
}

}  // namespace

KernelBackend::PanelView KernelBackend::weight_panel(
    std::span<const std::int8_t> qweights, int n, int k) {
  if (!adopted_panels_.empty()) {
    const auto it = adopted_panels_.find(qweights.data());
    if (it != adopted_panels_.end() &&
        static_cast<int>(it->second.wsum.size()) == n &&
        static_cast<std::int64_t>(it->second.bt.size()) ==
            static_cast<std::int64_t>(n) * k) {
      return it->second;
    }
  }
  if (cache_weight_panels_) {
    WeightPanel& p = panels_[qweights.data()];
    if (static_cast<int>(p.wsum.size()) != n ||
        static_cast<std::int64_t>(p.bt.size()) !=
            static_cast<std::int64_t>(n) * k) {
      p.bt.resize(static_cast<std::size_t>(n) * k);
      pack_weights_kmajor(qweights, n, k, p.bt.data());
      p.wsum.resize(static_cast<std::size_t>(n));
      weight_column_sums(qweights, n, k, p.wsum.data());
    }
    return {p.bt, p.wsum};
  }
  auto bt = arena_.i8(static_cast<std::size_t>(n) * k);
  pack_weights_kmajor(qweights, n, k, bt.data());
  auto wsum = arena_.i32(static_cast<std::size_t>(n));
  weight_column_sums(qweights, n, k, wsum.data());
  return {bt, wsum};
}

void KernelBackend::prepack(std::span<const std::int8_t> qweights, int n,
                            int k) {
  if (!cache_weight_panels_) return;
  (void)weight_panel(qweights, n, k);
}

KernelBackend::LutView KernelBackend::lut_panel(
    std::span<const std::int8_t> qweights, int n, int k, int bits) {
  const std::int64_t bytes = lut::lut_table_bytes(n, k, bits);
  const auto& adopted = adopted_lut_[bits == 4 ? 1 : 0];
  if (!adopted.empty()) {
    const auto it = adopted.find(qweights.data());
    if (it != adopted.end() &&
        static_cast<int>(it->second.wsum.size()) == n &&
        static_cast<std::int64_t>(it->second.tables.size()) == bytes) {
      return it->second;
    }
  }
  if (cache_weight_panels_) {
    LutPanel& p = lut_panels_[bits == 4 ? 1 : 0][qweights.data()];
    if (static_cast<int>(p.wsum.size()) != n ||
        static_cast<std::int64_t>(p.tables.size()) != bytes) {
      p.tables.resize(static_cast<std::size_t>(bytes));
      lut::pack_weights_lut(qweights, n, k, bits, p.tables.data());
      p.wsum.resize(static_cast<std::size_t>(n));
      weight_column_sums(qweights, n, k, p.wsum.data());
    }
    return {p.tables, p.wsum};
  }
  auto tables = arena_.i8(static_cast<std::size_t>(bytes));
  lut::pack_weights_lut(qweights, n, k, bits, tables.data());
  auto wsum = arena_.i32(static_cast<std::size_t>(n));
  weight_column_sums(qweights, n, k, wsum.data());
  return {tables, wsum};
}

void KernelBackend::prepack_lut(std::span<const std::int8_t> qweights, int n,
                                int k, int bits) {
  if (!cache_weight_panels_) return;
  (void)lut_panel(qweights, n, k, bits);
}

void KernelBackend::adopt_panel(const std::int8_t* key,
                                std::span<const std::int8_t> bt,
                                std::span<const std::int32_t> wsum) {
  QMCU_REQUIRE(key != nullptr && !bt.empty() && !wsum.empty(),
               "adopt_panel: empty panel");
  adopted_panels_[key] = PanelView{bt, wsum};
}

void KernelBackend::adopt_lut_panel(const std::int8_t* key, int bits,
                                    std::span<const std::int8_t> tables,
                                    std::span<const std::int32_t> wsum) {
  QMCU_REQUIRE(key != nullptr && (bits == 2 || bits == 4) &&
                   !tables.empty() && !wsum.empty(),
               "adopt_lut_panel: empty table blob");
  adopted_lut_[bits == 4 ? 1 : 0][key] = LutView{tables, wsum};
}

void KernelBackend::register_offset_row(const std::int8_t* key,
                                        std::int32_t a_zp,
                                        std::span<const std::int32_t> offset) {
  QMCU_REQUIRE(key != nullptr && !offset.empty(),
               "register_offset_row: empty row");
  offset_rows_[key] = OffsetRow{a_zp, offset};
}

std::span<const std::int32_t> KernelBackend::offset_row(
    const std::int8_t* key, std::int32_t a_zp, int n) const {
  if (offset_rows_.empty()) return {};
  const auto it = offset_rows_.find(key);
  if (it == offset_rows_.end() || it->second.a_zp != a_zp ||
      static_cast<int>(it->second.offset.size()) != n) {
    return {};
  }
  return it->second.offset;
}

void KernelBackend::conv2d_into(const QTensor& in, const Layer& l,
                                std::span<const std::int8_t> qweights,
                                const QuantParams& wparams,
                                std::span<const std::int32_t> qbias,
                                QTensor& out) {
  guard();
  if (tier_ == KernelTier::Reference) {
    conv2d_q_into(in, l, qweights, wparams, qbias, out);
    return;
  }
  const TensorShape& is = in.shape();
  const int n = l.out_channels;
  const std::int64_t k = im2col_row_elements(is, l);
  QMCU_REQUIRE(static_cast<std::int64_t>(qweights.size()) == k * n,
               "conv weight count mismatch");
  const auto x = in.data();
  const QuantParams& ip = in.params();
  const std::int8_t pad = static_cast<std::int8_t>(ip.zero_point);
  const auto pack_row = [&](int oy, std::int8_t* dst) {
    im2col_pack_row(x, is, l, oy,
                    conv_output_shape(is, l, l.out_channels).w, pad, dst);
  };
  if (lut::lut_use(ip.bits, ip.zero_point, n, static_cast<int>(k),
                   conv_output_shape(is, l, n).w, /*fc=*/false,
                   cache_weight_panels_, simd_)) {
    arena_.reset();
    const LutView t = lut_panel(qweights, n, static_cast<int>(k), ip.bits);
    lut_conv2d_impl(arena_, is, ip, l, t.tables, t.wsum, wparams, qbias,
                    pack_row, out, simd_,
                    offset_row(qweights.data(), ip.zero_point, n));
    return;
  }
  arena_.reset();
  const PanelView w = weight_panel(qweights, n, static_cast<int>(k));
  fast_conv2d_impl(
      arena_, is, ip, l, w.bt, w.wsum, wparams, qbias, pack_row, out, simd_,
      offset_row(qweights.data(),
                 ip.zero_point + simd::gemm_activation_bias(simd_), n));
}

QTensor KernelBackend::conv2d(const QTensor& in, const Layer& l,
                              std::span<const std::int8_t> qweights,
                              const QuantParams& wparams,
                              std::span<const std::int32_t> qbias,
                              const QuantParams& out_params) {
  guard();
  QTensor out(conv_output_shape(in.shape(), l, l.out_channels), out_params);
  conv2d_into(in, l, qweights, wparams, qbias, out);
  return out;
}

QTensor KernelBackend::conv2d_packed(std::span<const std::uint8_t> packed,
                                     const TensorShape& in_shape,
                                     const QuantParams& in_params,
                                     const Layer& l,
                                     std::span<const std::int8_t> qweights,
                                     const QuantParams& wparams,
                                     std::span<const std::int32_t> qbias,
                                     const QuantParams& out_params) {
  guard();
  QMCU_REQUIRE(
      static_cast<std::int64_t>(packed.size()) >=
          in_shape.bytes(in_params.bits),
      "packed activation buffer too small");
  if (tier_ == KernelTier::Reference) {
    // Reference path materializes the unpacked tensor first.
    QTensor in(in_shape, in_params);
    quant::unpack_into(packed, 0, in_shape.elements(), in_params.bits,
                       in.data().data());
    return conv2d_q(in, l, qweights, wparams, qbias, out_params);
  }
  const int n = l.out_channels;
  const std::int64_t k = im2col_row_elements(in_shape, l);
  QMCU_REQUIRE(static_cast<std::int64_t>(qweights.size()) == k * n,
               "conv weight count mismatch");
  const std::int8_t pad = static_cast<std::int8_t>(in_params.zero_point);
  const int bits = in_params.bits;
  QTensor out(conv_output_shape(in_shape, l, l.out_channels), out_params);
  const auto pack_row = [&](int oy, std::int8_t* dst) {
    im2col_pack_row_subbyte(
        packed, bits, in_shape, l, oy,
        conv_output_shape(in_shape, l, l.out_channels).w, pad, dst, simd_);
  };
  if (lut::lut_use(bits, in_params.zero_point, n, static_cast<int>(k),
                   conv_output_shape(in_shape, l, n).w, /*fc=*/false,
                   cache_weight_panels_, simd_)) {
    arena_.reset();
    const LutView t = lut_panel(qweights, n, static_cast<int>(k), bits);
    lut_conv2d_impl(arena_, in_shape, in_params, l, t.tables, t.wsum, wparams,
                    qbias, pack_row, out, simd_,
                    offset_row(qweights.data(), in_params.zero_point, n));
    return out;
  }
  arena_.reset();
  const PanelView w = weight_panel(qweights, n, static_cast<int>(k));
  fast_conv2d_impl(
      arena_, in_shape, in_params, l, w.bt, w.wsum, wparams, qbias, pack_row,
      out, simd_,
      offset_row(qweights.data(),
                 in_params.zero_point + simd::gemm_activation_bias(simd_), n));
  return out;
}

void KernelBackend::depthwise_conv2d_into(const QTensor& in, const Layer& l,
                                          std::span<const std::int8_t> qweights,
                                          const QuantParams& wparams,
                                          std::span<const std::int32_t> qbias,
                                          QTensor& out) {
  guard();
  if (tier_ == KernelTier::Reference) {
    depthwise_conv2d_q_into(in, l, qweights, wparams, qbias, out);
    return;
  }
  fast_depthwise_conv2d(arena_, in, l, qweights, wparams, qbias, out, simd_);
}

QTensor KernelBackend::depthwise_conv2d(const QTensor& in, const Layer& l,
                                        std::span<const std::int8_t> qweights,
                                        const QuantParams& wparams,
                                        std::span<const std::int32_t> qbias,
                                        const QuantParams& out_params) {
  guard();
  QTensor out(conv_output_shape(in.shape(), l, in.shape().c), out_params);
  depthwise_conv2d_into(in, l, qweights, wparams, qbias, out);
  return out;
}

void KernelBackend::fully_connected_into(const QTensor& in, const Layer& l,
                                         std::span<const std::int8_t> qweights,
                                         const QuantParams& wparams,
                                         std::span<const std::int32_t> qbias,
                                         QTensor& out) {
  guard();
  if (tier_ == KernelTier::Reference) {
    fully_connected_q_into(in, l, qweights, wparams, qbias, out);
    return;
  }
  // M == 1 GEMM: four output channels at a time against the flat input so
  // each loaded activation feeds four weight rows; no repacking needed.
  const std::int64_t in_features = in.elements();
  QMCU_REQUIRE(static_cast<std::int64_t>(qweights.size()) ==
                   in_features * l.out_channels,
               "fc weight count mismatch");
  QMCU_REQUIRE(out.shape() == TensorShape(1, 1, l.out_channels),
               "fully_connected: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& ip = in.params();
  const int kf_lut = static_cast<int>(in_features);
  if (lut::lut_use(ip.bits, ip.zero_point, l.out_channels, kf_lut, /*m=*/1,
                   /*fc=*/true, cache_weight_panels_, simd_)) {
    arena_.reset();
    const LutView t = lut_panel(qweights, l.out_channels, kf_lut, ip.bits);
    const int n = l.out_channels;
    std::span<const std::int32_t> offset =
        offset_row(qweights.data(), ip.zero_point, n);
    if (offset.empty()) {
      auto row = arena_.i32(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j) {
        const std::int32_t bias =
            qbias.empty() ? 0 : qbias[static_cast<std::size_t>(j)];
        row[static_cast<std::size_t>(j)] =
            bias - ip.zero_point * t.wsum[static_cast<std::size_t>(j)];
      }
      offset = row;
    }
    const int groups = lut::lut_groups(kf_lut, ip.bits);
    auto idx = arena_.i8(static_cast<std::size_t>(groups) * lut::kLutTileM);
    auto acc = arena_.i32(static_cast<std::size_t>(n));
    GemmQuantPost post;
    post.offset = offset.data();
    post.multiplier = quantize_multiplier(
        static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
    post.output_zp = out_params.zero_point;
    const auto [lut_lo, lut_hi] = activation_range(l.act, out_params);
    post.act_lo = lut_lo;
    post.act_hi = lut_hi;
    lut::lut_gemm_requant(in.data().data(), t.tables.data(), 1, n, kf_lut,
                          ip.bits, post,
                          reinterpret_cast<std::uint8_t*>(idx.data()),
                          acc.data(), out.data().data(), simd_);
    return;
  }
  // m == 1 GEMM over the k-major weight panel: the same accumulator tile
  // (and Simd microkernel — pair-madd or dot-product generation) as conv,
  // with CMSIS-NN zero-point folding in place of the per-lane subtraction.
  // The panel is cached/prepacked exactly like a conv panel, so compiled
  // models pay the repack once at construction.
  const int n = l.out_channels;
  const int k = static_cast<int>(in_features);
  arena_.reset();
  const PanelView w = weight_panel(qweights, n, k);
  const std::int32_t a_zp =
      ip.zero_point + simd::gemm_activation_bias(simd_);
  std::span<const std::int32_t> offset = offset_row(qweights.data(), a_zp, n);
  if (offset.empty()) {
    auto row = arena_.i32(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const std::int32_t bias =
          qbias.empty() ? 0 : qbias[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(j)] =
          bias - a_zp * w.wsum[static_cast<std::size_t>(j)];
    }
    offset = row;
  }
  auto acc = arena_.i32(static_cast<std::size_t>(n));  // one row: m == 1
  GemmQuantPost post;
  post.offset = offset.data();
  post.multiplier = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  post.output_zp = out_params.zero_point;
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  post.act_lo = act_lo;
  post.act_hi = act_hi;
  gemm_int8_requant(in.data().data(), w.bt.data(), 1, n, k, post, acc.data(),
                    out.data().data(), simd_);
}

QTensor KernelBackend::fully_connected(const QTensor& in, const Layer& l,
                                       std::span<const std::int8_t> qweights,
                                       const QuantParams& wparams,
                                       std::span<const std::int32_t> qbias,
                                       const QuantParams& out_params) {
  guard();
  QTensor out(TensorShape{1, 1, l.out_channels}, out_params);
  fully_connected_into(in, l, qweights, wparams, qbias, out);
  return out;
}

QTensor KernelBackend::max_pool(const QTensor& in, const Layer& l) {
  guard();
  // The reference max pool is already branch-light after the row-pointer
  // hoist; both tiers share it.
  return max_pool_q(in, l);
}

void KernelBackend::max_pool_into(const QTensor& in, const Layer& l,
                                  QTensor& out) {
  guard();
  max_pool_q_into(in, l, out);
}

QTensor KernelBackend::avg_pool(const QTensor& in, const Layer& l) {
  guard();
  // Single integer implementation (interior/border aware) for both tiers.
  return avg_pool_q(in, l);
}

void KernelBackend::avg_pool_into(const QTensor& in, const Layer& l,
                                  QTensor& out) {
  guard();
  // The reciprocal table depends only on the window size — cache it so
  // repeated runs stop paying its construction.
  const int count = l.kernel_h * l.kernel_w;
  auto it = avg_pool_tables_.find(count);
  if (it == avg_pool_tables_.end()) {
    it = avg_pool_tables_.emplace(count, AvgPoolMultipliers(count)).first;
  }
  avg_pool_q_into(in, l, it->second, out);
}

QTensor KernelBackend::global_avg_pool(const QTensor& in) {
  guard();
  return global_avg_pool_q(in);
}

void KernelBackend::global_avg_pool_into(const QTensor& in, QTensor& out) {
  guard();
  arena_.reset();
  global_avg_pool_q_into(
      in, arena_.i32(static_cast<std::size_t>(in.shape().c)), out);
}

QTensor KernelBackend::add(const QTensor& lhs, const QTensor& rhs,
                           Activation act, const QuantParams& out_params) {
  guard();
  return add_q(lhs, rhs, act, out_params);
}

void KernelBackend::add_into(const QTensor& lhs, const QTensor& rhs,
                             Activation act, QTensor& out) {
  guard();
  add_q_into(lhs, rhs, act, out);
}

QTensor KernelBackend::concat(std::span<const QTensor* const> inputs,
                              const QuantParams& out_params) {
  guard();
  return concat_q(inputs, out_params);
}

void KernelBackend::concat_into(std::span<const QTensor* const> inputs,
                                QTensor& out) {
  guard();
  concat_q_into(inputs, out);
}

QTensor KernelBackend::softmax(const QTensor& in,
                               const QuantParams& out_params) {
  guard();
  return softmax_q(in, out_params);
}

void KernelBackend::softmax_into(const QTensor& in, QTensor& out) {
  guard();
  // Same arithmetic chain as softmax_q (dequantize → softmax_f32 →
  // quantize), with the float detour living in arena scratch instead of
  // two heap tensors.
  QMCU_REQUIRE(out.shape() == in.shape(),
               "softmax: destination shape mismatch");
  arena_.reset();
  const std::size_t n = in.data().size();
  auto real_buf = arena_.f32(n);
  auto soft_buf = arena_.f32(n);
  Tensor real(in.shape(), std::span<float>(real_buf.data(), n));
  dequantize_into(in, real);
  Tensor soft(in.shape(), std::span<float>(soft_buf.data(), n));
  softmax_f32_into(real, soft);
  quantize_into(soft, out);
}

QTensor KernelBackend::requantize(const QTensor& q, const QuantParams& target) {
  guard();
  if (q.params() == target) return q;
  QTensor out(q.shape(), target);
  requantize_into(q, out);  // dispatches the Simd slice requantizer
  return out;
}

void KernelBackend::requantize_into(const QTensor& q, QTensor& out) {
  guard();
  if (simd_ != nullptr && simd_->requant_i8_row != nullptr &&
      !(q.params() == out.params())) {
    // Same ElementRequantizer construction and rounding chain as
    // requantize_q_into, lane-vectorized.
    QMCU_REQUIRE(out.shape() == q.shape(),
                 "requantize_q: destination shape mismatch");
    const auto& p = q.params();
    const QuantParams& target = out.params();
    const ElementRequantizer r(static_cast<double>(p.scale) /
                               static_cast<double>(target.scale));
    simd_->requant_i8_row(q.data().data(),
                          static_cast<std::int64_t>(q.data().size()),
                          p.zero_point, r.left_shift(), r.multiplier(),
                          target.zero_point, target.qmin(), target.qmax(),
                          out.data().data());
    return;
  }
  requantize_q_into(q, out);
}

// ---------------------------------------------------------------------------
// Float tier.

void KernelBackend::conv2d_f32_into(const Tensor& in, const Layer& l,
                                    std::span<const float> weights,
                                    std::span<const float> bias, Tensor& out) {
  guard();
  if (tier_ == KernelTier::Reference) {
    ops::conv2d_f32_into(in, l, weights, bias, out);
    return;
  }
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, l.out_channels);
  const int n = l.out_channels;
  const std::int64_t k64 = im2col_row_elements(is, l);
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) == k64 * n,
               "conv weight count mismatch");
  QMCU_REQUIRE(out.shape() == os, "conv2d_f32: destination shape mismatch");
  const int k = static_cast<int>(k64);
  arena_.reset();
  auto bt = arena_.f32(static_cast<std::size_t>(n) * k);
  pack_weights_kmajor_f32(weights, n, k, bt.data());
  auto a = arena_.f32(static_cast<std::size_t>(os.w) * k);
  auto acc = arena_.f32(4 * static_cast<std::size_t>(n));
  float* y = out.data().data();
  for (int oy = 0; oy < os.h; ++oy) {
    im2col_pack_row_f32(in.data(), is, l, oy, os.w, a.data());
    gemm_f32(a.data(), bt.data(), os.w, n, k, bias, l.act, acc.data(),
             y + static_cast<std::size_t>(oy) * os.w * n);
  }
}

Tensor KernelBackend::conv2d_f32(const Tensor& in, const Layer& l,
                                 std::span<const float> weights,
                                 std::span<const float> bias) {
  guard();
  Tensor out(conv_output_shape(in.shape(), l, l.out_channels));
  conv2d_f32_into(in, l, weights, bias, out);
  return out;
}

Tensor KernelBackend::depthwise_conv2d_f32(const Tensor& in, const Layer& l,
                                           std::span<const float> weights,
                                           std::span<const float> bias) {
  guard();
  return ops::depthwise_conv2d_f32(in, l, weights, bias);
}

void KernelBackend::depthwise_conv2d_f32_into(const Tensor& in, const Layer& l,
                                              std::span<const float> weights,
                                              std::span<const float> bias,
                                              Tensor& out) {
  guard();
  ops::depthwise_conv2d_f32_into(in, l, weights, bias, out);
}

Tensor KernelBackend::fully_connected_f32(const Tensor& in, const Layer& l,
                                          std::span<const float> weights,
                                          std::span<const float> bias) {
  guard();
  return ops::fully_connected_f32(in, l, weights, bias);
}

void KernelBackend::fully_connected_f32_into(const Tensor& in, const Layer& l,
                                             std::span<const float> weights,
                                             std::span<const float> bias,
                                             Tensor& out) {
  guard();
  ops::fully_connected_f32_into(in, l, weights, bias, out);
}

}  // namespace qmcu::nn::ops
