// backend.h — kernel tier dispatch and the per-executor scratch arena.
//
// Three implementation tiers share one arithmetic contract:
//   Reference — the plain loop nests of int8_kernels.h / float_kernels.h;
//               they define the bit pattern of every op.
//   Fast      — im2col + register-tiled GEMM for conv/fc, interior/border
//               split kernels for depthwise and pooling. Bit-identical to
//               Reference (integer arithmetic is order-independent; the
//               float GEMM preserves the reference accumulation order).
//   Simd      — the Fast structure with the hottest integer inner loops
//               (GEMM microkernel, depthwise MAC, fused requantize
//               epilogues, sub-byte unpack, LUT-GEMM tile) routed through
//               the runtime-detected microkernel table of
//               nn/ops/simd/simd_kernels.h (AVX2 / NEON). Integer
//               arithmetic is exact, so Simd is bit-identical to both
//               other tiers; on hosts without a usable ISA (or with
//               QMCU_FORCE_SCALAR set) every entry falls back to the Fast
//               scalar code, making Simd a safe default everywhere.
//
// Orthogonally to the tier, 2/4-bit conv and fc inputs can take the LUT
// path (nn/ops/lut/lut_kernels.h): per-layer the backend consults
// lut_use() — bits, zero-point range, shape thresholds, QMCU_FORCE_LUT /
// QMCU_NO_LUT — and swaps the unpack+GEMM inner product for table lookups
// over prepacked weight tables. Bit-identical to the GEMM path, so tier
// invariance holds with the LUT forced on, off, or auto.
//
// Each executor owns one KernelBackend. Its ScratchArena is a grow-only
// pool of typed blocks reused across every op the executor runs, so
// patch-branch inference stops paying a heap allocation per temporary:
// after the first branch the arena is at steady state and im2col strips,
// repacked weight panels and accumulator tiles all come from recycled
// memory. Elementwise ops (Add/Concat/Softmax/global pooling and the
// requantize slice copy) have a single integer-only implementation shared
// by both tiers.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nn/graph.h"
#include "nn/ops/int8_kernels.h"
#include "nn/tensor.h"

namespace qmcu::nn::ops {

namespace simd {
struct SimdKernels;
}  // namespace simd

enum class KernelTier { Reference, Fast, Simd };

// Thread-affinity guard for the backend's shared mutable state (the scratch
// arena, the lazily-filled weight-panel and AvgPool-table caches). None of
// that state is synchronised — the design is one KernelBackend per worker —
// so silently sharing a backend across threads corrupts scratch in ways
// that show up as wrong outputs long after the race. The guard makes the
// misuse loud instead: the first guarded use after rebind() adopts the
// calling thread as owner, and any use from a different thread throws. One
// relaxed atomic load per *op* (not per element) — unmeasurable next to a
// convolution.
class ThreadAffinity {
 public:
  // Releases the binding; the next check() adopts its calling thread. Call
  // when intentionally handing the guarded object to another thread (the
  // parallel patch runtime rebinds each worker context at dispatch).
  void rebind() { owner_.store(std::thread::id(), std::memory_order_release); }

  void check(const char* what) const {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id seen = owner_.load(std::memory_order_relaxed);
    if (seen == self) return;
    if (seen == std::thread::id() &&
        owner_.compare_exchange_strong(seen, self,
                                       std::memory_order_acq_rel)) {
      return;
    }
    QMCU_ENSURE(seen == self,
                std::string(what) +
                    ": used from a second thread without rebind() — one "
                    "KernelBackend/ScratchArena per worker");
  }

 private:
  mutable std::atomic<std::thread::id> owner_{std::thread::id()};
};

// Grow-only typed scratch pool. Blocks are handed out in request order and
// all returned by reset() (called at the start of each op); capacity is
// retained so steady-state inference performs no allocations. Blocks are
// stable: a later request never invalidates an earlier span. Thread-affine:
// all allocation and reset must come from one thread (rebind_thread() hands
// the arena over); footprint accounting is read-only and exempt.
class ScratchArena {
 public:
  std::span<std::int8_t> i8(std::size_t n);
  std::span<std::int32_t> i32(std::size_t n);
  std::span<float> f32(std::size_t n);
  void reset();

  // Hands the arena to the next thread that allocates from it.
  void rebind_thread() { affinity_.rebind(); }

  // Total capacity held across all pools, for memory accounting.
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  std::vector<std::vector<std::int8_t>> i8_blocks_;
  std::vector<std::vector<std::int32_t>> i32_blocks_;
  std::vector<std::vector<float>> f32_blocks_;
  std::size_t i8_next_ = 0;
  std::size_t i32_next_ = 0;
  std::size_t f32_next_ = 0;
  ThreadAffinity affinity_;
};

class KernelBackend {
 public:
  // `cache_weight_panels` keeps the k-major weight repack + column sums of
  // each weight blob across calls (keyed by the blob's address), so
  // repeated convolutions over the same layer — every patch branch, every
  // frame — pack once. It requires the weight spans to stay alive and
  // unchanged for the backend's lifetime, which holds for executors (they
  // own both); pass false where that cannot be guaranteed.
  explicit KernelBackend(KernelTier tier = KernelTier::Simd,
                         bool cache_weight_panels = true);

  [[nodiscard]] KernelTier tier() const { return tier_; }
  // The microkernel table the Simd tier resolved at construction: null for
  // the other tiers and on hosts without a usable ISA (then Simd == Fast).
  [[nodiscard]] const simd::SimdKernels* simd_kernels() const {
    return simd_;
  }
  [[nodiscard]] ScratchArena& arena() { return arena_; }

  // Hands the backend (scratch arena + panel/table caches) to the next
  // thread that runs an op through it. Every op entry point asserts the
  // calling thread matches the adopted owner, so a backend can never be
  // silently shared across workers; prepack() is construction-time and
  // exempt (it must complete before the backend is handed to a worker).
  void rebind_thread() {
    affinity_.rebind();
    arena_.rebind_thread();
  }

  // Repacks (and caches) the k-major panel + column sums for a conv weight
  // blob ahead of time, so a compiled model's first inference pays no
  // packing cost. No-op unless panel caching is enabled.
  void prepack(std::span<const std::int8_t> qweights, int n, int k);

  // Export-time weight recode for the LUT tier: bakes (and caches) the
  // pack_weights_lut table blob + column sums of a weight blob for one
  // sub-byte activation width (bits = 2 or 4; the 2- and 4-bit recodes of
  // the same blob are cached independently). Like prepack(), construction
  // time and a no-op unless panel caching is enabled.
  void prepack_lut(std::span<const std::int8_t> qweights, int n, int k,
                   int bits);

  // --- zero-copy panel adoption (plan-artifact loader) ---------------------
  // Installs an externally prepacked k-major panel + column sums for the
  // weight blob at `key` — typically span views straight into a read-only
  // mmap'd artifact. Adopted entries win over the build-on-miss cache, so
  // prepack() and the first conv over this blob do no packing work and make
  // no private copies. The caller guarantees the spans outlive the backend.
  void adopt_panel(const std::int8_t* key, std::span<const std::int8_t> bt,
                   std::span<const std::int32_t> wsum);
  void adopt_lut_panel(const std::int8_t* key, int bits,
                       std::span<const std::int8_t> tables,
                       std::span<const std::int32_t> wsum);
  // Installs a precomputed per-column constant row (bias − a_zp·Σw) for the
  // weight blob at `key`, valid only at the recorded activation zero point
  // `a_zp` (which folds in the dot generation's +128 activation bias, so
  // the row is kernel-generation-dependent). Ops validate a_zp and length
  // before use and silently fall back to the per-run scratch computation on
  // mismatch — correctness never depends on the registration matching the
  // live kernel generation.
  void register_offset_row(const std::int8_t* key, std::int32_t a_zp,
                           std::span<const std::int32_t> offset);

  // --- integer ops (contracts in int8_kernels.h) ---------------------------
  // Each op has a value-returning form and an `_into` form writing into a
  // caller-bound destination (shape preset; its QuantParams are the output
  // parameters). The compiled arena executors use the `_into` forms so the
  // hot path performs no per-layer allocation.
  QTensor conv2d(const QTensor& in, const Layer& l,
                 std::span<const std::int8_t> qweights,
                 const QuantParams& wparams,
                 std::span<const std::int32_t> qbias,
                 const QuantParams& out_params);
  void conv2d_into(const QTensor& in, const Layer& l,
                   std::span<const std::int8_t> qweights,
                   const QuantParams& wparams,
                   std::span<const std::int32_t> qbias, QTensor& out);
  QTensor depthwise_conv2d(const QTensor& in, const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias,
                           const QuantParams& out_params);
  void depthwise_conv2d_into(const QTensor& in, const Layer& l,
                             std::span<const std::int8_t> qweights,
                             const QuantParams& wparams,
                             std::span<const std::int32_t> qbias,
                             QTensor& out);
  QTensor fully_connected(const QTensor& in, const Layer& l,
                          std::span<const std::int8_t> qweights,
                          const QuantParams& wparams,
                          std::span<const std::int32_t> qbias,
                          const QuantParams& out_params);
  void fully_connected_into(const QTensor& in, const Layer& l,
                            std::span<const std::int8_t> qweights,
                            const QuantParams& wparams,
                            std::span<const std::int32_t> qbias, QTensor& out);
  QTensor max_pool(const QTensor& in, const Layer& l);
  void max_pool_into(const QTensor& in, const Layer& l, QTensor& out);
  QTensor avg_pool(const QTensor& in, const Layer& l);
  void avg_pool_into(const QTensor& in, const Layer& l, QTensor& out);
  QTensor global_avg_pool(const QTensor& in);
  void global_avg_pool_into(const QTensor& in, QTensor& out);
  QTensor add(const QTensor& lhs, const QTensor& rhs, Activation act,
              const QuantParams& out_params);
  void add_into(const QTensor& lhs, const QTensor& rhs, Activation act,
                QTensor& out);
  QTensor concat(std::span<const QTensor* const> inputs,
                 const QuantParams& out_params);
  void concat_into(std::span<const QTensor* const> inputs, QTensor& out);
  QTensor softmax(const QTensor& in, const QuantParams& out_params);
  // Scratch-backed softmax (dequantize → softmax_f32 → quantize over arena
  // float scratch): bit-identical to softmax_q without its allocations.
  void softmax_into(const QTensor& in, QTensor& out);
  QTensor requantize(const QTensor& q, const QuantParams& target);
  void requantize_into(const QTensor& q, QTensor& out);

  // Sub-byte activations: convolution over a 2/4-bit packed input
  // (quant/bitpack.h layout covering in_shape.elements() fields). The Fast
  // tier expands packed rows directly into the im2col scratch; the
  // Reference tier unpacks to a QTensor first. Bit-identical to conv2d on
  // the unpacked equivalent.
  QTensor conv2d_packed(std::span<const std::uint8_t> packed,
                        const TensorShape& in_shape,
                        const QuantParams& in_params, const Layer& l,
                        std::span<const std::int8_t> qweights,
                        const QuantParams& wparams,
                        std::span<const std::int32_t> qbias,
                        const QuantParams& out_params);

  // --- float ops (contracts in float_kernels.h) ----------------------------
  Tensor conv2d_f32(const Tensor& in, const Layer& l,
                    std::span<const float> weights,
                    std::span<const float> bias);
  void conv2d_f32_into(const Tensor& in, const Layer& l,
                       std::span<const float> weights,
                       std::span<const float> bias, Tensor& out);
  Tensor depthwise_conv2d_f32(const Tensor& in, const Layer& l,
                              std::span<const float> weights,
                              std::span<const float> bias);
  void depthwise_conv2d_f32_into(const Tensor& in, const Layer& l,
                                 std::span<const float> weights,
                                 std::span<const float> bias, Tensor& out);
  Tensor fully_connected_f32(const Tensor& in, const Layer& l,
                             std::span<const float> weights,
                             std::span<const float> bias);
  void fully_connected_f32_into(const Tensor& in, const Layer& l,
                                std::span<const float> weights,
                                std::span<const float> bias, Tensor& out);

 private:
  struct WeightPanel {
    std::vector<std::int8_t> bt;      // k-major repack [K][N]
    std::vector<std::int32_t> wsum;   // per-column weight sums
  };
  struct PanelView {
    std::span<const std::int8_t> bt;
    std::span<const std::int32_t> wsum;
  };

  // Returns the k-major panel for `qweights` (cached or arena-backed).
  PanelView weight_panel(std::span<const std::int8_t> qweights, int n, int k);

  struct LutPanel {
    std::vector<std::int8_t> tables;  // [n][groups][2][16] lookup blob
    std::vector<std::int32_t> wsum;   // per-channel weight sums
  };
  struct LutView {
    std::span<const std::int8_t> tables;
    std::span<const std::int32_t> wsum;
  };

  // Returns the LUT table blob for `qweights` at the given activation bit
  // width (cached or arena-backed, mirroring weight_panel).
  LutView lut_panel(std::span<const std::int8_t> qweights, int n, int k,
                    int bits);

  struct OffsetRow {
    std::int32_t a_zp;
    std::span<const std::int32_t> offset;
  };

  // The registered offset row for `key` iff it was computed at `a_zp` with
  // `n` columns; empty span otherwise (callers then compute into scratch).
  [[nodiscard]] std::span<const std::int32_t> offset_row(
      const std::int8_t* key, std::int32_t a_zp, int n) const;

  // Affinity assert shared by every op entry point.
  void guard() const { affinity_.check("KernelBackend"); }

  KernelTier tier_;
  const simd::SimdKernels* simd_ = nullptr;  // resolved once at construction
  bool cache_weight_panels_;
  ScratchArena arena_;
  ThreadAffinity affinity_;
  std::unordered_map<const std::int8_t*, WeightPanel> panels_;
  // LUT table blobs keyed by weight blob address, one map per activation
  // bit width (index 0: 2-bit, index 1: 4-bit) — a mixed-precision model
  // can hit the same weights at both widths.
  std::unordered_map<const std::int8_t*, LutPanel> lut_panels_[2];
  // Externally owned (artifact-mapped) panels and precomputed offset rows;
  // consulted before the build-on-miss caches.
  std::unordered_map<const std::int8_t*, PanelView> adopted_panels_;
  std::unordered_map<const std::int8_t*, LutView> adopted_lut_[2];
  std::unordered_map<const std::int8_t*, OffsetRow> offset_rows_;
  // AvgPool reciprocal tables keyed by window size, reused across runs.
  std::unordered_map<int, AvgPoolMultipliers> avg_pool_tables_;
};

}  // namespace qmcu::nn::ops
