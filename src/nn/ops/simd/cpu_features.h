// cpu_features.h — runtime ISA detection for the Simd kernel tier.
//
// Detection runs once per process and is the single source of truth for
// which microkernel table simd::kernels() hands out. The environment
// variable QMCU_FORCE_SCALAR (any value other than "0" or empty) forces
// Isa::None — the escape hatch the CI scalar matrix leg and the tier
// parity tests use to run the Simd code paths on their scalar fallbacks.
//
// Layered on top of the base ISA is the dot-product *generation*: CPUs
// that fuse the 4-element int8 multiply-reduce into one instruction
// (AVX-VNNI's vpdpbusd, AArch64 dotprod's sdot) get a table whose
// gemm_block_i8 retires 4 k-elements per lane instead of the pair-madd
// kernels' 2. QMCU_FORCE_NO_DOT demotes the dispatch to the base
// pair-madd table; unlike QMCU_FORCE_SCALAR it is read live (like the
// LUT force variables), so a single process can compare both generations.
#pragma once

namespace qmcu::nn::ops::simd {

enum class Isa { None, Avx2, Neon };

// The ISA the running CPU supports (cached after the first call; honors
// QMCU_FORCE_SCALAR read at that first call).
Isa detected_isa();

// "none" / "avx2" / "neon" — what CI logs as the detected ISA.
const char* isa_name(Isa isa);

// True when detected_isa() selects a real microkernel table.
bool available();

// Dot-product instruction generation layered on the base ISA.
enum class DotIsa { None, AvxVnni, NeonDot };

// The dot-product generation the running CPU supports (cached after the
// first call; Isa::None — including forced scalar — implies DotIsa::None).
DotIsa detected_dot_isa();

// "none" / "avx-vnni" / "neon-dot" — what CI logs for the dot probe.
const char* dot_isa_name(DotIsa isa);

// True when QMCU_FORCE_NO_DOT demotes the dispatch to the pair-madd
// table. Read live on every call, so tests can flip it mid-process.
bool dot_forced_off();

// True when kernels() hands out a dot-product generation right now:
// detected_dot_isa() found one, its table is compiled into this binary,
// and QMCU_FORCE_NO_DOT is not set.
bool dot_available();

}  // namespace qmcu::nn::ops::simd
