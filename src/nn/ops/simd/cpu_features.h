// cpu_features.h — runtime ISA detection for the Simd kernel tier.
//
// Detection runs once per process and is the single source of truth for
// which microkernel table simd::kernels() hands out. The environment
// variable QMCU_FORCE_SCALAR (any value other than "0" or empty) forces
// Isa::None — the escape hatch the CI scalar matrix leg and the tier
// parity tests use to run the Simd code paths on their scalar fallbacks.
#pragma once

namespace qmcu::nn::ops::simd {

enum class Isa { None, Avx2, Neon };

// The ISA the running CPU supports (cached after the first call; honors
// QMCU_FORCE_SCALAR read at that first call).
Isa detected_isa();

// "none" / "avx2" / "neon" — what CI logs as the detected ISA.
const char* isa_name(Isa isa);

// True when detected_isa() selects a real microkernel table.
bool available();

}  // namespace qmcu::nn::ops::simd
