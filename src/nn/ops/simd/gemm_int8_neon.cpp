// gemm_int8_neon.cpp — NEON microkernels for the Simd tier.
//
// Compiled only where NEON exists (baseline on aarch64). The table ships
// the exact integer MAC kernels (widening vmlal_s16 sums — int16 products
// accumulated in int32, bit-identical to the scalar sums for any order)
// and the sub-byte unpack; the fixed-point requantize epilogues are left
// null so they run the scalar reference until the 64-bit rounding path can
// be validated on real hardware (vqrdmulh rounds negative midpoints
// differently from the scalar contract and must NOT be used).
#include "nn/ops/simd/simd_kernels.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

namespace qmcu::nn::ops::simd {

namespace {

template <int ROWS>
void gemm_tile_16(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                  int j0, std::int32_t* acc) {
  int32x4_t acc_v[ROWS][4];
  for (int r = 0; r < ROWS; ++r) {
    for (int q = 0; q < 4; ++q) acc_v[r][q] = vdupq_n_s32(0);
  }
  for (int kk = 0; kk < k; ++kk) {
    const int8x16_t w8 = vld1q_s8(bt + static_cast<std::size_t>(kk) * n + j0);
    const int16x8_t wlo = vmovl_s8(vget_low_s8(w8));
    const int16x8_t whi = vmovl_s8(vget_high_s8(w8));
    for (int r = 0; r < ROWS; ++r) {
      const int16x4_t va =
          vdup_n_s16(static_cast<std::int16_t>(a[static_cast<std::size_t>(r) * k + kk]));
      acc_v[r][0] = vmlal_s16(acc_v[r][0], vget_low_s16(wlo), va);
      acc_v[r][1] = vmlal_s16(acc_v[r][1], vget_high_s16(wlo), va);
      acc_v[r][2] = vmlal_s16(acc_v[r][2], vget_low_s16(whi), va);
      acc_v[r][3] = vmlal_s16(acc_v[r][3], vget_high_s16(whi), va);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    for (int q = 0; q < 4; ++q) vst1q_s32(out + 4 * q, acc_v[r][q]);
  }
}

void gemm_block_i8_neon(const std::int8_t* a, const std::int8_t* bt, int rows,
                        int n, int k, std::int32_t* acc) {
  int j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    switch (rows) {
      case 4:
        gemm_tile_16<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_16<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_16<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_16<1>(a, bt, n, k, j0, acc);
        break;
    }
  }
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
    for (int j = j0; j < n; ++j) {
      const std::int8_t* bp = bt + j;
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ar[kk]) *
             bp[static_cast<std::size_t>(kk) * n];
      }
      acc[static_cast<std::size_t>(r) * n + j] = s;
    }
  }
}

void dw_accumulate_neon(const std::int8_t* x, const std::int8_t* w, int c,
                        std::int32_t zp, std::int32_t* acc) {
  int i = 0;
  // (x - zp) must fit int16 for the widening MAC; activation zero points
  // live in the int8 range, but guard anyway so the contract is total.
  if (zp >= -32000 && zp <= 32000) {
    const int16x8_t zpv = vdupq_n_s16(static_cast<std::int16_t>(zp));
    for (; i + 8 <= c; i += 8) {
      const int16x8_t xv = vsubq_s16(vmovl_s8(vld1_s8(x + i)), zpv);
      const int16x8_t wv = vmovl_s8(vld1_s8(w + i));
      int32x4_t a0 = vld1q_s32(acc + i);
      int32x4_t a1 = vld1q_s32(acc + i + 4);
      a0 = vmlal_s16(a0, vget_low_s16(xv), vget_low_s16(wv));
      a1 = vmlal_s16(a1, vget_high_s16(xv), vget_high_s16(wv));
      vst1q_s32(acc + i, a0);
      vst1q_s32(acc + i + 4, a1);
    }
  }
  for (; i < c; ++i) {
    acc[i] += (static_cast<std::int32_t>(x[i]) - zp) * w[i];
  }
}

std::int64_t unpack_body_neon(const std::uint8_t* bytes, std::int64_t nbytes,
                              int bits, std::int8_t* dst) {
  std::int64_t consumed = 0;
  if (bits == 4) {
    const uint8x16_t mask = vdupq_n_u8(0x0F);
    const int8x16_t sign = vdupq_n_s8(0x08);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const uint8x16_t b = vld1q_u8(bytes + consumed);
      const uint8x16_t lo = vandq_u8(b, mask);
      const uint8x16_t hi = vshrq_n_u8(b, 4);
      const uint8x16x2_t e = vzipq_u8(lo, hi);  // field 0 = low nibble
      for (int half = 0; half < 2; ++half) {
        int8x16_t v = vreinterpretq_s8_u8(e.val[half]);
        v = vsubq_s8(veorq_s8(v, sign), sign);
        vst1q_s8(dst, v);
        dst += 16;
      }
    }
    return consumed;
  }
  if (bits == 2) {
    const uint8x16_t mask = vdupq_n_u8(0x03);
    const int8x16_t sign = vdupq_n_s8(0x02);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const uint8x16_t b = vld1q_u8(bytes + consumed);
      const uint8x16_t v0 = vandq_u8(b, mask);
      const uint8x16_t v1 = vandq_u8(vshrq_n_u8(b, 2), mask);
      const uint8x16_t v2 = vandq_u8(vshrq_n_u8(b, 4), mask);
      const uint8x16_t v3 = vshrq_n_u8(b, 6);
      const uint8x16x2_t t01 = vzipq_u8(v0, v1);
      const uint8x16x2_t t23 = vzipq_u8(v2, v3);
      for (int half = 0; half < 2; ++half) {
        const uint16x8x2_t e =
            vzipq_u16(vreinterpretq_u16_u8(t01.val[half]),
                      vreinterpretq_u16_u8(t23.val[half]));
        for (int quarter = 0; quarter < 2; ++quarter) {
          int8x16_t v = vreinterpretq_s8_u16(e.val[quarter]);
          v = vsubq_s8(veorq_s8(v, sign), sign);
          vst1q_s8(dst, v);
          dst += 16;
        }
      }
    }
    return consumed;
  }
  return 0;
}

const SimdKernels kNeon = {
    "neon",    &gemm_block_i8_neon, nullptr,
    &dw_accumulate_neon, nullptr,       &unpack_body_neon,
};

}  // namespace

const SimdKernels* neon_kernels() { return &kNeon; }

}  // namespace qmcu::nn::ops::simd

#else  // no NEON

namespace qmcu::nn::ops::simd {
const SimdKernels* neon_kernels() { return nullptr; }
}  // namespace qmcu::nn::ops::simd

#endif
