// gemm_int8_neon.cpp — NEON microkernels for the Simd tier.
//
// Compiled only where NEON exists (baseline on aarch64). The table ships
// the exact integer MAC kernels (widening vmlal_s16 sums — int16 products
// accumulated in int32, bit-identical to the scalar sums for any order),
// the sub-byte unpack, and the fixed-point requantize epilogues. The
// epilogues take the 64-bit vmull_s32 rounding path so every lane follows
// apply_multiplier's exact SRDHM + truncating-division + rounding-shift
// sequence; vqrdmulh is deliberately NOT used — it rounds negative
// midpoints up where the scalar contract rounds them away from zero, and
// the scalar-contract parity test (RequantizeRandomizedBitExact) is the
// gate that keeps that door shut.
#include "nn/ops/simd/simd_kernels.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)

#include <arm_neon.h>

#include "nn/ops/lut/lut_simd_bodies.h"

namespace qmcu::nn::ops::simd {

namespace {

// ---------------------------------------------------------------------------
// Fixed-point requantization lanes (same derivation as the AVX2 TU).
//
// The scalar SRDHM computes (a*b + nudge) / 2^31 with truncating division,
// nudge = ab >= 0 ? 2^30 : 1 - 2^30. The sign masks come from 64-bit
// arithmetic shifts, so no 64-bit compare (absent on 32-bit ARM) is
// needed; adding 2^31 - 1 to negative nudged lanes turns the arithmetic
// shift into the truncating divide. The quotient fits int32, so the
// narrowing move is exact.

inline int64x2_t srdhm_q31_half(int32x2_t x, int32x2_t mant) {
  int64x2_t p = vmull_s32(x, mant);
  const int64x2_t neg = vshrq_n_s64(p, 63);  // 0 or -1 per lane
  p = vaddq_s64(p, vdupq_n_s64(std::int64_t{1} << 30));
  // Negative products use nudge 1 - 2^30 instead: add the difference.
  p = vaddq_s64(
      p, vandq_s64(neg, vdupq_n_s64(1 - (std::int64_t{1} << 31))));
  // Truncating divide by 2^31: bump negative lanes by 2^31 - 1, then
  // arithmetic shift.
  p = vaddq_s64(p, vandq_s64(vshrq_n_s64(p, 63),
                             vdupq_n_s64((std::int64_t{1} << 31) - 1)));
  return vshrq_n_s64(p, 31);
}

inline int32x4_t srdhm_q31_neon(int32x4_t x, int32x2_t mant) {
  const int64x2_t lo = srdhm_q31_half(vget_low_s32(x), mant);
  const int64x2_t hi = srdhm_q31_half(vget_high_s32(x), mant);
  return vcombine_s32(vmovn_s64(lo), vmovn_s64(hi));
}

// rounding_divide_by_pot: round half away from zero. `neg_exp` is the
// negated exponent for vshlq's variable arithmetic right shift; `mask` =
// 2^exp - 1 and `thr_base` = mask >> 1 are splatted by the caller.
// exponent == 0 degenerates to the identity (mask 0 => no increment).
inline int32x4_t rounding_rshift_neon(int32x4_t x, int32x4_t neg_exp,
                                      int32x4_t mask, int32x4_t thr_base) {
  const int32x4_t rem = vandq_s32(x, mask);
  // threshold = mask >> 1, +1 for negative lanes (the compare mask is -1).
  const int32x4_t thr = vsubq_s32(
      thr_base,
      vreinterpretq_s32_u32(vcltq_s32(x, vdupq_n_s32(0))));
  const int32x4_t shifted = vshlq_s32(x, neg_exp);
  return vsubq_s32(shifted,
                   vreinterpretq_s32_u32(vcgtq_s32(rem, thr)));
}

// Clamps two int32x4 (already inside [-128, 127] after the clamp) and
// stores 8 consecutive int8; the saturating narrows cannot engage.
inline void store_8_i8(int32x4_t v0, int32x4_t v1, int32x4_t lo, int32x4_t hi,
                       std::int8_t* out) {
  v0 = vminq_s32(vmaxq_s32(v0, lo), hi);
  v1 = vminq_s32(vmaxq_s32(v1, lo), hi);
  const int16x8_t p16 = vcombine_s16(vqmovn_s32(v0), vqmovn_s32(v1));
  vst1_s8(out, vqmovn_s16(p16));
}

void requant_i32_row_neon(const std::int32_t* acc, const std::int32_t* offset,
                          int n, FixedPointMultiplier m, std::int32_t out_zp,
                          std::int32_t lo, std::int32_t hi, std::int8_t* out) {
  int j = 0;
  if (m.right_shift >= 0 && m.right_shift <= 31) {
    const int32x2_t mant = vdup_n_s32(m.mantissa);
    const int32x4_t neg_exp = vdupq_n_s32(-m.right_shift);
    const std::uint32_t mask_bits = (1u << m.right_shift) - 1;
    const int32x4_t mask =
        vdupq_n_s32(static_cast<std::int32_t>(mask_bits));
    const int32x4_t thr_base =
        vdupq_n_s32(static_cast<std::int32_t>(mask_bits >> 1));
    const int32x4_t zp = vdupq_n_s32(out_zp);
    const int32x4_t lov = vdupq_n_s32(lo);
    const int32x4_t hiv = vdupq_n_s32(hi);
    for (; j + 8 <= n; j += 8) {
      int32x4_t v0 = vld1q_s32(acc + j);
      int32x4_t v1 = vld1q_s32(acc + j + 4);
      if (offset != nullptr) {
        v0 = vaddq_s32(v0, vld1q_s32(offset + j));
        v1 = vaddq_s32(v1, vld1q_s32(offset + j + 4));
      }
      v0 = rounding_rshift_neon(srdhm_q31_neon(v0, mant), neg_exp, mask,
                                thr_base);
      v1 = rounding_rshift_neon(srdhm_q31_neon(v1, mant), neg_exp, mask,
                                thr_base);
      store_8_i8(vaddq_s32(v0, zp), vaddq_s32(v1, zp), lov, hiv, out + j);
    }
  }
  for (; j < n; ++j) {
    const std::int32_t total = acc[j] + (offset != nullptr ? offset[j] : 0);
    out[j] = static_cast<std::int8_t>(
        clamp_to(apply_multiplier(total, m) + out_zp, lo, hi));
  }
}

void requant_i8_row_neon(const std::int8_t* src, std::int64_t n,
                         std::int32_t in_zp, int left_shift,
                         FixedPointMultiplier m, std::int32_t out_zp,
                         std::int32_t lo, std::int32_t hi, std::int8_t* dst) {
  std::int64_t i = 0;
  if (m.right_shift >= 0 && m.right_shift <= 31) {
    const int32x2_t mant = vdup_n_s32(m.mantissa);
    const int32x4_t neg_exp = vdupq_n_s32(-m.right_shift);
    const std::uint32_t mask_bits = (1u << m.right_shift) - 1;
    const int32x4_t mask =
        vdupq_n_s32(static_cast<std::int32_t>(mask_bits));
    const int32x4_t thr_base =
        vdupq_n_s32(static_cast<std::int32_t>(mask_bits >> 1));
    const int32x4_t izp = vdupq_n_s32(in_zp);
    const int32x4_t lshift = vdupq_n_s32(left_shift);
    const int32x4_t ozp = vdupq_n_s32(out_zp);
    const int32x4_t lov = vdupq_n_s32(lo);
    const int32x4_t hiv = vdupq_n_s32(hi);
    for (; i + 8 <= n; i += 8) {
      const int16x8_t w = vmovl_s8(vld1_s8(src + i));
      // centered << left_shift cannot overflow int32: the requantizer
      // chose the shift so the product fits.
      int32x4_t c0 = vshlq_s32(
          vsubq_s32(vmovl_s16(vget_low_s16(w)), izp), lshift);
      int32x4_t c1 = vshlq_s32(
          vsubq_s32(vmovl_s16(vget_high_s16(w)), izp), lshift);
      c0 = rounding_rshift_neon(srdhm_q31_neon(c0, mant), neg_exp, mask,
                                thr_base);
      c1 = rounding_rshift_neon(srdhm_q31_neon(c1, mant), neg_exp, mask,
                                thr_base);
      store_8_i8(vaddq_s32(c0, ozp), vaddq_s32(c1, ozp), lov, hiv, dst + i);
    }
  }
  for (; i < n; ++i) {
    const std::int32_t centered =
        (static_cast<std::int32_t>(src[i]) - in_zp) * (1 << left_shift);
    dst[i] = static_cast<std::int8_t>(
        clamp_to(apply_multiplier(centered, m) + out_zp, lo, hi));
  }
}

template <int ROWS>
void gemm_tile_16(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                  int j0, std::int32_t* acc) {
  int32x4_t acc_v[ROWS][4];
  for (int r = 0; r < ROWS; ++r) {
    for (int q = 0; q < 4; ++q) acc_v[r][q] = vdupq_n_s32(0);
  }
  for (int kk = 0; kk < k; ++kk) {
    const int8x16_t w8 = vld1q_s8(bt + static_cast<std::size_t>(kk) * n + j0);
    const int16x8_t wlo = vmovl_s8(vget_low_s8(w8));
    const int16x8_t whi = vmovl_s8(vget_high_s8(w8));
    for (int r = 0; r < ROWS; ++r) {
      const int16x4_t va =
          vdup_n_s16(static_cast<std::int16_t>(a[static_cast<std::size_t>(r) * k + kk]));
      acc_v[r][0] = vmlal_s16(acc_v[r][0], vget_low_s16(wlo), va);
      acc_v[r][1] = vmlal_s16(acc_v[r][1], vget_high_s16(wlo), va);
      acc_v[r][2] = vmlal_s16(acc_v[r][2], vget_low_s16(whi), va);
      acc_v[r][3] = vmlal_s16(acc_v[r][3], vget_high_s16(whi), va);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    for (int q = 0; q < 4; ++q) vst1q_s32(out + 4 * q, acc_v[r][q]);
  }
}

void gemm_block_i8_neon(const std::int8_t* a, const std::int8_t* bt, int rows,
                        int n, int k, std::int32_t* acc) {
  int j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    switch (rows) {
      case 4:
        gemm_tile_16<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_16<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_16<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_16<1>(a, bt, n, k, j0, acc);
        break;
    }
  }
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
    for (int j = j0; j < n; ++j) {
      const std::int8_t* bp = bt + j;
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ar[kk]) *
             bp[static_cast<std::size_t>(kk) * n];
      }
      acc[static_cast<std::size_t>(r) * n + j] = s;
    }
  }
}

void dw_accumulate_neon(const std::int8_t* x, const std::int8_t* w, int c,
                        std::int32_t zp, std::int32_t* acc) {
  int i = 0;
  // (x - zp) must fit int16 for the widening MAC; activation zero points
  // live in the int8 range, but guard anyway so the contract is total.
  if (zp >= -32000 && zp <= 32000) {
    const int16x8_t zpv = vdupq_n_s16(static_cast<std::int16_t>(zp));
    for (; i + 8 <= c; i += 8) {
      const int16x8_t xv = vsubq_s16(vmovl_s8(vld1_s8(x + i)), zpv);
      const int16x8_t wv = vmovl_s8(vld1_s8(w + i));
      int32x4_t a0 = vld1q_s32(acc + i);
      int32x4_t a1 = vld1q_s32(acc + i + 4);
      a0 = vmlal_s16(a0, vget_low_s16(xv), vget_low_s16(wv));
      a1 = vmlal_s16(a1, vget_high_s16(xv), vget_high_s16(wv));
      vst1q_s32(acc + i, a0);
      vst1q_s32(acc + i + 4, a1);
    }
  }
  for (; i < c; ++i) {
    acc[i] += (static_cast<std::int32_t>(x[i]) - zp) * w[i];
  }
}

std::int64_t unpack_body_neon(const std::uint8_t* bytes, std::int64_t nbytes,
                              int bits, std::int8_t* dst) {
  std::int64_t consumed = 0;
  if (bits == 4) {
    const uint8x16_t mask = vdupq_n_u8(0x0F);
    const int8x16_t sign = vdupq_n_s8(0x08);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const uint8x16_t b = vld1q_u8(bytes + consumed);
      const uint8x16_t lo = vandq_u8(b, mask);
      const uint8x16_t hi = vshrq_n_u8(b, 4);
      const uint8x16x2_t e = vzipq_u8(lo, hi);  // field 0 = low nibble
      for (int half = 0; half < 2; ++half) {
        int8x16_t v = vreinterpretq_s8_u8(e.val[half]);
        v = vsubq_s8(veorq_s8(v, sign), sign);
        vst1q_s8(dst, v);
        dst += 16;
      }
    }
    return consumed;
  }
  if (bits == 2) {
    const uint8x16_t mask = vdupq_n_u8(0x03);
    const int8x16_t sign = vdupq_n_s8(0x02);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const uint8x16_t b = vld1q_u8(bytes + consumed);
      const uint8x16_t v0 = vandq_u8(b, mask);
      const uint8x16_t v1 = vandq_u8(vshrq_n_u8(b, 2), mask);
      const uint8x16_t v2 = vandq_u8(vshrq_n_u8(b, 4), mask);
      const uint8x16_t v3 = vshrq_n_u8(b, 6);
      const uint8x16x2_t t01 = vzipq_u8(v0, v1);
      const uint8x16x2_t t23 = vzipq_u8(v2, v3);
      for (int half = 0; half < 2; ++half) {
        const uint16x8x2_t e =
            vzipq_u16(vreinterpretq_u16_u8(t01.val[half]),
                      vreinterpretq_u16_u8(t23.val[half]));
        for (int quarter = 0; quarter < 2; ++quarter) {
          int8x16_t v = vreinterpretq_s8_u16(e.val[quarter]);
          v = vsubq_s8(veorq_s8(v, sign), sign);
          vst1q_s8(dst, v);
          dst += 16;
        }
      }
    }
    return consumed;
  }
  return 0;
}

const SimdKernels kNeon = {
    "neon",    &gemm_block_i8_neon, &requant_i32_row_neon,
    &dw_accumulate_neon, &requant_i8_row_neon, &unpack_body_neon,
#if defined(__aarch64__)
    &lut::lut_gemm_block_neon,
#else
    nullptr,  // vqtbl1q is AArch64-only; 32-bit ARM runs the scalar core
#endif
};

}  // namespace

const SimdKernels* neon_kernels() { return &kNeon; }

}  // namespace qmcu::nn::ops::simd

#else  // no NEON

namespace qmcu::nn::ops::simd {
const SimdKernels* neon_kernels() { return nullptr; }
}  // namespace qmcu::nn::ops::simd

#endif
