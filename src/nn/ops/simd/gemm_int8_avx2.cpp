// gemm_int8_avx2.cpp — AVX2 microkernels for the Simd tier.
//
// This TU is compiled with -mavx2 (see CMakeLists.txt) and its functions
// are only ever reached through the runtime-dispatched table, so the rest
// of the binary stays at the base ISA. Everything here is integer and must
// be bit-identical to the scalar kernels — comments on each function state
// why the lane arithmetic is exact, not merely fast.
#include "nn/ops/simd/simd_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

#include "nn/ops/lut/lut_simd_bodies.h"

namespace qmcu::nn::ops::simd {

namespace {

// ---------------------------------------------------------------------------
// Fixed-point requantization lanes.
//
// apply_multiplier() is SRDHM (saturating rounding doubling high multiply)
// followed by a rounding right shift. The scalar SRDHM computes
//   (a*b + nudge) / 2^31            nudge = ab >= 0 ? 2^30 : 1 - 2^30
// with C++ *truncating* division, so the vector version adds 2^31 - 1 to
// negative sums before the logical shift (floor + fix = trunc). The
// saturation corner (a == b == INT32_MIN) cannot trigger here: the Q31
// mantissa produced by quantize_multiplier is always positive. Taking only
// the low 32 bits of each 64-bit lane after the shift is exact because the
// true quotient fits in int32.

inline __m256i srdhm_q31(__m256i x, __m256i mant) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i nudge_pos = _mm256_set1_epi64x(std::int64_t{1} << 30);
  const __m256i nudge_neg = _mm256_set1_epi64x(1 - (std::int64_t{1} << 30));
  const __m256i trunc_fix = _mm256_set1_epi64x((std::int64_t{1} << 31) - 1);

  __m256i ev = _mm256_mul_epi32(x, mant);  // lanes 0,2,4,6 as i64 products
  __m256i od = _mm256_mul_epi32(_mm256_srli_epi64(x, 32),
                                _mm256_srli_epi64(mant, 32));  // lanes 1,3,5,7

  ev = _mm256_add_epi64(
      ev, _mm256_blendv_epi8(nudge_pos, nudge_neg,
                             _mm256_cmpgt_epi64(zero, ev)));
  od = _mm256_add_epi64(
      od, _mm256_blendv_epi8(nudge_pos, nudge_neg,
                             _mm256_cmpgt_epi64(zero, od)));
  // Truncating divide by 2^31: floor-shift negative lanes up by 2^31 - 1.
  ev = _mm256_add_epi64(
      ev, _mm256_and_si256(_mm256_cmpgt_epi64(zero, ev), trunc_fix));
  od = _mm256_add_epi64(
      od, _mm256_and_si256(_mm256_cmpgt_epi64(zero, od), trunc_fix));
  ev = _mm256_srli_epi64(ev, 31);
  od = _mm256_slli_epi64(_mm256_srli_epi64(od, 31), 32);
  // Even 32-bit lanes from ev (their high garbage sits in odd positions,
  // masked out by the blend), odd lanes from od.
  return _mm256_blend_epi32(ev, od, 0xAA);
}

// rounding_divide_by_pot: round half away from zero, exponent in [0, 31].
// exponent == 0 degenerates to the identity exactly like the scalar
// (mask = 0 => remainder 0 => no increment).
inline __m256i rounding_rshift(__m256i x, int exponent) {
  const __m256i zero = _mm256_setzero_si256();
  const __m256i mask =
      _mm256_set1_epi32(static_cast<std::int32_t>((1u << exponent) - 1));
  const __m256i remainder = _mm256_and_si256(x, mask);
  // threshold = mask >> 1, +1 for negative lanes (cmpgt mask is -1).
  __m256i threshold = _mm256_srli_epi32(mask, 1);
  threshold = _mm256_sub_epi32(threshold, _mm256_cmpgt_epi32(zero, x));
  __m256i result = _mm256_srai_epi32(x, exponent);
  return _mm256_sub_epi32(result,
                          _mm256_cmpgt_epi32(remainder, threshold));
}

// Clamps two 8-lane int32 vectors (already in [-128, 127] by the clamp) and
// stores them as 16 consecutive int8. packs saturation never engages.
inline void store_16_i8(__m256i v0, __m256i v1, __m256i lo, __m256i hi,
                        std::int8_t* out) {
  v0 = _mm256_min_epi32(_mm256_max_epi32(v0, lo), hi);
  v1 = _mm256_min_epi32(_mm256_max_epi32(v1, lo), hi);
  __m256i p16 = _mm256_packs_epi32(v0, v1);
  // packs interleaves per 128-bit half; 0xD8 restores sequential order.
  p16 = _mm256_permute4x64_epi64(p16, 0xD8);
  const __m128i p8 = _mm_packs_epi16(_mm256_castsi256_si128(p16),
                                     _mm256_extracti128_si256(p16, 1));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), p8);
}

inline std::int32_t scalar_apply(std::int32_t acc,
                                 const FixedPointMultiplier& m) {
  return apply_multiplier(acc, m);
}

inline std::int32_t scalar_clamp(std::int32_t v, std::int32_t lo,
                                 std::int32_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

// ---------------------------------------------------------------------------
// GEMM microkernel: ROWS x 16 tile over the k-major panel.
//
// Two k steps per iteration: each 32-bit lane of the broadcast holds the
// int16 pair (a[kk], a[kk+1]) and each weight lane the matching pair
// (bt[kk][j], bt[kk+1][j]) — _mm256_madd_epi16 then produces the exact
// int32 pair-sum (|product| <= 127*127, no i16 saturation path exists in
// madd; the pair sum is a widening add). Accumulation order over k differs
// from scalar, which is irrelevant: integer sums are exact.
//
// unpacklo/hi interleave within 128-bit halves, so the two accumulators
// hold column groups {0..3, 8..11} and {4..7, 12..15}; permute2x128 at
// store time restores sequential order.

template <int ROWS>
void gemm_tile_16(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                  int j0, std::int32_t* acc) {
  __m256i acc_lo[ROWS];
  __m256i acc_hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc_lo[r] = _mm256_setzero_si256();
    acc_hi[r] = _mm256_setzero_si256();
  }
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m256i w0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0)));
    const __m256i w1 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + n)));
    const __m256i wlo = _mm256_unpacklo_epi16(w0, w1);
    const __m256i whi = _mm256_unpackhi_epi16(w0, w1);
    for (int r = 0; r < ROWS; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      const std::uint32_t pair =
          (static_cast<std::uint32_t>(
               static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk + 1])))
           << 16) |
          static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk]));
      const __m256i p = _mm256_set1_epi32(static_cast<std::int32_t>(pair));
      acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(p, wlo));
      acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(p, whi));
    }
  }
  if (kk < k) {  // odd k: pair with an explicit zero lane
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m256i w0 = _mm256_cvtepi8_epi16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0)));
    const __m256i z = _mm256_setzero_si256();
    const __m256i wlo = _mm256_unpacklo_epi16(w0, z);
    const __m256i whi = _mm256_unpackhi_epi16(w0, z);
    for (int r = 0; r < ROWS; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      const __m256i p = _mm256_set1_epi32(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(
              static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk])))));
      acc_lo[r] = _mm256_add_epi32(acc_lo[r], _mm256_madd_epi16(p, wlo));
      acc_hi[r] = _mm256_add_epi32(acc_hi[r], _mm256_madd_epi16(p, whi));
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out),
                        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8),
                        _mm256_permute2x128_si256(acc_lo[r], acc_hi[r], 0x31));
  }
}

// 8-column tile for panel widths between 8 and 15: the same exact pair-madd
// over 128-bit lanes (whose unpack order is already sequential, so no
// permute is needed at store time).
template <int ROWS>
void gemm_tile_8(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                 int j0, std::int32_t* acc) {
  __m128i acc_lo[ROWS];
  __m128i acc_hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc_lo[r] = _mm_setzero_si128();
    acc_hi[r] = _mm_setzero_si128();
  }
  int kk = 0;
  for (; kk + 2 <= k; kk += 2) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m128i w0 = _mm_cvtepi8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0)));
    const __m128i w1 = _mm_cvtepi8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + n)));
    const __m128i wlo = _mm_unpacklo_epi16(w0, w1);
    const __m128i whi = _mm_unpackhi_epi16(w0, w1);
    for (int r = 0; r < ROWS; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      const std::uint32_t pair =
          (static_cast<std::uint32_t>(
               static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk + 1])))
           << 16) |
          static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk]));
      const __m128i p = _mm_set1_epi32(static_cast<std::int32_t>(pair));
      acc_lo[r] = _mm_add_epi32(acc_lo[r], _mm_madd_epi16(p, wlo));
      acc_hi[r] = _mm_add_epi32(acc_hi[r], _mm_madd_epi16(p, whi));
    }
  }
  if (kk < k) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m128i w0 = _mm_cvtepi8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0)));
    const __m128i z = _mm_setzero_si128();
    const __m128i wlo = _mm_unpacklo_epi16(w0, z);
    const __m128i whi = _mm_unpackhi_epi16(w0, z);
    for (int r = 0; r < ROWS; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      const __m128i p = _mm_set1_epi32(
          static_cast<std::int32_t>(static_cast<std::uint32_t>(
              static_cast<std::uint16_t>(static_cast<std::int16_t>(ar[kk])))));
      acc_lo[r] = _mm_add_epi32(acc_lo[r], _mm_madd_epi16(p, wlo));
      acc_hi[r] = _mm_add_epi32(acc_hi[r], _mm_madd_epi16(p, whi));
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), acc_lo[r]);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4), acc_hi[r]);
  }
}

void gemm_block_i8_avx2(const std::int8_t* a, const std::int8_t* bt, int rows,
                        int n, int k, std::int32_t* acc) {
  int j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    switch (rows) {
      case 4:
        gemm_tile_16<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_16<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_16<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_16<1>(a, bt, n, k, j0, acc);
        break;
    }
  }
  if (j0 + 8 <= n) {
    switch (rows) {
      case 4:
        gemm_tile_8<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_8<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_8<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_8<1>(a, bt, n, k, j0, acc);
        break;
    }
    j0 += 8;
  }
  // Column tail (< 8): the scalar register-tile shape of gemm_int8.cpp —
  // row-major panel walk, per-row accumulator locals, same exact sums.
  if (j0 < n) {
    const int jn = n - j0;
    for (int r = 0; r < rows; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      std::int32_t t[8] = {0};
      const std::int8_t* bp = bt + j0;
      for (int kk = 0; kk < k; ++kk, bp += n) {
        const std::int32_t v = ar[kk];
        for (int j = 0; j < jn; ++j) t[j] += v * bp[j];
      }
      for (int j = 0; j < jn; ++j) {
        acc[static_cast<std::size_t>(r) * n + j0 + j] = t[j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Requantize epilogues.

void requant_i32_row_avx2(const std::int32_t* acc, const std::int32_t* offset,
                          int n, FixedPointMultiplier m, std::int32_t out_zp,
                          std::int32_t lo, std::int32_t hi, std::int8_t* out) {
  int j = 0;
  if (m.right_shift >= 0 && m.right_shift <= 31) {
    const __m256i mant = _mm256_set1_epi32(m.mantissa);
    const __m256i zp = _mm256_set1_epi32(out_zp);
    const __m256i lov = _mm256_set1_epi32(lo);
    const __m256i hiv = _mm256_set1_epi32(hi);
    for (; j + 16 <= n; j += 16) {
      __m256i v0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(acc + j));
      __m256i v1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(acc + j + 8));
      if (offset != nullptr) {
        v0 = _mm256_add_epi32(v0, _mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(
                                          offset + j)));
        v1 = _mm256_add_epi32(v1, _mm256_loadu_si256(
                                      reinterpret_cast<const __m256i*>(
                                          offset + j + 8)));
      }
      v0 = rounding_rshift(srdhm_q31(v0, mant), m.right_shift);
      v1 = rounding_rshift(srdhm_q31(v1, mant), m.right_shift);
      store_16_i8(_mm256_add_epi32(v0, zp), _mm256_add_epi32(v1, zp), lov,
                  hiv, out + j);
    }
  }
  for (; j < n; ++j) {
    const std::int32_t total = acc[j] + (offset != nullptr ? offset[j] : 0);
    out[j] = static_cast<std::int8_t>(
        scalar_clamp(scalar_apply(total, m) + out_zp, lo, hi));
  }
}

void requant_i8_row_avx2(const std::int8_t* src, std::int64_t n,
                         std::int32_t in_zp, int left_shift,
                         FixedPointMultiplier m, std::int32_t out_zp,
                         std::int32_t lo, std::int32_t hi, std::int8_t* dst) {
  std::int64_t i = 0;
  if (m.right_shift >= 0 && m.right_shift <= 31) {
    const __m256i mant = _mm256_set1_epi32(m.mantissa);
    const __m256i izp = _mm256_set1_epi32(in_zp);
    const __m256i ozp = _mm256_set1_epi32(out_zp);
    const __m256i lov = _mm256_set1_epi32(lo);
    const __m256i hiv = _mm256_set1_epi32(hi);
    for (; i + 16 <= n; i += 16) {
      __m256i c0 = _mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i)));
      __m256i c1 = _mm256_cvtepi8_epi32(
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i + 8)));
      // centered << left_shift == centered * (1 << left_shift): the
      // requantizer chose the shift so the product cannot overflow int32.
      c0 = _mm256_slli_epi32(_mm256_sub_epi32(c0, izp), left_shift);
      c1 = _mm256_slli_epi32(_mm256_sub_epi32(c1, izp), left_shift);
      c0 = rounding_rshift(srdhm_q31(c0, mant), m.right_shift);
      c1 = rounding_rshift(srdhm_q31(c1, mant), m.right_shift);
      store_16_i8(_mm256_add_epi32(c0, ozp), _mm256_add_epi32(c1, ozp), lov,
                  hiv, dst + i);
    }
  }
  for (; i < n; ++i) {
    const std::int32_t centered =
        (static_cast<std::int32_t>(src[i]) - in_zp) * (1 << left_shift);
    dst[i] = static_cast<std::int8_t>(
        scalar_clamp(scalar_apply(centered, m) + out_zp, lo, hi));
  }
}

// ---------------------------------------------------------------------------
// Depthwise channel MAC.

void dw_accumulate_avx2(const std::int8_t* x, const std::int8_t* w, int c,
                        std::int32_t zp, std::int32_t* acc) {
  const __m256i zpv = _mm256_set1_epi32(zp);
  int i = 0;
  for (; i + 8 <= c; i += 8) {
    const __m256i xv = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(x + i)));
    const __m256i wv = _mm256_cvtepi8_epi32(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + i)));
    __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    a = _mm256_add_epi32(
        a, _mm256_mullo_epi32(_mm256_sub_epi32(xv, zpv), wv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), a);
  }
  for (; i < c; ++i) {
    acc[i] += (static_cast<std::int32_t>(x[i]) - zp) * w[i];
  }
}

// ---------------------------------------------------------------------------
// Sub-byte unpack (quant/bitpack.h wire layout: little-endian fields,
// two's-complement sign in the field width). 16 packed bytes per step.

std::int64_t unpack_body_avx2(const std::uint8_t* bytes, std::int64_t nbytes,
                              int bits, std::int8_t* dst) {
  std::int64_t consumed = 0;
  if (bits == 4) {
    const __m128i mask = _mm_set1_epi8(0x0F);
    const __m128i sign = _mm_set1_epi8(0x08);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bytes + consumed));
      const __m128i lo = _mm_and_si128(b, mask);
      const __m128i hi = _mm_and_si128(_mm_srli_epi16(b, 4), mask);
      // Field 0 is the low nibble: interleave low-first.
      __m128i e0 = _mm_unpacklo_epi8(lo, hi);
      __m128i e1 = _mm_unpackhi_epi8(lo, hi);
      // Sign-extend the 4-bit field: (v ^ 8) - 8.
      e0 = _mm_sub_epi8(_mm_xor_si128(e0, sign), sign);
      e1 = _mm_sub_epi8(_mm_xor_si128(e1, sign), sign);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), e0);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 16), e1);
      dst += 32;
    }
    return consumed;
  }
  if (bits == 2) {
    const __m128i mask = _mm_set1_epi8(0x03);
    const __m128i sign = _mm_set1_epi8(0x02);
    for (; consumed + 16 <= nbytes; consumed += 16) {
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(bytes + consumed));
      const __m128i v0 = _mm_and_si128(b, mask);
      const __m128i v1 = _mm_and_si128(_mm_srli_epi16(b, 2), mask);
      const __m128i v2 = _mm_and_si128(_mm_srli_epi16(b, 4), mask);
      const __m128i v3 = _mm_and_si128(_mm_srli_epi16(b, 6), mask);
      const __m128i t01lo = _mm_unpacklo_epi8(v0, v1);
      const __m128i t01hi = _mm_unpackhi_epi8(v0, v1);
      const __m128i t23lo = _mm_unpacklo_epi8(v2, v3);
      const __m128i t23hi = _mm_unpackhi_epi8(v2, v3);
      __m128i e[4];
      e[0] = _mm_unpacklo_epi16(t01lo, t23lo);
      e[1] = _mm_unpackhi_epi16(t01lo, t23lo);
      e[2] = _mm_unpacklo_epi16(t01hi, t23hi);
      e[3] = _mm_unpackhi_epi16(t01hi, t23hi);
      for (auto& v : e) {
        v = _mm_sub_epi8(_mm_xor_si128(v, sign), sign);
        _mm_storeu_si128(reinterpret_cast<__m128i*>(dst), v);
        dst += 16;
      }
    }
    return consumed;
  }
  return 0;
}

const SimdKernels kAvx2 = {
    "avx2",          &gemm_block_i8_avx2, &requant_i32_row_avx2,
    &dw_accumulate_avx2, &requant_i8_row_avx2, &unpack_body_avx2,
    &lut::lut_gemm_block_avx2,
};

}  // namespace

const SimdKernels* avx2_kernels() { return &kAvx2; }

}  // namespace qmcu::nn::ops::simd

#else  // !__AVX2__

namespace qmcu::nn::ops::simd {
const SimdKernels* avx2_kernels() { return nullptr; }
}  // namespace qmcu::nn::ops::simd

#endif
