// gemm_int8_vnni.cpp — AVX-VNNI dot-product GEMM generation.
//
// This TU is compiled with -mavx2 -mavxvnni (see CMakeLists.txt) and its
// kernel is only reached through the runtime-dispatched table after
// cpu_features probes the VEX vpdpbusd, so the rest of the binary keeps
// the base ISA.
//
// vpdpbusd multiplies *unsigned* bytes against signed bytes — four
// u8 x s8 products summed into each int32 lane per instruction, retiring
// 4 k-elements per lane where the pair-madd kernel retires 2. Every
// product fits int16 (255 * 127 = 32385) and the 4-way sum widens into
// the int32 accumulator without any saturation path, so the instruction
// is exact. To feed it int8 activations, every lane is biased to u8 by
// xor 0x80 (a_u = a + 128), which makes this table's gemm_block_i8
// compute sum_k (a + 128) * w — the table advertises gemm_a_bias = 128
// and the caller folds the -128 * Σw correction into the per-column
// zero-point offset row (offset[j] = bias - (zp + 128) * wsum[j]), which
// keeps the requantized result bit-identical to the scalar reference.
//
// The k-major panel stores consecutive *columns* per byte, but vpdpbusd
// needs each lane's 4 bytes to be consecutive *k* steps of one column, so
// the kernel transposes 4 weight rows on the fly with the byte/word
// unpack ladder; the shuffles amortize over the 4 activation rows of the
// accumulator tile. Like the scalar block, int32 accumulation bounds the
// contract to k * 255 * 128 < 2^31, i.e. k < ~65.8k — far beyond any
// im2col window this runtime prices.
#include "nn/ops/simd/simd_kernels.h"

#if defined(__AVX2__) && defined(__AVXVNNI__)

#include <immintrin.h>

#include <cstring>

namespace qmcu::nn::ops::simd {

namespace {

// Broadcast of 4 consecutive activation bytes (biased to u8) to every
// 32-bit lane. `count` in 1..4; missing bytes stay 0x00, which is exact
// against the zeroed weight rows the tail path pairs them with.
inline __m256i broadcast_a4(const std::int8_t* a, int count) {
  std::uint32_t g = 0;
  if (count == 4) {
    std::memcpy(&g, a, 4);
    g ^= 0x80808080u;
  } else {
    for (int i = 0; i < count; ++i) {
      g |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(a[i]) ^ 0x80u)
           << (8 * i);
    }
  }
  return _mm256_set1_epi32(static_cast<std::int32_t>(g));
}

// Transposes four 16-byte weight rows (k steps kk..kk+3 of columns
// j0..j0+15) into two ymm where lane c holds column (j0+c)'s 4 k-bytes:
// unpacklo/hi_epi8 pairs rows (0,1) and (2,3), unpacklo/hi_epi16 then
// interleaves the pairs into per-column 4-byte groups.
inline void transpose_4x16(__m128i r0, __m128i r1, __m128i r2, __m128i r3,
                           __m256i* w_lo, __m256i* w_hi) {
  const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
  const __m128i t1 = _mm_unpackhi_epi8(r0, r1);
  const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
  const __m128i t3 = _mm_unpackhi_epi8(r2, r3);
  const __m128i u0 = _mm_unpacklo_epi16(t0, t2);  // columns 0..3
  const __m128i u1 = _mm_unpackhi_epi16(t0, t2);  // columns 4..7
  const __m128i u2 = _mm_unpacklo_epi16(t1, t3);  // columns 8..11
  const __m128i u3 = _mm_unpackhi_epi16(t1, t3);  // columns 12..15
  *w_lo = _mm256_set_m128i(u1, u0);
  *w_hi = _mm256_set_m128i(u3, u2);
}

template <int ROWS>
void gemm_tile_16(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                  int j0, std::int32_t* acc) {
  __m256i acc_lo[ROWS];
  __m256i acc_hi[ROWS];
  for (int r = 0; r < ROWS; ++r) {
    acc_lo[r] = _mm256_setzero_si256();
    acc_hi[r] = _mm256_setzero_si256();
  }
  int kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    __m256i w_lo;
    __m256i w_hi;
    transpose_4x16(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + n)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + 2 * n)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + 3 * n)),
        &w_lo, &w_hi);
    for (int r = 0; r < ROWS; ++r) {
      const __m256i au =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, 4);
      acc_lo[r] = _mm256_dpbusd_epi32(acc_lo[r], au, w_lo);
      acc_hi[r] = _mm256_dpbusd_epi32(acc_hi[r], au, w_hi);
    }
  }
  if (kk < k) {  // k tail: zero-filled weight rows against 0x00 a bytes
    const int t = k - kk;
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    __m128i r0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0));
    __m128i r1 = t > 1 ? _mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(b0 + n))
                       : _mm_setzero_si128();
    __m128i r2 = t > 2 ? _mm_loadu_si128(
                             reinterpret_cast<const __m128i*>(b0 + 2 * n))
                       : _mm_setzero_si128();
    __m256i w_lo;
    __m256i w_hi;
    transpose_4x16(r0, r1, r2, _mm_setzero_si128(), &w_lo, &w_hi);
    for (int r = 0; r < ROWS; ++r) {
      const __m256i au =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, t);
      acc_lo[r] = _mm256_dpbusd_epi32(acc_lo[r], au, w_lo);
      acc_hi[r] = _mm256_dpbusd_epi32(acc_hi[r], au, w_hi);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), acc_lo[r]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 8), acc_hi[r]);
  }
}

// 8-column tile: the same transpose ladder on 8-byte row loads, one
// vpdpbusd per activation row.
template <int ROWS>
void gemm_tile_8(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                 int j0, std::int32_t* acc) {
  __m256i acc_v[ROWS];
  for (int r = 0; r < ROWS; ++r) acc_v[r] = _mm256_setzero_si256();
  const auto weights8 = [&](__m128i r0, __m128i r1, __m128i r2, __m128i r3) {
    const __m128i t0 = _mm_unpacklo_epi8(r0, r1);
    const __m128i t2 = _mm_unpacklo_epi8(r2, r3);
    const __m128i u0 = _mm_unpacklo_epi16(t0, t2);  // columns 0..3
    const __m128i u1 = _mm_unpackhi_epi16(t0, t2);  // columns 4..7
    return _mm256_set_m128i(u1, u0);
  };
  int kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m256i w = weights8(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0)),
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + n)),
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + 2 * n)),
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + 3 * n)));
    for (int r = 0; r < ROWS; ++r) {
      const __m256i au =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, 4);
      acc_v[r] = _mm256_dpbusd_epi32(acc_v[r], au, w);
    }
  }
  if (kk < k) {
    const int t = k - kk;
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const __m128i r0 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0));
    const __m128i r1 =
        t > 1 ? _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + n))
              : _mm_setzero_si128();
    const __m128i r2 =
        t > 2 ? _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b0 + 2 * n))
              : _mm_setzero_si128();
    const __m256i w = weights8(r0, r1, r2, _mm_setzero_si128());
    for (int r = 0; r < ROWS; ++r) {
      const __m256i au =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, t);
      acc_v[r] = _mm256_dpbusd_epi32(acc_v[r], au, w);
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(acc + static_cast<std::size_t>(r) * n + j0),
        acc_v[r]);
  }
}

void gemm_block_i8_vnni(const std::int8_t* a, const std::int8_t* bt, int rows,
                        int n, int k, std::int32_t* acc) {
  int j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    switch (rows) {
      case 4:
        gemm_tile_16<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_16<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_16<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_16<1>(a, bt, n, k, j0, acc);
        break;
    }
  }
  if (j0 + 8 <= n) {
    switch (rows) {
      case 4:
        gemm_tile_8<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_8<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_8<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_8<1>(a, bt, n, k, j0, acc);
        break;
    }
    j0 += 8;
  }
  // Column tail (< 8): the scalar register-tile shape with the same
  // (a + 128) lane bias as the vector path — one contract per table.
  if (j0 < n) {
    const int jn = n - j0;
    for (int r = 0; r < rows; ++r) {
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      std::int32_t t[8] = {0};
      const std::int8_t* bp = bt + j0;
      for (int kk = 0; kk < k; ++kk, bp += n) {
        const std::int32_t v = static_cast<std::int32_t>(ar[kk]) + 128;
        for (int j = 0; j < jn; ++j) t[j] += v * bp[j];
      }
      for (int j = 0; j < jn; ++j) {
        acc[static_cast<std::size_t>(r) * n + j0 + j] = t[j];
      }
    }
  }
}

}  // namespace

const SimdKernels* avx2_vnni_kernels() {
  static const SimdKernels* table = []() -> const SimdKernels* {
    const SimdKernels* base = avx2_kernels();
    if (base == nullptr) return nullptr;
    // The generation shares every non-GEMM entry with the base AVX2 table.
    static SimdKernels t;
    t = *base;
    t.name = "avx2+vnni";
    t.gemm_block_i8 = &gemm_block_i8_vnni;
    t.gemm_a_bias = 128;
    t.gemm_dot = true;
    return &t;
  }();
  return table;
}

}  // namespace qmcu::nn::ops::simd

#else  // !(__AVX2__ && __AVXVNNI__)

namespace qmcu::nn::ops::simd {
const SimdKernels* avx2_vnni_kernels() { return nullptr; }
}  // namespace qmcu::nn::ops::simd

#endif
