#include "nn/ops/simd/simd_kernels.h"

#include "nn/ops/simd/cpu_features.h"

namespace qmcu::nn::ops::simd {

namespace {

const SimdKernels* base_table() {
  switch (detected_isa()) {
    case Isa::Avx2:
      return avx2_kernels();
    case Isa::Neon:
      return neon_kernels();
    case Isa::None:
      break;
  }
  return nullptr;
}

// The dot-generation table for the detected probe, independent of the
// live QMCU_FORCE_NO_DOT state; null when the CPU lacks the instructions
// or the generation's TU was compiled out of this binary.
const SimdKernels* dot_table() {
  switch (detected_dot_isa()) {
    case DotIsa::AvxVnni:
      return avx2_vnni_kernels();
    case DotIsa::NeonDot:
      return neon_dot_kernels();
    case DotIsa::None:
      break;
  }
  return nullptr;
}

}  // namespace

const SimdKernels* kernels() {
  // Base dispatch latches with detected_isa(); only the no-dot demotion is
  // re-read per call (see cpu_features.h).
  const SimdKernels* dot = dot_table();
  if (dot != nullptr && !dot_forced_off()) return dot;
  return base_table();
}

bool dot_available() { return dot_table() != nullptr && !dot_forced_off(); }

}  // namespace qmcu::nn::ops::simd
