#include "nn/ops/simd/simd_kernels.h"

#include "nn/ops/simd/cpu_features.h"

namespace qmcu::nn::ops::simd {

const SimdKernels* kernels() {
  static const SimdKernels* table = []() -> const SimdKernels* {
    switch (detected_isa()) {
      case Isa::Avx2:
        return avx2_kernels();
      case Isa::Neon:
        return neon_kernels();
      case Isa::None:
        break;
    }
    return nullptr;
  }();
  return table;
}

}  // namespace qmcu::nn::ops::simd
