// simd_kernels.h — the microkernel table behind KernelTier::Simd.
//
// Each entry is one of the four hot inner loops of the integer runtime,
// with the *same arithmetic contract as the scalar code it replaces* —
// integer arithmetic is exact, so every function here must be bit-identical
// to its scalar twin for all inputs, not merely close:
//
//   gemm_block_i8   — the 4 x n int8 GEMM accumulator block of
//                     gemm_int8.cpp (k-major packed panel, raw x·w sums;
//                     reordering the k sum is fine, the result is exact).
//   requant_i32_row — the fused GEMM/depthwise epilogue: per-lane
//                     acc (+ offset) -> Q31 fixed-point multiply ->
//                     trunc-division rounding -> rounding shift -> zero
//                     point -> clamp -> int8, exactly apply_multiplier's
//                     rounding sequence.
//   dw_accumulate   — the depthwise channel MAC: acc[i] += (x[i]-zp)*w[i].
//   requant_i8_row  — the ElementRequantizer slice loop of requantize_q:
//                     (src-zp) << left_shift -> fixed-point rescale -> zp
//                     -> clamp.
//   unpack_body     — the whole-byte body of quant::unpack_into for 2/4-bit
//                     packed activations (little-endian fields, sign
//                     extension), feeding the fused sub-byte im2col path.
//   lut_gemm_block  — the LUT-GEMM m-tile of nn/ops/lut/lut_kernels.h:
//                     per (channel, group) 16-entry table lookups over the
//                     kLutTileM-lane index tile (vpshufb / vtbl), summed in
//                     bounded int16 chunks then widened, matching
//                     lut_gemm_block_scalar bit-for-bit.
//
// A table may leave entries null (the NEON table leaves lut_gemm_block
// null on 32-bit ARM, where the 16-byte vqtbl1q lookup does not exist).
// Callers must check each pointer, falling back to the scalar
// implementation — which is also what the whole table being null (no
// usable ISA, or QMCU_FORCE_SCALAR) means.
#pragma once

#include <cstdint>

#include "nn/ops/requantize.h"

namespace qmcu::nn::ops::simd {

struct SimdKernels {
  const char* name = "none";

  // acc[r*n + j] = sum_k (a[r*k + kk] + gemm_a_bias) * bt[kk*n + j], rows
  // in 1..4. Writes (not accumulates into) rows*n int32 lanes of acc.
  // gemm_a_bias is 0 for every table except the AVX-VNNI generation, whose
  // vpdpbusd multiplies u8 x s8: it biases activations by xor 0x80
  // (a + 128) and the caller folds the -128*Σw correction into the
  // per-column zero-point offset row (gemm_activation_bias() below).
  void (*gemm_block_i8)(const std::int8_t* a, const std::int8_t* bt, int rows,
                        int n, int k, std::int32_t* acc) = nullptr;

  // out[j] = clamp(apply_multiplier(acc[j] + (offset ? offset[j] : 0), m)
  //               + out_zp, lo, hi) as int8. `offset` may be null.
  void (*requant_i32_row)(const std::int32_t* acc, const std::int32_t* offset,
                          int n, FixedPointMultiplier m, std::int32_t out_zp,
                          std::int32_t lo, std::int32_t hi,
                          std::int8_t* out) = nullptr;

  // acc[i] += (x[i] - zp) * w[i] for i in [0, c).
  void (*dw_accumulate)(const std::int8_t* x, const std::int8_t* w, int c,
                        std::int32_t zp, std::int32_t* acc) = nullptr;

  // dst[i] = clamp(apply_multiplier((src[i] - in_zp) << left_shift, m)
  //               + out_zp, lo, hi) for i in [0, n).
  void (*requant_i8_row)(const std::int8_t* src, std::int64_t n,
                         std::int32_t in_zp, int left_shift,
                         FixedPointMultiplier m, std::int32_t out_zp,
                         std::int32_t lo, std::int32_t hi,
                         std::int8_t* dst) = nullptr;

  // Expands a prefix of `nbytes` whole packed bytes (bits = 2 or 4,
  // quant/bitpack.h little-endian field order, two's-complement sign
  // extension) into 8/bits int8 lanes per byte of `dst`. Returns the number
  // of BYTES consumed (a multiple of its vector width; may be 0). The
  // caller finishes the remainder with the scalar loop.
  std::int64_t (*unpack_body)(const std::uint8_t* bytes, std::int64_t nbytes,
                              int bits, std::int8_t* dst) = nullptr;

  // acc[r*n + j] = sum over g of the int16 table entry tables[j][g]
  // selected by idx_t[g*kLutTileM + r] (lut_kernels.h layout: 16 low then
  // 16 high bytes per group). rows in 1..kLutTileM; idx lanes beyond
  // `rows` are zeroed by the caller. Writes rows*n int32 lanes.
  void (*lut_gemm_block)(const std::uint8_t* idx_t, const std::int8_t* tables,
                         int rows, int n, int groups,
                         std::int32_t* acc) = nullptr;

  // Constant added to every activation lane inside gemm_block_i8 (see its
  // contract above): 128 for the AVX-VNNI generation, 0 everywhere else.
  std::int32_t gemm_a_bias = 0;

  // True when gemm_block_i8 is a dot-product generation (vpdpbusd / sdot)
  // — what the LUT break-even heuristic and the dot bench counters key on.
  bool gemm_dot = false;
};

// The activation bias the *selected* GEMM block applies: the table's
// gemm_a_bias when its gemm_block_i8 entry will run, 0 when the scalar
// fallback runs instead. Callers building the per-column offset row must
// subtract (zero_point + this) * wsum[j] for bit-exactness.
inline std::int32_t gemm_activation_bias(const SimdKernels* simd) {
  return (simd != nullptr && simd->gemm_block_i8 != nullptr)
             ? simd->gemm_a_bias
             : 0;
}

// The table for detected_isa(), or nullptr when scalar (Isa::None). When
// the CPU has a dot-product generation (detected_dot_isa()) and
// QMCU_FORCE_NO_DOT is unset, the matching dot table is returned instead
// of the base pair-madd table. The force variable is read live on every
// call, so backends constructed after a setenv() see the change.
const SimdKernels* kernels();

// Per-ISA tables (null when this binary was not built for that ISA).
// Exposed for the dispatcher and for tests that pin a table directly.
const SimdKernels* avx2_kernels();
const SimdKernels* neon_kernels();

// Dot-product generations: the base table with gemm_block_i8 swapped for
// the fused multiply-reduce kernel (null when the base table is null or
// the dot TU was compiled out).
const SimdKernels* avx2_vnni_kernels();
const SimdKernels* neon_dot_kernels();

}  // namespace qmcu::nn::ops::simd
