#include "nn/ops/simd/cpu_features.h"

#include <cstdlib>

namespace qmcu::nn::ops::simd {

namespace {

bool force_scalar() {
  const char* v = std::getenv("QMCU_FORCE_SCALAR");
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

Isa detect() {
  if (force_scalar()) return Isa::None;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  // NEON is a baseline feature of every aarch64 core this builds for; the
  // compile-time macro is the runtime truth.
  return Isa::Neon;
#endif
  return Isa::None;
}

}  // namespace

Isa detected_isa() {
  static const Isa isa = detect();
  return isa;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Neon:
      return "neon";
    case Isa::None:
      break;
  }
  return "none";
}

bool available() { return detected_isa() != Isa::None; }

}  // namespace qmcu::nn::ops::simd
