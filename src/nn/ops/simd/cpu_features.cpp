#include "nn/ops/simd/cpu_features.h"

#include <cstdlib>

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_ASIMDDP
#define HWCAP_ASIMDDP (1UL << 20)
#endif
#endif

namespace qmcu::nn::ops::simd {

namespace {

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return false;
  return !(v[0] == '0' && v[1] == '\0');
}

bool force_scalar() { return env_truthy("QMCU_FORCE_SCALAR"); }

Isa detect() {
  if (force_scalar()) return Isa::None;
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  if (__builtin_cpu_supports("avx2")) return Isa::Avx2;
#elif defined(__ARM_NEON) || defined(__ARM_NEON__)
  // NEON is a baseline feature of every aarch64 core this builds for; the
  // compile-time macro is the runtime truth.
  return Isa::Neon;
#endif
  return Isa::None;
}

DotIsa detect_dot() {
  switch (detected_isa()) {
    case Isa::None:
      return DotIsa::None;  // includes QMCU_FORCE_SCALAR
    case Isa::Avx2:
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__) && \
    (defined(__clang__) ? __clang_major__ >= 12 : __GNUC__ >= 11)
      // The VEX-encoded vpdpbusd (Alder Lake / Sapphire Rapids onwards).
      // AVX512-VNNI-only parts (Ice Lake server) lack the VEX form, so
      // they stay on the pair-madd table.
      if (__builtin_cpu_supports("avxvnni")) return DotIsa::AvxVnni;
#endif
      return DotIsa::None;
    case Isa::Neon:
#if defined(__aarch64__) && defined(__linux__)
      if (getauxval(AT_HWCAP) & HWCAP_ASIMDDP) return DotIsa::NeonDot;
#elif defined(__ARM_FEATURE_DOTPROD)
      // No hwcap interface (e.g. Apple silicon): the whole binary was
      // compiled for dotprod hardware, so the macro is the runtime truth.
      return DotIsa::NeonDot;
#endif
      return DotIsa::None;
  }
  return DotIsa::None;
}

}  // namespace

Isa detected_isa() {
  static const Isa isa = detect();
  return isa;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::Avx2:
      return "avx2";
    case Isa::Neon:
      return "neon";
    case Isa::None:
      break;
  }
  return "none";
}

bool available() { return detected_isa() != Isa::None; }

DotIsa detected_dot_isa() {
  static const DotIsa isa = detect_dot();
  return isa;
}

const char* dot_isa_name(DotIsa isa) {
  switch (isa) {
    case DotIsa::AvxVnni:
      return "avx-vnni";
    case DotIsa::NeonDot:
      return "neon-dot";
    case DotIsa::None:
      break;
  }
  return "none";
}

bool dot_forced_off() { return env_truthy("QMCU_FORCE_NO_DOT"); }

// dot_available() lives in simd_kernels.cpp next to the tables it checks.

}  // namespace qmcu::nn::ops::simd
