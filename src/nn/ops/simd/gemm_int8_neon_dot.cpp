// gemm_int8_neon_dot.cpp — AArch64 dotprod (sdot) GEMM generation.
//
// Compiled per-TU with the dotprod arch extension where the toolchain
// supports it (see CMakeLists.txt) and compile-gated on
// __ARM_FEATURE_DOTPROD, so base aarch64 builds still carry the kernel
// and cpu_features' hwcap probe decides at runtime whether it ever runs.
//
// sdot is the signed 4-way fused multiply-reduce: each int32 lane gains
// dot(a.bytes[4i..4i+3], b.bytes[4i..4i+3]) in one instruction, retiring
// 4 k-elements per lane where the pair-widening vmlal_s16 kernel retires
// 2 — and both operands are signed, so unlike the AVX-VNNI generation no
// activation bias is needed (gemm_a_bias stays 0). Integer sums are
// exact in any order, so the result is bit-identical to the scalar block.
//
// The k-major panel stores consecutive columns per byte while sdot wants
// each lane's 4 bytes to be consecutive k steps of one column; a
// two-level vzip ladder transposes 4 weight rows into per-column 4-byte
// groups on the fly, amortized over the 4 activation rows of the tile.
#include "nn/ops/simd/simd_kernels.h"

#if (defined(__ARM_NEON) || defined(__ARM_NEON__)) && \
    defined(__ARM_FEATURE_DOTPROD)

#include <arm_neon.h>

#include <cstring>

namespace qmcu::nn::ops::simd {

namespace {

// Broadcast of 4 consecutive activation bytes to every 32-bit lane.
// `count` in 1..4; missing bytes stay 0, exact against the zeroed weight
// rows the tail path pairs them with.
inline int8x16_t broadcast_a4(const std::int8_t* a, int count) {
  std::uint32_t g = 0;
  if (count == 4) {
    std::memcpy(&g, a, 4);
  } else {
    for (int i = 0; i < count; ++i) {
      g |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(a[i]))
           << (8 * i);
    }
  }
  return vreinterpretq_s8_u32(vdupq_n_u32(g));
}

// Transposes four 16-byte weight rows (k steps kk..kk+3 of 16 columns)
// into four vectors whose lane c holds column c's 4 k-bytes: byte-zip
// pairs rows (0,1) and (2,3), the 16-bit zip interleaves the pairs.
inline void transpose_4x16(int8x16_t r0, int8x16_t r1, int8x16_t r2,
                           int8x16_t r3, int8x16_t w[4]) {
  const int8x16x2_t z01 = vzipq_s8(r0, r1);
  const int8x16x2_t z23 = vzipq_s8(r2, r3);
  const int16x8x2_t lo = vzipq_s16(vreinterpretq_s16_s8(z01.val[0]),
                                   vreinterpretq_s16_s8(z23.val[0]));
  const int16x8x2_t hi = vzipq_s16(vreinterpretq_s16_s8(z01.val[1]),
                                   vreinterpretq_s16_s8(z23.val[1]));
  w[0] = vreinterpretq_s8_s16(lo.val[0]);  // columns 0..3
  w[1] = vreinterpretq_s8_s16(lo.val[1]);  // columns 4..7
  w[2] = vreinterpretq_s8_s16(hi.val[0]);  // columns 8..11
  w[3] = vreinterpretq_s8_s16(hi.val[1]);  // columns 12..15
}

template <int ROWS>
void gemm_tile_16(const std::int8_t* a, const std::int8_t* bt, int n, int k,
                  int j0, std::int32_t* acc) {
  int32x4_t acc_v[ROWS][4];
  for (int r = 0; r < ROWS; ++r) {
    for (int q = 0; q < 4; ++q) acc_v[r][q] = vdupq_n_s32(0);
  }
  int8x16_t w[4];
  int kk = 0;
  for (; kk + 4 <= k; kk += 4) {
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    transpose_4x16(vld1q_s8(b0), vld1q_s8(b0 + n), vld1q_s8(b0 + 2 * n),
                   vld1q_s8(b0 + 3 * n), w);
    for (int r = 0; r < ROWS; ++r) {
      const int8x16_t av =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, 4);
      for (int q = 0; q < 4; ++q) {
        acc_v[r][q] = vdotq_s32(acc_v[r][q], av, w[q]);
      }
    }
  }
  if (kk < k) {  // k tail: zero-filled weight rows against zero a bytes
    const int t = k - kk;
    const std::int8_t* b0 = bt + static_cast<std::size_t>(kk) * n + j0;
    const int8x16_t r1 = t > 1 ? vld1q_s8(b0 + n) : vdupq_n_s8(0);
    const int8x16_t r2 = t > 2 ? vld1q_s8(b0 + 2 * n) : vdupq_n_s8(0);
    transpose_4x16(vld1q_s8(b0), r1, r2, vdupq_n_s8(0), w);
    for (int r = 0; r < ROWS; ++r) {
      const int8x16_t av =
          broadcast_a4(a + static_cast<std::size_t>(r) * k + kk, t);
      for (int q = 0; q < 4; ++q) {
        acc_v[r][q] = vdotq_s32(acc_v[r][q], av, w[q]);
      }
    }
  }
  for (int r = 0; r < ROWS; ++r) {
    std::int32_t* out = acc + static_cast<std::size_t>(r) * n + j0;
    for (int q = 0; q < 4; ++q) vst1q_s32(out + 4 * q, acc_v[r][q]);
  }
}

void gemm_block_i8_neon_dot(const std::int8_t* a, const std::int8_t* bt,
                            int rows, int n, int k, std::int32_t* acc) {
  int j0 = 0;
  for (; j0 + 16 <= n; j0 += 16) {
    switch (rows) {
      case 4:
        gemm_tile_16<4>(a, bt, n, k, j0, acc);
        break;
      case 3:
        gemm_tile_16<3>(a, bt, n, k, j0, acc);
        break;
      case 2:
        gemm_tile_16<2>(a, bt, n, k, j0, acc);
        break;
      default:
        gemm_tile_16<1>(a, bt, n, k, j0, acc);
        break;
    }
  }
  // Column tail (< 16): the base NEON table's scalar column walk.
  for (int r = 0; r < rows; ++r) {
    const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
    for (int j = j0; j < n; ++j) {
      const std::int8_t* bp = bt + j;
      std::int32_t s = 0;
      for (int kk = 0; kk < k; ++kk) {
        s += static_cast<std::int32_t>(ar[kk]) *
             bp[static_cast<std::size_t>(kk) * n];
      }
      acc[static_cast<std::size_t>(r) * n + j] = s;
    }
  }
}

}  // namespace

const SimdKernels* neon_dot_kernels() {
  static const SimdKernels* table = []() -> const SimdKernels* {
    const SimdKernels* base = neon_kernels();
    if (base == nullptr) return nullptr;
    // The generation shares every non-GEMM entry with the base NEON table.
    static SimdKernels t;
    t = *base;
    t.name = "neon+dot";
    t.gemm_block_i8 = &gemm_block_i8_neon_dot;
    t.gemm_dot = true;
    return &t;
  }();
  return table;
}

}  // namespace qmcu::nn::ops::simd

#else  // no NEON dotprod support in this TU's target

namespace qmcu::nn::ops::simd {
const SimdKernels* neon_dot_kernels() { return nullptr; }
}  // namespace qmcu::nn::ops::simd

#endif
