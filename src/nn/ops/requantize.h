// requantize.h — gemmlowp/TFLite-Micro style fixed-point requantization.
//
// The int32 convolution accumulator is rescaled to the output's quantized
// domain by an effective real multiplier
//     M = (input_scale * weight_scale) / output_scale,  0 < M < 1 typically,
// represented as a Q31 fixed-point mantissa plus a right shift. This mirrors
// the integer-only arithmetic MCU kernels (CMSIS-NN / TFLite-Micro) perform —
// no float operations on the inference path.
#pragma once

#include <cstdint>

#include "nn/check.h"

namespace qmcu::nn::ops {

struct FixedPointMultiplier {
  std::int32_t mantissa = 0;  // Q31
  int right_shift = 0;        // total right shift applied after the mul
};

// Decomposes a positive real multiplier into Q31 mantissa and shift.
FixedPointMultiplier quantize_multiplier(double real_multiplier);

// Saturating rounding doubling high multiply (ARM SQRDMULH semantics).
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b);

// Rounding arithmetic shift right (round-half-away-from-zero).
std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent);

// acc * M using the fixed-point representation.
std::int32_t apply_multiplier(std::int32_t acc, const FixedPointMultiplier& m);

// Clamp helper for the quantized output range.
std::int32_t clamp_to(std::int32_t v, std::int32_t lo, std::int32_t hi);

// Precision-boosted elementwise requantizer for the integer-only elementwise
// ops (Add, Concat, AvgPool mean, slice requantization). The centered input
// is pre-shifted left so the Q31 multiply keeps up to 20 extra fractional
// bits (the TFLite Add left-shift convention) before the single fixed-point
// rescale. `max_abs_input` bounds the values that will be passed to apply();
// the left shift is chosen so the shifted value cannot overflow int32 and
// the total right shift stays within the 31-bit budget.
class ElementRequantizer {
 public:
  explicit ElementRequantizer(double real_multiplier,
                              std::int32_t max_abs_input = 256);

  [[nodiscard]] std::int32_t apply(std::int32_t centered) const {
    return apply_multiplier(centered * (1 << left_shift_), m_);
  }

  [[nodiscard]] int left_shift() const { return left_shift_; }
  // The post-shift Q31 multiplier — exposed so the Simd tier's vectorized
  // slice requantizer reproduces apply() lane-for-lane.
  [[nodiscard]] const FixedPointMultiplier& multiplier() const { return m_; }

 private:
  FixedPointMultiplier m_{};
  int left_shift_ = 0;
};

}  // namespace qmcu::nn::ops
