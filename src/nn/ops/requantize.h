// requantize.h — gemmlowp/TFLite-Micro style fixed-point requantization.
//
// The int32 convolution accumulator is rescaled to the output's quantized
// domain by an effective real multiplier
//     M = (input_scale * weight_scale) / output_scale,  0 < M < 1 typically,
// represented as a Q31 fixed-point mantissa plus a right shift. This mirrors
// the integer-only arithmetic MCU kernels (CMSIS-NN / TFLite-Micro) perform —
// no float operations on the inference path.
#pragma once

#include <cstdint>

#include "nn/check.h"

namespace qmcu::nn::ops {

struct FixedPointMultiplier {
  std::int32_t mantissa = 0;  // Q31
  int right_shift = 0;        // total right shift applied after the mul
};

// Decomposes a positive real multiplier into Q31 mantissa and shift.
FixedPointMultiplier quantize_multiplier(double real_multiplier);

// Saturating rounding doubling high multiply (ARM SQRDMULH semantics).
std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b);

// Rounding arithmetic shift right (round-half-away-from-zero).
std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent);

// acc * M using the fixed-point representation.
std::int32_t apply_multiplier(std::int32_t acc, const FixedPointMultiplier& m);

// Clamp helper for the quantized output range.
std::int32_t clamp_to(std::int32_t v, std::int32_t lo, std::int32_t hi);

}  // namespace qmcu::nn::ops
