#include "nn/ops/requantize.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qmcu::nn::ops {

FixedPointMultiplier quantize_multiplier(double real_multiplier) {
  QMCU_REQUIRE(real_multiplier > 0.0, "multiplier must be positive");
  QMCU_REQUIRE(real_multiplier < (1ll << 30),
               "multiplier implausibly large");
  FixedPointMultiplier out;
  if (real_multiplier == 0.0) return out;

  int exponent = 0;
  const double mantissa = std::frexp(real_multiplier, &exponent);
  // mantissa in [0.5, 1): scale into Q31.
  auto q = static_cast<std::int64_t>(std::llround(mantissa * (1ll << 31)));
  QMCU_ENSURE(q <= (1ll << 31), "frexp mantissa out of range");
  if (q == (1ll << 31)) {
    q /= 2;
    ++exponent;
  }
  out.mantissa = static_cast<std::int32_t>(q);
  out.right_shift = -exponent;  // real = mantissa * 2^exponent
  return out;
}

std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                   std::int32_t b) {
  const bool overflow = a == b && a == std::numeric_limits<std::int32_t>::min();
  if (overflow) return std::numeric_limits<std::int32_t>::max();
  const std::int64_t ab = static_cast<std::int64_t>(a) * b;
  const std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<std::int32_t>((ab + nudge) / (1ll << 31));
}

std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent) {
  QMCU_REQUIRE(exponent >= 0 && exponent <= 31, "shift exponent out of range");
  if (exponent == 0) return x;
  const std::int32_t mask = static_cast<std::int32_t>((1u << exponent) - 1);
  const std::int32_t remainder = x & mask;
  std::int32_t threshold = mask >> 1;
  if (x < 0) ++threshold;
  std::int32_t result = x >> exponent;
  if (remainder > threshold) ++result;
  return result;
}

std::int32_t apply_multiplier(std::int32_t acc,
                              const FixedPointMultiplier& m) {
  std::int32_t left_shifted = acc;
  int right = m.right_shift;
  if (right < 0) {
    // Multiplier >= 1: pre-shift left (rare; happens for very small output
    // scales). Saturate on the way.
    const int left = -right;
    const std::int64_t shifted = static_cast<std::int64_t>(acc) << left;
    constexpr std::int64_t lo = std::numeric_limits<std::int32_t>::min();
    constexpr std::int64_t hi = std::numeric_limits<std::int32_t>::max();
    left_shifted = static_cast<std::int32_t>(
        shifted < lo ? lo : (shifted > hi ? hi : shifted));
    right = 0;
  }
  const std::int32_t mul =
      saturating_rounding_doubling_high_mul(left_shifted, m.mantissa);
  return rounding_divide_by_pot(mul, right);
}

std::int32_t clamp_to(std::int32_t v, std::int32_t lo, std::int32_t hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

ElementRequantizer::ElementRequantizer(double real_multiplier,
                                       std::int32_t max_abs_input) {
  QMCU_REQUIRE(max_abs_input > 0, "max_abs_input must be positive");
  const FixedPointMultiplier base = quantize_multiplier(real_multiplier);
  // Two ceilings on the pre-shift: the shifted input must stay below 2^30
  // (SRDHM headroom), and the combined right shift must stay within the
  // 31-bit budget of rounding_divide_by_pot.
  int magnitude_bits = 0;
  while ((std::int64_t{1} << magnitude_bits) < max_abs_input) ++magnitude_bits;
  const int input_headroom = 30 - magnitude_bits;
  const int shift_headroom = 31 - std::max(base.right_shift, 0);
  left_shift_ = std::max(0, std::min({20, input_headroom, shift_headroom}));
  m_ = quantize_multiplier(std::ldexp(real_multiplier, -left_shift_));
}

}  // namespace qmcu::nn::ops
