#include "nn/ops/gemm_int8.h"

#include <algorithm>

#include "nn/ops/float_kernels.h"
#include "nn/ops/simd/simd_kernels.h"

namespace qmcu::nn::ops {

namespace {

// Tile edge of the blocked transpose: 16 int8 is one destination row's
// span per tile, 16 source rows fit L1 comfortably for both element types.
constexpr int kPackTile = 16;

template <typename T>
void pack_kmajor_blocked(const T* b, int n, int k, T* bt) {
  for (int r0 = 0; r0 < n; r0 += kPackTile) {
    const int r1 = std::min(r0 + kPackTile, n);
    for (int k0 = 0; k0 < k; k0 += kPackTile) {
      const int k1 = std::min(k0 + kPackTile, k);
      for (int row = r0; row < r1; ++row) {
        const T* src = b + static_cast<std::size_t>(row) * k;
        for (int kk = k0; kk < k1; ++kk) {
          bt[static_cast<std::size_t>(kk) * n + row] = src[kk];
        }
      }
    }
  }
}

}  // namespace

void pack_weights_kmajor(std::span<const std::int8_t> b, int n, int k,
                         std::int8_t* bt) {
  pack_kmajor_blocked(b.data(), n, k, bt);
}

void pack_weights_kmajor_f32(std::span<const float> b, int n, int k,
                             float* bt) {
  pack_kmajor_blocked(b.data(), n, k, bt);
}

void weight_column_sums(std::span<const std::int8_t> b, int n, int k,
                        std::int32_t* wsum) {
  for (int row = 0; row < n; ++row) {
    const std::int8_t* src = b.data() + static_cast<std::size_t>(row) * k;
    std::int32_t s = 0;
    for (int kk = 0; kk < k; ++kk) s += src[kk];
    wsum[row] = s;
  }
}

namespace {

// Width of the register tile along n. 16 int32 lanes is one AVX-512
// register (two NEON/SSE pairs on narrower machines) and small enough that
// the 4 x kNTile accumulator block stays in registers across the k loop.
constexpr int kNTile = 16;

// Accumulates `rows` (1..4) A rows against the whole Bt panel into `acc`
// (rows * n int32). The panel is walked in kNTile-wide column strips; each
// strip's accumulators are fixed-size locals, so the compiler sees them as
// non-aliased registers and fully unrolls the tile loops — the versioned
// runtime aliasing checks a pointer-based accumulator would force on every
// k iteration disappear entirely.
void gemm_block_i8(const std::int8_t* __restrict a,
                   const std::int8_t* __restrict bt, int rows, int n, int k,
                   std::int32_t* __restrict acc) {
  const std::int8_t* a0 = a;
  const std::int8_t* a1 = a + k;
  const std::int8_t* a2 = a + 2 * static_cast<std::size_t>(k);
  const std::int8_t* a3 = a + 3 * static_cast<std::size_t>(k);
  for (int j0 = 0; j0 < n; j0 += kNTile) {
    const int jn = std::min(kNTile, n - j0);
    if (rows == 4 && jn == kNTile) {
      std::int32_t t0[kNTile] = {0};
      std::int32_t t1[kNTile] = {0};
      std::int32_t t2[kNTile] = {0};
      std::int32_t t3[kNTile] = {0};
      const std::int8_t* bp = bt + j0;
      for (int kk = 0; kk < k; ++kk, bp += n) {
        const std::int32_t v0 = a0[kk];
        const std::int32_t v1 = a1[kk];
        const std::int32_t v2 = a2[kk];
        const std::int32_t v3 = a3[kk];
        for (int j = 0; j < kNTile; ++j) {
          const std::int32_t w = bp[j];
          t0[j] += v0 * w;
          t1[j] += v1 * w;
          t2[j] += v2 * w;
          t3[j] += v3 * w;
        }
      }
      for (int j = 0; j < kNTile; ++j) {
        acc[j0 + j] = t0[j];
        acc[n + j0 + j] = t1[j];
        acc[2 * n + j0 + j] = t2[j];
        acc[3 * n + j0 + j] = t3[j];
      }
      continue;
    }
    for (int r = 0; r < rows; ++r) {
      std::int32_t t[kNTile] = {0};
      const std::int8_t* ar = a + static_cast<std::size_t>(r) * k;
      const std::int8_t* bp = bt + j0;
      for (int kk = 0; kk < k; ++kk, bp += n) {
        const std::int32_t v = ar[kk];
        for (int j = 0; j < jn; ++j) t[j] += v * bp[j];
      }
      for (int j = 0; j < jn; ++j) {
        acc[static_cast<std::size_t>(r) * n + j0 + j] = t[j];
      }
    }
  }
}

// Unlike the integer block, `acc` arrives pre-seeded with the bias so the
// per-output accumulation order (bias first, then ascending k) matches the
// reference float kernels bit-for-bit. Float keeps the pointer-row form
// (the loop vectorizer handles it directly; fixed-size tiles would only be
// SLP candidates, which gcc declines for FP accumulator groups). The
// __restrict parameters make the four accumulator rows provably disjoint
// from the operands, so no versioned aliasing checks survive. Row
// regrouping never reorders a single output's own sum.
void gemm_block_f32(const float* __restrict a, const float* __restrict bt,
                    int rows, int n, int k, float* __restrict acc) {
  if (rows == 4) {
    const float* a0 = a;
    const float* a1 = a + k;
    const float* a2 = a + 2 * static_cast<std::size_t>(k);
    const float* a3 = a + 3 * static_cast<std::size_t>(k);
    float* c0 = acc;
    float* c1 = acc + n;
    float* c2 = acc + 2 * static_cast<std::size_t>(n);
    float* c3 = acc + 3 * static_cast<std::size_t>(n);
    for (int kk = 0; kk < k; ++kk) {
      const float v0 = a0[kk];
      const float v1 = a1[kk];
      const float v2 = a2[kk];
      const float v3 = a3[kk];
      const float* bp = bt + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) {
        const float w = bp[j];
        c0[j] += v0 * w;
        c1[j] += v1 * w;
        c2[j] += v2 * w;
        c3[j] += v3 * w;
      }
    }
    return;
  }
  for (int r = 0; r < rows; ++r) {
    const float* ar = a + static_cast<std::size_t>(r) * k;
    float* cr = acc + static_cast<std::size_t>(r) * n;
    for (int kk = 0; kk < k; ++kk) {
      const float v = ar[kk];
      const float* bp = bt + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) cr[j] += v * bp[j];
    }
  }
}

}  // namespace

void gemm_int8_requant(const std::int8_t* a, const std::int8_t* bt, int m,
                       int n, int k, const GemmQuantPost& post,
                       std::int32_t* acc, std::int8_t* c,
                       const simd::SimdKernels* simd) {
  const auto block = (simd != nullptr && simd->gemm_block_i8 != nullptr)
                         ? simd->gemm_block_i8
                         : &gemm_block_i8;
  const auto requant_row =
      (simd != nullptr) ? simd->requant_i32_row : nullptr;
  for (int m0 = 0; m0 < m; m0 += 4) {
    const int rows = std::min(4, m - m0);
    block(a + static_cast<std::size_t>(m0) * k, bt, rows, n, k, acc);
    for (int r = 0; r < rows; ++r) {
      const std::int32_t* row = acc + static_cast<std::size_t>(r) * n;
      std::int8_t* out = c + static_cast<std::size_t>(m0 + r) * n;
      if (requant_row != nullptr) {
        requant_row(row, post.offset, n, post.multiplier, post.output_zp,
                    post.act_lo, post.act_hi, out);
        continue;
      }
      for (int j = 0; j < n; ++j) {
        const std::int32_t total = row[j] + post.offset[j];
        const std::int32_t q =
            clamp_to(apply_multiplier(total, post.multiplier) + post.output_zp,
                     post.act_lo, post.act_hi);
        out[j] = static_cast<std::int8_t>(q);
      }
    }
  }
}

void gemm_f32(const float* a, const float* bt, int m, int n, int k,
              std::span<const float> bias, Activation act, float* acc,
              float* c) {
  for (int m0 = 0; m0 < m; m0 += 4) {
    const int rows = std::min(4, m - m0);
    for (int r = 0; r < rows; ++r) {
      float* row = acc + static_cast<std::size_t>(r) * n;
      if (bias.empty()) {
        std::fill_n(row, n, 0.0f);
      } else {
        std::copy(bias.begin(), bias.end(), row);
      }
    }
    gemm_block_f32(a + static_cast<std::size_t>(m0) * k, bt, rows, n, k, acc);
    for (int r = 0; r < rows; ++r) {
      const float* row = acc + static_cast<std::size_t>(r) * n;
      float* out = c + static_cast<std::size_t>(m0 + r) * n;
      for (int j = 0; j < n; ++j) {
        out[j] = activate(row[j], act);
      }
    }
  }
}

}  // namespace qmcu::nn::ops
