#include "nn/ops/int8_kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "nn/ops/float_kernels.h"
#include "nn/ops/requantize.h"

namespace qmcu::nn::ops {

std::pair<std::int32_t, std::int32_t> activation_range(
    Activation act, const QuantParams& out) {
  switch (act) {
    case Activation::None:
      return {out.qmin(), out.qmax()};
    case Activation::ReLU:
      return {std::max(out.qmin(), out.zero_point), out.qmax()};
    case Activation::ReLU6:
      return {std::max(out.qmin(), out.zero_point),
              std::min(out.qmax(), out.quantize(6.0f))};
  }
  return {out.qmin(), out.qmax()};
}

QuantizedWeights quantize_weights(std::span<const float> w) {
  float absmax = 0.0f;
  for (float v : w) absmax = std::max(absmax, std::abs(v));
  QuantizedWeights out;
  out.params = choose_symmetric_quant_params(absmax, 8);
  out.data.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    out.data[i] = static_cast<std::int8_t>(out.params.quantize(w[i]));
  }
  return out;
}

std::vector<std::int32_t> quantize_bias(std::span<const float> bias,
                                        float in_scale, float weight_scale) {
  const double bias_scale = static_cast<double>(in_scale) * weight_scale;
  QMCU_REQUIRE(bias_scale > 0.0, "bias scale must be positive");
  std::vector<std::int32_t> out(bias.size());
  for (std::size_t i = 0; i < bias.size(); ++i) {
    out[i] = static_cast<std::int32_t>(
        std::llround(static_cast<double>(bias[i]) / bias_scale));
  }
  return out;
}

namespace {

TensorShape windowed_shape(const TensorShape& in, const Layer& l,
                           int out_channels) {
  const int oh = (in.h + 2 * l.pad_h - l.kernel_h) / l.stride_h + 1;
  const int ow = (in.w + 2 * l.pad_w - l.kernel_w) / l.stride_w + 1;
  return {oh, ow, out_channels};
}

}  // namespace

QTensor conv2d_q(const QTensor& in, const Layer& l,
                 std::span<const std::int8_t> qweights,
                 const QuantParams& wparams,
                 std::span<const std::int32_t> qbias,
                 const QuantParams& out_params) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, l.out_channels);
  QTensor out(os, out_params);
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const auto x = in.data();
  auto y = out.data();

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int oc = 0; oc < os.c; ++oc) {
        std::int32_t acc =
            qbias.empty() ? 0 : qbias[static_cast<std::size_t>(oc)];
        const std::size_t wbase = static_cast<std::size_t>(oc) *
                                  static_cast<std::size_t>(l.kernel_h) *
                                  static_cast<std::size_t>(l.kernel_w) *
                                  static_cast<std::size_t>(is.c);
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            const std::size_t xoff =
                static_cast<std::size_t>(flat_index(is, iy, ix, 0));
            const std::size_t woff =
                wbase + (static_cast<std::size_t>(ky) *
                             static_cast<std::size_t>(l.kernel_w) +
                         static_cast<std::size_t>(kx)) *
                            static_cast<std::size_t>(is.c);
            for (int ic = 0; ic < is.c; ++ic) {
              const std::int32_t xv =
                  static_cast<std::int32_t>(
                      x[xoff + static_cast<std::size_t>(ic)]) -
                  ip.zero_point;
              acc += xv * qweights[woff + static_cast<std::size_t>(ic)];
            }
          }
        }
        const std::int32_t q =
            clamp_to(apply_multiplier(acc, m) + out_params.zero_point, act_lo,
                     act_hi);
        y[static_cast<std::size_t>(flat_index(os, oy, ox, oc))] =
            static_cast<std::int8_t>(q);
      }
    }
  }
  return out;
}

QTensor depthwise_conv2d_q(const QTensor& in, const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias,
                           const QuantParams& out_params) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  QTensor out(os, out_params);
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        std::int32_t acc =
            qbias.empty() ? 0 : qbias[static_cast<std::size_t>(c)];
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            const std::size_t widx =
                (static_cast<std::size_t>(ky) *
                     static_cast<std::size_t>(l.kernel_w) +
                 static_cast<std::size_t>(kx)) *
                    static_cast<std::size_t>(is.c) +
                static_cast<std::size_t>(c);
            const std::int32_t xv =
                static_cast<std::int32_t>(in.at(iy, ix, c)) - ip.zero_point;
            acc += xv * qweights[widx];
          }
        }
        const std::int32_t q =
            clamp_to(apply_multiplier(acc, m) + out_params.zero_point, act_lo,
                     act_hi);
        out.at(oy, ox, c) = static_cast<std::int8_t>(q);
      }
    }
  }
  return out;
}

QTensor fully_connected_q(const QTensor& in, const Layer& l,
                          std::span<const std::int8_t> qweights,
                          const QuantParams& wparams,
                          std::span<const std::int32_t> qbias,
                          const QuantParams& out_params) {
  const std::int64_t in_features = in.elements();
  QTensor out(TensorShape{1, 1, l.out_channels}, out_params);
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const auto x = in.data();
  auto y = out.data();
  for (int o = 0; o < l.out_channels; ++o) {
    std::int32_t acc = qbias.empty() ? 0 : qbias[static_cast<std::size_t>(o)];
    const std::size_t wbase =
        static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features);
    for (std::int64_t i = 0; i < in_features; ++i) {
      const std::int32_t xv =
          static_cast<std::int32_t>(x[static_cast<std::size_t>(i)]) -
          ip.zero_point;
      acc += xv * qweights[wbase + static_cast<std::size_t>(i)];
    }
    const std::int32_t q = clamp_to(
        apply_multiplier(acc, m) + out_params.zero_point, act_lo, act_hi);
    y[static_cast<std::size_t>(o)] = static_cast<std::int8_t>(q);
  }
  return out;
}

QTensor max_pool_q(const QTensor& in, const Layer& l) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  QTensor out(os, in.params());
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        std::int32_t best = std::numeric_limits<std::int32_t>::min();
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            best = std::max(best, static_cast<std::int32_t>(in.at(iy, ix, c)));
          }
        }
        out.at(oy, ox, c) = static_cast<std::int8_t>(best);
      }
    }
  }
  return out;
}

QTensor avg_pool_q(const QTensor& in, const Layer& l) {
  const TensorShape& is = in.shape();
  const TensorShape os = windowed_shape(is, l, is.c);
  QTensor out(os, in.params());
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int c = 0; c < os.c; ++c) {
        std::int32_t sum = 0;
        std::int32_t count = 0;
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            sum += in.at(iy, ix, c);
            ++count;
          }
        }
        const std::int32_t q =
            count > 0
                ? static_cast<std::int32_t>(std::llround(
                      static_cast<double>(sum) / count))
                : in.params().zero_point;
        out.at(oy, ox, c) = static_cast<std::int8_t>(
            clamp_to(q, in.params().qmin(), in.params().qmax()));
      }
    }
  }
  return out;
}

QTensor global_avg_pool_q(const QTensor& in) {
  const TensorShape& is = in.shape();
  QTensor out(TensorShape{1, 1, is.c}, in.params());
  for (int c = 0; c < is.c; ++c) {
    std::int64_t sum = 0;
    for (int y = 0; y < is.h; ++y) {
      for (int x = 0; x < is.w; ++x) sum += in.at(y, x, c);
    }
    const auto q = static_cast<std::int32_t>(
        std::llround(static_cast<double>(sum) / (is.h * is.w)));
    out.at(0, 0, c) = static_cast<std::int8_t>(
        clamp_to(q, in.params().qmin(), in.params().qmax()));
  }
  return out;
}

QTensor add_q(const QTensor& lhs, const QTensor& rhs, Activation act,
              const QuantParams& out_params) {
  QMCU_REQUIRE(lhs.shape() == rhs.shape(), "add operand shape mismatch");
  QTensor out(lhs.shape(), out_params);
  const auto& lp = lhs.params();
  const auto& rp = rhs.params();
  const auto [act_lo, act_hi] = activation_range(act, out_params);
  const auto a = lhs.data();
  const auto b = rhs.data();
  auto y = out.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double real =
        static_cast<double>(lp.scale) * (a[i] - lp.zero_point) +
        static_cast<double>(rp.scale) * (b[i] - rp.zero_point);
    const auto q = static_cast<std::int32_t>(
        std::llround(real / out_params.scale) + out_params.zero_point);
    y[i] = static_cast<std::int8_t>(clamp_to(q, act_lo, act_hi));
  }
  return out;
}

QTensor concat_q(std::span<const QTensor* const> inputs,
                 const QuantParams& out_params) {
  QMCU_REQUIRE(!inputs.empty(), "concat needs inputs");
  const TensorShape& first = inputs[0]->shape();
  int channels = 0;
  for (const QTensor* t : inputs) {
    QMCU_REQUIRE(t->shape().h == first.h && t->shape().w == first.w,
                 "concat inputs must agree spatially");
    channels += t->shape().c;
  }
  QTensor out(TensorShape{first.h, first.w, channels}, out_params);
  for (int y = 0; y < first.h; ++y) {
    for (int x = 0; x < first.w; ++x) {
      int co = 0;
      for (const QTensor* t : inputs) {
        const auto& p = t->params();
        for (int c = 0; c < t->shape().c; ++c) {
          const double real =
              static_cast<double>(p.scale) * (t->at(y, x, c) - p.zero_point);
          const auto q = static_cast<std::int32_t>(
              std::llround(real / out_params.scale) + out_params.zero_point);
          out.at(y, x, co++) = static_cast<std::int8_t>(
              clamp_to(q, out_params.qmin(), out_params.qmax()));
        }
      }
    }
  }
  return out;
}

QTensor softmax_q(const QTensor& in, const QuantParams& out_params) {
  const Tensor real = dequantize(in);
  const Tensor soft = softmax_f32(real);
  return quantize(soft, out_params);
}

}  // namespace qmcu::nn::ops
