#include "nn/ops/int8_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "nn/ops/float_kernels.h"
#include "nn/ops/im2col.h"
#include "nn/ops/requantize.h"

namespace qmcu::nn::ops {

std::pair<std::int32_t, std::int32_t> activation_range(
    Activation act, const QuantParams& out) {
  switch (act) {
    case Activation::None:
      return {out.qmin(), out.qmax()};
    case Activation::ReLU:
      return {std::max(out.qmin(), out.zero_point), out.qmax()};
    case Activation::ReLU6:
      return {std::max(out.qmin(), out.zero_point),
              std::min(out.qmax(), out.quantize(6.0f))};
  }
  return {out.qmin(), out.qmax()};
}

QuantizedWeights quantize_weights(std::span<const float> w) {
  float absmax = 0.0f;
  for (float v : w) absmax = std::max(absmax, std::abs(v));
  QuantizedWeights out;
  out.params = choose_symmetric_quant_params(absmax, 8);
  out.data.resize(w.size());
  for (std::size_t i = 0; i < w.size(); ++i) {
    out.data[i] = static_cast<std::int8_t>(out.params.quantize(w[i]));
  }
  return out;
}

std::vector<std::int32_t> quantize_bias(std::span<const float> bias,
                                        float in_scale, float weight_scale) {
  const double bias_scale = static_cast<double>(in_scale) * weight_scale;
  QMCU_REQUIRE(bias_scale > 0.0, "bias scale must be positive");
  std::vector<std::int32_t> out(bias.size());
  for (std::size_t i = 0; i < bias.size(); ++i) {
    out[i] = static_cast<std::int32_t>(
        std::llround(static_cast<double>(bias[i]) / bias_scale));
  }
  return out;
}

AvgPoolMultipliers::AvgPoolMultipliers(int max_count) {
  QMCU_REQUIRE(max_count > 0, "pool window must have at least one position");
  per_count_.reserve(static_cast<std::size_t>(max_count));
  for (int count = 1; count <= max_count; ++count) {
    per_count_.emplace_back(1.0 / count, 128 * count);
  }
}

std::int32_t AvgPoolMultipliers::average(std::int32_t sum, int count) const {
  QMCU_REQUIRE(count >= 1 &&
                   count <= static_cast<int>(per_count_.size()),
               "window count out of precomputed range");
  return per_count_[static_cast<std::size_t>(count - 1)].apply(sum);
}

void conv2d_q_into(const QTensor& in, const Layer& l,
                   std::span<const std::int8_t> qweights,
                   const QuantParams& wparams,
                   std::span<const std::int32_t> qbias, QTensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, l.out_channels);
  QMCU_REQUIRE(out.shape() == os, "conv2d_q: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const auto x = in.data();
  auto y = out.data();

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      for (int oc = 0; oc < os.c; ++oc) {
        std::int32_t acc =
            qbias.empty() ? 0 : qbias[static_cast<std::size_t>(oc)];
        const std::size_t wbase = static_cast<std::size_t>(oc) *
                                  static_cast<std::size_t>(l.kernel_h) *
                                  static_cast<std::size_t>(l.kernel_w) *
                                  static_cast<std::size_t>(is.c);
        for (int ky = 0; ky < l.kernel_h; ++ky) {
          const int iy = iy0 + ky;
          if (iy < 0 || iy >= is.h) continue;
          for (int kx = 0; kx < l.kernel_w; ++kx) {
            const int ix = ix0 + kx;
            if (ix < 0 || ix >= is.w) continue;
            const std::size_t xoff =
                static_cast<std::size_t>(flat_index(is, iy, ix, 0));
            const std::size_t woff =
                wbase + (static_cast<std::size_t>(ky) *
                             static_cast<std::size_t>(l.kernel_w) +
                         static_cast<std::size_t>(kx)) *
                            static_cast<std::size_t>(is.c);
            for (int ic = 0; ic < is.c; ++ic) {
              const std::int32_t xv =
                  static_cast<std::int32_t>(
                      x[xoff + static_cast<std::size_t>(ic)]) -
                  ip.zero_point;
              acc += xv * qweights[woff + static_cast<std::size_t>(ic)];
            }
          }
        }
        const std::int32_t q =
            clamp_to(apply_multiplier(acc, m) + out_params.zero_point, act_lo,
                     act_hi);
        y[static_cast<std::size_t>(flat_index(os, oy, ox, oc))] =
            static_cast<std::int8_t>(q);
      }
    }
  }
}

QTensor conv2d_q(const QTensor& in, const Layer& l,
                 std::span<const std::int8_t> qweights,
                 const QuantParams& wparams,
                 std::span<const std::int32_t> qbias,
                 const QuantParams& out_params) {
  QTensor out(conv_output_shape(in.shape(), l, l.out_channels), out_params);
  conv2d_q_into(in, l, qweights, wparams, qbias, out);
  return out;
}

void depthwise_conv2d_q_into(const QTensor& in, const Layer& l,
                             std::span<const std::int8_t> qweights,
                             const QuantParams& wparams,
                             std::span<const std::int32_t> qbias,
                             QTensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, is.c);
  QMCU_REQUIRE(out.shape() == os,
               "depthwise_conv2d_q: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const std::int8_t* x = in.data().data();
  const std::int8_t* w = qweights.data();
  std::int8_t* y = out.data().data();
  const int c = is.c;

  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    const KernelRange kyr = valid_kernel_range(iy0, l.kernel_h, is.h);
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      const KernelRange kxr = valid_kernel_range(ix0, l.kernel_w, is.w);
      std::int8_t* yrow =
          y + static_cast<std::size_t>(flat_index(os, oy, ox, 0));
      for (int ch = 0; ch < c; ++ch) {
        std::int32_t acc =
            qbias.empty() ? 0 : qbias[static_cast<std::size_t>(ch)];
        for (int ky = kyr.lo; ky < kyr.hi; ++ky) {
          // Row base pointers hoisted: both walk with stride c along kx.
          const std::int8_t* xrow =
              x + static_cast<std::size_t>(
                      flat_index(is, iy0 + ky, ix0 + kxr.lo, ch));
          const std::int8_t* wrow =
              w + (static_cast<std::size_t>(ky) *
                       static_cast<std::size_t>(l.kernel_w) +
                   static_cast<std::size_t>(kxr.lo)) *
                      static_cast<std::size_t>(c) +
              static_cast<std::size_t>(ch);
          for (int kx = kxr.lo; kx < kxr.hi; ++kx) {
            acc += (static_cast<std::int32_t>(*xrow) - ip.zero_point) * *wrow;
            xrow += c;
            wrow += c;
          }
        }
        const std::int32_t q =
            clamp_to(apply_multiplier(acc, m) + out_params.zero_point, act_lo,
                     act_hi);
        yrow[ch] = static_cast<std::int8_t>(q);
      }
    }
  }
}

QTensor depthwise_conv2d_q(const QTensor& in, const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias,
                           const QuantParams& out_params) {
  QTensor out(conv_output_shape(in.shape(), l, in.shape().c), out_params);
  depthwise_conv2d_q_into(in, l, qweights, wparams, qbias, out);
  return out;
}

void fully_connected_q_into(const QTensor& in, const Layer& l,
                            std::span<const std::int8_t> qweights,
                            const QuantParams& wparams,
                            std::span<const std::int32_t> qbias,
                            QTensor& out) {
  const std::int64_t in_features = in.elements();
  QMCU_REQUIRE(out.shape() == TensorShape(1, 1, l.out_channels),
               "fully_connected_q: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& ip = in.params();
  const FixedPointMultiplier m = quantize_multiplier(
      static_cast<double>(ip.scale) * wparams.scale / out_params.scale);
  const auto [act_lo, act_hi] = activation_range(l.act, out_params);
  const auto x = in.data();
  auto y = out.data();
  for (int o = 0; o < l.out_channels; ++o) {
    std::int32_t acc = qbias.empty() ? 0 : qbias[static_cast<std::size_t>(o)];
    const std::size_t wbase =
        static_cast<std::size_t>(o) * static_cast<std::size_t>(in_features);
    for (std::int64_t i = 0; i < in_features; ++i) {
      const std::int32_t xv =
          static_cast<std::int32_t>(x[static_cast<std::size_t>(i)]) -
          ip.zero_point;
      acc += xv * qweights[wbase + static_cast<std::size_t>(i)];
    }
    const std::int32_t q = clamp_to(
        apply_multiplier(acc, m) + out_params.zero_point, act_lo, act_hi);
    y[static_cast<std::size_t>(o)] = static_cast<std::int8_t>(q);
  }
}

QTensor fully_connected_q(const QTensor& in, const Layer& l,
                          std::span<const std::int8_t> qweights,
                          const QuantParams& wparams,
                          std::span<const std::int32_t> qbias,
                          const QuantParams& out_params) {
  QTensor out(TensorShape{1, 1, l.out_channels}, out_params);
  fully_connected_q_into(in, l, qweights, wparams, qbias, out);
  return out;
}

void max_pool_q_into(const QTensor& in, const Layer& l, QTensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, is.c);
  QMCU_REQUIRE(out.shape() == os, "max_pool_q: destination shape mismatch");
  QMCU_REQUIRE(out.params() == in.params(),
               "max_pool_q: pools keep the input params");
  const std::int8_t* x = in.data().data();
  std::int8_t* y = out.data().data();
  const int c = is.c;
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    const KernelRange kyr = valid_kernel_range(iy0, l.kernel_h, is.h);
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      const KernelRange kxr = valid_kernel_range(ix0, l.kernel_w, is.w);
      std::int8_t* yrow =
          y + static_cast<std::size_t>(flat_index(os, oy, ox, 0));
      for (int ch = 0; ch < c; ++ch) {
        std::int32_t best = std::numeric_limits<std::int32_t>::min();
        for (int ky = kyr.lo; ky < kyr.hi; ++ky) {
          const std::int8_t* xrow =
              x + static_cast<std::size_t>(
                      flat_index(is, iy0 + ky, ix0 + kxr.lo, ch));
          for (int kx = kxr.lo; kx < kxr.hi; ++kx) {
            best = std::max(best, static_cast<std::int32_t>(*xrow));
            xrow += c;
          }
        }
        yrow[ch] = static_cast<std::int8_t>(best);
      }
    }
  }
}

QTensor max_pool_q(const QTensor& in, const Layer& l) {
  QTensor out(conv_output_shape(in.shape(), l, in.shape().c), in.params());
  max_pool_q_into(in, l, out);
  return out;
}

void avg_pool_q_into(const QTensor& in, const Layer& l, QTensor& out) {
  const AvgPoolMultipliers avg(l.kernel_h * l.kernel_w);
  avg_pool_q_into(in, l, avg, out);
}

void avg_pool_q_into(const QTensor& in, const Layer& l,
                     const AvgPoolMultipliers& avg, QTensor& out) {
  const TensorShape& is = in.shape();
  const TensorShape os = conv_output_shape(is, l, is.c);
  QMCU_REQUIRE(out.shape() == os, "avg_pool_q: destination shape mismatch");
  QMCU_REQUIRE(out.params() == in.params(),
               "avg_pool_q: pools keep the input params");
  const std::int32_t qmin = in.params().qmin();
  const std::int32_t qmax = in.params().qmax();
  const std::int8_t* x = in.data().data();
  std::int8_t* y = out.data().data();
  const int c = is.c;
  for (int oy = 0; oy < os.h; ++oy) {
    const int iy0 = oy * l.stride_h - l.pad_h;
    const KernelRange kyr = valid_kernel_range(iy0, l.kernel_h, is.h);
    for (int ox = 0; ox < os.w; ++ox) {
      const int ix0 = ox * l.stride_w - l.pad_w;
      const KernelRange kxr = valid_kernel_range(ix0, l.kernel_w, is.w);
      const int count = kyr.count() * kxr.count();
      std::int8_t* yrow =
          y + static_cast<std::size_t>(flat_index(os, oy, ox, 0));
      for (int ch = 0; ch < c; ++ch) {
        std::int32_t q;
        if (count > 0) {
          std::int32_t sum = 0;
          for (int ky = kyr.lo; ky < kyr.hi; ++ky) {
            const std::int8_t* xrow =
                x + static_cast<std::size_t>(
                        flat_index(is, iy0 + ky, ix0 + kxr.lo, ch));
            for (int kx = kxr.lo; kx < kxr.hi; ++kx) {
              sum += *xrow;
              xrow += c;
            }
          }
          q = avg.average(sum, count);
        } else {
          q = in.params().zero_point;
        }
        yrow[ch] = static_cast<std::int8_t>(clamp_to(q, qmin, qmax));
      }
    }
  }
}

QTensor avg_pool_q(const QTensor& in, const Layer& l) {
  QTensor out(conv_output_shape(in.shape(), l, in.shape().c), in.params());
  avg_pool_q_into(in, l, out);
  return out;
}

void global_avg_pool_q_into(const QTensor& in, QTensor& out) {
  std::vector<std::int32_t> sums(static_cast<std::size_t>(in.shape().c), 0);
  global_avg_pool_q_into(in, sums, out);
}

void global_avg_pool_q_into(const QTensor& in, std::span<std::int32_t> sums,
                            QTensor& out) {
  const TensorShape& is = in.shape();
  QMCU_REQUIRE(out.shape() == TensorShape(1, 1, is.c),
               "global_avg_pool_q: destination shape mismatch");
  QMCU_REQUIRE(out.params() == in.params(),
               "global_avg_pool_q: pools keep the input params");
  QMCU_REQUIRE(static_cast<std::int64_t>(sums.size()) >= is.c,
               "global_avg_pool_q: sums scratch too small");
  const int pixels = is.h * is.w;
  const ElementRequantizer mean(1.0 / pixels, 128 * pixels);
  const std::int32_t qmin = in.params().qmin();
  const std::int32_t qmax = in.params().qmax();
  std::fill(sums.begin(), sums.begin() + is.c, 0);
  const std::int8_t* p = in.data().data();
  for (int i = 0; i < pixels; ++i) {
    for (int ch = 0; ch < is.c; ++ch) {
      sums[static_cast<std::size_t>(ch)] += p[ch];
    }
    p += is.c;
  }
  for (int ch = 0; ch < is.c; ++ch) {
    out.at(0, 0, ch) = static_cast<std::int8_t>(clamp_to(
        mean.apply(sums[static_cast<std::size_t>(ch)]), qmin, qmax));
  }
}

QTensor global_avg_pool_q(const QTensor& in) {
  QTensor out(TensorShape{1, 1, in.shape().c}, in.params());
  global_avg_pool_q_into(in, out);
  return out;
}

void add_q_into(const QTensor& lhs, const QTensor& rhs, Activation act,
                QTensor& out) {
  QMCU_REQUIRE(lhs.shape() == rhs.shape(), "add operand shape mismatch");
  QMCU_REQUIRE(out.shape() == lhs.shape(),
               "add_q: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const auto& lp = lhs.params();
  const auto& rp = rhs.params();
  const auto [act_lo, act_hi] = activation_range(act, out_params);
  // TFLite integer Add: both operands are rescaled onto a shared grid at
  // 2*max(scale) with 20 bits of shifted headroom, summed in int32, then
  // rescaled once into the output params. No per-element float math.
  constexpr int kLeftShift = 20;
  const double twice_max =
      2.0 * std::max(static_cast<double>(lp.scale),
                     static_cast<double>(rp.scale));
  const FixedPointMultiplier ml =
      quantize_multiplier(static_cast<double>(lp.scale) / twice_max);
  const FixedPointMultiplier mr =
      quantize_multiplier(static_cast<double>(rp.scale) / twice_max);
  const FixedPointMultiplier mo = quantize_multiplier(
      twice_max /
      ((std::int64_t{1} << kLeftShift) * static_cast<double>(out_params.scale)));
  const auto a = lhs.data();
  const auto b = rhs.data();
  auto y = out.data();
  for (std::size_t i = 0; i < y.size(); ++i) {
    const std::int32_t av =
        (static_cast<std::int32_t>(a[i]) - lp.zero_point) * (1 << kLeftShift);
    const std::int32_t bv =
        (static_cast<std::int32_t>(b[i]) - rp.zero_point) * (1 << kLeftShift);
    const std::int32_t sum =
        apply_multiplier(av, ml) + apply_multiplier(bv, mr);
    const std::int32_t q =
        apply_multiplier(sum, mo) + out_params.zero_point;
    y[i] = static_cast<std::int8_t>(clamp_to(q, act_lo, act_hi));
  }
}

QTensor add_q(const QTensor& lhs, const QTensor& rhs, Activation act,
              const QuantParams& out_params) {
  QTensor out(lhs.shape(), out_params);
  add_q_into(lhs, rhs, act, out);
  return out;
}

void concat_q_into(std::span<const QTensor* const> inputs, QTensor& out) {
  QMCU_REQUIRE(!inputs.empty(), "concat needs inputs");
  const TensorShape& first = inputs[0]->shape();
  int channels = 0;
  for (const QTensor* t : inputs) {
    QMCU_REQUIRE(t->shape().h == first.h && t->shape().w == first.w,
                 "concat inputs must agree spatially");
    channels += t->shape().c;
  }
  QMCU_REQUIRE(out.shape() == TensorShape(first.h, first.w, channels),
               "concat_q: destination shape mismatch");
  const QuantParams& out_params = out.params();
  const std::int32_t qmin = out_params.qmin();
  const std::int32_t qmax = out_params.qmax();
  std::int8_t* y = out.data().data();
  const int pixels = first.h * first.w;
  int co = 0;
  for (const QTensor* t : inputs) {
    const auto& p = t->params();
    const int tc = t->shape().c;
    const std::int8_t* src = t->data().data();
    std::int8_t* dst = y + co;
    if (p == out_params) {
      // Matching params: the slice is a raw channel-block copy.
      for (int i = 0; i < pixels; ++i) {
        std::memcpy(dst, src, static_cast<std::size_t>(tc));
        src += tc;
        dst += channels;
      }
    } else {
      const ElementRequantizer r(static_cast<double>(p.scale) /
                                 static_cast<double>(out_params.scale));
      for (int i = 0; i < pixels; ++i) {
        for (int ch = 0; ch < tc; ++ch) {
          const std::int32_t q =
              r.apply(static_cast<std::int32_t>(src[ch]) - p.zero_point) +
              out_params.zero_point;
          dst[ch] = static_cast<std::int8_t>(clamp_to(q, qmin, qmax));
        }
        src += tc;
        dst += channels;
      }
    }
    co += tc;
  }
}

QTensor concat_q(std::span<const QTensor* const> inputs,
                 const QuantParams& out_params) {
  QMCU_REQUIRE(!inputs.empty(), "concat needs inputs");
  const TensorShape& first = inputs[0]->shape();
  int channels = 0;
  for (const QTensor* t : inputs) channels += t->shape().c;
  QTensor out(TensorShape{first.h, first.w, channels}, out_params);
  concat_q_into(inputs, out);
  return out;
}

QTensor softmax_q(const QTensor& in, const QuantParams& out_params) {
  const Tensor real = dequantize(in);
  const Tensor soft = softmax_f32(real);
  return quantize(soft, out_params);
}

void requantize_q_into(const QTensor& q, QTensor& out) {
  QMCU_REQUIRE(out.shape() == q.shape(),
               "requantize_q: destination shape mismatch");
  const QuantParams& target = out.params();
  const auto src = q.data();
  auto dst = out.data();
  if (q.params() == target) {
    std::memcpy(dst.data(), src.data(), src.size());
    return;
  }
  const auto& p = q.params();
  const ElementRequantizer r(static_cast<double>(p.scale) /
                             static_cast<double>(target.scale));
  const std::int32_t qmin = target.qmin();
  const std::int32_t qmax = target.qmax();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const std::int32_t v =
        r.apply(static_cast<std::int32_t>(src[i]) - p.zero_point) +
        target.zero_point;
    dst[i] = static_cast<std::int8_t>(clamp_to(v, qmin, qmax));
  }
}

QTensor requantize_q(const QTensor& q, const QuantParams& target) {
  if (q.params() == target) return q;
  QTensor out(q.shape(), target);
  requantize_q_into(q, out);
  return out;
}

}  // namespace qmcu::nn::ops
