// im2col.h — receptive-field packing for the Fast kernel tier.
//
// Convolution lowers onto GEMM by materializing, per output pixel, the
// kernel_h * kernel_w * in_channels window it reads (one K-element row of
// the im2col matrix). Packing works one *output row* at a time so the
// scratch footprint is out_w * K int8 lanes, not the whole matrix — the
// MCU-style bound a patch-branch executor needs. Interior pixels (window
// fully inside the feature map) take a memcpy-per-kernel-row fast path;
// only border pixels pay per-position bounds checks, which is the
// interior/border split the padded convolutions rely on.
#pragma once

#include <cstdint>
#include <span>

#include "nn/graph.h"
#include "nn/shape.h"

namespace qmcu::nn::ops {

namespace simd {
struct SimdKernels;
}  // namespace simd

// Output shape of a windowed op (conv / pool) per the Layer geometry.
TensorShape conv_output_shape(const TensorShape& in, const Layer& l,
                              int out_channels);

// Valid (in-bounds) kernel index range along one axis for a window anchored
// at input position `i0`: the ky with 0 <= i0 + ky < extent. Shared by the
// reference loop nests and the Fast tier's border handling.
struct KernelRange {
  int lo;
  int hi;  // exclusive
  [[nodiscard]] int count() const { return hi > lo ? hi - lo : 0; }
};

KernelRange valid_kernel_range(int i0, int kernel, int extent);

// Elements of one packed im2col pixel row: kernel_h * kernel_w * in.c.
std::int64_t im2col_row_elements(const TensorShape& in, const Layer& l);

// Packs the receptive fields of all `out_w` output pixels of output row
// `oy` into `dst` (out_w rows of K elements each). Out-of-bounds window
// positions are filled with `pad_value` — the input zero point, i.e. the
// quantized encoding of real 0, so the GEMM needs no padding logic at all.
void im2col_pack_row(std::span<const std::int8_t> x, const TensorShape& in,
                     const Layer& l, int oy, int out_w, std::int8_t pad_value,
                     std::int8_t* dst);

// Float flavour (same geometry, zero padding) for the fast float conv path.
void im2col_pack_row_f32(std::span<const float> x, const TensorShape& in,
                         const Layer& l, int oy, int out_w, float* dst);

// Sub-byte flavour: expands 2/4-bit packed activations (quant/bitpack.h
// little-endian wire layout, in.elements() fields) directly into the im2col
// scratch rows, never materializing a full unpacked int8 tensor. `simd`
// (the Simd tier's microkernel table; null = scalar) vectorizes the
// whole-byte unpack body, bit-identically.
void im2col_pack_row_subbyte(std::span<const std::uint8_t> packed, int bits,
                             const TensorShape& in, const Layer& l, int oy,
                             int out_w, std::int8_t pad_value,
                             std::int8_t* dst,
                             const simd::SimdKernels* simd = nullptr);

}  // namespace qmcu::nn::ops
