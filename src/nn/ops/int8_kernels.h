// int8_kernels.h — integer quantized kernels (TFLite-Micro arithmetic
// contract, CMix-NN storage model).
//
// Activations are affine-quantized per tensor; weights are symmetric 8-bit.
// The MAC path is integer-only: int32 accumulation, fixed-point
// requantization (see requantize.h) and saturation into the activation's
// [qmin, qmax]. Sub-byte activations (4/2-bit QuantParams) use the same
// kernels on unpacked int8 storage — the form CMix-NN computes on — while
// their accounted footprint is the packed size.
//
// Known deviation from a production TFLM build: residual Add, AvgPool mean
// and Softmax use double-precision rescaling instead of the secondary
// fixed-point path. The arithmetic contract (scale/zero-point semantics,
// saturation) is identical; only the rounding of those three cheap ops may
// differ by 1 LSB.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "nn/graph.h"
#include "nn/tensor.h"

namespace qmcu::nn::ops {

// Quantized clamp range implementing a fused activation on top of the
// output QuantParams (TFLite convention: ReLU clamps at the zero point).
std::pair<std::int32_t, std::int32_t> activation_range(Activation act,
                                                       const QuantParams& out);

// Symmetric 8-bit weight quantization of a float weight blob.
struct QuantizedWeights {
  std::vector<std::int8_t> data;
  QuantParams params;  // zero_point == 0
};
QuantizedWeights quantize_weights(std::span<const float> w);

// Bias quantized to int32 at scale in_scale * weight_scale.
std::vector<std::int32_t> quantize_bias(std::span<const float> bias,
                                        float in_scale, float weight_scale);

QTensor conv2d_q(const QTensor& in, const Layer& l,
                 std::span<const std::int8_t> qweights,
                 const QuantParams& wparams,
                 std::span<const std::int32_t> qbias,
                 const QuantParams& out_params);

QTensor depthwise_conv2d_q(const QTensor& in, const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias,
                           const QuantParams& out_params);

QTensor fully_connected_q(const QTensor& in, const Layer& l,
                          std::span<const std::int8_t> qweights,
                          const QuantParams& wparams,
                          std::span<const std::int32_t> qbias,
                          const QuantParams& out_params);

// Pools keep the input QuantParams (TFLite requires matching scales).
QTensor max_pool_q(const QTensor& in, const Layer& l);
QTensor avg_pool_q(const QTensor& in, const Layer& l);
QTensor global_avg_pool_q(const QTensor& in);

QTensor add_q(const QTensor& lhs, const QTensor& rhs, Activation act,
              const QuantParams& out_params);
QTensor concat_q(std::span<const QTensor* const> inputs,
                 const QuantParams& out_params);
QTensor softmax_q(const QTensor& in, const QuantParams& out_params);

}  // namespace qmcu::nn::ops
