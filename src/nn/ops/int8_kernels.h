// int8_kernels.h — integer quantized kernels (TFLite-Micro arithmetic
// contract, CMix-NN storage model). These are the *Reference tier*: plain
// loop nests that define the arithmetic every fast implementation must
// reproduce bit-for-bit (see nn/ops/backend.h for the dispatching tiers).
//
// Activations are affine-quantized per tensor; weights are symmetric 8-bit.
// The MAC path is integer-only: int32 accumulation, fixed-point
// requantization (see requantize.h) and saturation into the activation's
// [qmin, qmax]. Sub-byte activations (4/2-bit QuantParams) use the same
// kernels on unpacked int8 storage — the form CMix-NN computes on — while
// their accounted footprint is the packed size.
//
// Elementwise ops (residual Add, Concat rescale, AvgPool mean, slice
// requantization) are integer-only too: precomputed fixed-point multipliers
// (ElementRequantizer) replace any per-element float math, exactly as a
// deployed CMSIS-NN/TFLite-Micro build computes them. The only remaining
// float detour is Softmax, which runs on the dequantized logits.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "nn/graph.h"
#include "nn/ops/requantize.h"
#include "nn/tensor.h"

namespace qmcu::nn::ops {

// Quantized clamp range implementing a fused activation on top of the
// output QuantParams (TFLite convention: ReLU clamps at the zero point).
std::pair<std::int32_t, std::int32_t> activation_range(Activation act,
                                                       const QuantParams& out);

// Symmetric 8-bit weight quantization of a float weight blob.
struct QuantizedWeights {
  std::vector<std::int8_t> data;
  QuantParams params;  // zero_point == 0
};
QuantizedWeights quantize_weights(std::span<const float> w);

// Bias quantized to int32 at scale in_scale * weight_scale.
std::vector<std::int32_t> quantize_bias(std::span<const float> bias,
                                        float in_scale, float weight_scale);

// Integer mean of a pool window: precomputed fixed-point reciprocals for
// every valid-count a kernel window can produce, shared by the layer
// kernels, the region pooling used by patch executors, and the Fast tier so
// all of them round identically (half away from zero, within 1 LSB of the
// exact rational mean for non-power-of-two counts).
class AvgPoolMultipliers {
 public:
  explicit AvgPoolMultipliers(int max_count);

  // Rounded average of a window sum over `count` valid positions.
  [[nodiscard]] std::int32_t average(std::int32_t sum, int count) const;

 private:
  std::vector<ElementRequantizer> per_count_;  // index = count - 1
};

// Every kernel has a value-returning form (allocates its output) and an
// `_into` form writing into a caller-provided destination whose shape is
// already correct and whose QuantParams are the output parameters — the
// form the compiled arena executors bind onto planned arena offsets. Both
// forms compute bit-identical results.
QTensor conv2d_q(const QTensor& in, const Layer& l,
                 std::span<const std::int8_t> qweights,
                 const QuantParams& wparams,
                 std::span<const std::int32_t> qbias,
                 const QuantParams& out_params);
void conv2d_q_into(const QTensor& in, const Layer& l,
                   std::span<const std::int8_t> qweights,
                   const QuantParams& wparams,
                   std::span<const std::int32_t> qbias, QTensor& out);

QTensor depthwise_conv2d_q(const QTensor& in, const Layer& l,
                           std::span<const std::int8_t> qweights,
                           const QuantParams& wparams,
                           std::span<const std::int32_t> qbias,
                           const QuantParams& out_params);
void depthwise_conv2d_q_into(const QTensor& in, const Layer& l,
                             std::span<const std::int8_t> qweights,
                             const QuantParams& wparams,
                             std::span<const std::int32_t> qbias,
                             QTensor& out);

QTensor fully_connected_q(const QTensor& in, const Layer& l,
                          std::span<const std::int8_t> qweights,
                          const QuantParams& wparams,
                          std::span<const std::int32_t> qbias,
                          const QuantParams& out_params);
void fully_connected_q_into(const QTensor& in, const Layer& l,
                            std::span<const std::int8_t> qweights,
                            const QuantParams& wparams,
                            std::span<const std::int32_t> qbias, QTensor& out);

// Pools keep the input QuantParams (TFLite requires matching scales); the
// `_into` destinations must carry the producer's params.
QTensor max_pool_q(const QTensor& in, const Layer& l);
void max_pool_q_into(const QTensor& in, const Layer& l, QTensor& out);
QTensor avg_pool_q(const QTensor& in, const Layer& l);
void avg_pool_q_into(const QTensor& in, const Layer& l, QTensor& out);
// Allocation-free flavour: `avg` must be built for (at least) the layer's
// kernel_h * kernel_w window. The table depends only on the window size, so
// callers on the hot path (KernelBackend) cache it across runs.
void avg_pool_q_into(const QTensor& in, const Layer& l,
                     const AvgPoolMultipliers& avg, QTensor& out);
QTensor global_avg_pool_q(const QTensor& in);
void global_avg_pool_q_into(const QTensor& in, QTensor& out);
// Allocation-free flavour: `sums` is caller-provided scratch of in.c int32
// accumulators (contents ignored).
void global_avg_pool_q_into(const QTensor& in, std::span<std::int32_t> sums,
                            QTensor& out);

QTensor add_q(const QTensor& lhs, const QTensor& rhs, Activation act,
              const QuantParams& out_params);
void add_q_into(const QTensor& lhs, const QTensor& rhs, Activation act,
                QTensor& out);
QTensor concat_q(std::span<const QTensor* const> inputs,
                 const QuantParams& out_params);
void concat_q_into(std::span<const QTensor* const> inputs, QTensor& out);
QTensor softmax_q(const QTensor& in, const QuantParams& out_params);

// Rescales `q` into `target` params with a single fixed-point multiplier
// (identity copy when the params already match). This is the branch-slice
// copy of the mixed-precision patch runtime.
QTensor requantize_q(const QTensor& q, const QuantParams& target);
void requantize_q_into(const QTensor& q, QTensor& out);

}  // namespace qmcu::nn::ops
