#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "nn/checksum.h"

namespace qmcu::nn {

namespace {

constexpr char kGraphMagic[4] = {'Q', 'M', 'C', 'U'};
constexpr char kConfigMagic[4] = {'Q', 'M', 'C', 'Q'};
// v2: endianness sentinel after the version word, the payload framed by an
// explicit byte count, and a trailing CRC32 so truncation and bit flips are
// both detected before any of the payload is interpreted.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kEndianSentinel = 0x01020304u;

// --- primitive writers/readers (explicit little-endian) --------------------

void write_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  QMCU_REQUIRE(is.good(), "truncated model file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

void write_u64(std::ostream& os, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char buf[8];
  is.read(reinterpret_cast<char*>(buf), 8);
  QMCU_REQUIRE(is.good(), "truncated model file");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[i]) << (8 * i);
  return v;
}

void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}

std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

void write_f32(std::ostream& os, float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  write_u32(os, bits);
}

float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  QMCU_REQUIRE(n <= (1u << 20), "implausible string length in model file");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  QMCU_REQUIRE(is.good(), "truncated model file");
  return s;
}

void write_f32_blob(std::ostream& os, std::span<const float> data) {
  write_u32(os, static_cast<std::uint32_t>(data.size()));
  for (float v : data) write_f32(os, v);
}

std::vector<float> read_f32_blob(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  QMCU_REQUIRE(n <= (1u << 28), "implausible blob length in model file");
  std::vector<float> out(n);
  for (float& v : out) v = read_f32(is);
  return out;
}

// --- v2 framing ------------------------------------------------------------
//
// magic | u32 version | u32 endianness sentinel | u64 payload bytes |
// payload | u32 crc32(payload)
//
// The reader pulls the whole payload by its declared length and verifies
// the checksum before a single payload byte is interpreted, so a truncated
// copy and a bit-flipped blob fail with the same loud error instead of a
// structural check tripping (or worse, not tripping) somewhere downstream.
// Framing also keeps concatenated streams (graph + config in one file)
// parseable: each frame knows exactly where it ends.

void write_framed(std::ostream& os, const char (&magic)[4],
                  const std::string& payload) {
  os.write(magic, 4);
  write_u32(os, kVersion);
  write_u32(os, kEndianSentinel);
  write_u64(os, payload.size());
  os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  write_u32(os, crc32(payload.data(), payload.size()));
}

std::string read_framed(std::istream& is, const char (&magic)[4],
                        const char* what) {
  char buf[4];
  is.read(buf, 4);
  QMCU_REQUIRE(is.good() && std::memcmp(buf, magic, 4) == 0,
               std::string("bad magic: not a ") + what + " file");
  const std::uint32_t version = read_u32(is);
  QMCU_REQUIRE(version == kVersion, "unsupported file version");
  QMCU_REQUIRE(read_u32(is) == kEndianSentinel,
               "endianness sentinel mismatch: file written on an "
               "incompatible host");
  const std::uint64_t size = read_u64(is);
  QMCU_REQUIRE(size <= (1ull << 32), "implausible payload size in file");
  std::string payload(static_cast<std::size_t>(size), '\0');
  is.read(payload.data(), static_cast<std::streamsize>(size));
  QMCU_REQUIRE(is.good() && is.gcount() == static_cast<std::streamsize>(size),
               std::string("truncated ") + what + " file");
  const std::uint32_t stored_crc = read_u32(is);
  QMCU_REQUIRE(stored_crc == crc32(payload.data(), payload.size()),
               std::string("checksum mismatch: corrupt ") + what + " file");
  return payload;
}

}  // namespace

void write_graph(const Graph& g, std::ostream& os, bool include_parameters) {
  std::ostringstream body;
  write_string(body, g.name());
  write_i32(body, g.size());
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    // Builders only produce square geometry; the reader reconstructs
    // through the same builders, so enforce the invariant on the way out.
    QMCU_REQUIRE(l.kernel_h == l.kernel_w && l.stride_h == l.stride_w &&
                     l.pad_h == l.pad_w,
                 "serializer supports square geometry only");
    write_u32(body, static_cast<std::uint32_t>(l.kind));
    write_u32(body, static_cast<std::uint32_t>(l.act));
    write_string(body, l.name);
    write_i32(body, static_cast<std::int32_t>(l.inputs.size()));
    for (int in : l.inputs) write_i32(body, in);
    write_i32(body, l.kernel_h);
    write_i32(body, l.stride_h);
    write_i32(body, l.pad_h);
    write_i32(body, l.out_channels);
    const TensorShape& s = g.shape(id);
    write_i32(body, s.h);
    write_i32(body, s.w);
    write_i32(body, s.c);
    const bool params = include_parameters && g.has_parameters(id);
    write_u32(body, params ? 1 : 0);
    if (params) {
      write_f32_blob(body, g.weights(id));
      write_f32_blob(body, g.bias(id));
    }
  }
  write_framed(os, kGraphMagic, body.str());
}

Graph read_graph(std::istream& is) {
  std::istringstream body(read_framed(is, kGraphMagic, "QMCU graph"));
  Graph g(read_string(body));
  const std::int32_t count = read_i32(body);
  QMCU_REQUIRE(count >= 0 && count <= (1 << 20),
               "implausible layer count in model file");
  for (std::int32_t id = 0; id < count; ++id) {
    const auto kind = static_cast<OpKind>(read_u32(body));
    const auto act = static_cast<Activation>(read_u32(body));
    const std::string name = read_string(body);
    const std::int32_t num_inputs = read_i32(body);
    QMCU_REQUIRE(num_inputs >= 0 && num_inputs <= 64,
                 "implausible input count in model file");
    std::vector<int> inputs(static_cast<std::size_t>(num_inputs));
    for (int& in : inputs) in = read_i32(body);
    const int kernel = read_i32(body);
    const int stride = read_i32(body);
    const int pad = read_i32(body);
    const int out_c = read_i32(body);
    const TensorShape shape{read_i32(body), read_i32(body), read_i32(body)};

    int nid = -1;
    switch (kind) {
      case OpKind::Input:
        nid = g.add_input(shape);
        break;
      case OpKind::Conv2D:
        nid = g.add_conv2d(inputs.at(0), out_c, kernel, stride, pad, act,
                           name);
        break;
      case OpKind::DepthwiseConv2D:
        nid = g.add_depthwise_conv2d(inputs.at(0), kernel, stride, pad, act,
                                     name);
        break;
      case OpKind::FullyConnected:
        nid = g.add_fully_connected(inputs.at(0), out_c, act, name);
        break;
      case OpKind::MaxPool:
        nid = g.add_max_pool(inputs.at(0), kernel, stride, pad, name);
        break;
      case OpKind::AvgPool:
        nid = g.add_avg_pool(inputs.at(0), kernel, stride, pad, name);
        break;
      case OpKind::GlobalAvgPool:
        nid = g.add_global_avg_pool(inputs.at(0), name);
        break;
      case OpKind::Add:
        nid = g.add_residual_add(inputs.at(0), inputs.at(1), act, name);
        break;
      case OpKind::Concat:
        nid = g.add_concat(inputs, name);
        break;
      case OpKind::Softmax:
        nid = g.add_softmax(inputs.at(0), name);
        break;
      default:
        QMCU_REQUIRE(false, "unknown op kind in model file");
    }
    QMCU_ENSURE(nid == id, "layer ids must be stable across serialization");
    QMCU_REQUIRE(g.shape(nid) == shape,
                 "shape mismatch after reconstruction — corrupt file?");
    if (read_u32(body) != 0) {
      std::vector<float> w = read_f32_blob(body);
      std::vector<float> b = read_f32_blob(body);
      g.set_parameters(nid, std::move(w), std::move(b));
    }
  }
  return g;
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QMCU_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  write_graph(g, os);
  QMCU_REQUIRE(os.good(), "write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QMCU_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return read_graph(is);
}

void write_quant_config(const ActivationQuantConfig& cfg, std::ostream& os) {
  std::ostringstream body;
  write_u32(body, static_cast<std::uint32_t>(cfg.params.size()));
  for (const QuantParams& p : cfg.params) {
    write_f32(body, p.scale);
    write_i32(body, p.zero_point);
    write_i32(body, p.bits);
  }
  write_framed(os, kConfigMagic, body.str());
}

ActivationQuantConfig read_quant_config(std::istream& is) {
  std::istringstream body(read_framed(is, kConfigMagic, "QMCU quant-config"));
  const std::uint32_t n = read_u32(body);
  QMCU_REQUIRE(n <= (1u << 20), "implausible layer count in config file");
  ActivationQuantConfig cfg;
  cfg.params.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    QuantParams p;
    p.scale = read_f32(body);
    p.zero_point = read_i32(body);
    p.bits = read_i32(body);
    QMCU_REQUIRE(p.scale > 0.0f && p.bits >= 2 && p.bits <= 8,
                 "invalid quant params in config file");
    cfg.params.push_back(p);
  }
  return cfg;
}

void save_quant_config(const ActivationQuantConfig& cfg,
                       const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QMCU_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  write_quant_config(cfg, os);
  QMCU_REQUIRE(os.good(), "write failed: " + path);
}

ActivationQuantConfig load_quant_config(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QMCU_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return read_quant_config(is);
}

}  // namespace qmcu::nn
