#include "nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace qmcu::nn {

namespace {

constexpr char kGraphMagic[4] = {'Q', 'M', 'C', 'U'};
constexpr char kConfigMagic[4] = {'Q', 'M', 'C', 'Q'};
constexpr std::uint32_t kVersion = 1;

// --- primitive writers/readers (explicit little-endian) --------------------

void write_u32(std::ostream& os, std::uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(buf, 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  QMCU_REQUIRE(is.good(), "truncated model file");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[i]) << (8 * i);
  return v;
}

void write_i32(std::ostream& os, std::int32_t v) {
  write_u32(os, static_cast<std::uint32_t>(v));
}

std::int32_t read_i32(std::istream& is) {
  return static_cast<std::int32_t>(read_u32(is));
}

void write_f32(std::ostream& os, float v) {
  static_assert(sizeof(float) == 4);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  write_u32(os, bits);
}

float read_f32(std::istream& is) {
  const std::uint32_t bits = read_u32(is);
  float v;
  std::memcpy(&v, &bits, 4);
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u32(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  QMCU_REQUIRE(n <= (1u << 20), "implausible string length in model file");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  QMCU_REQUIRE(is.good(), "truncated model file");
  return s;
}

void write_f32_blob(std::ostream& os, std::span<const float> data) {
  write_u32(os, static_cast<std::uint32_t>(data.size()));
  for (float v : data) write_f32(os, v);
}

std::vector<float> read_f32_blob(std::istream& is) {
  const std::uint32_t n = read_u32(is);
  QMCU_REQUIRE(n <= (1u << 28), "implausible blob length in model file");
  std::vector<float> out(n);
  for (float& v : out) v = read_f32(is);
  return out;
}

void write_magic(std::ostream& os, const char (&magic)[4]) {
  os.write(magic, 4);
}

void check_magic(std::istream& is, const char (&magic)[4],
                 const char* what) {
  char buf[4];
  is.read(buf, 4);
  QMCU_REQUIRE(is.good() && std::memcmp(buf, magic, 4) == 0,
               std::string("bad magic: not a ") + what + " file");
  const std::uint32_t version = read_u32(is);
  QMCU_REQUIRE(version == kVersion, "unsupported file version");
}

}  // namespace

void write_graph(const Graph& g, std::ostream& os) {
  write_magic(os, kGraphMagic);
  write_u32(os, kVersion);
  write_string(os, g.name());
  write_i32(os, g.size());
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    // Builders only produce square geometry; the reader reconstructs
    // through the same builders, so enforce the invariant on the way out.
    QMCU_REQUIRE(l.kernel_h == l.kernel_w && l.stride_h == l.stride_w &&
                     l.pad_h == l.pad_w,
                 "serializer supports square geometry only");
    write_u32(os, static_cast<std::uint32_t>(l.kind));
    write_u32(os, static_cast<std::uint32_t>(l.act));
    write_string(os, l.name);
    write_i32(os, static_cast<std::int32_t>(l.inputs.size()));
    for (int in : l.inputs) write_i32(os, in);
    write_i32(os, l.kernel_h);
    write_i32(os, l.stride_h);
    write_i32(os, l.pad_h);
    write_i32(os, l.out_channels);
    const TensorShape& s = g.shape(id);
    write_i32(os, s.h);
    write_i32(os, s.w);
    write_i32(os, s.c);
    write_u32(os, g.has_parameters(id) ? 1 : 0);
    if (g.has_parameters(id)) {
      write_f32_blob(os, g.weights(id));
      write_f32_blob(os, g.bias(id));
    }
  }
}

Graph read_graph(std::istream& is) {
  check_magic(is, kGraphMagic, "QMCU graph");
  Graph g(read_string(is));
  const std::int32_t count = read_i32(is);
  QMCU_REQUIRE(count >= 0 && count <= (1 << 20),
               "implausible layer count in model file");
  for (std::int32_t id = 0; id < count; ++id) {
    const auto kind = static_cast<OpKind>(read_u32(is));
    const auto act = static_cast<Activation>(read_u32(is));
    const std::string name = read_string(is);
    const std::int32_t num_inputs = read_i32(is);
    QMCU_REQUIRE(num_inputs >= 0 && num_inputs <= 64,
                 "implausible input count in model file");
    std::vector<int> inputs(static_cast<std::size_t>(num_inputs));
    for (int& in : inputs) in = read_i32(is);
    const int kernel = read_i32(is);
    const int stride = read_i32(is);
    const int pad = read_i32(is);
    const int out_c = read_i32(is);
    const TensorShape shape{read_i32(is), read_i32(is), read_i32(is)};

    int nid = -1;
    switch (kind) {
      case OpKind::Input:
        nid = g.add_input(shape);
        break;
      case OpKind::Conv2D:
        nid = g.add_conv2d(inputs.at(0), out_c, kernel, stride, pad, act,
                           name);
        break;
      case OpKind::DepthwiseConv2D:
        nid = g.add_depthwise_conv2d(inputs.at(0), kernel, stride, pad, act,
                                     name);
        break;
      case OpKind::FullyConnected:
        nid = g.add_fully_connected(inputs.at(0), out_c, act, name);
        break;
      case OpKind::MaxPool:
        nid = g.add_max_pool(inputs.at(0), kernel, stride, pad, name);
        break;
      case OpKind::AvgPool:
        nid = g.add_avg_pool(inputs.at(0), kernel, stride, pad, name);
        break;
      case OpKind::GlobalAvgPool:
        nid = g.add_global_avg_pool(inputs.at(0), name);
        break;
      case OpKind::Add:
        nid = g.add_residual_add(inputs.at(0), inputs.at(1), act, name);
        break;
      case OpKind::Concat:
        nid = g.add_concat(inputs, name);
        break;
      case OpKind::Softmax:
        nid = g.add_softmax(inputs.at(0), name);
        break;
      default:
        QMCU_REQUIRE(false, "unknown op kind in model file");
    }
    QMCU_ENSURE(nid == id, "layer ids must be stable across serialization");
    QMCU_REQUIRE(g.shape(nid) == shape,
                 "shape mismatch after reconstruction — corrupt file?");
    if (read_u32(is) != 0) {
      std::vector<float> w = read_f32_blob(is);
      std::vector<float> b = read_f32_blob(is);
      g.set_parameters(nid, std::move(w), std::move(b));
    }
  }
  return g;
}

void save_graph(const Graph& g, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QMCU_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  write_graph(g, os);
  QMCU_REQUIRE(os.good(), "write failed: " + path);
}

Graph load_graph(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QMCU_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return read_graph(is);
}

void write_quant_config(const ActivationQuantConfig& cfg, std::ostream& os) {
  write_magic(os, kConfigMagic);
  write_u32(os, kVersion);
  write_u32(os, static_cast<std::uint32_t>(cfg.params.size()));
  for (const QuantParams& p : cfg.params) {
    write_f32(os, p.scale);
    write_i32(os, p.zero_point);
    write_i32(os, p.bits);
  }
}

ActivationQuantConfig read_quant_config(std::istream& is) {
  check_magic(is, kConfigMagic, "QMCU quant-config");
  const std::uint32_t n = read_u32(is);
  QMCU_REQUIRE(n <= (1u << 20), "implausible layer count in config file");
  ActivationQuantConfig cfg;
  cfg.params.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    QuantParams p;
    p.scale = read_f32(is);
    p.zero_point = read_i32(is);
    p.bits = read_i32(is);
    QMCU_REQUIRE(p.scale > 0.0f && p.bits >= 2 && p.bits <= 8,
                 "invalid quant params in config file");
    cfg.params.push_back(p);
  }
  return cfg;
}

void save_quant_config(const ActivationQuantConfig& cfg,
                       const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  QMCU_REQUIRE(os.is_open(), "cannot open file for writing: " + path);
  write_quant_config(cfg, os);
  QMCU_REQUIRE(os.good(), "write failed: " + path);
}

ActivationQuantConfig load_quant_config(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  QMCU_REQUIRE(is.is_open(), "cannot open file for reading: " + path);
  return read_quant_config(is);
}

}  // namespace qmcu::nn
