// checksum.h — CRC32 (IEEE 802.3, poly 0xEDB88320) for file integrity.
//
// Shared by the "QMCU"/"QMCQ" v2 stream formats (serialize.cpp) and the
// "QMCP" plan-artifact section table (plan_artifact.cpp). Slicing-by-16:
// the plan-artifact loader CRCs every section (hundreds of KiB of weight
// panels) on the cold-start path, so the byte-at-a-time loop was the
// single largest cost of load_compiled. Sixteen parallel tables break
// the per-byte dependency chain and process 16 bytes per iteration; the
// checksum values are bit-identical to the classic byte-at-a-time
// formulation (same reflected polynomial, same init/final XOR), so
// existing streams and cross-architecture artifacts verify unchanged.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace qmcu::nn {

namespace detail {
inline constexpr std::array<std::array<std::uint32_t, 256>, 16>
make_crc32_tables() {
  std::array<std::array<std::uint32_t, 256>, 16> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  // tables[t][b] = CRC of byte b followed by t zero bytes: each extra
  // table advances the remainder one byte without consuming input.
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = tables[0][i];
    for (std::size_t t = 1; t < 16; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}
inline constexpr std::array<std::array<std::uint32_t, 256>, 16> kCrc32Tables =
    make_crc32_tables();

inline std::uint32_t crc32_load_word(const unsigned char* p) {
  std::uint32_t w;
  std::memcpy(&w, p, 4);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
  w = __builtin_bswap32(w);
#endif
  return w;
}
}  // namespace detail

// One-shot CRC32 over a byte range.
inline std::uint32_t crc32(const void* data, std::size_t size) {
  const auto& t = detail::kCrc32Tables;
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  while (size >= 16) {
    const std::uint32_t w0 = detail::crc32_load_word(p) ^ c;
    const std::uint32_t w1 = detail::crc32_load_word(p + 4);
    const std::uint32_t w2 = detail::crc32_load_word(p + 8);
    const std::uint32_t w3 = detail::crc32_load_word(p + 12);
    c = t[15][w0 & 0xFFu] ^ t[14][(w0 >> 8) & 0xFFu] ^
        t[13][(w0 >> 16) & 0xFFu] ^ t[12][w0 >> 24] ^ t[11][w1 & 0xFFu] ^
        t[10][(w1 >> 8) & 0xFFu] ^ t[9][(w1 >> 16) & 0xFFu] ^ t[8][w1 >> 24] ^
        t[7][w2 & 0xFFu] ^ t[6][(w2 >> 8) & 0xFFu] ^ t[5][(w2 >> 16) & 0xFFu] ^
        t[4][w2 >> 24] ^ t[3][w3 & 0xFFu] ^ t[2][(w3 >> 8) & 0xFFu] ^
        t[1][(w3 >> 16) & 0xFFu] ^ t[0][w3 >> 24];
    p += 16;
    size -= 16;
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = t[0][(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace qmcu::nn
