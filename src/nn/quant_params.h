// quant_params.h — affine (scale + zero-point) quantization parameters.
//
// Arithmetic contract matches TensorFlow Lite / TFLite-Micro:
//   real = scale * (q - zero_point)
// with q saturating to the signed range of the target bitwidth
// [-2^(b-1), 2^(b-1) - 1]. Sub-byte types (I4/I2) use the same contract with
// a narrower range, as CMix-NN does.
#pragma once

#include <cstdint>

#include "nn/check.h"
#include "nn/dtype.h"

namespace qmcu::nn {

struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;
  int bits = 8;

  [[nodiscard]] std::int32_t qmin() const { return -(1 << (bits - 1)); }
  [[nodiscard]] std::int32_t qmax() const { return (1 << (bits - 1)) - 1; }

  // Saturating quantization of a real value.
  [[nodiscard]] std::int32_t quantize(float real) const;

  // Exact dequantization of a quantized value.
  [[nodiscard]] float dequantize(std::int32_t q) const {
    return scale * static_cast<float>(q - zero_point);
  }

  // Round-trip: the value the quantized representation actually stores.
  [[nodiscard]] float quantize_dequantize(float real) const {
    return dequantize(quantize(real));
  }

  friend bool operator==(const QuantParams&, const QuantParams&) = default;
};

// Chooses asymmetric affine parameters covering [min_v, max_v] (the range is
// widened to include 0 so that zero is exactly representable, as TFLite
// requires for padding correctness).
QuantParams choose_quant_params(float min_v, float max_v, int bits);

// Chooses symmetric parameters (zero_point == 0) covering [-absmax, absmax].
// Used for weights, matching the TFLite per-tensor weight convention.
QuantParams choose_symmetric_quant_params(float absmax, int bits);

}  // namespace qmcu::nn
