// memory_planner.h — peak-SRAM accounting and concrete tensor-arena
// placement for layer-based execution.
//
// Two levels of fidelity:
//
//   plan_layer_based — *accounting*. Models a TFLite-Micro style tensor
//   arena: a feature map is resident from the step that produces it until
//   the step of its last consumer; while a layer executes, its inputs and
//   its output are live simultaneously. The peak over all steps is the
//   "Peak Memory" column of the paper's Table I (layer-based row;
//   patch-based peaks come from patch/patch_plan.h). The plan also prices
//   the Fast kernel backend's transient scratch (im2col strips, GEMM
//   accumulators — see fast_scratch_bytes) so the reported SRAM peak covers
//   what the runtime actually touches, not just the feature maps.
//
//   ArenaPlanner — *placement*. Assigns every feature map a concrete byte
//   offset inside one static arena (greedy-by-size first-fit over lifetime
//   intervals, the TFLite-Micro planning strategy). nn::CompiledModel and
//   friends execute against exactly these offsets, which turns the
//   accounting model above into the runtime's actual allocator and lets
//   tests assert measured high-water == planned peak by construction.
//
// Feature-map footprints honour per-layer activation bitwidths so the same
// planner prices int8 and mixed sub-byte schedules.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/graph.h"

namespace qmcu::nn {

struct MemoryPlan {
  std::int64_t peak_bytes = 0;
  int peak_step = -1;                    // layer id at which the peak occurs
  std::vector<std::int64_t> step_bytes;  // live bytes while each layer runs

  // Fast-backend transient scratch while each layer runs (im2col strip,
  // weight panel, GEMM accumulators — the ScratchArena high-water of the
  // uncached-panel mode; with panel caching enabled the panels are resident
  // instead, see panel_bytes).
  std::vector<std::int64_t> step_scratch_bytes;
  std::int64_t scratch_peak_bytes = 0;   // max over step_scratch_bytes

  // Feature maps + transient scratch, the honest single-arena SRAM peak.
  std::int64_t total_peak_bytes = 0;
  int total_peak_step = -1;

  // Sum of k-major weight panels + column sums across MAC layers: resident
  // (not transient) when KernelBackend caches panels. A deployment would
  // precompute these into flash.
  std::int64_t panel_bytes = 0;
};

// `act_bits[i]` is the storage bitwidth of layer i's output feature map.
MemoryPlan plan_layer_based(const Graph& g, std::span<const int> act_bits);

// Convenience: one bitwidth for every feature map (e.g. uniform int8).
std::vector<int> uniform_bits(const Graph& g, int bits);

// Step of the last consumer of layer `id` (its own step if unconsumed).
int last_use_step(const Graph& g, int id);

// Transient Fast-tier scratch bytes layer `id` needs while it runs
// (uncached-panel mode: im2col strip + packed panel + accumulators for
// conv, per-channel accumulators for depthwise, the float detour for
// softmax). Zero for ops that run without scratch.
//
// `in_act_bits` is the storage bitwidth of the layer's *input* feature map:
// sub-byte inputs (2/4-bit) may dispatch to the LUT-GEMM tier, whose
// uncached scratch (lookup tables + index tile + m-tile accumulators)
// dominates the plain GEMM path's, so the bits-aware overload prices
// max(gemm, lut) for conv and the LUT sequence for fully-connected. The
// 2-argument form assumes int8 inputs (no LUT eligibility).
std::int64_t fast_scratch_bytes(const Graph& g, int id);
std::int64_t fast_scratch_bytes(const Graph& g, int id, int in_act_bits);

// Resident bytes of layer `id`'s cached k-major weight panel + column sums
// (0 for non-Conv2D layers; depthwise and FC never repack). The bits-aware
// overload adds the LUT table panel that prepack bakes for sub-byte inputs
// (conv at 2/4-bit; fc at 2-bit, matching the prepack policy).
std::int64_t fast_panel_bytes(const Graph& g, int id);
std::int64_t fast_panel_bytes(const Graph& g, int id, int in_act_bits);

// Flash footprint: every MAC layer's weights at `weight_bits` plus int32
// biases (the model resides in flash on the MCU).
std::int64_t model_flash_bytes(const Graph& g, int weight_bits);

// --- concrete arena placement ----------------------------------------------

// One tensor's placement request: `size` bytes live over the closed step
// interval [first_step, last_step].
struct ArenaRequest {
  std::int64_t size = 0;
  int first_step = 0;
  int last_step = 0;
};

// A placed tensor: byte range [offset, offset + size) inside the arena.
struct ArenaSlot {
  std::int64_t offset = 0;
  std::int64_t size = 0;
  int first_step = 0;
  int last_step = 0;

  [[nodiscard]] bool overlaps_lifetime(const ArenaSlot& o) const {
    return first_step <= o.last_step && o.first_step <= last_step;
  }
  [[nodiscard]] bool overlaps_bytes(const ArenaSlot& o) const {
    return offset < o.offset + o.size && o.offset < offset + size;
  }
};

struct ArenaPlan {
  std::vector<ArenaSlot> slots;     // parallel to the request list
  std::int64_t peak_bytes = 0;      // arena extent: max(offset + size)
  // Sum-of-live lower bound (what plan_layer_based-style accounting gives);
  // peak_bytes >= live_peak_bytes, with equality when greedy packing is
  // fragmentation-free.
  std::int64_t live_peak_bytes = 0;
};

// Arena layout for parallel patch execution: one privately-owned slice per
// worker (the branch-phase feature maps a worker rebinds patch after patch)
// followed by one shared region (the reassembled cut-layer map, the
// layer-based tail, the quantized full input). Workers only ever write
// inside their own slice and into disjoint tiles of the shared assembled
// slot, so the layout needs no locks:
//
//   [ slice 0 | slice 1 | ... | slice W-1 | shared ]
//
// `slice` is planned once (it is worker-count independent); the stride is
// its peak rounded up to the planner's alignment so every slice base keeps
// the alignment guarantee.
struct ParallelArenaPlan {
  ArenaPlan slice;   // per-worker branch-phase slots (request order)
  ArenaPlan shared;  // shared slots (request order)
  int num_workers = 1;
  std::int64_t slice_stride = 0;  // aligned slice.peak_bytes

  [[nodiscard]] std::int64_t slice_offset(int worker) const {
    return static_cast<std::int64_t>(worker) * slice_stride;
  }
  [[nodiscard]] std::int64_t shared_offset() const {
    return slice_stride * num_workers;
  }
  [[nodiscard]] std::int64_t total_bytes() const {
    return shared_offset() + shared.peak_bytes;
  }
};

// Greedy-by-size first-fit placement over lifetime intervals (the
// TFLite-Micro arena strategy): tensors are placed largest-first at the
// lowest offset that does not collide with any already-placed tensor whose
// lifetime overlaps. Deterministic; offsets are aligned to `alignment`.
class ArenaPlanner {
 public:
  explicit ArenaPlanner(std::int64_t alignment = 16);

  [[nodiscard]] ArenaPlan plan(std::span<const ArenaRequest> requests) const;

  // Graph convenience: one request per layer, sized to the *packed*
  // footprint of its output feature map at act_bits[i], live from its
  // producing step through its last consumer. This is the accounting-grade
  // placement matching plan_layer_based's liveness model.
  [[nodiscard]] ArenaPlan plan(const Graph& g,
                               std::span<const int> act_bits) const;

  // Parallel layout: places `per_worker` into one slice (replicated
  // `num_workers` times at slice_stride) and `shared` into the region after
  // the last slice. Slice request lifetimes are per-worker-local and shared
  // request lifetimes global, so the two lists are packed independently.
  [[nodiscard]] ParallelArenaPlan plan_parallel(
      std::span<const ArenaRequest> per_worker,
      std::span<const ArenaRequest> shared, int num_workers) const;

  // Pipelined variant: the dependency-driven patch runtime executes tail
  // row bands *while* branches are still running, so the shared region's
  // step timeline no longer serialises the two phases. Every shared
  // request born at or before `overlap_horizon` (the timeline step of the
  // last row-banded tail layer) is widened to live over the whole
  // pipelined window [0, max(last_step, overlap_horizon)] — those slots
  // (assembled map, quantized input, banded tail layers) may all be
  // written or read concurrently, so none of them may reuse another's
  // bytes. Requests born after the horizon run strictly after the
  // pipeline's join and keep their step lifetimes (and may therefore
  // still recycle a widened slot's bytes).
  [[nodiscard]] ParallelArenaPlan plan_pipelined(
      std::span<const ArenaRequest> per_worker,
      std::span<const ArenaRequest> shared, int num_workers,
      int overlap_horizon) const;

 private:
  std::int64_t alignment_;
};

}  // namespace qmcu::nn
