// memory_planner.h — peak-SRAM accounting for layer-based execution.
//
// Models a TFLite-Micro style tensor arena: a feature map is resident from
// the step that produces it until the step of its last consumer; while a
// layer executes, its inputs and its output are live simultaneously. The
// peak over all steps is the "Peak Memory" column of the paper's Table I
// (for the layer-based row; patch-based peaks come from patch/patch_plan.h).
//
// Feature-map footprints honour per-layer activation bitwidths so the same
// planner prices int8 and mixed sub-byte schedules.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/graph.h"

namespace qmcu::nn {

struct MemoryPlan {
  std::int64_t peak_bytes = 0;
  int peak_step = -1;                    // layer id at which the peak occurs
  std::vector<std::int64_t> step_bytes;  // live bytes while each layer runs
};

// `act_bits[i]` is the storage bitwidth of layer i's output feature map.
MemoryPlan plan_layer_based(const Graph& g, std::span<const int> act_bits);

// Convenience: one bitwidth for every feature map (e.g. uniform int8).
std::vector<int> uniform_bits(const Graph& g, int bits);

// Step of the last consumer of layer `id` (its own step if unconsumed).
int last_use_step(const Graph& g, int id);

// Flash footprint: every MAC layer's weights at `weight_bits` plus int32
// biases (the model resides in flash on the MCU).
std::int64_t model_flash_bytes(const Graph& g, int weight_bits);

}  // namespace qmcu::nn
