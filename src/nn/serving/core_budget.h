// core_budget.h — one shared core budget for both parallelism layers.
//
// The runtime has two independent parallel axes: intra-request
// (WorkerPool pipelined task graphs, PR 3/4) and inter-request
// (SessionPool lanes). Stacked naively they multiply: S sessions each
// driving a hardware_workers()-wide pool puts S x C threads on C cores —
// context-switch churn, arenas bouncing between private caches, and worse
// throughput than either layer alone. CoreBudget is the arbitration rule:
//
//     sessions x workers_per_session  <=  core budget,
//
// partitioning the budget into per-lane slices. Lane i's serving thread
// is worker 0 of its own WorkerPool slice, the slice's threads are pinned
// to lane i's CPUs (best-effort, see runtime/cpu_affinity.h), and the
// remainder cores left by an uneven division widen the first lanes'
// pin sets without adding workers — the thread count never exceeds the
// budget.
//
// ServingConfig bundles the budget with the admission-control knobs the
// ServingFrontend enforces (bounded queue, deadlines, shed policy).
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace qmcu::nn::serving {

// The partition of a core budget across serving lanes.
struct CoreBudget {
  int total_cores = 1;          // the budget being divided
  int sessions = 1;             // serving lanes
  int workers_per_session = 1;  // WorkerPool width per lane (incl. worker 0)

  // Splits `total_cores` (0 = detect via runtime::usable_cpus()) across
  // `sessions` lanes: workers_per_session = max(1, total/sessions). More
  // lanes than cores means 1-worker lanes time-sharing cores — admission
  // control's job, not the partitioner's.
  static CoreBudget partition(int sessions, int total_cores = 0);

  // Total threads the serving stack runs (= sessions x workers_per_session,
  // <= max(total_cores, sessions)).
  [[nodiscard]] int threads() const { return sessions * workers_per_session; }

  // The CPU ids lane `lane` pins to: its contiguous slice of
  // [0, total_cores), plus one remainder core for the first
  // total % sessions lanes (scheduling slack — the lane still runs only
  // workers_per_session threads). With more lanes than cores, lanes wrap
  // round-robin onto single cores.
  [[nodiscard]] std::vector<int> lane_cpus(int lane) const;
};

// Which requests give way when the pool is saturated.
enum class ShedPolicy {
  // Queue at max_queue_depth: new submissions are rejected immediately
  // (future carries RejectedError). Bounded latency for admitted traffic.
  Reject,
  // Same bound, but once the backlog crosses shed_queue_depth, requests
  // execute sequentially (1 worker) instead of on the lane's full pool:
  // intra-request parallelism is the first thing to give back under
  // pressure, because at high load it only adds scheduling overhead —
  // cores are already saturated by request-level concurrency.
  Downgrade,
};

struct ServingConfig {
  // Lanes (pre-compiled sessions + serving threads).
  int sessions = 2;
  // Cores the front-end may use; 0 = all usable CPUs of this process.
  int core_budget = 0;
  // Pin each lane's threads to its CoreBudget slice (best-effort; ignored
  // where unsupported).
  bool pin_lanes = true;
  // Bounded admission: submissions beyond this queue depth are rejected.
  // 0 = unbounded (no rejection).
  std::size_t max_queue_depth = 64;
  // Backlog depth at which ShedPolicy::Downgrade starts degrading
  // intra-request parallelism.
  std::size_t shed_queue_depth = 16;
  ShedPolicy policy = ShedPolicy::Reject;
  // Deadline granted to submit() calls that don't pass their own; measured
  // from submission. zero() = no deadline.
  std::chrono::microseconds default_deadline{0};
};

}  // namespace qmcu::nn::serving
