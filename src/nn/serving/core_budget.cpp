#include "nn/serving/core_budget.h"

#include <algorithm>

#include "nn/check.h"
#include "nn/runtime/cpu_affinity.h"

namespace qmcu::nn::serving {

CoreBudget CoreBudget::partition(int sessions, int total_cores) {
  QMCU_REQUIRE(sessions >= 1, "core budget needs at least one session");
  CoreBudget b;
  b.total_cores =
      total_cores > 0 ? total_cores : runtime::usable_cpus();
  b.sessions = sessions;
  b.workers_per_session = std::max(1, b.total_cores / sessions);
  return b;
}

std::vector<int> CoreBudget::lane_cpus(int lane) const {
  QMCU_REQUIRE(lane >= 0 && lane < sessions, "lane out of range");
  std::vector<int> cpus;
  if (sessions >= total_cores) {
    // Lanes outnumber cores: round-robin single-core lanes. Two lanes on
    // one core time-share it — the admission queue, not the scheduler,
    // is what keeps that from melting down.
    cpus.push_back(lane % total_cores);
    return cpus;
  }
  const int w = workers_per_session;
  cpus.reserve(static_cast<std::size_t>(w) + 1);
  for (int i = 0; i < w; ++i) cpus.push_back(lane * w + i);
  // Deal the remainder cores [sessions*w, total) to the first lanes as
  // extra scheduling room (no extra workers — the thread budget is fixed).
  const int rem_base = sessions * w;
  if (lane < total_cores - rem_base) cpus.push_back(rem_base + lane);
  return cpus;
}

}  // namespace qmcu::nn::serving
