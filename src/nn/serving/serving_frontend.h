// serving_frontend.h — the fleet-scale serving front-end.
//
// ServingFrontend composes the repo's two parallelism layers under one
// CoreBudget (core_budget.h):
//
//   * Inter-request: a SessionPool of pre-compiled sessions, one serving
//     thread per lane.
//   * Intra-request: each lane owns a WorkerPool slice of
//     workers_per_session lanes (the serving thread is worker 0), so a
//     pool-runnable model (CompiledPatchModel / CompiledPatchQuantModel
//     run(input, WorkerPool*)) pipelines one request inside its slice
//     while other lanes serve other requests. Plain run(input) models
//     simply ignore the slice machinery.
//
// Lanes are pinned to disjoint CPU slices (best-effort): a lane's
// per-worker arenas, scratch and weight-panel caches stay resident in its
// slice's private caches instead of migrating, and one lane's work cannot
// be scheduled on top of another's. Results are bit-identical to
// sequential single-model runs in every configuration — pinning, worker
// count, degradation and batch spreading only change *where and when* a
// request runs, never its arithmetic (the PR-3/4 parallel bit-exactness
// contract).
//
// Admission control is explicit and all-or-nothing per request:
//   * bounded queue — submissions beyond max_queue_depth fail immediately
//     with RejectedError (the future carries it; nothing was queued);
//   * per-request deadlines — a request still queued when its deadline
//     passes is never started: its future carries DeadlineExceededError,
//     by construction there is no partial result;
//   * load shedding — ShedPolicy::Downgrade trades intra-request
//     parallelism for throughput once the backlog crosses
//     shed_queue_depth (a degraded request runs sequentially on its lane).
//
// submit_batch spreads a large batch across lanes (contiguous chunks, one
// queue entry each) instead of serializing the whole batch on whichever
// single lane pops it — idle lanes start immediately, busy lanes pick up
// remaining chunks as they free.
//
// swap_model() hot-swaps the whole fleet under traffic, one lane at a
// time, without dropping an admitted request — pair it with a factory over
// a mapped plan artifact (nn/plan_artifact.h) for zero-downtime deploys
// where every lane views one shared weight mapping.
//
// Streams (models with run_streaming, i.e. the patch models): open_stream
// pins a StreamingSession to a lane round-robin; submit_stream routes each
// frame to that lane IN FIFO ORDER (SessionPool::submit_raw_to), so the
// stream's retained arena and diff baseline stay coherent — and frames see
// the previous frame's work. Stream frames deliberately bypass admission
// control (bounded queue, deadlines, downgrade): dropping or reordering a
// frame would force a full recompute and cost more than running it, and a
// degraded (different worker count) run is incompatible with the stream's
// pinned arena layout. Back-pressure for streams belongs at the source
// (skip capture frames, not queued ones).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include <map>

#include "nn/check.h"
#include "nn/runtime/cpu_affinity.h"
#include "nn/runtime/session_pool.h"
#include "nn/runtime/worker_pool.h"
#include "nn/serving/core_budget.h"
#include "nn/streaming/streaming_session.h"

namespace qmcu::nn::serving {

// The admission queue was full: the request was never enqueued.
class RejectedError : public std::runtime_error {
 public:
  explicit RejectedError(std::size_t depth)
      : std::runtime_error("request rejected: admission queue full (" +
                           std::to_string(depth) + " queued)") {}
};

// The request's deadline passed while it waited in the queue: it was
// never started (no partial result exists anywhere).
class DeadlineExceededError : public std::runtime_error {
 public:
  DeadlineExceededError()
      : std::runtime_error("request deadline exceeded before execution") {}
};

// A point-in-time view of the front-end's accounting. completed +
// rejected + expired equals the number of submitted requests once traffic
// has drained.
struct ServingStats {
  std::uint64_t completed = 0;  // ran to completion (incl. degraded)
  std::uint64_t rejected = 0;   // shed at admission (queue full)
  std::uint64_t expired = 0;    // shed at pop (deadline passed)
  std::uint64_t degraded = 0;   // completed sequentially under Downgrade
  std::uint64_t swapped_lanes = 0;  // lane rebinds completed by swap_model
  std::uint64_t streams = 0;        // streams opened (lifetime total)
  std::uint64_t stream_frames = 0;  // stream frames completed
  std::size_t pending = 0;      // queued, not yet popped
  int idle_sessions = 0;        // lanes with no request in flight
  int pinned_lanes = 0;         // lanes whose serving thread pinned OK
};

template <class Model>
class ServingFrontend {
 public:
  using Output = typename InferenceSession<Model>::Output;
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;
  // Builds lane `lane`'s model; `slab` is the pool's shared arena slab
  // (wire it via model->set_arena_source(slab) to cap fleet arena memory).
  using Factory = std::function<std::unique_ptr<Model>(
      int lane, const std::shared_ptr<ArenaSlab>&)>;

  // True when Model has an intra-request parallel entry point.
  static constexpr bool kPoolRunnable =
      requires(const Model& m, const Tensor& t, WorkerPool* p) {
        m.run(t, p);
      };

  // True when Model supports temporal patch reuse (the patch models'
  // run_streaming); gates the stream API below.
  static constexpr bool kStreamable =
      requires(const Model& m, const Tensor& t, WorkerPool* p,
               patch::StreamState& s) {
        m.run_streaming(t, p, s);
      };

  // No deadline for this request.
  static constexpr TimePoint kNoDeadline = TimePoint{};

  explicit ServingFrontend(const ServingConfig& cfg, const Factory& factory,
                           std::shared_ptr<ArenaSlab> slab = nullptr)
      : cfg_(cfg),
        budget_(CoreBudget::partition(cfg.sessions, cfg.core_budget)) {
    QMCU_REQUIRE(cfg.policy != ShedPolicy::Downgrade ||
                     cfg.max_queue_depth == 0 ||
                     cfg.shed_queue_depth <= cfg.max_queue_depth,
                 "Downgrade needs shed threshold <= queue bound, or it "
                 "could never trigger");
    // Intra-request slices first: each lane's WorkerPool spawns its
    // (workers_per_session - 1) parked threads and pins them to the
    // lane's CPU slice before any traffic exists. A 1-worker slice needs
    // no pool — run(input, nullptr) is the sequential path.
    if constexpr (kPoolRunnable) {
      if (budget_.workers_per_session > 1) {
        pools_.reserve(static_cast<std::size_t>(cfg.sessions));
        for (int lane = 0; lane < cfg.sessions; ++lane) {
          pools_.push_back(
              std::make_unique<WorkerPool>(budget_.workers_per_session));
          if (cfg_.pin_lanes) {
            const std::vector<int> cpus = budget_.lane_cpus(lane);
            (void)pools_.back()->pin_workers(cpus);
          }
        }
      }
    }
    // The wrapped SessionPool: its factory builds lane models in lane
    // order on this thread; its lane-start hook pins each serving thread
    // (worker 0 of the lane's slice) to the lane's CPUs.
    int next_lane = 0;
    pool_ = std::make_unique<SessionPool<Model>>(
        cfg.sessions,
        typename SessionPool<Model>::SlabFactory(
            [&factory, &next_lane](const std::shared_ptr<ArenaSlab>& s) {
              return factory(next_lane++, s);
            }),
        std::move(slab), [this](std::size_t lane) {
          if (!cfg_.pin_lanes) return;
          const std::vector<int> cpus =
              budget_.lane_cpus(static_cast<int>(lane));
          if (runtime::pin_current_thread(cpus)) {
            pinned_lanes_.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }

  ServingFrontend(const ServingFrontend&) = delete;
  ServingFrontend& operator=(const ServingFrontend&) = delete;

  // Enqueues one request under the config's default deadline. The future
  // resolves with the output, or with RejectedError (shed at admission),
  // DeadlineExceededError (shed at pop), or whatever the model threw.
  std::future<Output> submit(Tensor input) {
    return submit(std::move(input), default_deadline());
  }

  std::future<Output> submit(Tensor input, TimePoint deadline) {
    auto promise = std::make_shared<std::promise<Output>>();
    std::future<Output> result = promise->get_future();
    const TimePoint enqueued = Clock::now();
    auto task = [this, promise, deadline, enqueued,
                 input = std::move(input)](std::size_t lane) {
      run_request(lane, input, deadline, enqueued, *promise);
    };
    if (!enqueue(std::move(task))) reject(*promise);
    return result;
  }

  // Batch spreading: `inputs` is split into min(size, sessions)
  // contiguous chunks, each one queue entry, so idle lanes run chunks
  // concurrently instead of one lane serializing the whole batch (the
  // SessionPool::submit_batch behaviour, which optimizes wakeups, not
  // spread). Futures are in input order; admission (and the deadline) is
  // per chunk, so an oversubscribed queue sheds trailing chunks whole.
  std::vector<std::future<Output>> submit_batch(std::vector<Tensor> inputs) {
    return submit_batch(std::move(inputs), default_deadline());
  }

  std::vector<std::future<Output>> submit_batch(std::vector<Tensor> inputs,
                                                TimePoint deadline) {
    struct BatchState {
      std::vector<Tensor> inputs;
      std::vector<std::promise<Output>> promises;
    };
    std::vector<std::future<Output>> results;
    const std::size_t n = inputs.size();
    if (n == 0) return results;
    auto state = std::make_shared<BatchState>();
    state->inputs = std::move(inputs);
    state->promises.resize(n);
    results.reserve(n);
    for (auto& p : state->promises) results.push_back(p.get_future());

    const TimePoint enqueued = Clock::now();
    const std::size_t chunks =
        std::min<std::size_t>(n, static_cast<std::size_t>(num_sessions()));
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;
    std::size_t begin = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      const std::size_t end = begin + len;
      auto task = [this, state, deadline, enqueued, begin,
                   end](std::size_t lane) {
        for (std::size_t i = begin; i < end; ++i) {
          run_request(lane, state->inputs[i], deadline, enqueued,
                      state->promises[i]);
        }
      };
      if (!enqueue(std::move(task))) {
        for (std::size_t i = begin; i < end; ++i) {
          reject(state->promises[i]);
        }
      }
      begin = end;
    }
    return results;
  }

  // Synchronous convenience: submit + wait.
  Output run(const Tensor& input) { return submit(input).get(); }

  // Hot-swaps the fleet's model under live traffic, one lane at a time:
  // lane i's replacement is built on THIS thread (compilation, prepack or
  // artifact-bundle adoption never stall a serving thread), then installed
  // by lane i's own serving thread between two requests (the drain →
  // rebind → resume contract of SessionPool::swap_session), before lane
  // i+1 starts. Requests admitted before the call complete on whichever
  // model generation their lane runs when they are claimed; requests
  // admitted after it run on the new model once their lane has swapped.
  // Nothing is dropped either way. With `factory` closing over a mapped
  // plan artifact (nn::load_compiled / PlanArtifact::make_quant_model)
  // this is the fleet's zero-downtime deploy: N lanes rebind to one new
  // shared mapping while the old mapping drains away with its last lane.
  void swap_model(const Factory& factory) {
    for (int lane = 0; lane < num_sessions(); ++lane) {
      pool_->swap_session(
          static_cast<std::size_t>(lane),
          [&factory, lane](const std::shared_ptr<ArenaSlab>& s) {
            return factory(lane, s);
          });
      swapped_lanes_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Opens a frame stream and pins it to a lane (round-robin). Every frame
  // of this stream runs on that lane, in submission order; the lane keeps
  // serving ordinary requests interleaved between frames.
  std::uint64_t open_stream(streaming::StreamingConfig scfg = {})
    requires kStreamable
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    const std::uint64_t id = next_stream_id_++;
    StreamEntry entry;
    entry.lane = next_stream_lane_;
    next_stream_lane_ = (next_stream_lane_ + 1) %
                        static_cast<std::size_t>(num_sessions());
    entry.session =
        std::make_shared<streaming::StreamingSession<Model>>(scfg);
    streams_.emplace(id, std::move(entry));
    opened_streams_.fetch_add(1, std::memory_order_relaxed);
    return id;
  }

  // Runs one frame of stream `id` on its pinned lane. No admission control
  // (see the header comment); the future resolves with the frame's output
  // or whatever the model threw. Throws std::out_of_range for an unknown
  // (or closed) stream id.
  std::future<Output> submit_stream(std::uint64_t id, Tensor frame)
    requires kStreamable
  {
    StreamEntry entry = stream_entry(id);
    auto promise = std::make_shared<std::promise<Output>>();
    std::future<Output> result = promise->get_future();
    pool_->submit_raw_to(
        entry.lane, [this, session = entry.session, promise,
                     frame = std::move(frame)](std::size_t lane) {
          try {
            WorkerPool* pool =
                pools_.empty() ? nullptr : pools_[lane].get();
            Output out = session->next(pool_->session(lane).model(), frame,
                                       pool);
            stream_frames_.fetch_add(1, std::memory_order_relaxed);
            promise->set_value(std::move(out));
          } catch (...) {
            promise->set_exception(std::current_exception());
          }
        });
    return result;
  }

  // Point-in-time copy of the stream's skip/drift counters. Routed through
  // the stream's lane (after all frames submitted before this call), so it
  // never races the lane's own updates.
  std::future<streaming::StreamingStats> stream_stats(std::uint64_t id)
    requires kStreamable
  {
    StreamEntry entry = stream_entry(id);
    auto promise =
        std::make_shared<std::promise<streaming::StreamingStats>>();
    std::future<streaming::StreamingStats> result = promise->get_future();
    pool_->submit_raw_to(entry.lane,
                         [session = entry.session, promise](std::size_t) {
                           promise->set_value(session->stats());
                         });
    return result;
  }

  // Forgets the stream. Frames already queued still run (they share
  // ownership of the session); new submit_stream calls throw.
  void close_stream(std::uint64_t id)
    requires kStreamable
  {
    std::lock_guard<std::mutex> lock(stream_mu_);
    streams_.erase(id);
  }

  [[nodiscard]] ServingStats stats() const {
    ServingStats s;
    s.completed = completed_.load(std::memory_order_relaxed);
    s.rejected = rejected_.load(std::memory_order_relaxed);
    s.expired = expired_.load(std::memory_order_relaxed);
    s.degraded = degraded_.load(std::memory_order_relaxed);
    s.swapped_lanes = swapped_lanes_.load(std::memory_order_relaxed);
    s.streams = opened_streams_.load(std::memory_order_relaxed);
    s.stream_frames = stream_frames_.load(std::memory_order_relaxed);
    s.pending = pool_->pending();
    s.idle_sessions = pool_->idle_sessions();
    s.pinned_lanes = pinned_lanes_.load(std::memory_order_relaxed);
    return s;
  }

  [[nodiscard]] const CoreBudget& budget() const { return budget_; }
  [[nodiscard]] const ServingConfig& config() const { return cfg_; }
  [[nodiscard]] int num_sessions() const { return pool_->num_sessions(); }
  [[nodiscard]] const std::shared_ptr<ArenaSlab>& slab() const {
    return pool_->slab();
  }
  // Per-lane request counts (read when no traffic is in flight).
  [[nodiscard]] std::vector<std::uint64_t> per_session_requests() const {
    return pool_->per_session_requests();
  }

  // Opt-in queue-to-completion latency sampling (for harnesses computing
  // p50/p99; off by default to keep the serving path mutex-free).
  void enable_latency_recording() {
    record_latency_.store(true, std::memory_order_release);
  }
  [[nodiscard]] std::vector<double> take_latencies_ms() {
    std::lock_guard<std::mutex> lock(latency_mu_);
    return std::exchange(latencies_ms_, {});
  }

 private:
  [[nodiscard]] TimePoint default_deadline() const {
    if (cfg_.default_deadline.count() == 0) return kNoDeadline;
    return Clock::now() + cfg_.default_deadline;
  }

  [[nodiscard]] bool enqueue(runtime::TaskQueue::Task task) {
    if (cfg_.max_queue_depth == 0) {
      pool_->submit_raw(std::move(task));
      return true;
    }
    return pool_->try_submit_raw(std::move(task), cfg_.max_queue_depth);
  }

  void reject(std::promise<Output>& promise) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    promise.set_exception(
        std::make_exception_ptr(RejectedError(cfg_.max_queue_depth)));
  }

  // Runs on lane `lane`'s serving thread: deadline gate, then the model.
  void run_request(std::size_t lane, const Tensor& input, TimePoint deadline,
                   TimePoint enqueued, std::promise<Output>& promise) {
    if (deadline != kNoDeadline && Clock::now() > deadline) {
      expired_.fetch_add(1, std::memory_order_relaxed);
      promise.set_exception(std::make_exception_ptr(DeadlineExceededError()));
      return;
    }
    try {
      Output out = execute(lane, input);
      completed_.fetch_add(1, std::memory_order_relaxed);
      record(enqueued);
      promise.set_value(std::move(out));
    } catch (...) {
      promise.set_exception(std::current_exception());
    }
  }

  Output execute(std::size_t lane, const Tensor& input) {
    InferenceSession<Model>& session = pool_->session(lane);
    if constexpr (kPoolRunnable) {
      if (!pools_.empty() && !should_degrade()) {
        return session.run(input, pools_[lane].get());
      }
    }
    return session.run(input);
  }

  [[nodiscard]] bool should_degrade() {
    if (cfg_.policy != ShedPolicy::Downgrade) return false;
    if (pool_->pending() < cfg_.shed_queue_depth) return false;
    degraded_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void record(TimePoint enqueued) {
    if (!record_latency_.load(std::memory_order_acquire)) return;
    std::lock_guard<std::mutex> lock(latency_mu_);
    latencies_ms_.push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - enqueued)
            .count());
  }

  // A stream's lane pin plus its session (shared with queued frame tasks,
  // so close_stream never yanks state out from under an in-flight frame).
  struct StreamEntry {
    std::size_t lane = 0;
    std::shared_ptr<streaming::StreamingSession<Model>> session;
  };

  [[nodiscard]] StreamEntry stream_entry(std::uint64_t id) {
    std::lock_guard<std::mutex> lock(stream_mu_);
    return streams_.at(id);
  }

  ServingConfig cfg_;
  CoreBudget budget_;
  // Lane -> WorkerPool slice (empty when the model has no pool-run entry
  // point or the budget gives each lane a single worker).
  std::vector<std::unique_ptr<WorkerPool>> pools_;
  std::mutex stream_mu_;
  std::map<std::uint64_t, StreamEntry> streams_;
  std::uint64_t next_stream_id_ = 1;
  std::size_t next_stream_lane_ = 0;
  std::atomic<std::uint64_t> opened_streams_{0};
  std::atomic<std::uint64_t> stream_frames_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> swapped_lanes_{0};
  std::atomic<int> pinned_lanes_{0};
  std::mutex latency_mu_;
  std::atomic<bool> record_latency_{false};
  std::vector<double> latencies_ms_;
  // Declared last: destroyed first, so serving threads drain and join
  // while the lane pools above are still alive.
  std::unique_ptr<SessionPool<Model>> pool_;
};

}  // namespace qmcu::nn::serving
