#include "nn/graph.h"

#include <numeric>

namespace qmcu::nn {

namespace {

int windowed_extent(int in, int kernel, int stride, int pad) {
  const int numer = in + 2 * pad - kernel;
  QMCU_REQUIRE(numer >= 0, "kernel larger than padded input");
  return numer / stride + 1;
}

}  // namespace

int Graph::append(Layer layer, TensorShape out_shape) {
  for (int in : layer.inputs) {
    QMCU_REQUIRE(in >= 0 && in < size(), "layer input id out of range");
  }
  if (layer.name.empty()) {
    layer.name = std::string(to_string(layer.kind)) + "_" +
                 std::to_string(layers_.size());
  }
  layers_.push_back(std::move(layer));
  shapes_.push_back(out_shape);
  weights_.emplace_back();
  biases_.emplace_back();
  consumers_valid_ = false;
  return size() - 1;
}

TensorShape Graph::windowed_out_shape(const TensorShape& in,
                                      const Layer& l) const {
  const int oh = windowed_extent(in.h, l.kernel_h, l.stride_h, l.pad_h);
  const int ow = windowed_extent(in.w, l.kernel_w, l.stride_w, l.pad_w);
  int oc = in.c;
  if (l.kind == OpKind::Conv2D) oc = l.out_channels;
  return {oh, ow, oc};
}

int Graph::add_input(TensorShape shape) {
  QMCU_REQUIRE(shape.valid(), "input shape must be positive");
  Layer l;
  l.kind = OpKind::Input;
  return append(std::move(l), shape);
}

int Graph::add_conv2d(int input, int out_channels, int kernel, int stride,
                      int pad, Activation act, std::string name) {
  QMCU_REQUIRE(out_channels > 0, "conv out_channels must be positive");
  QMCU_REQUIRE(kernel > 0 && stride > 0 && pad >= 0, "bad conv geometry");
  Layer l;
  l.kind = OpKind::Conv2D;
  l.name = std::move(name);
  l.inputs = {input};
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.pad_h = l.pad_w = pad;
  l.out_channels = out_channels;
  l.act = act;
  const TensorShape out = windowed_out_shape(shape(input), l);
  return append(std::move(l), out);
}

int Graph::add_depthwise_conv2d(int input, int kernel, int stride, int pad,
                                Activation act, std::string name) {
  QMCU_REQUIRE(kernel > 0 && stride > 0 && pad >= 0, "bad dwconv geometry");
  Layer l;
  l.kind = OpKind::DepthwiseConv2D;
  l.name = std::move(name);
  l.inputs = {input};
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.pad_h = l.pad_w = pad;
  l.act = act;
  const TensorShape out = windowed_out_shape(shape(input), l);
  return append(std::move(l), out);
}

int Graph::add_fully_connected(int input, int out_features, Activation act,
                               std::string name) {
  QMCU_REQUIRE(out_features > 0, "fc out_features must be positive");
  Layer l;
  l.kind = OpKind::FullyConnected;
  l.name = std::move(name);
  l.inputs = {input};
  l.out_channels = out_features;
  l.act = act;
  return append(std::move(l), TensorShape{1, 1, out_features});
}

int Graph::add_max_pool(int input, int kernel, int stride, int pad,
                        std::string name) {
  Layer l;
  l.kind = OpKind::MaxPool;
  l.name = std::move(name);
  l.inputs = {input};
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.pad_h = l.pad_w = pad;
  const TensorShape out = windowed_out_shape(shape(input), l);
  return append(std::move(l), out);
}

int Graph::add_avg_pool(int input, int kernel, int stride, int pad,
                        std::string name) {
  Layer l;
  l.kind = OpKind::AvgPool;
  l.name = std::move(name);
  l.inputs = {input};
  l.kernel_h = l.kernel_w = kernel;
  l.stride_h = l.stride_w = stride;
  l.pad_h = l.pad_w = pad;
  const TensorShape out = windowed_out_shape(shape(input), l);
  return append(std::move(l), out);
}

int Graph::add_global_avg_pool(int input, std::string name) {
  Layer l;
  l.kind = OpKind::GlobalAvgPool;
  l.name = std::move(name);
  l.inputs = {input};
  return append(std::move(l), TensorShape{1, 1, shape(input).c});
}

int Graph::add_residual_add(int lhs, int rhs, Activation act,
                            std::string name) {
  QMCU_REQUIRE(shape(lhs) == shape(rhs), "residual add operands must match");
  Layer l;
  l.kind = OpKind::Add;
  l.name = std::move(name);
  l.inputs = {lhs, rhs};
  l.act = act;
  const TensorShape out = shape(lhs);
  return append(std::move(l), out);
}

int Graph::add_concat(std::span<const int> inputs, std::string name) {
  QMCU_REQUIRE(inputs.size() >= 2, "concat needs at least two inputs");
  const TensorShape& first = shape(inputs[0]);
  int channels = 0;
  for (int in : inputs) {
    const TensorShape& s = shape(in);
    QMCU_REQUIRE(s.h == first.h && s.w == first.w,
                 "concat inputs must agree spatially");
    channels += s.c;
  }
  Layer l;
  l.kind = OpKind::Concat;
  l.name = std::move(name);
  l.inputs.assign(inputs.begin(), inputs.end());
  return append(std::move(l), TensorShape{first.h, first.w, channels});
}

int Graph::add_softmax(int input, std::string name) {
  Layer l;
  l.kind = OpKind::Softmax;
  l.name = std::move(name);
  l.inputs = {input};
  const TensorShape out = shape(input);
  return append(std::move(l), out);
}

const Layer& Graph::layer(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  return layers_[static_cast<std::size_t>(id)];
}

const TensorShape& Graph::shape(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  return shapes_[static_cast<std::size_t>(id)];
}

int Graph::output() const {
  QMCU_REQUIRE(size() > 0, "graph is empty");
  return size() - 1;
}

std::vector<int> Graph::inputs() const {
  std::vector<int> ids;
  for (int i = 0; i < size(); ++i) {
    if (layers_[static_cast<std::size_t>(i)].kind == OpKind::Input) {
      ids.push_back(i);
    }
  }
  return ids;
}

const std::vector<int>& Graph::consumers(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  if (!consumers_valid_) {
    consumers_.assign(static_cast<std::size_t>(size()), {});
    for (int i = 0; i < size(); ++i) {
      for (int in : layers_[static_cast<std::size_t>(i)].inputs) {
        consumers_[static_cast<std::size_t>(in)].push_back(i);
      }
    }
    consumers_valid_ = true;
  }
  return consumers_[static_cast<std::size_t>(id)];
}

std::int64_t Graph::weight_count(int id) const {
  const Layer& l = layer(id);
  switch (l.kind) {
    case OpKind::Conv2D: {
      const TensorShape& in = shape(l.inputs[0]);
      return static_cast<std::int64_t>(l.out_channels) * l.kernel_h *
             l.kernel_w * in.c;
    }
    case OpKind::DepthwiseConv2D: {
      const TensorShape& in = shape(l.inputs[0]);
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * in.c;
    }
    case OpKind::FullyConnected: {
      const TensorShape& in = shape(l.inputs[0]);
      return in.elements() * l.out_channels;
    }
    default:
      return 0;
  }
}

void Graph::set_parameters(int id, std::vector<float> weights,
                           std::vector<float> bias) {
  const Layer& l = layer(id);
  QMCU_REQUIRE(is_mac_op(l.kind), "only MAC layers carry parameters");
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) == weight_count(id),
               "weight element count mismatch");
  const int bias_count =
      l.kind == OpKind::DepthwiseConv2D ? shape(l.inputs[0]).c : l.out_channels;
  if (l.has_bias) {
    QMCU_REQUIRE(static_cast<int>(bias.size()) == bias_count,
                 "bias element count mismatch");
  } else {
    QMCU_REQUIRE(bias.empty(), "layer declared without bias");
  }
  weights_[static_cast<std::size_t>(id)] = std::move(weights);
  biases_[static_cast<std::size_t>(id)] = std::move(bias);
}

void Graph::set_parameter_views(int id, std::span<const float> weights,
                                std::span<const float> bias) {
  const Layer& l = layer(id);
  QMCU_REQUIRE(is_mac_op(l.kind), "only MAC layers carry parameters");
  QMCU_REQUIRE(static_cast<std::int64_t>(weights.size()) == weight_count(id),
               "weight element count mismatch");
  const int bias_count =
      l.kind == OpKind::DepthwiseConv2D ? shape(l.inputs[0]).c : l.out_channels;
  if (l.has_bias) {
    QMCU_REQUIRE(static_cast<int>(bias.size()) == bias_count,
                 "bias element count mismatch");
  } else {
    QMCU_REQUIRE(bias.empty(), "layer declared without bias");
  }
  weight_views_.resize(layers_.size());
  bias_views_.resize(layers_.size());
  weight_views_[static_cast<std::size_t>(id)] = weights;
  bias_views_[static_cast<std::size_t>(id)] = bias;
}

std::span<const float> Graph::weights(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  const auto i = static_cast<std::size_t>(id);
  if (i < weight_views_.size() && !weight_views_[i].empty()) {
    return weight_views_[i];
  }
  return weights_[i];
}

std::span<const float> Graph::bias(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  const auto i = static_cast<std::size_t>(id);
  if (i < bias_views_.size() && !bias_views_[i].empty()) {
    return bias_views_[i];
  }
  return biases_[i];
}

bool Graph::has_parameters(int id) const {
  QMCU_REQUIRE(id >= 0 && id < size(), "layer id out of range");
  const auto i = static_cast<std::size_t>(id);
  return !weights_[i].empty() ||
         (i < weight_views_.size() && !weight_views_[i].empty());
}

std::int64_t Graph::macs(int id) const {
  const Layer& l = layer(id);
  const TensorShape& out = shape(id);
  switch (l.kind) {
    case OpKind::Conv2D: {
      const TensorShape& in = shape(l.inputs[0]);
      return out.elements() * l.kernel_h * l.kernel_w * in.c;
    }
    case OpKind::DepthwiseConv2D:
      return out.elements() * l.kernel_h * l.kernel_w;
    case OpKind::FullyConnected: {
      const TensorShape& in = shape(l.inputs[0]);
      return in.elements() * l.out_channels;
    }
    default:
      return 0;
  }
}

std::int64_t Graph::total_macs() const {
  std::int64_t total = 0;
  for (int i = 0; i < size(); ++i) total += macs(i);
  return total;
}

std::int64_t Graph::element_ops(int id) const {
  const Layer& l = layer(id);
  const TensorShape& out = shape(id);
  switch (l.kind) {
    case OpKind::MaxPool:
    case OpKind::AvgPool:
      return out.elements() * l.kernel_h * l.kernel_w;
    case OpKind::GlobalAvgPool:
      return shape(l.inputs[0]).elements();
    case OpKind::Add:
      return out.elements();
    case OpKind::Softmax:
      return 3 * out.elements();  // exp, sum, divide
    case OpKind::Concat:
      return out.elements();  // copy traffic
    default:
      return 0;
  }
}

}  // namespace qmcu::nn
