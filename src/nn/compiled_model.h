// compiled_model.h — compile-once / run-many execution against a static
// tensor arena.
//
// The executors in executor.h recompute per run everything that is actually
// invariant across runs: the topological schedule, quantized weights and
// rescaled biases, and — worst of all — a fresh heap allocation per feature
// map per layer. A CompiledModel does that work exactly once:
//
//   Graph ──compile──► { schedule, ArenaPlan offsets, prepacked weight
//                        panels, quantized parameters } ──run──► output
//
// run() binds every feature map onto its planned byte offset inside one
// arena (owned, or caller-provided — the MCU's static SRAM buffer) and
// executes the schedule through the `_into` kernel entry points, so the hot
// path performs zero per-layer allocations and the memory planner's peak is
// the allocator's actual high-water by construction. Outputs are
// bit-identical to the heap-per-layer executors: the same kernels run in
// the same order on the same values.
//
// This header also hosts the quantization-time model parameters
// (ActivationQuantConfig, QuantizedParameters) shared by the compiled
// models, the legacy executors and the patch runtime. QuantizedParameters
// can be built once and shared across any number of executors/compiled
// models over the same graph (bench sweeps construct many).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "nn/graph.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/ops/int8_kernels.h"
#include "nn/runtime/arena_slab.h"
#include "nn/tensor.h"

namespace qmcu::nn {

// Per-layer activation quantization parameters, indexed by layer id.
// `params[i].bits` is the feature-map bitwidth b_i of the paper.
struct ActivationQuantConfig {
  std::vector<QuantParams> params;

  [[nodiscard]] int bits(int layer_id) const {
    return params[static_cast<std::size_t>(layer_id)].bits;
  }
};

// Ahead-of-time converted model parameters: 8-bit symmetric weights and
// int32 biases rescaled to in_scale * weight_scale, per MAC layer. Shared
// by the layer-based QuantExecutor and the patch-based quantized executor;
// build once with build_shared() when several executors run the same graph.
//
// The per-layer entries are span views: build() points them at the owned
// `weight_store`/`bias_store`, while the plan-artifact loader points them
// straight into a read-only mmap so a fleet of processes shares one
// physical copy of the weights. Views alias the stores, so the struct is
// move-only (vector moves keep heap buffers stable; a copy would alias the
// source's storage).
struct QuantizedParameters {
  struct WeightView {
    std::span<const std::int8_t> data;
    QuantParams params;  // zero_point == 0
  };
  std::vector<WeightView> weights;  // indexed by layer id
  std::vector<std::span<const std::int32_t>> bias;

  // Backing storage for the in-memory build path; unused entries (and the
  // whole vectors, on the artifact path) stay empty.
  std::vector<ops::QuantizedWeights> weight_store;
  std::vector<std::vector<std::int32_t>> bias_store;

  QuantizedParameters() = default;
  QuantizedParameters(QuantizedParameters&&) = default;
  QuantizedParameters& operator=(QuantizedParameters&&) = default;
  QuantizedParameters(const QuantizedParameters&) = delete;
  QuantizedParameters& operator=(const QuantizedParameters&) = delete;

  static QuantizedParameters build(const Graph& g,
                                   const ActivationQuantConfig& cfg);
  static std::shared_ptr<const QuantizedParameters> build_shared(
      const Graph& g, const ActivationQuantConfig& cfg);
};

// Effective per-layer output params: pools propagate their producer's
// parameters (the TFLite contract — max/avg/global pooling never
// requantizes), so cfg.params[pool] is overridden by the producer chain.
std::vector<QuantParams> effective_output_params(
    const Graph& g, const ActivationQuantConfig& cfg);

// The layer-lifetime arena placement a CompiledModel/CompiledQuantModel
// computes at construction (elem_bytes = sizeof(float) / 1). Exposed so the
// plan-artifact writer bakes exactly the plan the constructor would derive.
ArenaPlan plan_execution_arena(const Graph& g, std::int64_t elem_bytes);

// Construction-time kernel state precomputed by the plan-artifact writer:
// k-major weight panels, LUT recode tables and bias/zero-point offset rows,
// each a span view into the read-only artifact mapping (keyed by the layer's
// quantized-weight pointer, also a mapping view). apply() hands them to a
// backend, which then skips its own packing for those weights — the first
// inference after load_compiled() performs no panel construction at all.
struct PrecompiledBundle {
  struct PanelEntry {
    const std::int8_t* key = nullptr;  // quantized weight blob address
    std::span<const std::int8_t> bt;   // k-major [K][N] panel
    std::span<const std::int32_t> wsum;
  };
  struct LutEntry {
    const std::int8_t* key = nullptr;
    int bits = 0;  // activation width the tables decode (2 or 4)
    std::span<const std::int8_t> tables;
    std::span<const std::int32_t> wsum;
  };
  struct OffsetEntry {
    const std::int8_t* key = nullptr;
    std::int32_t a_zp = 0;  // activation zero point the row was baked for
    std::span<const std::int32_t> offset;
  };
  std::vector<PanelEntry> panels;
  std::vector<LutEntry> luts;
  std::vector<OffsetEntry> offsets;

  void apply(ops::KernelBackend& backend) const;
};

// Validates a caller-provided arena against a plan's peak and the element
// alignment the bound views need. Shared by every compiled model.
void check_arena(std::span<const std::uint8_t> arena, std::int64_t need,
                 std::size_t alignment);

// --- float -----------------------------------------------------------------

class CompiledModel {
 public:
  explicit CompiledModel(const Graph& g,
                         ops::KernelTier tier = ops::KernelTier::Simd);
  // Artifact path: adopt a precomputed arena plan instead of re-planning.
  CompiledModel(const Graph& g, ArenaPlan plan, ops::KernelTier tier);

  // Executes against the model's own arena (allocated once, reused) — or,
  // when an arena source is set, against a block leased from it for the
  // duration of this run.
  [[nodiscard]] Tensor run(const Tensor& input) const;
  // Executes against a caller-provided arena (>= arena_bytes(), 4-byte
  // aligned) — the deployment form where SRAM is a fixed static buffer.
  Tensor run(const Tensor& input, std::span<std::uint8_t> arena) const;

  [[nodiscard]] const ArenaPlan& arena_plan() const { return plan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return plan_.peak_bytes; }
  // Furthest arena byte actually written through a bound view on the most
  // recent run (offset + view bytes, not planned slot size): a genuine
  // measurement that the tests compare against the planned peak.
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  // The model's kernel backend (scratch arena + panel cache). Exposed so
  // the owning executor's legacy memo paths share one panel cache with the
  // compiled path instead of packing every conv panel twice.
  [[nodiscard]] ops::KernelBackend& backend() const { return backend_; }
  // Serving integration (same contract as the patch models): when set,
  // run() leases its arena from `slab` per run instead of growing an owned
  // buffer, so a SessionPool fleet of layer-based models is capped at
  // max arena x busy lanes rather than the per-model sum.
  void set_arena_source(std::shared_ptr<ArenaSlab> slab) {
    arena_source_ = std::move(slab);
  }

 private:
  const Graph* graph_;  // non-owning; graph must outlive the model
  ArenaPlan plan_;
  std::shared_ptr<ArenaSlab> arena_source_;
  // Mutated (scratch reuse, view rebinding) during const runs; a single
  // instance must not run concurrently from multiple threads.
  mutable ops::KernelBackend backend_;
  mutable std::vector<std::uint8_t> arena_;  // lazily sized owned arena
  mutable std::vector<Tensor> memo_;         // per-layer views, rebound per run
  mutable std::int64_t measured_ = 0;
};

// --- quantized -------------------------------------------------------------

class CompiledQuantModel {
 public:
  // Pass prebuilt `params` (build_shared) to share the weight conversion
  // across executors/compiled models of the same graph; nullptr builds
  // them here.
  CompiledQuantModel(const Graph& g, ActivationQuantConfig cfg,
                     ops::KernelTier tier = ops::KernelTier::Simd,
                     std::shared_ptr<const QuantizedParameters> params = {});
  // Artifact path: everything the default constructor computes arrives
  // precomputed — params view into the mapping, the baked arena plan, and
  // the panel/LUT/offset bundle adopted by the backend before prepack (so
  // prepack sees every panel already resident and does no packing work).
  CompiledQuantModel(const Graph& g, ActivationQuantConfig cfg,
                     std::shared_ptr<const QuantizedParameters> params,
                     ArenaPlan plan,
                     std::shared_ptr<const PrecompiledBundle> bundle,
                     ops::KernelTier tier = ops::KernelTier::Simd);

  [[nodiscard]] QTensor run(const Tensor& input) const;
  QTensor run(const Tensor& input, std::span<std::uint8_t> arena) const;

  [[nodiscard]] const ArenaPlan& arena_plan() const { return plan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return plan_.peak_bytes; }
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  [[nodiscard]] const Graph& graph() const { return *graph_; }
  [[nodiscard]] const ActivationQuantConfig& config() const { return cfg_; }
  [[nodiscard]] std::span<const QuantParams> effective_params() const {
    return effective_;
  }
  [[nodiscard]] const std::shared_ptr<const QuantizedParameters>&
  shared_parameters() const {
    return params_;
  }
  [[nodiscard]] ops::KernelBackend& backend() const { return backend_; }
  // Serving integration: lease run arenas from `slab` (see CompiledModel).
  void set_arena_source(std::shared_ptr<ArenaSlab> slab) {
    arena_source_ = std::move(slab);
  }

 private:
  const Graph* graph_;
  ActivationQuantConfig cfg_;
  std::shared_ptr<ArenaSlab> arena_source_;
  std::vector<QuantParams> effective_;
  std::shared_ptr<const QuantizedParameters> params_;
  // Keeps the adopted panel/offset storage (artifact mapping) alive for as
  // long as the backend holds views into it.
  std::shared_ptr<const PrecompiledBundle> bundle_;
  ArenaPlan plan_;
  mutable ops::KernelBackend backend_;
  mutable std::vector<std::uint8_t> arena_;
  mutable std::vector<QTensor> memo_;
  mutable std::int64_t measured_ = 0;
};

}  // namespace qmcu::nn
