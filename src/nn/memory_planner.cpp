#include "nn/memory_planner.h"

#include <algorithm>

namespace qmcu::nn {

int last_use_step(const Graph& g, int id) {
  int last = id;
  for (int c : g.consumers(id)) last = std::max(last, c);
  return last;
}

MemoryPlan plan_layer_based(const Graph& g, std::span<const int> act_bits) {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  std::vector<int> last_use(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) last_use[static_cast<std::size_t>(i)] =
      last_use_step(g, i);

  MemoryPlan plan;
  plan.step_bytes.assign(static_cast<std::size_t>(g.size()), 0);
  for (int step = 0; step < g.size(); ++step) {
    std::int64_t live = 0;
    for (int i = 0; i <= step; ++i) {
      if (last_use[static_cast<std::size_t>(i)] >= step) {
        live += g.shape(i).bytes(act_bits[static_cast<std::size_t>(i)]);
      }
    }
    plan.step_bytes[static_cast<std::size_t>(step)] = live;
    if (live > plan.peak_bytes) {
      plan.peak_bytes = live;
      plan.peak_step = step;
    }
  }
  return plan;
}

std::vector<int> uniform_bits(const Graph& g, int bits) {
  return std::vector<int>(static_cast<std::size_t>(g.size()), bits);
}

std::int64_t model_flash_bytes(const Graph& g, int weight_bits) {
  std::int64_t total = 0;
  for (int i = 0; i < g.size(); ++i) {
    const std::int64_t w = g.weight_count(i);
    total += (w * weight_bits + 7) / 8;
    const Layer& l = g.layer(i);
    if (is_mac_op(l.kind) && l.has_bias) {
      const int bias_count = l.kind == OpKind::DepthwiseConv2D
                                 ? g.shape(l.inputs[0]).c
                                 : l.out_channels;
      total += static_cast<std::int64_t>(bias_count) * 4;
    }
  }
  return total;
}

}  // namespace qmcu::nn
