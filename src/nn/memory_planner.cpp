#include "nn/memory_planner.h"

#include <algorithm>
#include <numeric>

#include "nn/ops/im2col.h"
#include "nn/ops/lut/lut_kernels.h"

namespace qmcu::nn {

int last_use_step(const Graph& g, int id) {
  int last = id;
  for (int c : g.consumers(id)) last = std::max(last, c);
  return last;
}

std::int64_t fast_scratch_bytes(const Graph& g, int id) {
  return fast_scratch_bytes(g, id, 8);
}

std::int64_t fast_scratch_bytes(const Graph& g, int id, int in_act_bits) {
  const Layer& l = g.layer(id);
  const bool sub_byte = in_act_bits == 2 || in_act_bits == 4;
  switch (l.kind) {
    case OpKind::Conv2D: {
      // Mirrors KernelBackend::conv2d in uncached-panel mode: k-major
      // panel (n*k i8) + column sums (n i32) + per-column offsets (n i32)
      // + one output row of im2col strip (out_w * k i8) + GEMM accumulator
      // tile (4n i32).
      const TensorShape& is = g.shape(l.inputs[0]);
      const std::int64_t k = ops::im2col_row_elements(is, l);
      const std::int64_t n = l.out_channels;
      const std::int64_t out_w = g.shape(id).w;
      const std::int64_t gemm = n * k + out_w * k + (n + n + 4 * n) * 4;
      if (!sub_byte || !ops::lut::lut_planned(in_act_bits)) return gemm;
      // Sub-byte inputs the current force mode can LUT may dispatch to
      // lut_conv2d_impl instead: lookup tables (n*groups*32 i8) + column
      // sums (n i32) + offsets (n i32) + im2col strip (out_w*k i8) +
      // index tile (groups*kLutTileM i8) + accumulator tile
      // (min(kLutTileM, out_w)*n i32). The tables alone dwarf the GEMM
      // panel, but max() keeps the bound honest for degenerate shapes.
      const std::int64_t groups =
          ops::lut::lut_groups(static_cast<int>(k), in_act_bits);
      const std::int64_t acc_rows =
          std::min<std::int64_t>(ops::lut::kLutTileM, out_w);
      const std::int64_t lut =
          ops::lut::lut_table_bytes(static_cast<int>(n), static_cast<int>(k),
                                    in_act_bits) +
          out_w * k + groups * ops::lut::kLutTileM +
          (n + n + acc_rows * n) * 4;
      return std::max(gemm, lut);
    }
    case OpKind::FullyConnected: {
      // Int8 inputs run the m == 1 panel GEMM microkernel: in uncached-panel
      // mode a k-major panel (n*k i8) + column sums (n i32), plus per-column
      // offsets (n i32) + one accumulator row (n i32). Sub-byte inputs the
      // force mode can LUT may take the table path instead (tables + offsets
      // + index tile + one accumulator row, matching fully_connected_into);
      // max() bounds whichever dispatch wins.
      const std::int64_t k = g.shape(l.inputs[0]).elements();
      const std::int64_t n = l.out_channels;
      const std::int64_t gemm = n * k + (n + n + n) * 4;
      if (!sub_byte || !ops::lut::lut_planned(in_act_bits)) return gemm;
      const std::int64_t groups =
          ops::lut::lut_groups(static_cast<int>(k), in_act_bits);
      const std::int64_t lut =
          ops::lut::lut_table_bytes(static_cast<int>(n), static_cast<int>(k),
                                    in_act_bits) +
          groups * ops::lut::kLutTileM + (n + n + n) * 4;
      return std::max(gemm, lut);
    }
    case OpKind::DepthwiseConv2D:
      // Per-channel int32 accumulators.
      return static_cast<std::int64_t>(g.shape(l.inputs[0]).c) * 4;
    case OpKind::GlobalAvgPool:
      // Per-channel int32 sums.
      return static_cast<std::int64_t>(g.shape(l.inputs[0]).c) * 4;
    case OpKind::Softmax:
      // Float detour: dequantized logits + softmax result.
      return 2 * g.shape(id).elements() * 4;
    default:
      return 0;
  }
}

std::int64_t fast_panel_bytes(const Graph& g, int id) {
  return fast_panel_bytes(g, id, 8);
}

std::int64_t fast_panel_bytes(const Graph& g, int id, int in_act_bits) {
  const Layer& l = g.layer(id);
  // LUT table panel + column sums, resident exactly when prepack bakes the
  // recode (lut_planned — the prepack_conv_panels policy).
  const auto lut_panel = [&](std::int64_t k) {
    const std::int64_t n = l.out_channels;
    return ops::lut::lut_table_bytes(static_cast<int>(n), static_cast<int>(k),
                                     in_act_bits) +
           n * 4;
  };
  if (l.kind == OpKind::FullyConnected) {
    // fc shares the conv panel GEMM: bt panel + wsum always resident once
    // prepacked, plus the LUT recode when the force mode can run it.
    const std::int64_t k = g.shape(l.inputs[0]).elements();
    const std::int64_t gemm = l.out_channels * k + l.out_channels * 4;
    return ops::lut::lut_planned(in_act_bits) ? gemm + lut_panel(k) : gemm;
  }
  if (l.kind != OpKind::Conv2D) return 0;
  const std::int64_t k = ops::im2col_row_elements(g.shape(l.inputs[0]), l);
  const std::int64_t n = l.out_channels;
  const std::int64_t gemm = n * k + n * 4;  // bt panel + wsum
  if (!ops::lut::lut_planned(in_act_bits)) return gemm;
  return gemm + lut_panel(k);
}

MemoryPlan plan_layer_based(const Graph& g, std::span<const int> act_bits) {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  std::vector<int> last_use(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) last_use[static_cast<std::size_t>(i)] =
      last_use_step(g, i);

  MemoryPlan plan;
  plan.step_bytes.assign(static_cast<std::size_t>(g.size()), 0);
  plan.step_scratch_bytes.assign(static_cast<std::size_t>(g.size()), 0);
  for (int step = 0; step < g.size(); ++step) {
    std::int64_t live = 0;
    for (int i = 0; i <= step; ++i) {
      if (last_use[static_cast<std::size_t>(i)] >= step) {
        live += g.shape(i).bytes(act_bits[static_cast<std::size_t>(i)]);
      }
    }
    plan.step_bytes[static_cast<std::size_t>(step)] = live;
    if (live > plan.peak_bytes) {
      plan.peak_bytes = live;
      plan.peak_step = step;
    }
    const Layer& sl = g.layer(step);
    const int in_bits =
        sl.inputs.empty()
            ? 8
            : act_bits[static_cast<std::size_t>(sl.inputs[0])];
    const std::int64_t scratch = fast_scratch_bytes(g, step, in_bits);
    plan.step_scratch_bytes[static_cast<std::size_t>(step)] = scratch;
    plan.scratch_peak_bytes = std::max(plan.scratch_peak_bytes, scratch);
    if (live + scratch > plan.total_peak_bytes) {
      plan.total_peak_bytes = live + scratch;
      plan.total_peak_step = step;
    }
    plan.panel_bytes += fast_panel_bytes(g, step, in_bits);
  }
  return plan;
}

std::vector<int> uniform_bits(const Graph& g, int bits) {
  return std::vector<int>(static_cast<std::size_t>(g.size()), bits);
}

std::int64_t model_flash_bytes(const Graph& g, int weight_bits) {
  std::int64_t total = 0;
  for (int i = 0; i < g.size(); ++i) {
    const std::int64_t w = g.weight_count(i);
    total += (w * weight_bits + 7) / 8;
    const Layer& l = g.layer(i);
    if (is_mac_op(l.kind) && l.has_bias) {
      const int bias_count = l.kind == OpKind::DepthwiseConv2D
                                 ? g.shape(l.inputs[0]).c
                                 : l.out_channels;
      total += static_cast<std::int64_t>(bias_count) * 4;
    }
  }
  return total;
}

// --- arena placement --------------------------------------------------------

ArenaPlanner::ArenaPlanner(std::int64_t alignment) : alignment_(alignment) {
  QMCU_REQUIRE(alignment > 0, "arena alignment must be positive");
}

ArenaPlan ArenaPlanner::plan(std::span<const ArenaRequest> requests) const {
  ArenaPlan plan;
  plan.slots.resize(requests.size());
  const auto align_up = [&](std::int64_t v) {
    return (v + alignment_ - 1) / alignment_ * alignment_;
  };

  // Largest first; ties broken by earlier birth then index, for determinism.
  std::vector<std::size_t> order(requests.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (requests[a].size != requests[b].size)
      return requests[a].size > requests[b].size;
    if (requests[a].first_step != requests[b].first_step)
      return requests[a].first_step < requests[b].first_step;
    return a < b;
  });

  std::vector<std::size_t> placed;  // indices into plan.slots
  placed.reserve(requests.size());
  for (std::size_t idx : order) {
    const ArenaRequest& req = requests[idx];
    QMCU_REQUIRE(req.size >= 0, "arena request size must be non-negative");
    QMCU_REQUIRE(req.first_step <= req.last_step,
                 "arena request lifetime must be non-empty");
    ArenaSlot slot{0, req.size, req.first_step, req.last_step};

    // Collect byte ranges of lifetime-overlapping, already-placed slots,
    // sorted by offset, and first-fit into the gaps.
    std::vector<const ArenaSlot*> busy;
    for (std::size_t p : placed) {
      if (plan.slots[p].overlaps_lifetime(slot)) busy.push_back(&plan.slots[p]);
    }
    std::sort(busy.begin(), busy.end(),
              [](const ArenaSlot* a, const ArenaSlot* b) {
                return a->offset < b->offset;
              });
    std::int64_t candidate = 0;
    for (const ArenaSlot* b : busy) {
      if (candidate + slot.size <= b->offset) break;  // fits in this gap
      candidate =
          std::max(candidate, align_up(b->offset + b->size));
    }
    slot.offset = candidate;
    plan.slots[idx] = slot;
    placed.push_back(idx);
    plan.peak_bytes = std::max(plan.peak_bytes, slot.offset + slot.size);
  }

  // Sum-of-live accounting peak, for comparison with the placed extent.
  int max_step = 0;
  for (const ArenaRequest& r : requests) max_step = std::max(max_step, r.last_step);
  for (int step = 0; step <= max_step; ++step) {
    std::int64_t live = 0;
    for (const ArenaRequest& r : requests) {
      if (r.first_step <= step && step <= r.last_step) live += r.size;
    }
    plan.live_peak_bytes = std::max(plan.live_peak_bytes, live);
  }
  return plan;
}

ParallelArenaPlan ArenaPlanner::plan_parallel(
    std::span<const ArenaRequest> per_worker,
    std::span<const ArenaRequest> shared, int num_workers) const {
  QMCU_REQUIRE(num_workers >= 1, "parallel plan needs at least one worker");
  ParallelArenaPlan p;
  p.slice = plan(per_worker);
  p.shared = plan(shared);
  p.num_workers = num_workers;
  p.slice_stride =
      (p.slice.peak_bytes + alignment_ - 1) / alignment_ * alignment_;
  return p;
}

ParallelArenaPlan ArenaPlanner::plan_pipelined(
    std::span<const ArenaRequest> per_worker,
    std::span<const ArenaRequest> shared, int num_workers,
    int overlap_horizon) const {
  QMCU_REQUIRE(overlap_horizon >= 0, "overlap horizon must be non-negative");
  std::vector<ArenaRequest> widened(shared.begin(), shared.end());
  for (ArenaRequest& r : widened) {
    if (r.first_step <= overlap_horizon) {
      r.first_step = 0;
      r.last_step = std::max(r.last_step, overlap_horizon);
    }
  }
  return plan_parallel(per_worker, widened, num_workers);
}

ArenaPlan ArenaPlanner::plan(const Graph& g,
                             std::span<const int> act_bits) const {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  std::vector<ArenaRequest> requests(static_cast<std::size_t>(g.size()));
  for (int i = 0; i < g.size(); ++i) {
    requests[static_cast<std::size_t>(i)] = {
        g.shape(i).bytes(act_bits[static_cast<std::size_t>(i)]), i,
        last_use_step(g, i)};
  }
  return plan(requests);
}

}  // namespace qmcu::nn
