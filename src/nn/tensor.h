// tensor.h — owning float and quantized tensors (NHWC, batch 1).
//
// Two concrete tensor types keep the hot kernel loops monomorphic:
//   Tensor   — float reference data (calibration, golden outputs)
//   QTensor  — quantized data held *unpacked* in int8 storage together with
//              its QuantParams. For sub-byte params (bits < 8) the storage
//              is still one int8 per element — exactly the form CMix-NN
//              kernels compute on after unpacking — while the *accounted*
//              footprint (storage_bytes) reflects the packed size. The
//              packed wire format itself lives in quant/bitpack.h.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/check.h"
#include "nn/quant_params.h"
#include "nn/shape.h"

namespace qmcu::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape)
      : shape_(shape), data_(static_cast<std::size_t>(shape.elements()), 0.0f) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
  }
  Tensor(TensorShape shape, std::vector<float> data)
      : shape_(shape), data_(std::move(data)) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
    QMCU_REQUIRE(
        static_cast<std::int64_t>(data_.size()) == shape.elements(),
        "data size must match shape");
  }

  [[nodiscard]] const TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] std::span<float> data() { return data_; }

  [[nodiscard]] float at(int y, int x, int c) const {
    return data_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }
  [[nodiscard]] float& at(int y, int x, int c) {
    return data_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }

  [[nodiscard]] std::int64_t elements() const { return shape_.elements(); }

 private:
  TensorShape shape_{};
  std::vector<float> data_;
};

class QTensor {
 public:
  QTensor() = default;
  QTensor(TensorShape shape, QuantParams params)
      : shape_(shape),
        params_(params),
        data_(static_cast<std::size_t>(shape.elements()), 0) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
  }

  [[nodiscard]] const TensorShape& shape() const { return shape_; }
  [[nodiscard]] const QuantParams& params() const { return params_; }
  [[nodiscard]] std::span<const std::int8_t> data() const { return data_; }
  [[nodiscard]] std::span<std::int8_t> data() { return data_; }

  [[nodiscard]] std::int8_t at(int y, int x, int c) const {
    return data_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }
  [[nodiscard]] std::int8_t& at(int y, int x, int c) {
    return data_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }

  // Footprint of this tensor once bit-packed for storage on the MCU.
  [[nodiscard]] std::int64_t storage_bytes() const {
    return shape_.bytes(params_.bits);
  }

  [[nodiscard]] std::int64_t elements() const { return shape_.elements(); }

 private:
  TensorShape shape_{};
  QuantParams params_{};
  std::vector<std::int8_t> data_;
};

// Quantizes every element of `t` with `params` (saturating).
QTensor quantize(const Tensor& t, const QuantParams& params);

// Dequantizes `q` back to float.
Tensor dequantize(const QTensor& q);

// Quantize-dequantize round trip: the float tensor a b-bit deployment would
// effectively compute on. Used by the entropy/accuracy analyses.
Tensor fake_quantize(const Tensor& t, const QuantParams& params);

// Min / max over the tensor data (returns {0, 0} for empty tensors).
struct MinMax {
  float min_v = 0.0f;
  float max_v = 0.0f;
};
MinMax tensor_min_max(const Tensor& t);

}  // namespace qmcu::nn
