// tensor.h — float and quantized tensors (NHWC, batch 1).
//
// Two concrete tensor types keep the hot kernel loops monomorphic:
//   Tensor   — float reference data (calibration, golden outputs)
//   QTensor  — quantized data held *unpacked* in int8 storage together with
//              its QuantParams. For sub-byte params (bits < 8) the storage
//              is still one int8 per element — exactly the form CMix-NN
//              kernels compute on after unpacking — while the *accounted*
//              footprint (storage_bytes) reflects the packed size. The
//              packed wire format itself lives in quant/bitpack.h.
//
// Both types either own their storage (the default) or *borrow* it from a
// caller-provided span — the form the compiled arena executors use to bind
// feature maps onto planned tensor-arena offsets without per-layer heap
// allocation. Borrowed tensors behave identically through the public API;
// copying any tensor always deep-copies into fresh owned storage, so a
// value escaping an arena (e.g. a returned network output) is self-owned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/check.h"
#include "nn/quant_params.h"
#include "nn/shape.h"

namespace qmcu::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorShape shape)
      : shape_(shape),
        owned_(static_cast<std::size_t>(shape.elements()), 0.0f),
        view_(owned_) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
  }
  Tensor(TensorShape shape, std::vector<float> data)
      : shape_(shape), owned_(std::move(data)), view_(owned_) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
    QMCU_REQUIRE(
        static_cast<std::int64_t>(owned_.size()) == shape.elements(),
        "data size must match shape");
  }
  // Borrowed storage: the tensor aliases `storage` (not owned, not resized).
  // The caller guarantees `storage` outlives every read/write through this
  // view; copying the view deep-copies into owned storage.
  Tensor(TensorShape shape, std::span<float> storage)
      : shape_(shape), view_(storage) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
    QMCU_REQUIRE(
        static_cast<std::int64_t>(storage.size()) == shape.elements(),
        "storage size must match shape");
  }

  Tensor(const Tensor& other)
      : shape_(other.shape_),
        owned_(other.view_.begin(), other.view_.end()),
        view_(owned_) {}
  Tensor& operator=(const Tensor& other) {
    if (this != &other) {
      shape_ = other.shape_;
      owned_.assign(other.view_.begin(), other.view_.end());
      view_ = owned_;
    }
    return *this;
  }
  // Moving a vector keeps its heap buffer, so the view stays valid across
  // the transfer; the source is left empty so it cannot alias storage it
  // no longer owns.
  Tensor(Tensor&& other) noexcept
      : shape_(other.shape_),
        owned_(std::move(other.owned_)),
        view_(other.view_) {
    other.shape_ = {};
    other.view_ = {};
  }
  Tensor& operator=(Tensor&& other) noexcept {
    if (this != &other) {
      shape_ = other.shape_;
      owned_ = std::move(other.owned_);
      view_ = other.view_;
      other.shape_ = {};
      other.view_ = {};
    }
    return *this;
  }

  [[nodiscard]] const TensorShape& shape() const { return shape_; }
  [[nodiscard]] std::span<const float> data() const { return view_; }
  [[nodiscard]] std::span<float> data() { return view_; }
  [[nodiscard]] bool owns_storage() const {
    return view_.empty() || view_.data() == owned_.data();
  }

  [[nodiscard]] float at(int y, int x, int c) const {
    return view_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }
  [[nodiscard]] float& at(int y, int x, int c) {
    return view_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }

  [[nodiscard]] std::int64_t elements() const { return shape_.elements(); }

 private:
  TensorShape shape_{};
  std::vector<float> owned_;
  std::span<float> view_;
};

class QTensor {
 public:
  QTensor() = default;
  QTensor(TensorShape shape, QuantParams params)
      : shape_(shape),
        params_(params),
        owned_(static_cast<std::size_t>(shape.elements()), 0),
        view_(owned_) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
  }
  // Borrowed storage (see Tensor): binds the quantized view onto
  // caller-managed memory, e.g. a planned tensor-arena slot.
  QTensor(TensorShape shape, QuantParams params, std::span<std::int8_t> storage)
      : shape_(shape), params_(params), view_(storage) {
    QMCU_REQUIRE(shape.valid(), "tensor shape must be positive");
    QMCU_REQUIRE(
        static_cast<std::int64_t>(storage.size()) == shape.elements(),
        "storage size must match shape");
  }

  QTensor(const QTensor& other)
      : shape_(other.shape_),
        params_(other.params_),
        owned_(other.view_.begin(), other.view_.end()),
        view_(owned_) {}
  QTensor& operator=(const QTensor& other) {
    if (this != &other) {
      shape_ = other.shape_;
      params_ = other.params_;
      owned_.assign(other.view_.begin(), other.view_.end());
      view_ = owned_;
    }
    return *this;
  }
  QTensor(QTensor&& other) noexcept
      : shape_(other.shape_),
        params_(other.params_),
        owned_(std::move(other.owned_)),
        view_(other.view_) {
    other.shape_ = {};
    other.view_ = {};
  }
  QTensor& operator=(QTensor&& other) noexcept {
    if (this != &other) {
      shape_ = other.shape_;
      params_ = other.params_;
      owned_ = std::move(other.owned_);
      view_ = other.view_;
      other.shape_ = {};
      other.view_ = {};
    }
    return *this;
  }

  [[nodiscard]] const TensorShape& shape() const { return shape_; }
  [[nodiscard]] const QuantParams& params() const { return params_; }
  [[nodiscard]] std::span<const std::int8_t> data() const { return view_; }
  [[nodiscard]] std::span<std::int8_t> data() { return view_; }
  [[nodiscard]] bool owns_storage() const {
    return view_.empty() || view_.data() == owned_.data();
  }

  [[nodiscard]] std::int8_t at(int y, int x, int c) const {
    return view_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }
  [[nodiscard]] std::int8_t& at(int y, int x, int c) {
    return view_[static_cast<std::size_t>(flat_index(shape_, y, x, c))];
  }

  // Footprint of this tensor once bit-packed for storage on the MCU.
  [[nodiscard]] std::int64_t storage_bytes() const {
    return shape_.bytes(params_.bits);
  }

  [[nodiscard]] std::int64_t elements() const { return shape_.elements(); }

 private:
  TensorShape shape_{};
  QuantParams params_{};
  std::vector<std::int8_t> owned_;
  std::span<std::int8_t> view_;
};

// Quantizes every element of `t` with `params` (saturating).
QTensor quantize(const Tensor& t, const QuantParams& params);

// Same, writing into a pre-shaped destination (its params are the target).
void quantize_into(const Tensor& t, QTensor& out);

// Dequantizes `q` back to float.
Tensor dequantize(const QTensor& q);
void dequantize_into(const QTensor& q, Tensor& out);

// Quantize-dequantize round trip: the float tensor a b-bit deployment would
// effectively compute on. Used by the entropy/accuracy analyses.
Tensor fake_quantize(const Tensor& t, const QuantParams& params);

// Min / max over the tensor data (returns {0, 0} for empty tensors).
struct MinMax {
  float min_v = 0.0f;
  float max_v = 0.0f;
};
MinMax tensor_min_max(const Tensor& t);

}  // namespace qmcu::nn
