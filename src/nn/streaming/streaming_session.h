// streaming_session.h — per-stream front-end over the patch models'
// temporal-reuse runtime.
//
// A StreamingSession owns everything one frame stream needs: the previous
// frame (diff baseline), the model's StreamState (retained arena + dirty
// mask), the last output, and an optional ActivationStatsTracker fed from
// the quant model's stats hook. Per frame it
//
//   1. diffs the new frame against the previous one (patch::diff_frames);
//      a byte-identical frame returns the cached output without touching
//      the model at all;
//   2. maps the diff to a per-branch dirty mask (patch::dirty_branches —
//      exact, or tolerance-based when StreamingConfig::max_region_delta is
//      set);
//   3. hands the mask to Model::run_streaming, which recomputes only dirty
//      branches and the tail bands their changes reach;
//   4. folds the frame's skip counters and drift score into
//      StreamingStats.
//
// Exact mode (max_region_delta == 0) is bit-identical to running the model
// in full on every frame, for every worker count — the dirty mask is
// conservative and the runtime skips only byte-identical work. Tolerance
// mode trades that guarantee for more skips.
//
// The session is bound to whichever model the first next() call sees;
// handing it a different model (serving hot swap) resets the stream state
// and re-primes on that frame. Not thread-safe — serving pins one session
// per lane and runs frames of a stream in lane FIFO order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>

#include "nn/runtime/worker_pool.h"
#include "nn/streaming/activation_stats.h"
#include "nn/tensor.h"
#include "patch/compiled_patch_model.h"
#include "patch/streaming_diff.h"

namespace qmcu::nn::streaming {

struct StreamingConfig {
  // 0 = exact mode (skip only byte-identical branch crops, bit-identical
  // output); > 0 = a branch whose mean absolute crop delta is below this
  // still counts as clean (approximate output, more skips).
  float max_region_delta = 0.0f;
  // Feed an ActivationStatsTracker from the model's stats hook (quant
  // models only; ignored by float models, which have no hook).
  bool track_stats = false;
  ActivationStatsConfig stats;
};

struct StreamingStats {
  std::int64_t frames = 0;
  std::int64_t unchanged_frames = 0;  // byte-identical, model untouched
  std::int64_t branches_recomputed = 0;
  std::int64_t branches_skipped = 0;
  std::int64_t bands_run = 0;
  std::int64_t bands_skipped = 0;
  std::int64_t tail_rest_runs = 0;  // frames whose non-banded tail ran
  double drift_score = 0.0;
  bool needs_recalibration = false;

  [[nodiscard]] double branch_skip_ratio() const {
    const std::int64_t total = branches_recomputed + branches_skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(branches_skipped) /
                            static_cast<double>(total);
  }
  [[nodiscard]] double band_skip_ratio() const {
    const std::int64_t total = bands_run + bands_skipped;
    return total == 0 ? 0.0
                      : static_cast<double>(bands_skipped) /
                            static_cast<double>(total);
  }
};

// Model is patch::CompiledPatchModel or patch::CompiledPatchQuantModel —
// anything exposing plan()/pipelined_tail()/run_streaming().
template <class Model>
class StreamingSession {
 public:
  using Output = decltype(std::declval<const Model&>().run(
      std::declval<const nn::Tensor&>()));

  explicit StreamingSession(StreamingConfig cfg = {})
      : cfg_(cfg), tracker_(cfg.stats) {}

  // Runs one frame through `model`, reusing whatever the previous frame
  // already computed. The returned tensor owns its data (safe to keep
  // across frames).
  Output next(const Model& model, const nn::Tensor& frame,
              nn::WorkerPool* pool = nullptr) {
    if (bound_ != &model) {
      // First use, or the serving layer hot-swapped the lane's model:
      // retained bytes belong to the old model's plan, so start over.
      bound_ = &model;
      state_.reset();
      prev_.reset();
      last_.reset();
    }
    const patch::PatchPlan& plan = model.plan();
    const std::int64_t total_branches =
        static_cast<std::int64_t>(plan.branches.size());
    const std::int64_t total_bands = band_count(model);

    if (prev_.has_value() && state_.is_primed()) {
      const patch::FrameDiff diff = patch::diff_frames(*prev_, frame);
      if (diff.identical()) {
        // Nothing changed at all: the retained output is the answer.
        ++stats_.frames;
        ++stats_.unchanged_frames;
        stats_.branches_skipped += total_branches;
        stats_.bands_skipped += total_bands;
        return *last_;
      }
      state_.branch_dirty =
          cfg_.max_region_delta > 0.0f
              ? patch::dirty_branches(*prev_, frame, plan,
                                      cfg_.max_region_delta)
              : patch::dirty_branches(*prev_, frame, plan);
    }

    constexpr bool kHasStatsHook = requires(const Model& m) {
      m.set_stats_hook(
          std::function<void(int, const nn::QTensor&)>{});
    };
    if constexpr (kHasStatsHook) {
      if (cfg_.track_stats) {
        model.set_stats_hook([this](int id, const nn::QTensor& t) {
          tracker_.observe(id, t);
        });
      }
    }
    Output out = model.run_streaming(frame, pool, state_);
    if constexpr (kHasStatsHook) {
      if (cfg_.track_stats) model.set_stats_hook(nullptr);
    }

    ++stats_.frames;
    const std::int64_t ran = state_.frame_branches_run();
    stats_.branches_recomputed += ran;
    stats_.branches_skipped += total_branches - ran;
    const std::int64_t bands = state_.frame_bands_run();
    stats_.bands_run += bands;
    stats_.bands_skipped += total_bands - bands;
    stats_.tail_rest_runs += state_.frame_changed_output() ? 1 : 0;
    if (cfg_.track_stats) {
      stats_.drift_score = tracker_.drift_score();
      stats_.needs_recalibration = tracker_.needs_recalibration();
    }

    prev_.emplace(frame);       // deep copies: the caller keeps its frame,
    last_.emplace(out);         // and `out` views the retained arena
    return *last_;
  }

  // Scene cut: forget the previous frame and retained state; the next
  // frame recomputes in full. Stats and drift tracking are kept.
  void reset() {
    state_.reset();
    prev_.reset();
    last_.reset();
  }

  [[nodiscard]] const StreamingStats& stats() const { return stats_; }
  [[nodiscard]] const ActivationStatsTracker& tracker() const {
    return tracker_;
  }
  [[nodiscard]] ActivationStatsTracker& tracker() { return tracker_; }
  [[nodiscard]] const patch::StreamState& state() const { return state_; }
  [[nodiscard]] const StreamingConfig& config() const { return cfg_; }

 private:
  static std::int64_t band_count(const Model& model) {
    std::int64_t total = 0;
    for (const patch::PipelinedTailLayer& pl : model.pipelined_tail()) {
      total += static_cast<std::int64_t>(pl.bands.size());
    }
    return total;
  }

  StreamingConfig cfg_;
  StreamingStats stats_;
  ActivationStatsTracker tracker_;
  patch::StreamState state_;
  const Model* bound_ = nullptr;
  std::optional<nn::Tensor> prev_;
  std::optional<Output> last_;
};

}  // namespace qmcu::nn::streaming
