#include "nn/streaming/activation_stats.h"

#include <algorithm>
#include <cmath>

#include "nn/check.h"

namespace qmcu::nn::streaming {

ActivationStatsTracker::ActivationStatsTracker(ActivationStatsConfig cfg)
    : cfg_(cfg) {
  QMCU_REQUIRE(cfg_.ema > 0.0f && cfg_.ema <= 1.0f,
               "EMA weight must be in (0, 1]");
  QMCU_REQUIRE(cfg_.bins >= 1, "need at least one histogram bin");
  QMCU_REQUIRE(cfg_.sample_stride >= 1, "sample stride must be >= 1");
  QMCU_REQUIRE(cfg_.saturation_budget > 0.0f,
               "saturation budget must be positive");
}

void ActivationStatsTracker::observe(int layer_id, const nn::QTensor& t) {
  const nn::QuantParams& p = t.params();
  LayerStats& s = layers_[layer_id];
  if (!s.hist.has_value()) {
    s.cal_lo = p.dequantize(p.qmin());
    s.cal_hi = p.dequantize(p.qmax());
    // A degenerate range (scale 0 cannot happen, but be safe) still gets a
    // valid histogram.
    const float hi = s.cal_hi > s.cal_lo ? s.cal_hi : s.cal_lo + 1.0f;
    s.hist.emplace(s.cal_lo, hi, cfg_.bins);
  }
  const auto qmin = static_cast<std::int8_t>(p.qmin());
  const auto qmax = static_cast<std::int8_t>(p.qmax());
  // A rail that IS the zero point (ReLU layers calibrate to [0, hi], so
  // zero lands on qmin) carries the activation's legitimate zero mass —
  // codes there are not clipping evidence and must not count.
  const auto zp = static_cast<std::int8_t>(p.zero_point);
  const bool count_lo = qmin != zp;
  const bool count_hi = qmax != zp;
  const std::span<const std::int8_t> data = t.data();
  float frame_min = 0.0f;
  float frame_max = 0.0f;
  std::int64_t frame_n = 0;
  std::int64_t frame_lo = 0;
  std::int64_t frame_hi = 0;
  for (std::size_t i = 0; i < data.size();
       i += static_cast<std::size_t>(cfg_.sample_stride)) {
    const std::int8_t q = data[i];
    frame_lo += (count_lo && q == qmin) ? 1 : 0;
    frame_hi += (count_hi && q == qmax) ? 1 : 0;
    const float v = p.dequantize(q);
    frame_min = frame_n != 0 ? std::min(frame_min, v) : v;
    frame_max = frame_n != 0 ? std::max(frame_max, v) : v;
    ++frame_n;
    s.hist->add(v);
  }
  if (frame_n == 0) return;
  s.samples += frame_n;
  s.sat_lo += frame_lo;
  s.sat_hi += frame_hi;
  const double flo =
      static_cast<double>(frame_lo) / static_cast<double>(frame_n);
  const double fhi =
      static_cast<double>(frame_hi) / static_cast<double>(frame_n);
  if (!s.ema_seeded) {
    // First frame after deployment: this IS the baseline. Steady-state
    // rail mass and span coverage get recorded here; drift_of scores only
    // later excess over them.
    s.ema_min = frame_min;
    s.ema_max = frame_max;
    s.sat_lo_base = s.sat_lo_ema = flo;
    s.sat_hi_base = s.sat_hi_ema = fhi;
    const double span = static_cast<double>(s.cal_hi) - s.cal_lo;
    s.used_base =
        span > 0.0 ? std::clamp((static_cast<double>(frame_max) - frame_min) /
                                    span,
                                0.0, 1.0)
                   : 1.0;
    s.ema_seeded = true;
  } else {
    const double a = static_cast<double>(cfg_.ema);
    s.ema_min += cfg_.ema * (frame_min - s.ema_min);
    s.ema_max += cfg_.ema * (frame_max - s.ema_max);
    s.sat_lo_ema += a * (flo - s.sat_lo_ema);
    s.sat_hi_ema += a * (fhi - s.sat_hi_ema);
  }
  ++observations_;
}

double ActivationStatsTracker::drift_of(const LayerStats& s) const {
  if (s.samples == 0 || !s.ema_seeded) return 0.0;
  // Rail-mass growth over the deployment baseline, per side (one side
  // widening while the other empties must not cancel out).
  const double sat_excess = std::max(0.0, s.sat_lo_ema - s.sat_lo_base) +
                            std::max(0.0, s.sat_hi_ema - s.sat_hi_base);
  const double sat_term =
      sat_excess / static_cast<double>(cfg_.saturation_budget);
  // Span-coverage loss versus the baseline: losing a quarter of the
  // coverage the layer had at deployment scores 1.0.
  const double span = static_cast<double>(s.cal_hi) - s.cal_lo;
  const double used =
      span > 0.0
          ? std::clamp((static_cast<double>(s.ema_max) - s.ema_min) / span,
                       0.0, 1.0)
          : 1.0;
  const double shrink_term = std::max(0.0, (s.used_base - used) * 4.0);
  return std::max(sat_term, shrink_term);
}

double ActivationStatsTracker::drift_score() const {
  double score = 0.0;
  for (const auto& [id, s] : layers_) score = std::max(score, drift_of(s));
  return score;
}

double ActivationStatsTracker::layer_drift(int layer_id) const {
  const auto it = layers_.find(layer_id);
  return it == layers_.end() ? 0.0 : drift_of(it->second);
}

double ActivationStatsTracker::saturation_fraction(int layer_id) const {
  const auto it = layers_.find(layer_id);
  if (it == layers_.end() || it->second.samples == 0) return 0.0;
  return static_cast<double>(it->second.sat_lo + it->second.sat_hi) /
         static_cast<double>(it->second.samples);
}

double ActivationStatsTracker::range_utilization(int layer_id) const {
  const auto it = layers_.find(layer_id);
  if (it == layers_.end() || !it->second.ema_seeded) return 1.0;
  const LayerStats& s = it->second;
  const double span = static_cast<double>(s.cal_hi) - s.cal_lo;
  if (span <= 0.0) return 1.0;
  return std::clamp((static_cast<double>(s.ema_max) - s.ema_min) / span, 0.0,
                    1.0);
}

const quant::Histogram* ActivationStatsTracker::layer_histogram(
    int layer_id) const {
  const auto it = layers_.find(layer_id);
  return it == layers_.end() || !it->second.hist.has_value()
             ? nullptr
             : &*it->second.hist;
}

std::vector<quant::LayerRange> ActivationStatsTracker::drifted_ranges(
    int num_layers) const {
  std::vector<quant::LayerRange> ranges(
      static_cast<std::size_t>(num_layers));
  for (const auto& [id, s] : layers_) {
    if (id < 0 || id >= num_layers || s.samples == 0) continue;
    quant::LayerRange& r = ranges[static_cast<std::size_t>(id)];
    r.seen = true;
    r.min_v = s.cal_lo;
    r.max_v = s.cal_hi;
    const double budget = static_cast<double>(cfg_.saturation_budget);
    const float span = s.cal_hi - s.cal_lo;
    // Saturating edge (rail mass grew past the baseline): everything past
    // it clamped, so the true extent is unobservable — extrapolate
    // proportionally to the excess mass.
    const double lo_excess = std::max(0.0, s.sat_lo_ema - s.sat_lo_base);
    const double hi_excess = std::max(0.0, s.sat_hi_ema - s.sat_hi_base);
    if (lo_excess > budget) {
      r.min_v -= span * static_cast<float>(
                            std::min(1.0, 10.0 * (lo_excess - budget)) * 0.5);
    }
    if (hi_excess > budget) {
      r.max_v += span * static_cast<float>(
                            std::min(1.0, 10.0 * (hi_excess - budget)) * 0.5);
    }
    // Collapsed utilization with no saturation: tighten onto the EMA
    // extrema so the codebook covers live values again.
    const double used = range_utilization(id);
    if (used < 0.5 && r.min_v == s.cal_lo && r.max_v == s.cal_hi) {
      r.min_v = s.ema_min;
      r.max_v = s.ema_max;
    }
  }
  return ranges;
}

void ActivationStatsTracker::reset() {
  layers_.clear();
  observations_ = 0;
}

}  // namespace qmcu::nn::streaming
