// activation_stats.h — online activation statistics for quantization drift.
//
// Post-training quantization fixes each feature map's [lo, hi] range from a
// calibration batch. A streaming deployment then watches a *distribution*
// of inputs that the calibration batch may stop representing: scene
// changes, lighting shifts, sensor aging. When that happens the quantized
// runtime does not "see" the new range — values past the calibrated edge
// clamp to qmin/qmax, and a shrunken distribution wastes codes. Both are
// invisible in dequantized min/max (clamping hides them), so the tracker
// watches two observable symptoms instead:
//
//   saturation — the fraction of observed codes sitting exactly at
//     qmin/qmax (the quant::Histogram edge-bin construction preserves this
//     mass); calibrated ranges that became too narrow show up here.
//   under-utilization — the EMA of per-frame dequantized extrema covering
//     only a sliver of the calibrated span; ranges that became too wide
//     show up here (few codes carry all the signal).
//
// Both symptoms are measured RELATIVE TO A BASELINE captured from each
// layer's first observation (deployment right after calibration): rail
// mass and partial span coverage are normal steady-state facts — ReLU6
// puts an atom exactly on qmax, the zero-point rail carries the zero mass,
// and min/max calibration guarantees typical frames undershoot the span.
// Only their growth over the baseline is drift.
//
// A per-layer drift score is the larger of (rail-mass excess / budget) and
// a scaled utilization-loss term; the tracker's score is the max over
// tracked layers, and needs_recalibration() fires at drift_threshold. The tracker
// feeds from the compiled quant patch model's opt-in stats hook
// (set_stats_hook observes the assembled map and every tail layer once per
// completed run) and drifted_ranges() proposes refreshed quant::LayerRange
// values — widened on the saturating side, tightened onto the EMA extrema
// when shrunken — that flow straight into quant::make_quant_config for a
// re-calibration + hot swap.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "nn/tensor.h"
#include "quant/calibration.h"
#include "quant/histogram.h"

namespace qmcu::nn::streaming {

struct ActivationStatsConfig {
  // EMA weight of the newest frame's extrema (0 < ema <= 1).
  float ema = 0.1f;
  // Histogram resolution per tracked layer.
  int bins = 32;
  // Observe every Nth element of each feature map (>= 1); sampling keeps
  // the hook off the per-frame critical path.
  int sample_stride = 4;
  // Growth of the rail-mass fraction over the layer's baseline before it
  // counts as saturating (drift contribution 1.0 at exactly this excess).
  float saturation_budget = 0.02f;
  // drift_score() >= threshold => needs_recalibration().
  float drift_threshold = 1.0f;
};

class ActivationStatsTracker {
 public:
  explicit ActivationStatsTracker(ActivationStatsConfig cfg = {});

  // Folds one observation of layer `layer_id`'s quantized output. The
  // first observation fixes the layer's calibrated range from the tensor's
  // own params (scale * (q - zero_point) at the code-range edges) — pools
  // propagate producer params, so the observed tensor, not the static
  // config, is the source of truth.
  void observe(int layer_id, const nn::QTensor& t);

  // Max drift over all tracked layers (0 = none tracked yet).
  [[nodiscard]] double drift_score() const;
  [[nodiscard]] double layer_drift(int layer_id) const;
  [[nodiscard]] bool needs_recalibration() const {
    return drift_score() >=
           static_cast<double>(cfg_.drift_threshold);
  }
  // Fraction of observed codes at qmin/qmax, and the fraction of the
  // calibrated span the EMA extrema actually cover. Untracked layers
  // report 0 and 1 respectively.
  [[nodiscard]] double saturation_fraction(int layer_id) const;
  [[nodiscard]] double range_utilization(int layer_id) const;
  [[nodiscard]] std::int64_t observations() const { return observations_; }
  [[nodiscard]] const quant::Histogram* layer_histogram(int layer_id) const;

  // Refreshed ranges for quant::make_quant_config: per layer id in
  // [0, num_layers), the calibrated range widened on a saturating edge
  // (proportionally to the saturated mass) or tightened onto the EMA
  // extrema when utilization collapsed; `seen` is false for layers this
  // tracker never observed (callers keep their existing config there).
  [[nodiscard]] std::vector<quant::LayerRange> drifted_ranges(
      int num_layers) const;

  // Forget everything (after a re-calibration swap).
  void reset();

 private:
  struct LayerStats {
    float cal_lo = 0.0f;  // dequantized code-range edges at first sight
    float cal_hi = 0.0f;
    float ema_min = 0.0f;
    float ema_max = 0.0f;
    bool ema_seeded = false;
    std::int64_t samples = 0;
    std::int64_t sat_lo = 0;  // codes observed exactly at qmin / qmax
    std::int64_t sat_hi = 0;
    // Deployment baseline (the first observed frame, assumed
    // in-distribution) and EMAs of the per-frame rail-mass fractions:
    // drift is the EMA's excess over the baseline.
    double sat_lo_base = 0.0;
    double sat_hi_base = 0.0;
    double sat_lo_ema = 0.0;
    double sat_hi_ema = 0.0;
    double used_base = 1.0;  // baseline span coverage
    std::optional<quant::Histogram> hist;
  };

  [[nodiscard]] double drift_of(const LayerStats& s) const;

  ActivationStatsConfig cfg_;
  std::map<int, LayerStats> layers_;
  std::int64_t observations_ = 0;
};

}  // namespace qmcu::nn::streaming
