#include "nn/graph_io.h"

#include <iomanip>
#include <sstream>

namespace qmcu::nn {

std::string summarize(const Graph& g) {
  std::ostringstream os;
  os << "graph '" << g.name() << "' — " << g.size() << " layers\n";
  os << std::left << std::setw(4) << "id" << std::setw(10) << "op"
     << std::setw(22) << "name" << std::setw(14) << "geometry"
     << std::setw(14) << "output" << std::right << std::setw(12) << "MACs"
     << std::setw(10) << "params" << '\n';
  std::int64_t total_params = 0;
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    std::ostringstream geom;
    if (is_windowed_op(l.kind)) {
      geom << l.kernel_h << 'x' << l.kernel_w << " s" << l.stride_h << " p"
           << l.pad_h;
    } else {
      geom << '-';
    }
    std::ostringstream shape;
    shape << g.shape(id);
    const std::int64_t params = g.weight_count(id);
    total_params += params;
    os << std::left << std::setw(4) << id << std::setw(10) << to_string(l.kind)
       << std::setw(22) << l.name.substr(0, 21) << std::setw(14) << geom.str()
       << std::setw(14) << shape.str() << std::right << std::setw(12)
       << g.macs(id) << std::setw(10) << params << '\n';
  }
  os << "total: " << g.total_macs() << " MACs, " << total_params
     << " parameters\n";
  return os.str();
}

std::string to_dot(const Graph& g, int highlight_through) {
  std::ostringstream os;
  os << "digraph \"" << g.name() << "\" {\n";
  os << "  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n";
  for (int id = 0; id < g.size(); ++id) {
    const Layer& l = g.layer(id);
    os << "  n" << id << " [label=\"" << id << ": " << to_string(l.kind)
       << "\\n" << g.shape(id) << '"';
    if (id <= highlight_through) {
      os << ", style=filled, fillcolor=lightblue";
    }
    os << "];\n";
  }
  for (int id = 0; id < g.size(); ++id) {
    for (int in : g.layer(id).inputs) {
      os << "  n" << in << " -> n" << id << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace qmcu::nn
