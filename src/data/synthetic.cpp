#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "nn/rng.h"

namespace qmcu::data {

SyntheticDataset::SyntheticDataset(DataConfig cfg) : cfg_(cfg) {
  QMCU_REQUIRE(cfg_.resolution > 0, "resolution must be positive");
  QMCU_REQUIRE(cfg_.channels > 0, "channels must be positive");
  QMCU_REQUIRE(cfg_.outlier_probability >= 0.0 &&
                   cfg_.outlier_probability <= 1.0,
               "outlier probability must be in [0, 1]");
}

namespace {

struct CosineComponent {
  double fy, fx, phase, amplitude;
};

struct HotSpot {
  double cy, cx, radius;
};

struct ObjectBox {
  int y0, x0, y1, x1;
  double contrast;
};

}  // namespace

// Natural images are NOT iid noise: they are smooth structure whose local
// contrast varies across the frame, with rare extreme responses (glints,
// edges, salient objects) concentrated in a few regions. VDPC's whole
// premise (paper Fig. 2/3) is that some patches carry outlier values and
// others are quiet — so the generator produces:
//   * a cosine-mixture base with a *smooth contrast envelope* (low-contrast
//     regions stay well inside the global 2σ band -> non-outlier patches);
//   * a tiny iid sensor-noise floor;
//   * heavy-tail "glints" only inside a few hot spots (ImageNet-like) or
//     salient object boxes (VOC-like) -> outlier-class patches.
nn::Tensor SyntheticDataset::image(int index) const {
  QMCU_REQUIRE(index >= 0, "image index must be non-negative");
  const int n = cfg_.resolution;
  const int ch = cfg_.channels;
  // Per-image stream: decorrelates images while staying reproducible.
  nn::Rng rng(cfg_.seed ^ (0x9e3779b97f4a7c15ull *
                           (static_cast<std::uint64_t>(index) + 1)));

  // Low-frequency structure.
  constexpr int kComponents = 4;
  std::vector<CosineComponent> comps;
  comps.reserve(kComponents);
  for (int i = 0; i < kComponents; ++i) {
    comps.push_back({rng.uniform(0.5, 3.0), rng.uniform(0.5, 3.0),
                     rng.uniform(0.0, 2.0 * std::numbers::pi),
                     rng.uniform(0.2, 0.4)});
  }
  // Smooth contrast envelope in [0.15, 1].
  const CosineComponent env{rng.uniform(0.4, 1.2), rng.uniform(0.4, 1.2),
                            rng.uniform(0.0, 2.0 * std::numbers::pi), 1.0};

  // Outlier hot spots (ImageNet-like salient regions).
  constexpr int kHotSpots = 2;
  std::vector<HotSpot> spots;
  spots.reserve(kHotSpots);
  for (int i = 0; i < kHotSpots; ++i) {
    spots.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                     rng.uniform(0.04, 0.10)});
  }

  // VOC-like: rectangular salient objects.
  std::vector<ObjectBox> boxes;
  if (cfg_.kind == DatasetKind::PascalVocLike) {
    const int num_boxes = 1 + static_cast<int>(rng.uniform() * 2.0);
    for (int i = 0; i < num_boxes; ++i) {
      const int bh = std::max(2, static_cast<int>(rng.uniform(0.12, 0.3) * n));
      const int bw = std::max(2, static_cast<int>(rng.uniform(0.12, 0.3) * n));
      const int y0 = static_cast<int>(rng.uniform() * (n - bh));
      const int x0 = static_cast<int>(rng.uniform() * (n - bw));
      boxes.push_back({y0, x0, y0 + bh, x0 + bw, rng.uniform(1.4, 2.2)});
    }
  }

  nn::Tensor out(nn::TensorShape{n, n, ch});
  for (int y = 0; y < n; ++y) {
    const double fy = static_cast<double>(y) / n;
    for (int x = 0; x < n; ++x) {
      const double fx = static_cast<double>(x) / n;
      double base = 0.0;
      for (const CosineComponent& c : comps) {
        base += c.amplitude *
                std::cos(2.0 * std::numbers::pi * (c.fy * fy + c.fx * fx) +
                         c.phase);
      }
      const double envelope =
          0.15 + 0.85 * (0.5 + 0.5 * std::cos(2.0 * std::numbers::pi *
                                                  (env.fy * fy + env.fx * fx) +
                                              env.phase));
      bool in_spot = false;
      for (const HotSpot& s : spots) {
        const double dy = fy - s.cy;
        const double dx = fx - s.cx;
        if (dy * dy + dx * dx < s.radius * s.radius) in_spot = true;
      }
      double object_contrast = 1.0;
      bool in_box = false;
      for (const ObjectBox& b : boxes) {
        if (y >= b.y0 && y < b.y1 && x >= b.x0 && x < b.x1) {
          object_contrast = std::max(object_contrast, b.contrast);
          in_box = true;
        }
      }
      for (int c = 0; c < ch; ++c) {
        double v = envelope * (base + 0.1 * rng.normal());
        // Heavy tail only in salient regions.
        const bool salient = cfg_.kind == DatasetKind::PascalVocLike
                                 ? in_box
                                 : in_spot;
        if (salient && rng.uniform() < std::min(1.0, 40.0 *
                                                         cfg_.outlier_probability)) {
          const double sign = rng.uniform() < 0.5 ? -1.0 : 1.0;
          // Magnitude spectrum biased toward the weak end (u² shaping):
          // most glints sit a little beyond the 2σ band, a few are huge.
          // This is what gives the paper's Fig. 5 its gradual collapse —
          // each increase of φ exposes the next shell of weak outliers.
          const double u = rng.uniform();
          v += sign * cfg_.outlier_scale * (0.26 + 0.94 * u * u);
        }
        v *= object_contrast;
        out.at(y, x, c) = static_cast<float>(v);
      }
    }
  }
  return out;
}

std::vector<nn::Tensor> SyntheticDataset::batch(int start, int count) const {
  QMCU_REQUIRE(count > 0, "batch count must be positive");
  std::vector<nn::Tensor> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(image(start + i));
  return out;
}

const char* dataset_name(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::ImageNetLike: return "ImageNet";
    case DatasetKind::PascalVocLike: return "PascalVOC";
  }
  return "?";
}

}  // namespace qmcu::data
