// synthetic.h — synthetic stand-ins for ImageNet and Pascal VOC.
//
// The paper's methods consume activation *statistics*, not labels: VDPC
// needs inputs whose activations are bell-shaped with a sparse heavy tail
// (Fig. 2a), spatially clustered so that some patches contain outliers and
// others do not (Fig. 3). The generators below produce exactly that,
// deterministically per (seed, index):
//
//   * ImageNet-like — smooth low-frequency base (random 2-D cosine mixture,
//     giving natural-image spatial correlation) + Gaussian texture + a
//     sparse heavy-tail component ("glints") clustered around a handful of
//     hot spots.
//   * VOC-like — the same background plus 1–3 rectangular high-contrast
//     "objects"; outliers concentrate inside object boxes, mimicking the
//     detection workload where salient regions dominate.
//
// See DESIGN.md §2 for the substitution argument.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace qmcu::data {

enum class DatasetKind { ImageNetLike, PascalVocLike };

struct DataConfig {
  DatasetKind kind = DatasetKind::ImageNetLike;
  int resolution = 224;
  int channels = 3;
  std::uint64_t seed = 0xda7a5e7ull;
  // Fraction of pixels receiving a heavy-tail boost, and its magnitude in
  // units of the base standard deviation.
  double outlier_probability = 0.01;
  double outlier_scale = 6.0;
};

class SyntheticDataset {
 public:
  explicit SyntheticDataset(DataConfig cfg);

  // Deterministic image for `index`; same (config, index) -> same tensor.
  [[nodiscard]] nn::Tensor image(int index) const;

  [[nodiscard]] std::vector<nn::Tensor> batch(int start, int count) const;

  [[nodiscard]] const DataConfig& config() const { return cfg_; }

 private:
  DataConfig cfg_;
};

// Canonical dataset name used in reports ("ImageNet" / "PascalVOC").
const char* dataset_name(DatasetKind kind);

}  // namespace qmcu::data
