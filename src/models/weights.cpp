#include "models/weights.h"

#include <cmath>
#include <vector>

namespace qmcu::models {

namespace {

std::int64_t fan_in(const nn::Graph& g, int id) {
  const nn::Layer& l = g.layer(id);
  switch (l.kind) {
    case nn::OpKind::Conv2D:
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w *
             g.shape(l.inputs[0]).c;
    case nn::OpKind::DepthwiseConv2D:
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w;
    case nn::OpKind::FullyConnected:
      return g.shape(l.inputs[0]).elements();
    default:
      return 1;
  }
}

}  // namespace

void init_parameters(nn::Graph& g, std::uint64_t seed) {
  nn::Rng rng(seed);
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    if (!nn::is_mac_op(l.kind) || g.has_parameters(id)) continue;

    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in(g, id)));
    std::vector<float> w(static_cast<std::size_t>(g.weight_count(id)));
    for (float& v : w) v = static_cast<float>(rng.normal(0.0, stddev));

    std::vector<float> b;
    if (l.has_bias) {
      const int bias_count = l.kind == nn::OpKind::DepthwiseConv2D
                                 ? g.shape(l.inputs[0]).c
                                 : l.out_channels;
      b.resize(static_cast<std::size_t>(bias_count));
      for (float& v : b) v = static_cast<float>(rng.uniform(-0.05, 0.05));
    }
    g.set_parameters(id, std::move(w), std::move(b));
  }
}

}  // namespace qmcu::models
