// zoo.h — the network architectures used by the paper's evaluation.
//
// Fig. 1b compares MobileNetV2 / MnasNet / FBNet-A / OFA-CPU / MCUNet;
// Fig. 4 and Fig. 6 additionally use InceptionV3, SqueezeNet, ResNet18,
// VGG16. "The width multiplier and resolution of the model are adjusted to
// fit MCU memory" (Table I caption) — ModelConfig carries both knobs.
//
// Documented topology simplifications (see DESIGN.md §2): squeeze-and-
// excitation blocks are omitted from MnasNet (no broadcast-multiply op in
// the IR) and InceptionV3 is built from classic four-branch square-kernel
// inception modules rather than the factorised 7x1/1x7 variant. Both keep
// the property the paper exercises — deep branched topologies with a
// characteristic activation distribution — while staying inside the
// operator set MCU deployments actually use.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nn/graph.h"

namespace qmcu::models {

struct ModelConfig {
  float width_multiplier = 1.0f;
  int resolution = 224;
  int num_classes = 1000;
  std::uint64_t seed = 0x9e3779b9u;
  bool with_softmax = true;
  bool init_weights = true;  // disable for pure cost-model studies
};

nn::Graph make_mobilenet_v2(const ModelConfig& cfg = {});
nn::Graph make_mcunet(const ModelConfig& cfg = {});
nn::Graph make_mnasnet(const ModelConfig& cfg = {});
nn::Graph make_fbnet_a(const ModelConfig& cfg = {});
nn::Graph make_ofa_cpu(const ModelConfig& cfg = {});
nn::Graph make_resnet18(const ModelConfig& cfg = {});
nn::Graph make_vgg16(const ModelConfig& cfg = {});
nn::Graph make_squeezenet(const ModelConfig& cfg = {});
nn::Graph make_inception_v3(const ModelConfig& cfg = {});

// Registry lookup by canonical name ("mobilenetv2", "mcunet", ...).
nn::Graph make_model(std::string_view name, const ModelConfig& cfg = {});
std::vector<std::string> model_names();

}  // namespace qmcu::models
