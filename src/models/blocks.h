// blocks.h — reusable CNN building blocks for the model zoo.
//
// Each helper appends a block subgraph to `g` rooted at `in` and returns the
// id of the block's output layer. Channel counts are the caller's (already
// width-scaled) values.
#pragma once

#include "nn/graph.h"

namespace qmcu::models {

// MobileNetV2 inverted residual (MBConv): 1x1 expand (ReLU6) -> kxk
// depthwise stride s (ReLU6) -> 1x1 linear project; residual add when
// stride == 1 and in/out channels match. expand_ratio == 1 skips the expand.
int add_inverted_residual(nn::Graph& g, int in, int expand_ratio,
                          int out_channels, int kernel, int stride);

// ResNet basic block: 3x3 (ReLU) -> 3x3, skip (1x1 stride-s projection when
// geometry changes), add + ReLU.
int add_basic_block(nn::Graph& g, int in, int out_channels, int stride);

// SqueezeNet fire module: 1x1 squeeze (ReLU) -> concat[1x1 expand, 3x3
// expand] (both ReLU).
int add_fire_module(nn::Graph& g, int in, int squeeze_c, int expand1_c,
                    int expand3_c);

// GoogLeNet/Inception-style module with four branches: 1x1, 1x1->3x3,
// 1x1->5x5, 3x3 maxpool->1x1 projection; channel concat.
int add_inception_module(nn::Graph& g, int in, int b1x1, int b3x3_reduce,
                         int b3x3, int b5x5_reduce, int b5x5, int pool_proj);

// Depthwise-separable conv (MobileNetV1 / MnasNet SepConv): kxk depthwise
// (ReLU6) -> 1x1 pointwise (ReLU6).
int add_separable_conv(nn::Graph& g, int in, int out_channels, int kernel,
                       int stride);

// MobileNet channel rounding: nearest multiple of 8, never below 8.
int scale_channels(int channels, float width_multiplier);

}  // namespace qmcu::models
