#include "models/blocks.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace qmcu::models {

using nn::Activation;

int add_inverted_residual(nn::Graph& g, int in, int expand_ratio,
                          int out_channels, int kernel, int stride) {
  QMCU_REQUIRE(expand_ratio >= 1, "expand ratio must be >= 1");
  QMCU_REQUIRE(stride == 1 || stride == 2, "MBConv stride must be 1 or 2");
  const int in_c = g.shape(in).c;
  int x = in;
  if (expand_ratio > 1) {
    x = g.add_conv2d(x, in_c * expand_ratio, 1, 1, 0, Activation::ReLU6);
  }
  x = g.add_depthwise_conv2d(x, kernel, stride, kernel / 2,
                             Activation::ReLU6);
  x = g.add_conv2d(x, out_channels, 1, 1, 0, Activation::None);
  if (stride == 1 && in_c == out_channels) {
    x = g.add_residual_add(in, x, Activation::None);
  }
  return x;
}

int add_basic_block(nn::Graph& g, int in, int out_channels, int stride) {
  const int in_c = g.shape(in).c;
  int x = g.add_conv2d(in, out_channels, 3, stride, 1, Activation::ReLU);
  x = g.add_conv2d(x, out_channels, 3, 1, 1, Activation::None);
  int skip = in;
  if (stride != 1 || in_c != out_channels) {
    skip = g.add_conv2d(in, out_channels, 1, stride, 0, Activation::None);
  }
  return g.add_residual_add(skip, x, Activation::ReLU);
}

int add_fire_module(nn::Graph& g, int in, int squeeze_c, int expand1_c,
                    int expand3_c) {
  const int s = g.add_conv2d(in, squeeze_c, 1, 1, 0, Activation::ReLU);
  const int e1 = g.add_conv2d(s, expand1_c, 1, 1, 0, Activation::ReLU);
  const int e3 = g.add_conv2d(s, expand3_c, 3, 1, 1, Activation::ReLU);
  const std::array<int, 2> branches{e1, e3};
  return g.add_concat(branches);
}

int add_inception_module(nn::Graph& g, int in, int b1x1, int b3x3_reduce,
                         int b3x3, int b5x5_reduce, int b5x5, int pool_proj) {
  const int p1 = g.add_conv2d(in, b1x1, 1, 1, 0, Activation::ReLU);
  int p2 = g.add_conv2d(in, b3x3_reduce, 1, 1, 0, Activation::ReLU);
  p2 = g.add_conv2d(p2, b3x3, 3, 1, 1, Activation::ReLU);
  int p3 = g.add_conv2d(in, b5x5_reduce, 1, 1, 0, Activation::ReLU);
  p3 = g.add_conv2d(p3, b5x5, 5, 1, 2, Activation::ReLU);
  int p4 = g.add_max_pool(in, 3, 1, 1);
  p4 = g.add_conv2d(p4, pool_proj, 1, 1, 0, Activation::ReLU);
  const std::array<int, 4> branches{p1, p2, p3, p4};
  return g.add_concat(branches);
}

int add_separable_conv(nn::Graph& g, int in, int out_channels, int kernel,
                       int stride) {
  int x = g.add_depthwise_conv2d(in, kernel, stride, kernel / 2,
                                 Activation::ReLU6);
  return g.add_conv2d(x, out_channels, 1, 1, 0, Activation::ReLU6);
}

int scale_channels(int channels, float width_multiplier) {
  QMCU_REQUIRE(width_multiplier > 0.0f, "width multiplier must be positive");
  const int scaled = static_cast<int>(
      std::lround(static_cast<double>(channels) * width_multiplier / 8.0) * 8);
  return std::max(8, scaled);
}

}  // namespace qmcu::models
