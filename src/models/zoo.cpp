#include "models/zoo.h"

#include <array>

#include "models/blocks.h"
#include "models/weights.h"

namespace qmcu::models {

using nn::Activation;
using nn::Graph;
using nn::TensorShape;

namespace {

int add_classifier_head(Graph& g, int x, const ModelConfig& cfg) {
  x = g.add_global_avg_pool(x);
  x = g.add_fully_connected(x, cfg.num_classes, Activation::None, "logits");
  if (cfg.with_softmax) x = g.add_softmax(x, "probs");
  return x;
}

void finish(Graph& g, const ModelConfig& cfg) {
  if (cfg.init_weights) init_parameters(g, cfg.seed);
}

// One row of an MBConv stage table: expansion t, channels c, repeats n,
// stride s (of the first block in the stage), kernel k.
struct MBStage {
  int t, c, n, s, k;
};

int add_mb_stages(Graph& g, int x, std::span<const MBStage> stages,
                  float width) {
  for (const MBStage& st : stages) {
    const int out_c = scale_channels(st.c, width);
    for (int i = 0; i < st.n; ++i) {
      x = add_inverted_residual(g, x, st.t, out_c, st.k,
                                i == 0 ? st.s : 1);
    }
  }
  return x;
}

}  // namespace

Graph make_mobilenet_v2(const ModelConfig& cfg) {
  Graph g("mobilenetv2");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(32, w), 3, 2, 1, Activation::ReLU6,
                   "stem");
  // Standard MobileNetV2 stage table (Sandler et al., Table 2).
  constexpr std::array<MBStage, 7> stages{{{1, 16, 1, 1, 3},
                                           {6, 24, 2, 2, 3},
                                           {6, 32, 3, 2, 3},
                                           {6, 64, 4, 2, 3},
                                           {6, 96, 3, 1, 3},
                                           {6, 160, 3, 2, 3},
                                           {6, 320, 1, 1, 3}}};
  x = add_mb_stages(g, x, stages, w);
  const int head_c = w > 1.0f ? scale_channels(1280, w) : 1280;
  x = g.add_conv2d(x, head_c, 1, 1, 0, Activation::ReLU6, "head");
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_mcunet(const ModelConfig& cfg) {
  // MCUNet-class backbone (Lin et al.): TinyNAS-searched MBConv network with
  // small early channel counts and mixed 3/5/7 kernels.
  Graph g("mcunet");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(16, w), 3, 2, 1, Activation::ReLU6,
                   "stem");
  constexpr std::array<MBStage, 6> stages{{{1, 8, 1, 1, 3},
                                           {4, 16, 2, 2, 7},
                                           {5, 24, 2, 2, 3},
                                           {5, 40, 2, 2, 5},
                                           {5, 48, 2, 1, 3},
                                           {6, 96, 2, 2, 5}}};
  x = add_mb_stages(g, x, stages, w);
  x = g.add_conv2d(x, scale_channels(160, w), 1, 1, 0, Activation::ReLU6,
                   "head");
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_mnasnet(const ModelConfig& cfg) {
  // MnasNet-A1 (Tan et al.) without squeeze-and-excitation (documented).
  Graph g("mnasnet");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(32, w), 3, 2, 1, Activation::ReLU6,
                   "stem");
  x = add_separable_conv(g, x, scale_channels(16, w), 3, 1);
  constexpr std::array<MBStage, 6> stages{{{6, 24, 2, 2, 3},
                                           {3, 40, 3, 2, 5},
                                           {6, 80, 4, 2, 3},
                                           {6, 112, 2, 1, 3},
                                           {6, 160, 3, 2, 5},
                                           {6, 320, 1, 1, 3}}};
  x = add_mb_stages(g, x, stages, w);
  x = g.add_conv2d(x, scale_channels(1280, w), 1, 1, 0, Activation::ReLU6,
                   "head");
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_fbnet_a(const ModelConfig& cfg) {
  // FBNet-A (Wu et al.): DNAS-searched MBConv chain, mixed expansions and
  // kernels.
  Graph g("fbnet_a");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(16, w), 3, 2, 1, Activation::ReLU6,
                   "stem");
  constexpr std::array<MBStage, 7> stages{{{1, 16, 1, 1, 3},
                                           {6, 24, 2, 2, 3},
                                           {6, 32, 3, 2, 5},
                                           {6, 64, 3, 2, 3},
                                           {6, 112, 3, 1, 5},
                                           {6, 184, 3, 2, 5},
                                           {6, 352, 1, 1, 3}}};
  x = add_mb_stages(g, x, stages, w);
  x = g.add_conv2d(x, scale_channels(1504, w), 1, 1, 0, Activation::ReLU6,
                   "head");
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_ofa_cpu(const ModelConfig& cfg) {
  // Once-for-All CPU-specialised subnet (Cai et al.): shallow early stages,
  // wider late stages, kernel 3/5 mix.
  Graph g("ofa_cpu");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(24, w), 3, 2, 1, Activation::ReLU6,
                   "stem");
  constexpr std::array<MBStage, 6> stages{{{1, 24, 1, 1, 3},
                                           {4, 32, 2, 2, 3},
                                           {4, 48, 2, 2, 5},
                                           {6, 96, 3, 2, 3},
                                           {6, 136, 3, 1, 5},
                                           {6, 192, 3, 2, 5}}};
  x = add_mb_stages(g, x, stages, w);
  x = g.add_conv2d(x, scale_channels(1152, w), 1, 1, 0, Activation::ReLU6,
                   "head");
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_resnet18(const ModelConfig& cfg) {
  Graph g("resnet18");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, scale_channels(64, w), 7, 2, 3, Activation::ReLU,
                   "stem");
  x = g.add_max_pool(x, 3, 2, 1);
  constexpr std::array<std::pair<int, int>, 4> stages{
      {{64, 1}, {128, 2}, {256, 2}, {512, 2}}};
  for (const auto& [c, s] : stages) {
    const int out_c = scale_channels(c, w);
    x = add_basic_block(g, x, out_c, s);
    x = add_basic_block(g, x, out_c, 1);
  }
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_vgg16(const ModelConfig& cfg) {
  Graph g("vgg16");
  const float w = cfg.width_multiplier;
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  constexpr std::array<std::pair<int, int>, 5> stages{
      {{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3}}};
  for (const auto& [c, n] : stages) {
    const int out_c = scale_channels(c, w);
    for (int i = 0; i < n; ++i) {
      x = g.add_conv2d(x, out_c, 3, 1, 1, Activation::ReLU);
    }
    x = g.add_max_pool(x, 2, 2, 0);
  }
  const int fc_c = scale_channels(4096, w);
  x = g.add_fully_connected(x, fc_c, Activation::ReLU, "fc1");
  x = g.add_fully_connected(x, fc_c, Activation::ReLU, "fc2");
  x = g.add_fully_connected(x, cfg.num_classes, Activation::None, "logits");
  if (cfg.with_softmax) x = g.add_softmax(x, "probs");
  finish(g, cfg);
  return g;
}

Graph make_squeezenet(const ModelConfig& cfg) {
  // SqueezeNet v1.1 (Iandola et al.).
  Graph g("squeezenet");
  const float w = cfg.width_multiplier;
  const auto ch = [w](int c) { return scale_channels(c, w); };
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, ch(64), 3, 2, 1, Activation::ReLU, "stem");
  x = g.add_max_pool(x, 3, 2, 1);
  x = add_fire_module(g, x, ch(16), ch(64), ch(64));
  x = add_fire_module(g, x, ch(16), ch(64), ch(64));
  x = g.add_max_pool(x, 3, 2, 1);
  x = add_fire_module(g, x, ch(32), ch(128), ch(128));
  x = add_fire_module(g, x, ch(32), ch(128), ch(128));
  x = g.add_max_pool(x, 3, 2, 1);
  x = add_fire_module(g, x, ch(48), ch(192), ch(192));
  x = add_fire_module(g, x, ch(48), ch(192), ch(192));
  x = add_fire_module(g, x, ch(64), ch(256), ch(256));
  x = add_fire_module(g, x, ch(64), ch(256), ch(256));
  // Classifier conv (SqueezeNet has no FC layers).
  x = g.add_conv2d(x, cfg.num_classes, 1, 1, 0, Activation::ReLU,
                   "classifier");
  x = g.add_global_avg_pool(x);
  if (cfg.with_softmax) x = g.add_softmax(x, "probs");
  finish(g, cfg);
  return g;
}

Graph make_inception_v3(const ModelConfig& cfg) {
  // InceptionV3-class branched network built from square-kernel inception
  // modules (see header note).
  Graph g("inceptionv3");
  const float w = cfg.width_multiplier;
  const auto ch = [w](int c) { return scale_channels(c, w); };
  int x = g.add_input(TensorShape{cfg.resolution, cfg.resolution, 3});
  x = g.add_conv2d(x, ch(32), 3, 2, 1, Activation::ReLU, "stem1");
  x = g.add_conv2d(x, ch(32), 3, 1, 1, Activation::ReLU, "stem2");
  x = g.add_conv2d(x, ch(64), 3, 1, 1, Activation::ReLU, "stem3");
  x = g.add_max_pool(x, 3, 2, 1);
  x = g.add_conv2d(x, ch(80), 1, 1, 0, Activation::ReLU, "stem4");
  x = g.add_conv2d(x, ch(192), 3, 2, 1, Activation::ReLU, "stem5");
  // Three "A"-grade modules.
  x = add_inception_module(g, x, ch(64), ch(48), ch(64), ch(48), ch(64),
                           ch(32));
  x = add_inception_module(g, x, ch(64), ch(48), ch(64), ch(48), ch(64),
                           ch(64));
  x = add_inception_module(g, x, ch(64), ch(48), ch(64), ch(48), ch(64),
                           ch(64));
  x = g.add_max_pool(x, 3, 2, 1);
  // Four "B"-grade modules.
  for (int i = 0; i < 4; ++i) {
    x = add_inception_module(g, x, ch(192), ch(128), ch(192), ch(128),
                             ch(192), ch(192));
  }
  x = g.add_max_pool(x, 3, 2, 1);
  // Two "C"-grade modules.
  x = add_inception_module(g, x, ch(320), ch(384), ch(384), ch(448), ch(384),
                           ch(192));
  x = add_inception_module(g, x, ch(320), ch(384), ch(384), ch(448), ch(384),
                           ch(192));
  add_classifier_head(g, x, cfg);
  finish(g, cfg);
  return g;
}

Graph make_model(std::string_view name, const ModelConfig& cfg) {
  if (name == "mobilenetv2") return make_mobilenet_v2(cfg);
  if (name == "mcunet") return make_mcunet(cfg);
  if (name == "mnasnet") return make_mnasnet(cfg);
  if (name == "fbnet_a") return make_fbnet_a(cfg);
  if (name == "ofa_cpu") return make_ofa_cpu(cfg);
  if (name == "resnet18") return make_resnet18(cfg);
  if (name == "vgg16") return make_vgg16(cfg);
  if (name == "squeezenet") return make_squeezenet(cfg);
  if (name == "inceptionv3") return make_inception_v3(cfg);
  QMCU_REQUIRE(false, "unknown model: " + std::string(name));
}

std::vector<std::string> model_names() {
  return {"mobilenetv2", "mcunet",     "mnasnet",  "fbnet_a",    "ofa_cpu",
          "resnet18",    "vgg16",      "squeezenet", "inceptionv3"};
}

}  // namespace qmcu::models
