// weights.h — deterministic synthetic parameter initialisation.
//
// The paper evaluates trained networks; this reproduction substitutes
// He-normal weights from a platform-independent PRNG (nn::Rng) so every
// build regenerates bit-identical models. What VDPC/VDQS actually consume —
// bell-shaped activation statistics with occasional outliers — is produced
// by these weights together with the data/synthetic.h input generators; see
// DESIGN.md §2.
#pragma once

#include <cstdint>

#include "nn/graph.h"
#include "nn/rng.h"

namespace qmcu::models {

// He-normal weights (stddev = sqrt(2 / fan_in)) and small uniform biases for
// every MAC layer of `g` that does not yet have parameters.
void init_parameters(nn::Graph& g, std::uint64_t seed);

}  // namespace qmcu::models
