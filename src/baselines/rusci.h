// rusci.h — memory-driven mixed low-precision quantization (Rusci et al.,
// MLSys 2020, reference [4]).
//
// Bitwidths are chosen purely so the deployment *fits*: activation bits are
// cascaded down (8 → 4 → 2) wherever an adjacent producer/consumer pair of
// feature maps exceeds the SRAM budget, and weight bits wherever the model
// exceeds the flash budget. Accuracy is never consulted — which is exactly
// the weakness the paper's Table II exhibits (Top-1 61.8 vs QuantMCU 69.2).
// Each accepted cascade step is validated by a quantized inference pass on
// the calibration batch, which is where the method's search time goes.
#pragma once

#include <span>

#include "baselines/method.h"

namespace qmcu::baselines {

struct RusciConfig {
  std::int64_t sram_budget = 0;   // bytes; adjacent fm pairs must fit
  std::int64_t flash_budget = 0;  // bytes; all weights must fit
  int validation_passes = 2;      // quantized runs per accepted step
};

MethodResult run_rusci(const nn::Graph& g,
                       std::span<const nn::Tensor> calibration,
                       const RusciConfig& cfg);

}  // namespace qmcu::baselines
