// haq.h — HAQ: hardware-aware automated quantization with RL (Wang et al.,
// CVPR 2019, reference [2]).
//
// The original trains a DDPG agent whose reward mixes post-finetune
// accuracy and hardware cost. This reproduction keeps the search structure
// — episodic exploration of per-layer bitwidth assignments with an
// accuracy-plus-cost reward and simulated-annealing acceptance — and makes
// the reward *measured*: every episode runs a full simulated-quantization
// forward pass over the calibration batch and scores output fidelity
// against the float reference. That per-episode inference is what makes
// HAQ the slowest entry of Table II's Time column, here as in the paper.
#pragma once

#include <cstdint>
#include <span>

#include "baselines/method.h"

namespace qmcu::baselines {

struct HaqConfig {
  int episodes = 24;
  double target_bitops_ratio = 0.55;  // vs the all-8-bit deployment
  double cost_weight = 2.0;           // reward trade-off
  std::uint64_t seed = 0x4a51u;
  double initial_temperature = 1.0;
};

MethodResult run_haq(const nn::Graph& g,
                     std::span<const nn::Tensor> calibration,
                     const HaqConfig& cfg = {});

}  // namespace qmcu::baselines
