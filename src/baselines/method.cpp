#include "baselines/method.h"

#include <algorithm>
#include <cmath>

#include "core/vdpc.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/ops/int8_kernels.h"
#include "quant/entropy.h"

namespace qmcu::baselines {

std::int64_t mixed_weight_bitops(const nn::Graph& g,
                                 std::span<const int> act_bits,
                                 std::span<const int> weight_bits) {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  QMCU_REQUIRE(static_cast<int>(weight_bits.size()) == g.size(),
               "weight_bits must cover every layer");
  std::int64_t total = 0;
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    if (!nn::is_mac_op(l.kind)) continue;
    total += g.macs(id) * weight_bits[static_cast<std::size_t>(id)] *
             act_bits[static_cast<std::size_t>(l.inputs[0])];
  }
  return total;
}

MethodMetrics evaluate_method(const nn::Graph& g, const MethodResult& method,
                              std::span<const nn::Tensor> eval_images,
                              std::string_view model_name,
                              const core::AccuracyModel& acc) {
  QMCU_REQUIRE(!eval_images.empty(), "evaluation batch must not be empty");
  QMCU_REQUIRE(static_cast<int>(method.act_bits.size()) == g.size(),
               "act_bits must cover every layer");

  MethodMetrics m;
  m.bitops = mixed_weight_bitops(g, method.act_bits, method.weight_bits);
  m.peak_bytes = nn::plan_layer_based(g, method.act_bits).peak_bytes;

  // --- measured quantization noise ---------------------------------------
  const nn::Executor exec(g);
  double weighted_rel_mse = 0.0;
  double volume = 0.0;
  double crush_err = 0.0;
  double outliers = 0.0;
  double crushed = 0.0;

  // Weight quantization noise (independent of inputs).
  for (int id = 0; id < g.size(); ++id) {
    if (!nn::is_mac_op(g.layer(id).kind) || !g.has_parameters(id)) continue;
    const auto w = g.weights(id);
    const int wb = method.weight_bits[static_cast<std::size_t>(id)];
    float absmax = 0.0f;
    for (float v : w) absmax = std::max(absmax, std::abs(v));
    const nn::QuantParams qp = nn::choose_symmetric_quant_params(absmax, wb);
    double mse = 0.0;
    double var = 0.0;
    for (float v : w) {
      const double e = v - qp.quantize_dequantize(v);
      mse += e * e;
      var += static_cast<double>(v) * v;
    }
    if (var > 0.0) {
      weighted_rel_mse += (mse / var) * static_cast<double>(w.size());
      volume += static_cast<double>(w.size());
    }
  }

  for (const nn::Tensor& img : eval_images) {
    const std::vector<nn::Tensor> fms = exec.run_all(img);
    for (int id = 0; id < g.size(); ++id) {
      const nn::Tensor& fm = fms[static_cast<std::size_t>(id)];
      const double var = quant::tensor_variance(fm);
      if (var <= 0.0) continue;
      const int bits = method.act_bits[static_cast<std::size_t>(id)];
      const double rel = quant::quantization_mse(fm, bits) / var;
      const double vol = static_cast<double>(fm.elements());
      weighted_rel_mse += rel * vol;
      volume += vol;

      // Outlier crush, measured on *every* feature map against its own
      // distribution: whole-network quantizers (unlike VDPC-guarded
      // QuantMCU) have no mechanism routing outlier-carrying data to 8-bit.
      // Errors are weighed against the non-outlier band width (see
      // core/quantmcu.cpp NoiseAccumulator note).
      const core::GaussianFit fit = core::fit_gaussian(fm.data());
      if (fit.stddev <= 0.0) continue;
      const double tau = acc.z_ref * fit.stddev;
      const auto [lo, hi] = nn::tensor_min_max(fm);
      const nn::QuantParams qp = nn::choose_quant_params(lo, hi, bits);
      for (float v : fm.data()) {
        if (std::abs(static_cast<double>(v) - fit.mean) <= tau) continue;
        outliers += 1.0;
        if (bits >= 8) continue;
        crushed += 1.0;
        const double e = (v - qp.quantize_dequantize(v)) / tau;
        crush_err += e * e;
      }
    }
  }

  m.noise.any_quantization = true;
  m.noise.mean_relative_mse = volume > 0.0 ? weighted_rel_mse / volume : 0.0;
  m.noise.crushed_outlier_fraction = outliers > 0.0 ? crushed / outliers : 0.0;
  m.noise.crush_severity = crushed > 0.0 ? crush_err / crushed : 0.0;
  m.penalty_pp = acc.top1_penalty_pp(m.noise);
  m.top1 = core::base_accuracy(model_name).imagenet_top1 - m.penalty_pp;
  return m;
}

}  // namespace qmcu::baselines
