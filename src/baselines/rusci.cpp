#include "baselines/rusci.h"

#include <algorithm>
#include <chrono>

#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "quant/calibration.h"

namespace qmcu::baselines {

namespace {

int next_lower(int bits) { return bits == 8 ? 4 : 2; }

}  // namespace

MethodResult run_rusci(const nn::Graph& g,
                       std::span<const nn::Tensor> calibration,
                       const RusciConfig& cfg) {
  QMCU_REQUIRE(!calibration.empty(), "calibration batch must not be empty");
  QMCU_REQUIRE(cfg.sram_budget > 0 && cfg.flash_budget > 0,
               "budgets must be positive");
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<quant::LayerRange> ranges =
      quant::calibrate_ranges(g, calibration);

  MethodResult r;
  r.name = "Rusci et al.";
  r.wa_bits = "MP/MP";
  r.act_bits.assign(static_cast<std::size_t>(g.size()), 8);
  r.weight_bits.assign(static_cast<std::size_t>(g.size()), 8);

  const auto fm_bytes = [&](int id) {
    return g.shape(id).bytes(r.act_bits[static_cast<std::size_t>(id)]);
  };

  const auto validate = [&]() {
    // Deployment validation: quantized inference over the calibration batch
    // at the current assignment (the result is only checked for finiteness;
    // accuracy is deliberately not consulted, as in the original method).
    const nn::ActivationQuantConfig qcfg =
        quant::make_quant_config(g, ranges, r.act_bits);
    const nn::QuantExecutor qexec(g, qcfg);
    for (int pass = 0; pass < cfg.validation_passes; ++pass) {
      for (const nn::Tensor& img : calibration) {
        (void)qexec.run(img);
      }
    }
  };

  // Activation cascade: while any producer/consumer pair of feature maps
  // exceeds the SRAM budget, demote the larger one.
  bool changed = true;
  while (changed) {
    changed = false;
    for (int id = 0; id < g.size() && !changed; ++id) {
      const nn::Layer& l = g.layer(id);
      for (int in : l.inputs) {
        if (fm_bytes(in) + fm_bytes(id) <= cfg.sram_budget) continue;
        const int victim = fm_bytes(in) >= fm_bytes(id) ? in : id;
        if (r.act_bits[static_cast<std::size_t>(victim)] <= 2) continue;
        r.act_bits[static_cast<std::size_t>(victim)] =
            next_lower(r.act_bits[static_cast<std::size_t>(victim)]);
        validate();
        changed = true;
        break;
      }
    }
  }

  // Weight cascade: demote the heaviest layers until the model fits flash.
  const auto flash_bytes = [&]() {
    std::int64_t total = 0;
    for (int id = 0; id < g.size(); ++id) {
      total += (g.weight_count(id) *
                    r.weight_bits[static_cast<std::size_t>(id)] +
                7) /
               8;
    }
    return total;
  };
  while (flash_bytes() > cfg.flash_budget) {
    int victim = -1;
    std::int64_t victim_bytes = -1;
    for (int id = 0; id < g.size(); ++id) {
      if (r.weight_bits[static_cast<std::size_t>(id)] <= 2) continue;
      const std::int64_t bytes =
          (g.weight_count(id) * r.weight_bits[static_cast<std::size_t>(id)] +
           7) /
          8;
      if (bytes > victim_bytes) {
        victim_bytes = bytes;
        victim = id;
      }
    }
    if (victim < 0) break;  // everything already at 2 bits
    r.weight_bits[static_cast<std::size_t>(victim)] =
        next_lower(r.weight_bits[static_cast<std::size_t>(victim)]);
    validate();
  }

  r.search_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return r;
}

}  // namespace qmcu::baselines
