// hawq.h — HAWQ-V3-style sensitivity-driven allocation (Yao et al., ICML
// 2021, reference [3]).
//
// HAWQ ranks layers by a second-order (Hessian) sensitivity metric and
// solves an allocation problem for the bitwidths. This reproduction
// measures sensitivity by *perturbation*: fake-quantize one layer's feature
// map at 4 bits, propagate only the affected sub-graph (Executor::run_from)
// and record the output MSE — a direct curvature probe equivalent in role
// to the Hessian spectrum, costing one partial forward per layer. The
// allocation then greedily demotes the least sensitivity-per-BitOPs layers
// until the BitOPs target is met. As the paper notes for the original, the
// metric is computed once up front and never revisited as values quantize —
// the blind spot that costs HAWQ accuracy in Table II.
#pragma once

#include <span>

#include "baselines/method.h"

namespace qmcu::baselines {

struct HawqConfig {
  double target_bitops_ratio = 0.7;  // vs the all-8-bit deployment
  int probe_bits = 4;                // perturbation bitwidth
};

MethodResult run_hawq(const nn::Graph& g,
                      std::span<const nn::Tensor> calibration,
                      const HawqConfig& cfg = {});

}  // namespace qmcu::baselines
