#include "baselines/pact.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "nn/executor.h"

namespace qmcu::baselines {

namespace {

// Quantization MSE of `values` clipped to [lo_clip, clip] at `bits`.
double clipped_quant_mse(std::span<const float> values, float clip, int bits,
                         bool signed_range) {
  const float lo = signed_range ? -clip : 0.0f;
  const nn::QuantParams qp = nn::choose_quant_params(lo, clip, bits);
  double mse = 0.0;
  for (float v : values) {
    const float clamped = std::clamp(v, lo, clip);
    const double e =
        static_cast<double>(v) - qp.quantize_dequantize(clamped);
    mse += e * e;
  }
  return values.empty() ? 0.0 : mse / static_cast<double>(values.size());
}

}  // namespace

MethodResult run_pact(const nn::Graph& g,
                      std::span<const nn::Tensor> calibration,
                      const PactConfig& cfg) {
  QMCU_REQUIRE(!calibration.empty(), "calibration batch must not be empty");
  const auto t0 = std::chrono::steady_clock::now();

  // Cache float feature maps of the calibration batch.
  const nn::Executor exec(g);
  std::vector<std::vector<nn::Tensor>> fms;
  fms.reserve(calibration.size());
  for (const nn::Tensor& img : calibration) fms.push_back(exec.run_all(img));

  // Per-layer clip learning: line search refined around the incumbent.
  for (int id = 0; id < g.size(); ++id) {
    float absmax = 0.0f;
    bool has_negative = false;
    for (const auto& run : fms) {
      for (float v : run[static_cast<std::size_t>(id)].data()) {
        absmax = std::max(absmax, std::abs(v));
        has_negative = has_negative || v < 0.0f;
      }
    }
    if (absmax == 0.0f) continue;

    float best_clip = absmax;
    double best_mse = std::numeric_limits<double>::infinity();
    float lo = absmax * 0.05f;
    float hi = absmax;
    for (int iter = 0; iter < cfg.refine_iterations; ++iter) {
      for (int c = 0; c < cfg.clip_candidates; ++c) {
        const float clip =
            lo + (hi - lo) * static_cast<float>(c) /
                     static_cast<float>(cfg.clip_candidates - 1);
        double mse = 0.0;
        for (const auto& run : fms) {
          mse += clipped_quant_mse(run[static_cast<std::size_t>(id)].data(),
                                   clip, cfg.bits, has_negative);
        }
        if (mse < best_mse) {
          best_mse = mse;
          best_clip = clip;
        }
      }
      // Narrow the bracket around the incumbent (simulates the gradient
      // steps converging on α).
      const float width = (hi - lo) * 0.5f;
      lo = std::max(absmax * 0.01f, best_clip - width * 0.5f);
      hi = std::min(absmax, best_clip + width * 0.5f);
      if (hi - lo < absmax * 1e-3f) break;
    }
  }

  MethodResult r;
  r.name = "Pact";
  r.wa_bits = std::to_string(cfg.bits) + "/" + std::to_string(cfg.bits);
  r.act_bits.assign(static_cast<std::size_t>(g.size()), cfg.bits);
  r.weight_bits.assign(static_cast<std::size_t>(g.size()), cfg.bits);
  r.search_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return r;
}

}  // namespace qmcu::baselines
