#include "baselines/hawq.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "nn/executor.h"
#include "quant/fake_quant.h"

namespace qmcu::baselines {

MethodResult run_hawq(const nn::Graph& g,
                      std::span<const nn::Tensor> calibration,
                      const HawqConfig& cfg) {
  QMCU_REQUIRE(!calibration.empty(), "calibration batch must not be empty");
  const auto t0 = std::chrono::steady_clock::now();

  const nn::Executor exec(g);
  const int output = g.output();

  // --- perturbation sensitivity per layer --------------------------------
  std::vector<double> sensitivity(static_cast<std::size_t>(g.size()), 0.0);
  for (const nn::Tensor& img : calibration) {
    const std::vector<nn::Tensor> base = exec.run_all(img);
    // Every feature map is probed, including the network input — it is a
    // quantizable feature map like any other, and skipping it would give it
    // zero sensitivity and make it the first demotion victim.
    for (int id = 0; id < g.size(); ++id) {
      const nn::Tensor& fm = base[static_cast<std::size_t>(id)];
      const auto [lo, hi] = nn::tensor_min_max(fm);
      const nn::QuantParams qp =
          nn::choose_quant_params(lo, hi, cfg.probe_bits);
      std::vector<nn::Tensor> memo = base;
      memo[static_cast<std::size_t>(id)] = nn::fake_quantize(fm, qp);
      const std::vector<nn::Tensor> perturbed = exec.run_from(memo, id);
      sensitivity[static_cast<std::size_t>(id)] += quant::output_mse(
          perturbed[static_cast<std::size_t>(output)],
          base[static_cast<std::size_t>(output)]);
    }
  }

  // --- greedy allocation: demote the least sensitive per BitOPs saved ----
  std::vector<int> act_bits(static_cast<std::size_t>(g.size()), 8);
  std::vector<int> weight_bits(static_cast<std::size_t>(g.size()), 8);
  const double bitops8 = static_cast<double>(
      mixed_weight_bitops(g, act_bits, weight_bits));
  const double target = cfg.target_bitops_ratio * bitops8;

  const auto current_bitops = [&]() {
    return static_cast<double>(mixed_weight_bitops(g, act_bits, weight_bits));
  };

  while (current_bitops() > target) {
    int victim = -1;
    double victim_score = std::numeric_limits<double>::infinity();
    for (int id = 0; id < g.size(); ++id) {
      if (act_bits[static_cast<std::size_t>(id)] <= 2) continue;
      // BitOPs saved by demoting this feature map one step.
      std::int64_t consumer_macs = 0;
      for (int c : g.consumers(id)) {
        if (nn::is_mac_op(g.layer(c).kind) && g.layer(c).inputs[0] == id) {
          consumer_macs += g.macs(c);
        }
      }
      if (consumer_macs == 0) continue;
      const double saving = static_cast<double>(consumer_macs);
      const double score =
          sensitivity[static_cast<std::size_t>(id)] / saving;
      if (score < victim_score) {
        victim_score = score;
        victim = id;
      }
    }
    if (victim < 0) break;
    const int from = act_bits[static_cast<std::size_t>(victim)];
    act_bits[static_cast<std::size_t>(victim)] = from == 8 ? 4 : 2;
    // HAWQ-V3 quantizes weights to match the activation tier of the layers
    // consuming this feature map.
    for (int c : g.consumers(victim)) {
      if (nn::is_mac_op(g.layer(c).kind) && g.layer(c).inputs[0] == victim) {
        weight_bits[static_cast<std::size_t>(c)] =
            std::min(weight_bits[static_cast<std::size_t>(c)],
                     act_bits[static_cast<std::size_t>(victim)] * 2);
        weight_bits[static_cast<std::size_t>(c)] = std::clamp(
            weight_bits[static_cast<std::size_t>(c)], 2, 8);
      }
    }
  }

  MethodResult r;
  r.name = "HAWQ-V3";
  r.wa_bits = "MP/MP";
  r.act_bits = std::move(act_bits);
  r.weight_bits = std::move(weight_bits);
  r.search_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return r;
}

}  // namespace qmcu::baselines
