// method.h — common interface for the Table II quantization comparators.
//
// Each baseline produces a per-layer activation/weight bitwidth assignment
// plus the measured wall-clock of its own search; a shared evaluator prices
// the assignment (BitOPs, peak activation memory, proxy Top-1). The
// baselines implement the *mechanisms* of their papers (RL episodes for
// HAQ, perturbation sensitivity for HAWQ-V3, memory-driven cascades for
// Rusci et al., clip learning for PACT) on this codebase's calibration
// data, so the relative search costs in the Time column are intrinsic, not
// staged. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/accuracy_model.h"
#include "nn/graph.h"
#include "nn/tensor.h"

namespace qmcu::baselines {

struct MethodResult {
  std::string name;
  std::string wa_bits;            // Table II "W/A-Bits" cell, e.g. "4/4"
  std::vector<int> act_bits;      // per layer (output feature map storage)
  std::vector<int> weight_bits;   // per layer (MAC layers; 8 elsewhere)
  double search_seconds = 0.0;
};

struct MethodMetrics {
  std::int64_t bitops = 0;
  std::int64_t peak_bytes = 0;
  double top1 = 0.0;
  double penalty_pp = 0.0;
  core::NoiseSummary noise{};
};

// Whole-graph BitOPs honouring per-layer weight bits.
std::int64_t mixed_weight_bitops(const nn::Graph& g,
                                 std::span<const int> act_bits,
                                 std::span<const int> weight_bits);

// Prices a method's assignment and measures its quantization noise on
// `eval_images` (float reference run + per-layer fake quantization).
MethodMetrics evaluate_method(const nn::Graph& g, const MethodResult& method,
                              std::span<const nn::Tensor> eval_images,
                              std::string_view model_name,
                              const core::AccuracyModel& acc = {});

}  // namespace qmcu::baselines
