// pact.h — PACT (Choi et al., reference [20]): uniform 4/4 quantization
// with learned activation clipping.
//
// The original learns a per-layer clip α by backpropagation during QAT;
// this reproduction performs the equivalent *training-free* optimisation —
// per-layer line search for the clip that minimises quantization MSE on
// calibration activations, iterated to a fixed point — which is also where
// the method's cost lives here: every refinement sweep re-touches every
// calibration activation (Table II's Time column).
#pragma once

#include <span>

#include "baselines/method.h"

namespace qmcu::baselines {

struct PactConfig {
  int bits = 4;
  int refine_iterations = 10;  // clip refinement sweeps
  int clip_candidates = 16;    // line-search resolution per sweep
};

MethodResult run_pact(const nn::Graph& g,
                      std::span<const nn::Tensor> calibration,
                      const PactConfig& cfg = {});

}  // namespace qmcu::baselines
