#include "baselines/haq.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "nn/executor.h"
#include "nn/rng.h"
#include "quant/fake_quant.h"

namespace qmcu::baselines {

namespace {

constexpr std::array<int, 3> kBits{8, 4, 2};

}  // namespace

MethodResult run_haq(const nn::Graph& g,
                     std::span<const nn::Tensor> calibration,
                     const HaqConfig& cfg) {
  QMCU_REQUIRE(!calibration.empty(), "calibration batch must not be empty");
  QMCU_REQUIRE(cfg.episodes > 0, "need at least one episode");
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<quant::LayerRange> ranges =
      quant::calibrate_ranges(g, calibration);

  // Float reference outputs for the fidelity reward.
  const nn::Executor exec(g);
  std::vector<nn::Tensor> reference;
  reference.reserve(calibration.size());
  for (const nn::Tensor& img : calibration) reference.push_back(exec.run(img));
  double ref_energy = 0.0;
  std::int64_t ref_count = 0;
  for (const nn::Tensor& t : reference) {
    for (float v : t.data()) ref_energy += static_cast<double>(v) * v;
    ref_count += t.elements();
  }
  const double ref_power =
      ref_count > 0 ? std::max(1e-12, ref_energy / static_cast<double>(
                                                       ref_count))
                    : 1e-12;

  std::vector<int> current(static_cast<std::size_t>(g.size()), 8);
  std::vector<int> weight_bits(static_cast<std::size_t>(g.size()), 8);
  const double bitops8 = static_cast<double>(
      mixed_weight_bitops(g, current, weight_bits));
  const double target = cfg.target_bitops_ratio * bitops8;

  const auto episode_reward = [&](std::span<const int> bits) {
    // The fidelity measurement always runs — it is the expensive part of a
    // HAQ episode and the honest source of this method's search time.
    double mse = 0.0;
    for (std::size_t i = 0; i < calibration.size(); ++i) {
      const nn::Tensor out =
          quant::run_fake_quantized(g, ranges, bits, calibration[i]);
      mse += quant::output_mse(out, reference[i]);
    }
    mse /= static_cast<double>(calibration.size());
    const double fidelity = -mse / ref_power;  // 0 is perfect
    const double cost = static_cast<double>(mixed_weight_bitops(
        g, bits, weight_bits));
    const double over = std::max(0.0, cost - target) / bitops8;
    // HAQ treats the resource budget as a hard constraint: while the
    // configuration is over budget, descent on cost dominates; once under,
    // the agent optimises fidelity alone.
    if (over > 0.0) return -cfg.cost_weight * (1.0 + over);
    return fidelity;
  };

  nn::Rng rng(cfg.seed);
  double current_reward = episode_reward(current);
  std::vector<int> best = current;
  double best_reward = current_reward;

  for (int ep = 0; ep < cfg.episodes; ++ep) {
    // Action: re-assign the bitwidth of a random layer (DDPG's continuous
    // action collapsed to the deployable choices).
    std::vector<int> proposal = current;
    const int layer =
        static_cast<int>(rng.uniform() * static_cast<double>(g.size()));
    const int choice = static_cast<int>(rng.uniform() * kBits.size());
    proposal[static_cast<std::size_t>(std::min(layer, g.size() - 1))] =
        kBits[static_cast<std::size_t>(
            std::min<std::size_t>(choice, kBits.size() - 1))];

    const double reward = episode_reward(proposal);
    const double temperature =
        cfg.initial_temperature *
        (1.0 - static_cast<double>(ep) / static_cast<double>(cfg.episodes));
    const bool accept =
        reward > current_reward ||
        rng.uniform() < std::exp((reward - current_reward) /
                                 std::max(1e-6, temperature));
    if (accept) {
      current = std::move(proposal);
      current_reward = reward;
    }
    if (current_reward > best_reward) {
      best = current;
      best_reward = current_reward;
    }
  }

  MethodResult r;
  r.name = "HAQ";
  r.wa_bits = "MP/MP";
  r.act_bits = std::move(best);
  r.weight_bits = std::move(weight_bits);
  r.search_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  return r;
}

}  // namespace qmcu::baselines
