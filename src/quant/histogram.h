// histogram.h — fixed-range histograms of activation values.
//
// Implements the empirical distribution of the paper's Eq. 3: the value
// range is divided uniformly into k bins and each activation contributes to
// exactly one bin (values on/beyond the boundary clamp into the edge bins,
// so quantization saturation mass is preserved rather than dropped).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/check.h"
#include "nn/tensor.h"

namespace qmcu::quant {

class Histogram {
 public:
  // Range [lo, hi] with k uniform bins; requires lo < hi, k >= 1.
  Histogram(float lo, float hi, int k);

  void add(float value);
  void add_all(std::span<const float> values);

  [[nodiscard]] int bins() const { return static_cast<int>(counts_.size()); }
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] std::span<const std::int64_t> counts() const {
    return counts_;
  }
  [[nodiscard]] float lo() const { return lo_; }
  [[nodiscard]] float hi() const { return hi_; }

  // Empirical probabilities p_j = x_j / n (Eq. 3). Empty histogram -> all 0.
  [[nodiscard]] std::vector<double> probabilities() const;

 private:
  float lo_;
  float hi_;
  float inv_width_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
};

// Histogram of a tensor over its own [min, max] range.
Histogram histogram_of(const nn::Tensor& t, int k);

}  // namespace qmcu::quant
