// calibration.h — post-training range calibration.
//
// Runs the float reference executor over a calibration batch, records the
// running min/max of every feature map (TFLite post-training-quantization
// style), and materialises per-layer QuantParams for a chosen bitwidth
// assignment. The bitwidth vector is exactly what VDPC/VDQS (or a baseline
// quantizer) decides per feature map.
#pragma once

#include <span>
#include <vector>

#include "nn/executor.h"
#include "nn/graph.h"
#include "nn/tensor.h"

namespace qmcu::quant {

struct LayerRange {
  float min_v = 0.0f;
  float max_v = 0.0f;
  bool seen = false;
};

class RangeObserver {
 public:
  explicit RangeObserver(const nn::Graph& g);

  // Folds one batch element's feature maps into the running ranges.
  void observe(std::span<const nn::Tensor> feature_maps);

  [[nodiscard]] const std::vector<LayerRange>& ranges() const {
    return ranges_;
  }

 private:
  std::vector<LayerRange> ranges_;
};

// Runs `inputs` through the float executor and returns per-layer ranges.
std::vector<LayerRange> calibrate_ranges(const nn::Graph& g,
                                         std::span<const nn::Tensor> inputs);

// Builds the quantized-executor config from calibrated ranges and a
// per-layer bitwidth assignment.
nn::ActivationQuantConfig make_quant_config(const nn::Graph& g,
                                            std::span<const LayerRange> ranges,
                                            std::span<const int> bits);

}  // namespace qmcu::quant
