#include "quant/bitpack.h"

#include <cstring>

#include "nn/ops/simd/simd_kernels.h"

namespace qmcu::quant {

namespace {

void check_bits(int bits) {
  QMCU_REQUIRE(bits == 2 || bits == 4 || bits == 8,
               "packing supports 2, 4 and 8 bit fields");
}

}  // namespace

std::int64_t packed_size_bytes(std::int64_t count, int bits) {
  check_bits(bits);
  QMCU_REQUIRE(count >= 0, "count must be non-negative");
  return (count * bits + 7) / 8;
}

std::vector<std::uint8_t> pack(std::span<const std::int8_t> values, int bits) {
  check_bits(bits);
  const int per_byte = 8 / bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1);
  const std::int32_t lo = -(1 << (bits - 1));
  const std::int32_t hi = (1 << (bits - 1)) - 1;

  std::vector<std::uint8_t> out(static_cast<std::size_t>(
      packed_size_bytes(static_cast<std::int64_t>(values.size()), bits)));
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::int32_t v = values[i];
    QMCU_REQUIRE(v >= lo && v <= hi, "value out of signed bit range");
    const std::size_t byte = i / static_cast<std::size_t>(per_byte);
    const int field = static_cast<int>(i % static_cast<std::size_t>(per_byte));
    out[byte] = static_cast<std::uint8_t>(
        out[byte] | ((static_cast<std::uint8_t>(v) & mask) << (field * bits)));
  }
  return out;
}

std::vector<std::int8_t> unpack(std::span<const std::uint8_t> packed,
                                std::int64_t count, int bits) {
  check_bits(bits);
  QMCU_REQUIRE(packed_size_bytes(count, bits) <=
                   static_cast<std::int64_t>(packed.size()),
               "packed buffer too small");
  std::vector<std::int8_t> out(static_cast<std::size_t>(count));
  unpack_into(packed, 0, count, bits, out.data());
  return out;
}

void unpack_into(std::span<const std::uint8_t> packed, std::int64_t first,
                 std::int64_t count, int bits, std::int8_t* dst,
                 const nn::ops::simd::SimdKernels* simd) {
  check_bits(bits);
  QMCU_REQUIRE(first >= 0 && count >= 0, "element range must be non-negative");
  QMCU_REQUIRE(packed_size_bytes(first + count, bits) <=
                   static_cast<std::int64_t>(packed.size()),
               "packed buffer too small");
  if (bits == 8) {
    std::memcpy(dst, packed.data() + first, static_cast<std::size_t>(count));
    return;
  }
  const int per_byte = 8 / bits;
  const std::uint8_t mask = static_cast<std::uint8_t>((1u << bits) - 1);
  const std::uint8_t sign_bit = static_cast<std::uint8_t>(1u << (bits - 1));
  std::int64_t i = first;
  const std::int64_t end = first + count;
  // Head: fields of a partially-consumed leading byte.
  while (i < end && i % per_byte != 0) {
    const std::uint8_t byte = packed[static_cast<std::size_t>(i / per_byte)];
    std::uint8_t raw = static_cast<std::uint8_t>(
        (byte >> (static_cast<int>(i % per_byte) * bits)) & mask);
    if (raw & sign_bit) raw = static_cast<std::uint8_t>(raw | ~mask);
    *dst++ = static_cast<std::int8_t>(raw);
    ++i;
  }
  // Body: whole bytes, all fields expanded without per-field index math.
  // The caller-provided vector expander (the Simd tier's AVX2/NEON table;
  // same field order and sign extension, bit-identical) takes as many
  // whole bytes as its width allows; the scalar loop finishes the rest.
  if (simd != nullptr && simd->unpack_body != nullptr &&
      end - i >= per_byte) {
    const std::int64_t whole = (end - i) / per_byte;
    const std::int64_t bytes_done = simd->unpack_body(
        packed.data() + static_cast<std::size_t>(i / per_byte), whole, bits,
        dst);
    dst += bytes_done * per_byte;
    i += bytes_done * per_byte;
  }
  while (end - i >= per_byte) {
    std::uint8_t byte = packed[static_cast<std::size_t>(i / per_byte)];
    for (int f = 0; f < per_byte; ++f) {
      std::uint8_t raw = static_cast<std::uint8_t>(byte & mask);
      if (raw & sign_bit) raw = static_cast<std::uint8_t>(raw | ~mask);
      *dst++ = static_cast<std::int8_t>(raw);
      byte = static_cast<std::uint8_t>(byte >> bits);
    }
    i += per_byte;
  }
  // Tail: remaining fields of the final byte.
  while (i < end) {
    const std::uint8_t byte = packed[static_cast<std::size_t>(i / per_byte)];
    std::uint8_t raw = static_cast<std::uint8_t>(
        (byte >> (static_cast<int>(i % per_byte) * bits)) & mask);
    if (raw & sign_bit) raw = static_cast<std::uint8_t>(raw | ~mask);
    *dst++ = static_cast<std::int8_t>(raw);
    ++i;
  }
}

}  // namespace qmcu::quant
