// entropy.h — activation-value entropy, the accuracy proxy of VDQS.
//
// The paper (Eqs. 3–5) estimates the entropy H(i, b) of feature map i after
// b-bit quantization from a k-bin empirical histogram, and uses the entropy
// *reduction* relative to the unquantized feature map as the accuracy term
// Ω(i, b) of the quantization score. Entropy here is Shannon entropy in
// nats; only ratios of entropies enter the score, so the base cancels.
#pragma once

#include <span>

#include "nn/tensor.h"
#include "quant/histogram.h"

namespace qmcu::quant {

// Shannon entropy (nats) of a discrete distribution given as counts.
double shannon_entropy(std::span<const std::int64_t> counts);

// Entropy of the activation distribution of `t`, k-bin empirical estimate.
double activation_entropy(const nn::Tensor& t, int k);

// Entropy of `t` after simulated `bits`-bit affine quantization
// (quantize-dequantize with range-derived params), measured on the same
// k-bin grid over the *original* tensor range so H(i,b) <= H(i,float) holds
// structurally.
double quantized_activation_entropy(const nn::Tensor& t, int bits, int k);

// Mean squared quantization error of `bits`-bit affine quantization of `t`.
double quantization_mse(const nn::Tensor& t, int bits);

// Population variance of the tensor values (0 for constant tensors).
double tensor_variance(const nn::Tensor& t);

}  // namespace qmcu::quant
