#include "quant/entropy.h"

#include <cmath>

#include "nn/quant_params.h"

namespace qmcu::quant {

double shannon_entropy(std::span<const std::int64_t> counts) {
  std::int64_t total = 0;
  for (std::int64_t c : counts) {
    QMCU_REQUIRE(c >= 0, "histogram counts must be non-negative");
    total += c;
  }
  if (total == 0) return 0.0;
  const double inv = 1.0 / static_cast<double>(total);
  double h = 0.0;
  for (std::int64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) * inv;
    h -= p * std::log(p);
  }
  return h;
}

double activation_entropy(const nn::Tensor& t, int k) {
  const Histogram h = histogram_of(t, k);
  return shannon_entropy(h.counts());
}

double quantized_activation_entropy(const nn::Tensor& t, int bits, int k) {
  const auto [lo, hi] = nn::tensor_min_max(t);
  const nn::QuantParams p = nn::choose_quant_params(lo, hi, bits);
  const nn::Tensor fq = nn::fake_quantize(t, p);
  // Bin on the original range so the float and quantized histograms share a
  // grid; quantization can then only merge bins, never split them.
  const float span = hi - lo;
  Histogram hist(lo, span > 0.0f ? hi : lo + 1.0f, k);
  hist.add_all(fq.data());
  return shannon_entropy(hist.counts());
}

double quantization_mse(const nn::Tensor& t, int bits) {
  const auto [lo, hi] = nn::tensor_min_max(t);
  const nn::QuantParams p = nn::choose_quant_params(lo, hi, bits);
  double mse = 0.0;
  const auto d = t.data();
  if (d.empty()) return 0.0;
  for (float v : d) {
    const double err = static_cast<double>(v) - p.quantize_dequantize(v);
    mse += err * err;
  }
  return mse / static_cast<double>(d.size());
}

double tensor_variance(const nn::Tensor& t) {
  const auto d = t.data();
  if (d.empty()) return 0.0;
  double mean = 0.0;
  for (float v : d) mean += v;
  mean /= static_cast<double>(d.size());
  double var = 0.0;
  for (float v : d) {
    const double dv = static_cast<double>(v) - mean;
    var += dv * dv;
  }
  return var / static_cast<double>(d.size());
}

}  // namespace qmcu::quant
