#include "quant/fake_quant.h"

#include "nn/executor.h"

namespace qmcu::quant {

nn::Tensor run_fake_quantized(const nn::Graph& g,
                              std::span<const LayerRange> ranges,
                              std::span<const int> bits,
                              const nn::Tensor& input) {
  QMCU_REQUIRE(static_cast<int>(ranges.size()) == g.size(),
               "ranges must cover every layer");
  QMCU_REQUIRE(static_cast<int>(bits.size()) == g.size(),
               "bits must cover every layer");

  std::vector<nn::Tensor> memo(static_cast<std::size_t>(g.size()));
  for (int id = 0; id < g.size(); ++id) {
    nn::Tensor out = g.layer(id).kind == nn::OpKind::Input
                         ? input
                         : nn::run_layer_f32(g, id, memo);
    const nn::QuantParams qp = nn::choose_quant_params(
        ranges[static_cast<std::size_t>(id)].min_v,
        ranges[static_cast<std::size_t>(id)].max_v,
        bits[static_cast<std::size_t>(id)]);
    memo[static_cast<std::size_t>(id)] = nn::fake_quantize(out, qp);
  }
  return std::move(memo[static_cast<std::size_t>(g.output())]);
}

double output_mse(const nn::Tensor& a, const nn::Tensor& b) {
  QMCU_REQUIRE(a.shape() == b.shape(), "output shapes must match");
  const auto da = a.data();
  const auto db = b.data();
  double mse = 0.0;
  for (std::size_t i = 0; i < da.size(); ++i) {
    const double e = static_cast<double>(da[i]) - db[i];
    mse += e * e;
  }
  return da.empty() ? 0.0 : mse / static_cast<double>(da.size());
}

}  // namespace qmcu::quant
