#include "quant/calibration.h"

#include <algorithm>

namespace qmcu::quant {

RangeObserver::RangeObserver(const nn::Graph& g)
    : ranges_(static_cast<std::size_t>(g.size())) {}

void RangeObserver::observe(std::span<const nn::Tensor> feature_maps) {
  QMCU_REQUIRE(feature_maps.size() == ranges_.size(),
               "feature map count must match graph size");
  for (std::size_t i = 0; i < ranges_.size(); ++i) {
    const auto [lo, hi] = nn::tensor_min_max(feature_maps[i]);
    LayerRange& r = ranges_[i];
    if (!r.seen) {
      r = {lo, hi, true};
    } else {
      r.min_v = std::min(r.min_v, lo);
      r.max_v = std::max(r.max_v, hi);
    }
  }
}

std::vector<LayerRange> calibrate_ranges(const nn::Graph& g,
                                         std::span<const nn::Tensor> inputs) {
  QMCU_REQUIRE(!inputs.empty(), "calibration needs at least one input");
  const nn::Executor exec(g);
  RangeObserver observer(g);
  for (const nn::Tensor& in : inputs) {
    const std::vector<nn::Tensor> fms = exec.run_all(in);
    observer.observe(fms);
  }
  return observer.ranges();
}

nn::ActivationQuantConfig make_quant_config(const nn::Graph& g,
                                            std::span<const LayerRange> ranges,
                                            std::span<const int> bits) {
  QMCU_REQUIRE(static_cast<int>(ranges.size()) == g.size(),
               "ranges must cover every layer");
  QMCU_REQUIRE(static_cast<int>(bits.size()) == g.size(),
               "bits must cover every layer");
  nn::ActivationQuantConfig cfg;
  cfg.params.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    QMCU_REQUIRE(ranges[i].seen, "layer was never observed in calibration");
    cfg.params.push_back(nn::choose_quant_params(
        ranges[i].min_v, ranges[i].max_v, bits[i]));
  }
  return cfg;
}

}  // namespace qmcu::quant
