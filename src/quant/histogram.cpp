#include "quant/histogram.h"

#include <algorithm>

namespace qmcu::quant {

Histogram::Histogram(float lo, float hi, int k) : lo_(lo), hi_(hi) {
  QMCU_REQUIRE(k >= 1, "histogram needs at least one bin");
  QMCU_REQUIRE(lo < hi, "histogram range must be non-degenerate");
  inv_width_ = static_cast<float>(k) / (hi - lo);
  counts_.assign(static_cast<std::size_t>(k), 0);
}

void Histogram::add(float value) {
  int bin = static_cast<int>((value - lo_) * inv_width_);
  bin = std::clamp(bin, 0, bins() - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) {
  for (float v : values) add(v);
}

std::vector<double> Histogram::probabilities() const {
  std::vector<double> p(counts_.size(), 0.0);
  if (total_ == 0) return p;
  const double inv = 1.0 / static_cast<double>(total_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    p[i] = static_cast<double>(counts_[i]) * inv;
  }
  return p;
}

Histogram histogram_of(const nn::Tensor& t, int k) {
  const auto [lo, hi] = nn::tensor_min_max(t);
  // Degenerate (constant) tensors get a token range so the histogram is
  // well-formed; all mass lands in one bin and the entropy is 0 as expected.
  const float span = hi - lo;
  Histogram h(lo, span > 0.0f ? hi : lo + 1.0f, k);
  h.add_all(t.data());
  return h;
}

}  // namespace qmcu::quant
