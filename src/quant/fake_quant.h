// fake_quant.h — simulated-quantization forward pass.
//
// Runs the float graph but fake-quantizes (quantize + dequantize) every
// layer's output at a per-layer bitwidth using calibrated ranges — the
// standard "simulated quantization" forward of QAT frameworks. Used by the
// HAQ baseline's episode reward and by accuracy analyses that need the
// network's output under a candidate bitwidth assignment without building
// an integer executor.
#pragma once

#include <span>

#include "quant/calibration.h"

namespace qmcu::quant {

// Output of the graph under the assignment. `bits[i]` applies to layer i's
// output feature map; ranges come from calibrate_ranges().
nn::Tensor run_fake_quantized(const nn::Graph& g,
                              std::span<const LayerRange> ranges,
                              std::span<const int> bits,
                              const nn::Tensor& input);

// Mean squared error between two tensors of identical shape.
double output_mse(const nn::Tensor& a, const nn::Tensor& b);

}  // namespace qmcu::quant
