// bitpack.h — CMix-NN style sub-byte packing of quantized activations.
//
// Kernels compute on unpacked int8 lanes (see nn/ops/int8_kernels.h); the
// packed form is what actually lives in SRAM between layers, and its size is
// what the memory models charge. Packing is little-endian within the byte:
// element 0 occupies the least-significant field. Values are stored in
// two's complement truncated to the field width, so round-tripping any value
// inside the b-bit signed range is exact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/check.h"

namespace qmcu::nn::ops::simd {
struct SimdKernels;
}  // namespace qmcu::nn::ops::simd

namespace qmcu::quant {

// Number of bytes needed to pack `count` elements at `bits` per element.
std::int64_t packed_size_bytes(std::int64_t count, int bits);

// Packs int8 values (each must fit the signed `bits` range) into bytes.
std::vector<std::uint8_t> pack(std::span<const std::int8_t> values, int bits);

// Unpacks `count` elements. Inverse of pack for in-range values.
std::vector<std::int8_t> unpack(std::span<const std::uint8_t> packed,
                                std::int64_t count, int bits);

// Allocation-free unpack of the element range [first, first + count) into
// `dst` (which must hold `count` int8 lanes). This is the fused
// sub-byte→GEMM path: the im2col packer expands 2/4-bit rows straight into
// its scratch buffer instead of materializing a full unpacked tensor.
// `simd` (the Simd kernel tier's table; null = scalar) runs the whole-byte
// body on its vector expander — bit-identical either way, so the caller's
// tier choice, not a global, decides which code executes.
void unpack_into(std::span<const std::uint8_t> packed, std::int64_t first,
                 std::int64_t count, int bits, std::int8_t* dst,
                 const nn::ops::simd::SimdKernels* simd = nullptr);

}  // namespace qmcu::quant
