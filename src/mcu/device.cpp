#include "mcu/device.h"

namespace qmcu::mcu {

Device arduino_nano_33_ble_sense() {
  Device d;
  d.name = "Arduino Nano 33 BLE Sense";
  d.sram_bytes = 256 * 1024;
  d.flash_bytes = 1024 * 1024;
  d.clock_hz = 64e6;
  // Fit: Table I layer-based / ImageNet row — 1536 MBitOPs (= 24 MMACs at
  // 8/8) in 617 ms at 64 MHz -> ~1.65 cycles/MAC.
  d.cycles_per_mac_int8 = 1.65;
  d.speedup_4bit = 1.55;
  d.speedup_2bit = 2.10;
  d.per_layer_overhead_cycles = 6000.0;
  d.cycles_per_element_op = 2.2;
  return d;
}

Device stm32h743() {
  Device d;
  d.name = "STM32H743";
  d.sram_bytes = 512 * 1024;
  d.flash_bytes = 2 * 1024 * 1024;
  d.clock_hz = 480e6;
  // Fit: Table I layer-based / ImageNet row — 4057 MBitOPs (= 63.4 MMACs)
  // in 1684 ms at 480 MHz -> ~12.7 cycles/MAC. The M7 pays heavy flash
  // wait-states for weight fetches on this board, which the effective
  // figure absorbs.
  d.cycles_per_mac_int8 = 12.7;
  d.speedup_4bit = 1.55;
  d.speedup_2bit = 2.10;
  d.per_layer_overhead_cycles = 9000.0;
  d.cycles_per_element_op = 3.0;
  return d;
}

}  // namespace qmcu::mcu
