// device.h — microcontroller resource and throughput presets.
//
// The two presets mirror the paper's evaluation hardware (§IV-A):
//   * Arduino Nano 33 BLE Sense — ARM Cortex-M4 @ 64 MHz, 256 KB SRAM,
//     1 MB flash, CMSIS-NN-class int8 kernels.
//   * STM32H743 — ARM Cortex-M7 @ 480 MHz, 512 KB SRAM, 2 MB flash.
//
// Throughput constants are *calibrated*, not first-principles: the int8
// cycles/MAC figure is fit to the layer-based rows of the paper's Table I
// (total cycles = latency × clock over the model's MACs), and the sub-byte
// speedups to CMix-NN's reported relative kernel throughput. See DESIGN.md
// §2 for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>

#include "nn/check.h"

namespace qmcu::mcu {

struct Device {
  std::string name;
  std::int64_t sram_bytes = 0;
  std::int64_t flash_bytes = 0;
  double clock_hz = 0.0;

  // Effective cycles per multiply-accumulate for 8-bit weights x 8-bit
  // activations, including load/store and im2col overheads.
  double cycles_per_mac_int8 = 0.0;

  // Relative kernel throughput of sub-byte activation kernels vs int8
  // (CMix-NN unpacking costs eat part of the bandwidth win).
  double speedup_4bit = 1.0;
  double speedup_2bit = 1.0;

  // Fixed dispatch/overhead cycles charged once per executed layer.
  double per_layer_overhead_cycles = 0.0;

  // Cycles per non-MAC element operation (pooling, residual add, copy).
  double cycles_per_element_op = 0.0;

  [[nodiscard]] double ms_from_cycles(double cycles) const {
    QMCU_REQUIRE(clock_hz > 0.0, "device clock must be positive");
    return cycles / clock_hz * 1e3;
  }
};

// Arduino Nano 33 BLE Sense (nRF52840, Cortex-M4F @ 64 MHz).
Device arduino_nano_33_ble_sense();

// STM32H743 (Cortex-M7 @ 480 MHz).
Device stm32h743();

}  // namespace qmcu::mcu
