#include "mcu/bitops.h"

namespace qmcu::mcu {

std::int64_t layer_bitops(const nn::Graph& g, int id, int w_bits,
                          int in_bits) {
  QMCU_REQUIRE(w_bits > 0 && in_bits > 0, "bit widths must be positive");
  return g.macs(id) * w_bits * in_bits;
}

std::int64_t graph_bitops(const nn::Graph& g, std::span<const int> act_bits,
                          int w_bits) {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  std::int64_t total = 0;
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    if (!nn::is_mac_op(l.kind)) continue;
    const int in_bits = act_bits[static_cast<std::size_t>(l.inputs[0])];
    total += layer_bitops(g, id, w_bits, in_bits);
  }
  return total;
}

std::int64_t full_precision_bitops(const nn::Graph& g) {
  return g.total_macs() * kFullPrecisionBits * kFullPrecisionBits;
}

std::int64_t bitops_reduction(const nn::Graph& g, int fm, int b, int w_bits) {
  QMCU_REQUIRE(b > 0 && b <= kFullPrecisionBits, "bits out of range");
  std::int64_t delta = 0;
  for (int consumer : g.consumers(fm)) {
    const nn::Layer& l = g.layer(consumer);
    if (!nn::is_mac_op(l.kind)) continue;
    if (l.inputs[0] != fm) continue;  // weights of Add/Concat don't apply
    delta += g.macs(consumer) *
             (kFullPrecisionBits * kFullPrecisionBits - w_bits * b);
  }
  return delta;
}

}  // namespace qmcu::mcu
