// bitops.h — Bit Operations accounting (the paper's computation metric).
//
// BitOPs of a MAC layer = MACs x weight_bits x activation_bits, where the
// activation bits are those of the layer's *input* feature map — quantizing
// feature map i to b bits cheapens the layers that consume it (Eq. 2).
// The full-precision reference B (denominator of Φ) charges 32 x 32.
#pragma once

#include <cstdint>
#include <span>

#include "nn/graph.h"

namespace qmcu::mcu {

inline constexpr int kFullPrecisionBits = 32;

// BitOPs of layer `id` with `w_bits` weights and `in_bits` input activations.
std::int64_t layer_bitops(const nn::Graph& g, int id, int w_bits, int in_bits);

// Whole-graph BitOPs. `act_bits[i]` is the storage bitwidth of layer i's
// output feature map; each MAC layer is priced at the bits of its input.
std::int64_t graph_bitops(const nn::Graph& g, std::span<const int> act_bits,
                          int w_bits);

// Full-precision reference: B = sum MACs x 32 x 32 (Eq. 2 denominator).
std::int64_t full_precision_bitops(const nn::Graph& g);

// BitOPs reduction ΔB(i, b) when feature map `i` is stored at `b` bits
// instead of `kFullPrecisionBits`, with `w_bits` weights everywhere.
std::int64_t bitops_reduction(const nn::Graph& g, int fm, int b, int w_bits);

}  // namespace qmcu::mcu
