// cost_model.h — analytic latency model for a Device.
//
// Latency of a schedule is the sum of per-layer kernel cycles plus fixed
// per-layer dispatch overhead, divided by the device clock. MAC kernels are
// priced at the device's calibrated cycles/MAC for int8 and scaled by the
// CMix-NN sub-byte speedups for 4-/2-bit activations; non-MAC layers are
// priced per element. The patch engine calls the same entry points with
// per-patch MAC counts, so halo recomputation is charged automatically.
#pragma once

#include <cstdint>
#include <span>

#include "mcu/device.h"
#include "nn/graph.h"

namespace qmcu::mcu {

class CostModel {
 public:
  explicit CostModel(Device d) : device_(std::move(d)) {
    QMCU_REQUIRE(device_.clock_hz > 0.0, "device clock must be positive");
    QMCU_REQUIRE(device_.cycles_per_mac_int8 > 0.0,
                 "cycles/MAC must be positive");
  }

  [[nodiscard]] const Device& device() const { return device_; }

  // Cycles for `macs` multiply-accumulates at the given activation bits
  // (weights are 8-bit on the deployment path).
  [[nodiscard]] double mac_cycles(std::int64_t macs, int a_bits) const;

  // Cycles for `elems` non-MAC element operations.
  [[nodiscard]] double element_cycles(std::int64_t elems) const;

  // Cycles to execute layer `id` once, reading `a_bits` activations.
  [[nodiscard]] double layer_cycles(const nn::Graph& g, int id,
                                    int a_bits) const;

  // Whole-graph layer-based execution. `act_bits[i]` is the bitwidth of
  // layer i's output feature map (MAC layers price at their input's bits).
  [[nodiscard]] double graph_cycles(const nn::Graph& g,
                                    std::span<const int> act_bits) const;

  [[nodiscard]] double graph_latency_ms(const nn::Graph& g,
                                        std::span<const int> act_bits) const {
    return device_.ms_from_cycles(graph_cycles(g, act_bits));
  }

 private:
  Device device_;
};

}  // namespace qmcu::mcu
