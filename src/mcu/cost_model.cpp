#include "mcu/cost_model.h"

namespace qmcu::mcu {

double CostModel::mac_cycles(std::int64_t macs, int a_bits) const {
  QMCU_REQUIRE(macs >= 0, "MAC count must be non-negative");
  double per_mac = device_.cycles_per_mac_int8;
  switch (a_bits) {
    case 8: break;
    case 4: per_mac /= device_.speedup_4bit; break;
    case 2: per_mac /= device_.speedup_2bit; break;
    default:
      QMCU_REQUIRE(false, "deployable activation bits are 8, 4 or 2");
  }
  return static_cast<double>(macs) * per_mac;
}

double CostModel::element_cycles(std::int64_t elems) const {
  QMCU_REQUIRE(elems >= 0, "element count must be non-negative");
  return static_cast<double>(elems) * device_.cycles_per_element_op;
}

double CostModel::layer_cycles(const nn::Graph& g, int id, int a_bits) const {
  const nn::Layer& l = g.layer(id);
  if (l.kind == nn::OpKind::Input) return 0.0;
  double cycles = device_.per_layer_overhead_cycles;
  if (nn::is_mac_op(l.kind)) {
    cycles += mac_cycles(g.macs(id), a_bits);
  } else {
    cycles += element_cycles(g.element_ops(id));
  }
  return cycles;
}

double CostModel::graph_cycles(const nn::Graph& g,
                               std::span<const int> act_bits) const {
  QMCU_REQUIRE(static_cast<int>(act_bits.size()) == g.size(),
               "act_bits must cover every layer");
  double total = 0.0;
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    if (l.kind == nn::OpKind::Input) continue;
    const int a_bits =
        l.inputs.empty()
            ? 8
            : act_bits[static_cast<std::size_t>(l.inputs[0])];
    total += layer_cycles(g, id, a_bits);
  }
  return total;
}

}  // namespace qmcu::mcu
