// receptive_field.h — exact interval arithmetic for patch halos.
//
// Patch-based inference computes a spatial region of each feature map per
// patch. Propagating a required *output* region backwards through a layer
// yields the required *input* region; overlap between neighbouring patches'
// input regions is the redundant computation the paper attacks (Fig. 1a).
// Regions are half-open intervals per axis and may extend beyond the tensor
// bounds before clamping — the unclamped form tells the executor where
// zero padding applies.
#pragma once

#include <algorithm>
#include <cstdint>
#include <ostream>

#include "nn/graph.h"

namespace qmcu::patch {

// Half-open [begin, end).
struct Interval {
  int begin = 0;
  int end = 0;

  [[nodiscard]] constexpr int size() const { return end - begin; }
  [[nodiscard]] constexpr bool empty() const { return end <= begin; }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;
};

// Smallest interval containing both (intervals in this engine are always
// contiguous per axis, so the hull is the union).
constexpr Interval unite(Interval a, Interval b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {std::min(a.begin, b.begin), std::max(a.end, b.end)};
}

constexpr Interval clamp(Interval v, int lo, int hi) {
  return {std::clamp(v.begin, lo, hi), std::clamp(v.end, lo, hi)};
}

struct Region {
  Interval y;
  Interval x;

  [[nodiscard]] constexpr std::int64_t area() const {
    return y.empty() || x.empty()
               ? 0
               : static_cast<std::int64_t>(y.size()) * x.size();
  }
  [[nodiscard]] constexpr bool empty() const { return area() == 0; }

  friend constexpr bool operator==(const Region&, const Region&) = default;
};

constexpr Region unite(const Region& a, const Region& b) {
  return {unite(a.y, b.y), unite(a.x, b.x)};
}

inline std::ostream& operator<<(std::ostream& os, const Region& r) {
  return os << "[y " << r.y.begin << ':' << r.y.end << ", x " << r.x.begin
            << ':' << r.x.end << ')';
}

// Whole-tensor region for a shape.
constexpr Region full_region(const nn::TensorShape& s) {
  return {{0, s.h}, {0, s.w}};
}

// The (unclamped) input region layer `l` must read to produce `out`.
// Windowed ops expand by kernel/stride/padding; element-wise, concat and
// softmax are identity; global pool / fully-connected need the full input.
Region required_input_region(const nn::Layer& l, const nn::TensorShape& input_shape,
                             const Region& out);

}  // namespace qmcu::patch
