// compiled_patch_model.h — compile-once / run-many patch-based inference
// against one static tensor arena, sequentially or across a worker pool.
//
// The patch executors walk every dataflow branch allocating a fresh region
// tensor per step per run. A compiled patch model plans, once:
//
//   * one arena slot per branch *step index*, sized to the largest region
//     any branch computes at that step (branches share the slot layout —
//     they have identical step structure, only their region extents
//     differ);
//   * one slot for the reassembled cut-layer feature map, live from the
//     first branch through its last tail consumer;
//   * one slot per tail layer, placed over layer-based lifetimes;
//   * (quantized) one slot for the quantized full input, live across the
//     whole branch phase.
//
// Sequential run(): all slots come from one nn::ArenaPlanner pass over a
// unified timeline (branch steps first, tail steps after), so branch
// buffers, the shared accumulation buffer and tail feature maps pack into a
// single arena the way the deployed runtime lays out SRAM.
//
// Parallel run(input, pool): a dependency-driven task graph over a
// nn::WorkerPool. Stage-1 branches are spatially independent — their only
// interaction is the final merge into *disjoint* tiles of the assembled
// map — so they become independent tasks (cost-weighted: cheap border
// branches coalesce into one task, see patch::weighted_chunks). The tail
// no longer waits for the full branch barrier: each early tail layer is
// split into row-band tasks whose input-row intervals come from
// patch::receptive_field, and a band depends only on the branch tasks (and
// upstream bands) that produce those rows — so the tail starts on spare
// workers while interior branches are still running. Tail layers that need
// the whole map (GlobalAvgPool, FullyConnected, Softmax) and everything
// after them run as one final task behind the graph's join.
//
// The arena uses the nn::ParallelArenaPlan layout: one private branch-slot
// slice per worker followed by one shared region (assembled map, tail
// slots, quantized input). For the pipelined graph the shared region is
// planned by ArenaPlanner::plan_pipelined, which widens the lifetimes of
// everything live during the overlap window (assembled map, quantized
// input, banded tail layers) so no tail band can recycle bytes a
// still-running branch reads or writes. Each worker lane owns a WorkerCtx
// (KernelBackend with its own scratch + panel cache, crop arena, step
// views) handed to its thread at dispatch via the backend's
// thread-affinity guard; the merge is the lock-free tiled merge of
// region_pool.h, and the scheduler's dependency edges publish merged rows
// to the bands that read them. Outputs are bit-identical to the sequential
// path for every worker count and every readiness order (the kernels see
// the same values; only which thread runs them, and when, changes); a
// null/1-worker pool takes the sequential code path exactly, and
// run_barrier keeps the PR-3 two-phase runtime for comparison.
//
// Halo crop temporaries are scratch (a grow-only pool reused across steps),
// not feature maps, and are accounted via scratch_bytes().
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "nn/compiled_model.h"
#include "nn/graph.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/runtime/arena_slab.h"
#include "nn/runtime/worker_pool.h"
#include "nn/tensor.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Per-step QuantParams for one branch, parallel to PatchBranch::steps.
struct BranchQuantConfig {
  std::vector<nn::QuantParams> per_step;
};

// One row-banded tail layer of the pipelined dataflow graph: the layer's
// output rows are split into `bands`; band j's tasks depend on whatever
// produces its input rows (branch tasks for the first tail layer, upstream
// bands after that). Computed once at compile time — see
// CompiledPatchModel's pipeline planning.
struct PipelinedTailLayer {
  int layer_id = -1;
  std::vector<Interval> bands;  // output row intervals, in order
  // Per band: grid rows whose branches must have merged (reads of the
  // assembled map), and (layer index into the prefix, band index) pairs
  // for upstream banded layers.
  std::vector<std::vector<int>> grid_row_deps;
  std::vector<std::vector<std::pair<int, int>>> band_deps;
};

// Builds the row-banded pipeline prefix for the tail of `plan`: the
// maximal run of tail layers after the cut that are row-splittable
// (windowed, pooling, element-wise or concat ops), each split into
// `bands_per_layer` row bands (clamped to the layer's height), with
// dependencies resolved through patch::receptive_field. Shared by the
// float and quantized compiled models.
std::vector<PipelinedTailLayer> build_pipelined_tail(
    const nn::Graph& g, const PatchPlan& plan, int bands_per_layer);

// Mixed mode: per-branch per-step int32 biases rescaled to the branch's
// actual input scales (empty vectors for non-MAC steps). The branch's step
// parameters set the real input scale of each MAC step, so biases must be
// rescaled per branch (the shared QuantizedParameters bias table is built
// against the deployment config). Shared by the legacy executor and the
// compiled model.
std::vector<std::vector<std::vector<std::int32_t>>> build_branch_bias(
    const nn::Graph& g, const PatchPlan& plan,
    std::span<const BranchQuantConfig> branch_cfgs,
    const nn::QuantizedParameters& params);

// Construction-time products precomputed by the plan-artifact loader:
// mixed-mode branch biases, the row-banded pipeline structure, and the
// panel/offset bundle every lane backend adopts (see nn::PrecompiledBundle).
// Empty members fall back to in-constructor computation.
struct PrecompiledPatchParts {
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias;
  std::vector<PipelinedTailLayer> pipeline;
  std::shared_ptr<const nn::PrecompiledBundle> kernels;
};

// --- streaming -------------------------------------------------------------

// Per-stream persistent state for run_streaming: the arena whose retained
// bytes (assembled map tiles, tail feature maps) carry clean branches' work
// from frame to frame, plus the per-frame dirty mask and change-propagation
// flags. One StreamState per stream; the model is stateless across streams
// and several streams may share one model (serving: one state per lane).
//
// run_streaming binds the *streaming* arena layout — every shared slot's
// lifetime widened to the whole timeline, so no tail slot can recycle bytes
// another retained slot owns across frames (the sequential and pipelined
// layouts overlay dead slots, which is exactly what retention forbids).
// The worker count is pinned by the first frame: the slice layout, and
// therefore every retained offset, depends on it.
struct StreamState {
  StreamState() = default;
  StreamState(const StreamState&) = delete;
  StreamState& operator=(const StreamState&) = delete;

  // Caller-set before each frame: branch_dirty[b] != 0 schedules branch b
  // (see patch::dirty_branches). Ignored on the first frame — everything
  // runs until the state is primed. A recomputed branch whose merged tile
  // matches the retained bytes still leaves its grid row clean.
  std::vector<std::uint8_t> branch_dirty;

  // Stats for the frame just run (reset at each run_streaming entry).
  [[nodiscard]] std::int64_t frame_branches_run() const {
    return branches_run.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t frame_bands_run() const {
    return bands_run.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool frame_changed_output() const {
    return any_changed.load(std::memory_order_relaxed) != 0;
  }
  [[nodiscard]] bool is_primed() const { return primed; }
  [[nodiscard]] int pinned_workers() const { return workers; }

  // Forget everything (scene cut / rebind to another model): the next
  // frame runs in full and may re-pin a new worker count.
  void reset() {
    branch_dirty.clear();
    lease.release();
    owned.clear();
    row_changed.reset();
    band_changed.reset();
    band_offset.clear();
    workers = 0;
    primed = false;
  }

  // -- managed by run_streaming ----------------------------------------
  nn::ArenaSlab::Lease lease;       // slab-backed retained arena
  std::vector<std::uint8_t> owned;  // fallback when no slab is attached
  int workers = 0;                  // pinned by the first frame
  bool primed = false;              // first frame completed
  // Per-frame change propagation: which grid rows merged new bytes, which
  // tail bands recomputed (relaxed atomics — the task graph's dependency
  // edges order every read after the writes it needs).
  std::unique_ptr<std::atomic<char>[]> row_changed;
  std::unique_ptr<std::atomic<char>[]> band_changed;
  std::vector<int> band_offset;  // band_changed index base per tail layer
  std::atomic<char> any_changed{0};
  std::atomic<std::int64_t> branches_run{0};
  std::atomic<std::int64_t> bands_run{0};
};

// --- float -----------------------------------------------------------------

class CompiledPatchModel {
 public:
  CompiledPatchModel(const nn::Graph& g, PatchPlan plan,
                     nn::ops::KernelTier tier = nn::ops::KernelTier::Simd);

  [[nodiscard]] nn::Tensor run(const nn::Tensor& input) const;
  // Pipelined dataflow run: stage-1 branch tasks and tail row-band tasks
  // scheduled as one dependency graph over `pool` (see the header
  // comment). Bit-identical to run() for every worker count and readiness
  // order. A null pool or a 1-worker pool takes the sequential path
  // exactly.
  [[nodiscard]] nn::Tensor run(const nn::Tensor& input,
                               nn::WorkerPool* pool) const;
  // The PR-3 two-phase runtime: branch barrier, then the whole tail on the
  // calling thread. Kept as the pipelined path's comparison baseline (and
  // BM_ParallelPatchRun's subject). Bit-identical to run().
  [[nodiscard]] nn::Tensor run_barrier(const nn::Tensor& input,
                                       nn::WorkerPool* pool) const;
  // Temporal-reuse run over `state` (see StreamState): only branches with
  // state.branch_dirty set are recomputed — clean branches contribute
  // their retained assembled-map tiles for free — and tail row-bands whose
  // upstream grid rows merged no new bytes are skipped, as is the
  // non-banded rest of the tail when nothing changed at all. Bit-identical
  // to run() on the same frame for every worker count, provided the dirty
  // mask is conservative (patch::dirty_branches exact mode). A null pool
  // or 1-worker pool streams sequentially over the same retained layout.
  [[nodiscard]] nn::Tensor run_streaming(const nn::Tensor& input,
                                         nn::WorkerPool* pool,
                                         StreamState& state) const;

  [[nodiscard]] const nn::ArenaPlan& arena_plan() const { return aplan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return aplan_.peak_bytes; }
  // The slice/shared layout a barrier-parallel run with `num_workers`
  // binds (cached per worker count; also what tests assert non-overlap
  // on), and the widened-lifetime layout the pipelined graph binds.
  [[nodiscard]] const nn::ParallelArenaPlan& parallel_plan(
      int num_workers) const;
  [[nodiscard]] const nn::ParallelArenaPlan& pipelined_plan(
      int num_workers) const;
  // The retained streaming layout: shared lifetimes widened to the whole
  // timeline so no slot's bytes are ever overlaid between frames.
  [[nodiscard]] const nn::ParallelArenaPlan& streaming_plan(
      int num_workers) const;
  // The row-banded tail prefix of the pipelined graph (compile-time).
  [[nodiscard]] std::span<const PipelinedTailLayer> pipelined_tail() const {
    return pipeline_;
  }
  // How many pipelined TaskGraph skeletons are cached (one per distinct
  // worker count seen) — repeated runs at the same width must not grow it.
  [[nodiscard]] std::size_t cached_pipeline_graphs() const {
    return pipeline_graphs_.size();
  }
  // Serving integration: when set, run arenas are leased from `slab` for
  // the duration of each run instead of a model-owned buffer, so many
  // models can share max-sized slices instead of the per-model sum.
  void set_arena_source(std::shared_ptr<nn::ArenaSlab> slab) {
    arena_source_ = std::move(slab);
  }
  // Test-only: called after each branch finishes (merge included) inside
  // parallel runs, before its completion is published to dependents —
  // tests stall chosen branches here to force adversarial readiness
  // orders. Not for production use.
  void set_branch_completion_hook(std::function<void(int)> hook) const {
    branch_hook_ = std::move(hook);
  }
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  // Crop-temporary + backend scratch held after the last run, including
  // every worker context's share.
  [[nodiscard]] std::int64_t scratch_bytes() const;
  [[nodiscard]] const PatchPlan& plan() const { return plan_; }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }
  // Shared with the owning executor's legacy (hooked) paths so only one
  // scratch arena + weight-panel cache exists per executor.
  [[nodiscard]] nn::ops::KernelBackend& backend() const { return backend_; }

 private:
  // One worker lane's private execution state. The backend (scratch +
  // panel cache) and crop arena are thread-affine; dispatch rebinds them to
  // whichever pool thread runs the lane.
  struct WorkerCtx {
    explicit WorkerCtx(nn::ops::KernelTier tier) : backend(tier) {}
    nn::ops::KernelBackend backend;
    nn::ops::ScratchArena crops;
    std::vector<nn::Tensor> step_views;
    std::int64_t measured = 0;  // furthest byte written inside the slice
  };

  // Runs one branch's steps against the slot layout `slots` (indices equal
  // step indices) at `base`, then merges the final tile into `assembled`.
  // With `merge_changed` set the merge compares before writing and reports
  // whether any assembled byte changed (streaming change propagation).
  void exec_branch(const PatchBranch& branch, const nn::Tensor& input,
                   std::uint8_t* base, std::span<const nn::ArenaSlot> slots,
                   nn::ops::KernelBackend& backend,
                   nn::ops::ScratchArena& crops,
                   std::span<nn::Tensor> step_views, std::int64_t& measured,
                   nn::Tensor& assembled,
                   bool* merge_changed = nullptr) const;
  // Binds the assembled map + every tail layer's view into tail_memo_.
  void bind_tail(std::uint8_t* base, std::span<const nn::ArenaSlot> slots,
                 int first_tail_slot, int assembled_slot,
                 std::int64_t& measured) const;
  // Layer-based tail against slots [first_tail_slot ..) of `slots`.
  nn::Tensor exec_tail(std::uint8_t* base,
                       std::span<const nn::ArenaSlot> slots,
                       int first_tail_slot, int assembled_slot,
                       std::int64_t& measured) const;
  // Computes output rows `rows` of banded tail layer `layer_id` from the
  // pre-bound tail views on the given backend/crops (a row-band task body;
  // sequential streaming drives it on the model's own context).
  void exec_tail_band(int layer_id, const Interval& rows,
                      nn::ops::KernelBackend& backend,
                      nn::ops::ScratchArena& crops) const;
  WorkerCtx& worker_ctx(int lane) const;
  std::span<std::uint8_t> bind_run_arena(std::int64_t need,
                                         nn::ArenaSlab::Lease& lease) const;
  // Streaming internals: size `state` for this plan and pin its worker
  // count; arena binding that retains the lease/buffer across frames; the
  // band-skip predicate and the change-propagation marks (see StreamState).
  void prime_stream_state(StreamState& state, int workers) const;
  std::span<std::uint8_t> bind_stream_arena(std::int64_t need,
                                            StreamState& state) const;
  bool stream_band_needed(const StreamState& state, std::size_t pi,
                          std::size_t j) const;
  void stream_mark_branch(StreamState& state, std::int64_t b,
                          bool changed) const;
  void stream_mark_band(StreamState& state, std::size_t pi,
                        std::size_t j) const;
  // The cached dataflow graph for `num_workers` lanes. Its task bodies
  // capture only `this`: per-run state (input, arena base, plan) is
  // staged in the run_* members before dispatch, so the graph — chunking,
  // band wiring, join — is built once per worker count, not per run.
  nn::TaskGraph& pipeline_graph(int num_workers) const;

  const nn::Graph* graph_;
  PatchPlan plan_;
  int num_steps_ = 0;       // steps per branch (identical across branches)
  int assembled_slot_ = 0;  // request index of the reassembled cut layer
  nn::ArenaPlan aplan_;
  // Request lists feeding parallel_plan(): branch-step slots (per-worker
  // slice) and tail + assembled slots (shared region).
  std::vector<nn::ArenaRequest> slice_requests_;
  std::vector<nn::ArenaRequest> shared_requests_;
  int par_assembled_slot_ = 0;  // index into the shared request list
  // Pipelined dataflow structure: banded tail prefix, branch pricing for
  // cost-weighted task chunking, and the timeline step of the last banded
  // layer (the lifetime-widening horizon of plan_pipelined).
  std::vector<PipelinedTailLayer> pipeline_;
  std::vector<std::int64_t> branch_costs_;
  int pipeline_horizon_ = 0;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> pplans_;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> pipelined_pplans_;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> streaming_pplans_;
  mutable std::unordered_map<int, nn::TaskGraph> pipeline_graphs_;
  // Per-run state read by the cached pipelined graph's tasks; staged
  // before dispatch (the dispatch barrier publishes it to every lane).
  // run_stream_ is non-null only while a streaming frame is in flight —
  // the cached graph serves both modes and checks it per task.
  mutable const nn::Tensor* run_input_ = nullptr;
  mutable std::uint8_t* run_data_ = nullptr;
  mutable const nn::ParallelArenaPlan* run_pplan_ = nullptr;
  mutable StreamState* run_stream_ = nullptr;
  std::shared_ptr<nn::ArenaSlab> arena_source_;
  mutable std::function<void(int)> branch_hook_;
  mutable nn::ops::KernelBackend backend_;
  mutable nn::ops::ScratchArena crops_;  // halo crop temporaries
  mutable std::vector<std::unique_ptr<WorkerCtx>> workers_;
  mutable std::vector<std::uint8_t> arena_;
  mutable std::vector<nn::Tensor> step_views_;  // per step, rebound per branch
  mutable std::vector<nn::Tensor> tail_memo_;   // per layer id (tail phase)
  mutable std::int64_t measured_ = 0;
};

// --- quantized -------------------------------------------------------------

class CompiledPatchQuantModel {
 public:
  // Uniform mode: branch steps inherit the per-layer params of `cfg`;
  // mixed mode: `branch_cfgs[b].per_step[s]` overrides branch b's step s.
  // Prebuilt shared parameters (QuantizedParameters::build_shared) skip the
  // per-model weight conversion.
  CompiledPatchQuantModel(
      const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
      std::vector<BranchQuantConfig> branch_cfgs = {},
      nn::ops::KernelTier tier = nn::ops::KernelTier::Simd,
      std::shared_ptr<const nn::QuantizedParameters> params = {});
  // Artifact path: precomputed branch biases / pipeline structure / kernel
  // bundle skip the corresponding construction-time work (the bundle's
  // panels are adopted by the model backend and every worker lane).
  CompiledPatchQuantModel(
      const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
      std::vector<BranchQuantConfig> branch_cfgs,
      std::shared_ptr<const nn::QuantizedParameters> params,
      PrecompiledPatchParts parts,
      nn::ops::KernelTier tier = nn::ops::KernelTier::Simd);

  [[nodiscard]] nn::QTensor run(const nn::Tensor& input) const;
  // Pipelined dataflow run (see CompiledPatchModel::run(input, pool)).
  [[nodiscard]] nn::QTensor run(const nn::Tensor& input,
                                nn::WorkerPool* pool) const;
  // The PR-3 two-phase runtime, kept as the comparison baseline.
  [[nodiscard]] nn::QTensor run_barrier(const nn::Tensor& input,
                                        nn::WorkerPool* pool) const;
  // Temporal-reuse run (see CompiledPatchModel::run_streaming). The dirty
  // mask is computed on the float frames: quantization is deterministic
  // per element, so a byte-identical float crop quantizes to a
  // byte-identical branch input.
  [[nodiscard]] nn::QTensor run_streaming(const nn::Tensor& input,
                                          nn::WorkerPool* pool,
                                          StreamState& state) const;

  [[nodiscard]] const nn::ArenaPlan& arena_plan() const { return aplan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return aplan_.peak_bytes; }
  [[nodiscard]] const nn::ParallelArenaPlan& parallel_plan(
      int num_workers) const;
  [[nodiscard]] const nn::ParallelArenaPlan& pipelined_plan(
      int num_workers) const;
  // Retained streaming layout (see CompiledPatchModel::streaming_plan).
  [[nodiscard]] const nn::ParallelArenaPlan& streaming_plan(
      int num_workers) const;
  [[nodiscard]] std::span<const PipelinedTailLayer> pipelined_tail() const {
    return pipeline_;
  }
  // Cached pipelined graph skeletons, one per worker count seen (see
  // CompiledPatchModel::cached_pipeline_graphs).
  [[nodiscard]] std::size_t cached_pipeline_graphs() const {
    return pipeline_graphs_.size();
  }
  void set_arena_source(std::shared_ptr<nn::ArenaSlab> slab) {
    arena_source_ = std::move(slab);
  }
  // Test-only readiness-order hook (see CompiledPatchModel).
  void set_branch_completion_hook(std::function<void(int)> hook) const {
    branch_hook_ = std::move(hook);
  }
  // Opt-in activation statistics: called once per completed run on the
  // calling thread, for the assembled cut layer and every tail layer, with
  // the layer's output view (drift tracking — see
  // nn::streaming::ActivationStatsTracker). Null clears it.
  void set_stats_hook(
      std::function<void(int, const nn::QTensor&)> hook) const {
    stats_hook_ = std::move(hook);
  }
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  [[nodiscard]] std::int64_t scratch_bytes() const;
  [[nodiscard]] const PatchPlan& plan() const { return plan_; }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }
  [[nodiscard]] const std::shared_ptr<const nn::QuantizedParameters>&
  shared_parameters() const {
    return params_;
  }
  // Compile-time tables, exposed so the owning executor's legacy paths
  // reuse them instead of rebuilding their own copies.
  [[nodiscard]] const nn::ActivationQuantConfig& config() const {
    return cfg_;
  }
  [[nodiscard]] std::span<const nn::QuantParams> effective_params() const {
    return effective_;
  }
  [[nodiscard]] std::span<const BranchQuantConfig> branch_configs() const {
    return branch_cfgs_;
  }
  [[nodiscard]] const std::vector<std::vector<std::vector<std::int32_t>>>&
  branch_bias() const {
    return branch_bias_;
  }
  [[nodiscard]] nn::ops::KernelBackend& backend() const { return backend_; }
  // Params resolution for branch step `step` of branch `branch`: the
  // mixed-mode per-step override when branch configs exist, otherwise the
  // pool-propagated effective params of the step's layer. Shared with the
  // owning executor's legacy path so both resolve identically.
  [[nodiscard]] const nn::QuantParams& step_params(int branch,
                                                   int step) const;

 private:
  struct WorkerCtx {
    explicit WorkerCtx(nn::ops::KernelTier tier) : backend(tier) {}
    nn::ops::KernelBackend backend;
    nn::ops::ScratchArena crops;
    std::vector<nn::QTensor> step_views;
    std::int64_t measured = 0;
  };

  void exec_branch(int branch_index, const nn::QTensor& qinput,
                   std::uint8_t* base, std::span<const nn::ArenaSlot> slots,
                   nn::ops::KernelBackend& backend,
                   nn::ops::ScratchArena& crops,
                   std::span<nn::QTensor> step_views, std::int64_t& measured,
                   nn::QTensor& assembled,
                   bool* merge_changed = nullptr) const;
  void bind_tail(std::uint8_t* base, std::span<const nn::ArenaSlot> slots,
                 int first_tail_slot, int assembled_slot,
                 std::int64_t& measured) const;
  nn::QTensor exec_tail(std::uint8_t* base,
                        std::span<const nn::ArenaSlot> slots,
                        int first_tail_slot, int assembled_slot,
                        std::int64_t& measured) const;
  void exec_tail_band(int layer_id, const Interval& rows,
                      nn::ops::KernelBackend& backend,
                      nn::ops::ScratchArena& crops) const;
  [[nodiscard]] const nn::ops::AvgPoolMultipliers* pool_table(
      const nn::Layer& l) const;
  WorkerCtx& worker_ctx(int lane) const;
  std::span<std::uint8_t> bind_run_arena(std::int64_t need,
                                         nn::ArenaSlab::Lease& lease) const;
  // Streaming internals (see CompiledPatchModel).
  void prime_stream_state(StreamState& state, int workers) const;
  std::span<std::uint8_t> bind_stream_arena(std::int64_t need,
                                            StreamState& state) const;
  bool stream_band_needed(const StreamState& state, std::size_t pi,
                          std::size_t j) const;
  void stream_mark_branch(StreamState& state, std::int64_t b,
                          bool changed) const;
  void stream_mark_band(StreamState& state, std::size_t pi,
                        std::size_t j) const;
  void invoke_stats_hook() const;
  // Cached dataflow graph per worker count (see CompiledPatchModel).
  nn::TaskGraph& pipeline_graph(int num_workers) const;

  const nn::Graph* graph_;
  PatchPlan plan_;
  nn::ActivationQuantConfig cfg_;
  std::vector<nn::QuantParams> effective_;
  std::vector<BranchQuantConfig> branch_cfgs_;  // empty = uniform mode
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias_;
  std::shared_ptr<const nn::QuantizedParameters> params_;
  // Artifact bundle adopted by backend_ and every worker lane (keeps the
  // panel/offset views registered with the backends alive).
  std::shared_ptr<const nn::PrecompiledBundle> bundle_;
  int num_steps_ = 0;
  int assembled_slot_ = 0;
  int input_slot_ = 0;  // quantized full input
  nn::ArenaPlan aplan_;
  std::vector<nn::ArenaRequest> slice_requests_;
  std::vector<nn::ArenaRequest> shared_requests_;
  int par_assembled_slot_ = 0;
  int par_input_slot_ = 0;
  std::vector<PipelinedTailLayer> pipeline_;
  std::vector<std::int64_t> branch_costs_;
  int pipeline_horizon_ = 0;
  std::shared_ptr<nn::ArenaSlab> arena_source_;
  mutable std::function<void(int)> branch_hook_;
  mutable std::function<void(int, const nn::QTensor&)> stats_hook_;
  // AvgPool reciprocal tables keyed by window size. Filled at construction
  // for every window the graph contains, then read-only — several workers
  // share them concurrently during parallel runs, so no lazy inserts on the
  // run path (that was the shared-mutable-state hazard the thread-affinity
  // audit flagged).
  std::unordered_map<int, nn::ops::AvgPoolMultipliers> pool_tables_;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> pplans_;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> pipelined_pplans_;
  mutable std::unordered_map<int, nn::ParallelArenaPlan> streaming_pplans_;
  mutable std::unordered_map<int, nn::TaskGraph> pipeline_graphs_;
  // Per-run state read by the cached pipelined graph's tasks (see
  // CompiledPatchModel); the quantized input is a bound arena view.
  mutable nn::QTensor run_qinput_;
  mutable std::uint8_t* run_data_ = nullptr;
  mutable const nn::ParallelArenaPlan* run_pplan_ = nullptr;
  mutable StreamState* run_stream_ = nullptr;
  mutable nn::ops::KernelBackend backend_;
  mutable nn::ops::ScratchArena crops_;
  mutable std::vector<std::unique_ptr<WorkerCtx>> workers_;
  mutable std::vector<std::uint8_t> arena_;
  mutable std::vector<nn::QTensor> step_views_;
  mutable std::vector<nn::QTensor> tail_memo_;
  mutable std::int64_t measured_ = 0;
};

}  // namespace qmcu::patch
