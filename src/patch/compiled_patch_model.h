// compiled_patch_model.h — compile-once / run-many patch-based inference
// against one static tensor arena.
//
// The patch executors walk every dataflow branch allocating a fresh region
// tensor per step per run. A compiled patch model plans, once:
//
//   * one arena slot per branch *step index*, sized to the largest region
//     any branch computes at that step (branches share the slot layout —
//     they run sequentially and have identical step structure, only their
//     region extents differ);
//   * one slot for the reassembled cut-layer feature map, live from the
//     first branch through its last tail consumer;
//   * one slot per tail layer, placed over layer-based lifetimes;
//   * (quantized) one slot for the quantized full input, live across the
//     whole branch phase.
//
// All slots come from one nn::ArenaPlanner pass over a unified timeline
// (branch steps first, tail steps after), so branch buffers, the shared
// accumulation buffer and tail feature maps pack into a single arena the
// way the deployed runtime lays out SRAM. Halo crop temporaries are scratch
// (a grow-only pool reused across steps), not feature maps, and are
// accounted via scratch_bytes(). Outputs are bit-identical to the legacy
// patch executors: same kernels, same order, same values.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "nn/compiled_model.h"
#include "nn/graph.h"
#include "nn/memory_planner.h"
#include "nn/ops/backend.h"
#include "nn/tensor.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Per-step QuantParams for one branch, parallel to PatchBranch::steps.
struct BranchQuantConfig {
  std::vector<nn::QuantParams> per_step;
};

// Mixed mode: per-branch per-step int32 biases rescaled to the branch's
// actual input scales (empty vectors for non-MAC steps). The branch's step
// parameters set the real input scale of each MAC step, so biases must be
// rescaled per branch (the shared QuantizedParameters bias table is built
// against the deployment config). Shared by the legacy executor and the
// compiled model.
std::vector<std::vector<std::vector<std::int32_t>>> build_branch_bias(
    const nn::Graph& g, const PatchPlan& plan,
    std::span<const BranchQuantConfig> branch_cfgs,
    const nn::QuantizedParameters& params);

// --- float -----------------------------------------------------------------

class CompiledPatchModel {
 public:
  CompiledPatchModel(const nn::Graph& g, PatchPlan plan,
                     nn::ops::KernelTier tier = nn::ops::KernelTier::Fast);

  [[nodiscard]] nn::Tensor run(const nn::Tensor& input) const;

  [[nodiscard]] const nn::ArenaPlan& arena_plan() const { return aplan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return aplan_.peak_bytes; }
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  // Crop-temporary + backend scratch held after the last run.
  [[nodiscard]] std::int64_t scratch_bytes() const;
  [[nodiscard]] const PatchPlan& plan() const { return plan_; }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }
  // Shared with the owning executor's legacy (hooked) paths so only one
  // scratch arena + weight-panel cache exists per executor.
  [[nodiscard]] nn::ops::KernelBackend& backend() const { return backend_; }

 private:
  const nn::Graph* graph_;
  PatchPlan plan_;
  int num_steps_ = 0;      // steps per branch (identical across branches)
  int assembled_slot_ = 0;  // request index of the reassembled cut layer
  nn::ArenaPlan aplan_;
  mutable nn::ops::KernelBackend backend_;
  mutable nn::ops::ScratchArena crops_;  // halo crop temporaries
  mutable std::vector<std::uint8_t> arena_;
  mutable std::vector<nn::Tensor> step_views_;  // per step, rebound per branch
  mutable std::vector<nn::Tensor> tail_memo_;   // per layer id (tail phase)
  mutable std::int64_t measured_ = 0;
};

// --- quantized -------------------------------------------------------------

class CompiledPatchQuantModel {
 public:
  // Uniform mode: branch steps inherit the per-layer params of `cfg`;
  // mixed mode: `branch_cfgs[b].per_step[s]` overrides branch b's step s.
  // Prebuilt shared parameters (QuantizedParameters::build_shared) skip the
  // per-model weight conversion.
  CompiledPatchQuantModel(
      const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
      std::vector<BranchQuantConfig> branch_cfgs = {},
      nn::ops::KernelTier tier = nn::ops::KernelTier::Fast,
      std::shared_ptr<const nn::QuantizedParameters> params = {});

  [[nodiscard]] nn::QTensor run(const nn::Tensor& input) const;

  [[nodiscard]] const nn::ArenaPlan& arena_plan() const { return aplan_; }
  [[nodiscard]] std::int64_t arena_bytes() const { return aplan_.peak_bytes; }
  [[nodiscard]] std::int64_t measured_high_water() const { return measured_; }
  [[nodiscard]] std::int64_t scratch_bytes() const;
  [[nodiscard]] const PatchPlan& plan() const { return plan_; }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }
  [[nodiscard]] const std::shared_ptr<const nn::QuantizedParameters>&
  shared_parameters() const {
    return params_;
  }
  // Compile-time tables, exposed so the owning executor's legacy paths
  // reuse them instead of rebuilding their own copies.
  [[nodiscard]] const nn::ActivationQuantConfig& config() const {
    return cfg_;
  }
  [[nodiscard]] std::span<const nn::QuantParams> effective_params() const {
    return effective_;
  }
  [[nodiscard]] std::span<const BranchQuantConfig> branch_configs() const {
    return branch_cfgs_;
  }
  [[nodiscard]] const std::vector<std::vector<std::vector<std::int32_t>>>&
  branch_bias() const {
    return branch_bias_;
  }
  [[nodiscard]] nn::ops::KernelBackend& backend() const { return backend_; }
  // Params resolution for branch step `step` of branch `branch`: the
  // mixed-mode per-step override when branch configs exist, otherwise the
  // pool-propagated effective params of the step's layer. Shared with the
  // owning executor's legacy path so both resolve identically.
  [[nodiscard]] const nn::QuantParams& step_params(int branch,
                                                   int step) const;

 private:
  const nn::Graph* graph_;
  PatchPlan plan_;
  nn::ActivationQuantConfig cfg_;
  std::vector<nn::QuantParams> effective_;
  std::vector<BranchQuantConfig> branch_cfgs_;  // empty = uniform mode
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias_;
  std::shared_ptr<const nn::QuantizedParameters> params_;
  int num_steps_ = 0;
  int assembled_slot_ = 0;
  int input_slot_ = 0;  // quantized full input
  nn::ArenaPlan aplan_;
  mutable nn::ops::KernelBackend backend_;
  mutable nn::ops::ScratchArena crops_;
  // AvgPool reciprocal tables keyed by window size, reused across runs.
  mutable std::unordered_map<int, nn::ops::AvgPoolMultipliers> pool_tables_;
  mutable std::vector<std::uint8_t> arena_;
  mutable std::vector<nn::QTensor> step_views_;
  mutable std::vector<nn::QTensor> tail_memo_;
  mutable std::int64_t measured_ = 0;
};

}  // namespace qmcu::patch
