#include "patch/patch_cost.h"

#include <algorithm>

#include "nn/memory_planner.h"

namespace qmcu::patch {

namespace {

std::int64_t region_bytes(const BranchStep& step, int bits) {
  return (step.out_elements * bits + 7) / 8;
}

}  // namespace

std::vector<BranchBits> uniform_branch_bits(const PatchPlan& plan, int bits) {
  std::vector<BranchBits> out;
  out.reserve(plan.branches.size());
  for (const PatchBranch& b : plan.branches) {
    out.push_back(BranchBits{std::vector<int>(b.steps.size(), bits)});
  }
  return out;
}

std::vector<std::int64_t> branch_costs(const PatchPlan& plan) {
  std::vector<std::int64_t> costs;
  costs.reserve(plan.branches.size());
  for (const PatchBranch& b : plan.branches) {
    std::int64_t c = b.total_macs;
    for (const BranchStep& s : b.steps) c += s.element_ops;
    costs.push_back(std::max<std::int64_t>(c, 1));
  }
  return costs;
}

std::vector<nn::IndexRange> weighted_chunks(
    std::span<const std::int64_t> costs, int max_chunks) {
  std::vector<nn::IndexRange> out;
  const auto n = static_cast<std::int64_t>(costs.size());
  if (n == 0) return out;
  max_chunks = static_cast<int>(
      std::clamp<std::int64_t>(max_chunks, 1, n));
  std::int64_t total = 0;
  for (const std::int64_t c : costs) total += std::max<std::int64_t>(c, 1);

  std::int64_t begin = 0;
  std::int64_t acc = 0;
  std::int64_t done = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t c =
        std::max<std::int64_t>(costs[static_cast<std::size_t>(i)], 1);
    const int chunks_left = max_chunks - static_cast<int>(out.size());
    // Close the open range *before* an element that would push it past its
    // fair share of what remains (recomputed per range, so one expensive
    // branch does not starve the ranges after it): cheap runs coalesce up
    // to the target, an expensive element opens its own range.
    if (chunks_left > 1 && acc > 0) {
      const std::int64_t target =
          (total - done + chunks_left - 1) / chunks_left;
      if (acc + c > target) {
        out.push_back({begin, i});
        done += acc;
        acc = 0;
        begin = i;
      }
    }
    acc += c;
  }
  if (begin < n) out.push_back({begin, n});
  return out;
}

std::int64_t split_feature_map_bytes(const nn::Graph& g, const PatchPlan& plan,
                                     std::span<const BranchBits> branch_bits) {
  QMCU_REQUIRE(branch_bits.size() == plan.branches.size(),
               "branch bits must cover every branch");
  (void)g;
  std::int64_t total = 0;
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const BranchStep& last = plan.branches[b].steps.back();
    total += region_bytes(last, branch_bits[b].bits.back());
  }
  return total;
}

PatchCost evaluate_patch_cost(const nn::Graph& g, const PatchPlan& plan,
                              std::span<const BranchBits> branch_bits,
                              std::span<const int> tail_bits,
                              const mcu::CostModel& cost_model,
                              int weight_bits) {
  QMCU_REQUIRE(branch_bits.size() == plan.branches.size(),
               "branch bits must cover every branch");
  QMCU_REQUIRE(static_cast<int>(tail_bits.size()) == g.size(),
               "tail bits must cover every layer");
  const int split = plan.spec.split_layer;
  const mcu::Device& dev = cost_model.device();

  PatchCost cost;

  // ---- Patch phase: compute + memory per branch -------------------------
  const nn::TensorShape& in_shape = g.shape(g.inputs().front());
  std::int64_t resident_input = 0;
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const PatchBranch& br = plan.branches[b];
    const Region tile = plan.input_tile(br.row, br.col, in_shape);
    resident_input +=
        (tile.area() * in_shape.c * branch_bits[b].bits.front() + 7) / 8;
  }

  std::int64_t phase1_peak = 0;
  std::int64_t acc_so_far = 0;
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const PatchBranch& br = plan.branches[b];
    const BranchBits& bits = branch_bits[b];
    QMCU_REQUIRE(bits.bits.size() == br.steps.size(),
                 "branch bits must cover every step");
    const int n = static_cast<int>(br.steps.size());

    // Intra-branch liveness: a step's output is live until its last
    // consumer step inside the branch.
    std::vector<int> last_use(static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) last_use[static_cast<std::size_t>(s)] = s;
    for (int s = 0; s < n; ++s) {
      const nn::Layer& l = g.layer(br.steps[static_cast<std::size_t>(s)]
                                       .layer_id);
      for (int in : l.inputs) {
        const int p = br.step_of(in);
        if (p >= 0) {
          last_use[static_cast<std::size_t>(p)] =
              std::max(last_use[static_cast<std::size_t>(p)], s);
        }
      }
    }

    std::int64_t live_peak = 0;
    for (int s = 0; s < n; ++s) {
      std::int64_t live = 0;
      for (int t = 0; t <= s; ++t) {
        if (last_use[static_cast<std::size_t>(t)] >= s) {
          live += region_bytes(br.steps[static_cast<std::size_t>(t)],
                               bits.bits[static_cast<std::size_t>(t)]);
        }
      }
      live_peak = std::max(live_peak, live);

      // Compute cost of this step.
      const BranchStep& step = br.steps[static_cast<std::size_t>(s)];
      const nn::Layer& l = g.layer(step.layer_id);
      if (l.kind == nn::OpKind::Input) continue;
      cost.cycles += dev.per_layer_overhead_cycles;
      if (step.macs > 0) {
        const int p = br.step_of(l.inputs[0]);
        QMCU_ENSURE(p >= 0, "MAC step without in-branch producer");
        const int a_bits = bits.bits[static_cast<std::size_t>(p)];
        cost.cycles += cost_model.mac_cycles(step.macs, a_bits);
        const std::int64_t b_ops = step.macs * weight_bits * a_bits;
        cost.bitops += b_ops;
        cost.stage_bitops += b_ops;
      } else {
        cost.cycles += cost_model.element_cycles(step.element_ops);
      }
    }
    phase1_peak =
        std::max(phase1_peak, resident_input + acc_so_far + live_peak);
    acc_so_far += region_bytes(br.steps.back(), bits.bits.back());
  }

  const std::int64_t split_fm_bytes = acc_so_far;

  // ---- Tail phase: layer-based over layers after the cut ----------------
  std::int64_t phase2_peak = 0;
  const int split_last_use = nn::last_use_step(g, split);
  for (int id = split + 1; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    // Compute cost.
    if (l.kind != nn::OpKind::Input) {
      cost.cycles += dev.per_layer_overhead_cycles;
      if (nn::is_mac_op(l.kind)) {
        const int in = l.inputs[0];
        const int a_bits = in == split
                               ? 8  // reassembled slices are read as int8
                               : tail_bits[static_cast<std::size_t>(in)];
        cost.cycles += cost_model.mac_cycles(g.macs(id), a_bits);
        cost.bitops += g.macs(id) * weight_bits * a_bits;
      } else {
        cost.cycles += cost_model.element_cycles(g.element_ops(id));
      }
    }
    // Live bytes while this layer runs.
    std::int64_t live = split_last_use >= id ? split_fm_bytes : 0;
    for (int i = split + 1; i <= id; ++i) {
      if (nn::last_use_step(g, i) >= id) {
        live += g.shape(i).bytes(tail_bits[static_cast<std::size_t>(i)]);
      }
    }
    phase2_peak = std::max(phase2_peak, live);
  }

  cost.peak_bytes = std::max(phase1_peak, phase2_peak);
  cost.latency_ms = dev.ms_from_cycles(cost.cycles);
  return cost;
}

}  // namespace qmcu::patch
