// rnnpool.h — RNNPool-style stem replacement (Saha et al., NeurIPS 2020,
// reference [10]).
//
// RNNPool replaces the memory-dominant early stage of a CNN with an
// aggressive learned pooling operator that downsamples by 4x in one block,
// so the network never materialises large intermediate maps and needs no
// patching. The true operator sweeps tiny RNNs over each pooling window;
// this reproduction substitutes a compute-matched separable-conv block
// (documented in DESIGN.md §2): depthwise-stride-2 + pointwise pairs that
// reach the same output geometry, with the block's width chosen so its MAC
// count is within ~10% of the stage it replaces — preserving the paper's
// Table I signature (peak just below layer-based, BitOPs slightly above,
// no halo redundancy).
//
// The returned graph's new stem layers carry no parameters yet; callers
// should run models::init_parameters(graph, seed) (it skips layers that
// already have parameters, so the copied tail weights are preserved).
#pragma once

#include <cstdint>

#include "nn/graph.h"

namespace qmcu::patch {

struct RnnPoolResult {
  nn::Graph graph;
  int replaced_through = -1;        // original cut layer id
  std::int64_t original_stage_macs = 0;
  std::int64_t block_macs = 0;
};

RnnPoolResult make_rnnpool_variant(const nn::Graph& g,
                                   int stage_downsample = 4);

}  // namespace qmcu::patch
