#include "patch/region_pool.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <optional>

#include "nn/ops/int8_kernels.h"
#include "nn/ops/requantize.h"

namespace qmcu::patch {

namespace {

// Iterates the valid (in-bounds) window positions of one output element,
// asserting each is present in the available region.
template <typename Fn>
void for_each_valid(const Region& avail, const nn::Layer& l, int gy, int gx,
                    const nn::TensorShape& full, const Fn& fn) {
  const int iy0 = gy * l.stride_h - l.pad_h;
  const int ix0 = gx * l.stride_w - l.pad_w;
  for (int ky = 0; ky < l.kernel_h; ++ky) {
    const int iy = iy0 + ky;
    if (iy < 0 || iy >= full.h) continue;
    for (int kx = 0; kx < l.kernel_w; ++kx) {
      const int ix = ix0 + kx;
      if (ix < 0 || ix >= full.w) continue;
      QMCU_ENSURE(iy >= avail.y.begin && iy < avail.y.end &&
                      ix >= avail.x.begin && ix < avail.x.end,
                  "pool window element missing from region");
      fn(iy - avail.y.begin, ix - avail.x.begin);
    }
  }
}

void check_kind(const nn::Layer& l) {
  QMCU_REQUIRE(l.kind == nn::OpKind::MaxPool || l.kind == nn::OpKind::AvgPool,
               "region pooling handles MaxPool/AvgPool only");
}

}  // namespace

void pool_region_f32_into(const nn::Tensor& have, const Region& avail,
                          const nn::Layer& l, const Region& out_region,
                          const nn::TensorShape& full, nn::Tensor& out) {
  check_kind(l);
  const bool is_max = l.kind == nn::OpKind::MaxPool;
  QMCU_REQUIRE(out.shape() == nn::TensorShape(out_region.y.size(),
                                              out_region.x.size(),
                                              have.shape().c),
               "pool_region_f32: destination shape mismatch");
  for (int gy = out_region.y.begin; gy < out_region.y.end; ++gy) {
    for (int gx = out_region.x.begin; gx < out_region.x.end; ++gx) {
      for (int c = 0; c < have.shape().c; ++c) {
        float best = std::numeric_limits<float>::lowest();
        float sum = 0.0f;
        int count = 0;
        for_each_valid(avail, l, gy, gx, full, [&](int y, int x) {
          const float v = have.at(y, x, c);
          best = std::max(best, v);
          sum += v;
          ++count;
        });
        out.at(gy - out_region.y.begin, gx - out_region.x.begin, c) =
            is_max ? best
                   : (count > 0 ? sum / static_cast<float>(count) : 0.0f);
      }
    }
  }
}

nn::Tensor pool_region_f32(const nn::Tensor& have, const Region& avail,
                           const nn::Layer& l, const Region& out_region,
                           const nn::TensorShape& full) {
  nn::Tensor out(nn::TensorShape{out_region.y.size(), out_region.x.size(),
                                 have.shape().c});
  pool_region_f32_into(have, avail, l, out_region, full, out);
  return out;
}

void pool_region_q_into(const nn::QTensor& have, const Region& avail,
                        const nn::Layer& l, const Region& out_region,
                        const nn::TensorShape& full, nn::QTensor& out) {
  check_kind(l);
  // Only the averaging path needs the reciprocal table.
  const std::optional<nn::ops::AvgPoolMultipliers> avg =
      l.kind == nn::OpKind::MaxPool
          ? std::nullopt
          : std::optional<nn::ops::AvgPoolMultipliers>(
                std::in_place, l.kernel_h * l.kernel_w);
  pool_region_q_into(have, avail, l, out_region, full,
                     avg ? &*avg : nullptr, out);
}

void pool_region_q_into(const nn::QTensor& have, const Region& avail,
                        const nn::Layer& l, const Region& out_region,
                        const nn::TensorShape& full,
                        const nn::ops::AvgPoolMultipliers* avg,
                        nn::QTensor& out) {
  check_kind(l);
  const bool is_max = l.kind == nn::OpKind::MaxPool;
  QMCU_REQUIRE(is_max || avg != nullptr,
               "pool_region_q: AvgPool needs a multiplier table");
  const nn::QuantParams& p = have.params();
  QMCU_REQUIRE(out.shape() == nn::TensorShape(out_region.y.size(),
                                              out_region.x.size(),
                                              have.shape().c),
               "pool_region_q: destination shape mismatch");
  QMCU_REQUIRE(out.params() == p, "pool_region_q: pools keep input params");
  for (int gy = out_region.y.begin; gy < out_region.y.end; ++gy) {
    for (int gx = out_region.x.begin; gx < out_region.x.end; ++gx) {
      for (int c = 0; c < have.shape().c; ++c) {
        std::int32_t best = std::numeric_limits<std::int32_t>::min();
        std::int32_t sum = 0;
        std::int32_t count = 0;
        for_each_valid(avail, l, gy, gx, full, [&](int y, int x) {
          const std::int32_t v = have.at(y, x, c);
          best = std::max(best, v);
          sum += v;
          ++count;
        });
        std::int32_t q;
        if (is_max) {
          q = best;
        } else {
          // Shared fixed-point mean: identical rounding to
          // nn::ops::avg_pool_q by construction.
          q = count > 0 ? avg->average(sum, count) : p.zero_point;
          q = std::clamp(q, p.qmin(), p.qmax());
        }
        out.at(gy - out_region.y.begin, gx - out_region.x.begin, c) =
            static_cast<std::int8_t>(q);
      }
    }
  }
}

nn::QTensor pool_region_q(const nn::QTensor& have, const Region& avail,
                          const nn::Layer& l, const Region& out_region,
                          const nn::TensorShape& full) {
  nn::QTensor out(nn::TensorShape{out_region.y.size(), out_region.x.size(),
                                  have.shape().c},
                  have.params());
  pool_region_q_into(have, avail, l, out_region, full, out);
  return out;
}

void merge_region_f32(const nn::Tensor& tile, const Region& r,
                      nn::Tensor& assembled) {
  const int c = assembled.shape().c;
  QMCU_REQUIRE(tile.shape() ==
                   nn::TensorShape(r.y.size(), r.x.size(), c),
               "merge_region_f32: tile does not cover its region");
  QMCU_REQUIRE(r.y.begin >= 0 && r.y.end <= assembled.shape().h &&
                   r.x.begin >= 0 && r.x.end <= assembled.shape().w,
               "merge_region_f32: region exceeds the assembled map");
  for (int y = r.y.begin; y < r.y.end; ++y) {
    for (int x = r.x.begin; x < r.x.end; ++x) {
      std::memcpy(
          assembled.data().data() + nn::flat_index(assembled.shape(), y, x, 0),
          tile.data().data() +
              nn::flat_index(tile.shape(), y - r.y.begin, x - r.x.begin, 0),
          static_cast<std::size_t>(c) * sizeof(float));
    }
  }
}

void merge_region_q(const nn::QTensor& tile, const Region& r,
                    nn::QTensor& assembled) {
  const nn::QuantParams& p = tile.params();
  const nn::QuantParams& t = assembled.params();
  const int c = assembled.shape().c;
  QMCU_REQUIRE(tile.shape() ==
                   nn::TensorShape(r.y.size(), r.x.size(), c),
               "merge_region_q: tile does not cover its region");
  QMCU_REQUIRE(r.y.begin >= 0 && r.y.end <= assembled.shape().h &&
                   r.x.begin >= 0 && r.x.end <= assembled.shape().w,
               "merge_region_q: region exceeds the assembled map");
  if (p == t) {
    for (int y = r.y.begin; y < r.y.end; ++y) {
      for (int x = r.x.begin; x < r.x.end; ++x) {
        std::memcpy(
            assembled.data().data() +
                nn::flat_index(assembled.shape(), y, x, 0),
            tile.data().data() +
                nn::flat_index(tile.shape(), y - r.y.begin, x - r.x.begin, 0),
            static_cast<std::size_t>(c));
      }
    }
    return;
  }
  // Mixed mode: rescale into the assembled map's params — the same values
  // the legacy path produces via requantize_q + per-element scatter.
  const nn::ops::ElementRequantizer rq(static_cast<double>(p.scale) /
                                       static_cast<double>(t.scale));
  const std::int32_t qmin = t.qmin();
  const std::int32_t qmax = t.qmax();
  for (int y = r.y.begin; y < r.y.end; ++y) {
    for (int x = r.x.begin; x < r.x.end; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        const std::int32_t v =
            rq.apply(static_cast<std::int32_t>(
                         tile.at(y - r.y.begin, x - r.x.begin, ch)) -
                     p.zero_point) +
            t.zero_point;
        assembled.at(y, x, ch) =
            static_cast<std::int8_t>(std::clamp(v, qmin, qmax));
      }
    }
  }
}

bool merge_region_f32_changed(const nn::Tensor& tile, const Region& r,
                              nn::Tensor& assembled) {
  const int c = assembled.shape().c;
  QMCU_REQUIRE(tile.shape() ==
                   nn::TensorShape(r.y.size(), r.x.size(), c),
               "merge_region_f32: tile does not cover its region");
  QMCU_REQUIRE(r.y.begin >= 0 && r.y.end <= assembled.shape().h &&
                   r.x.begin >= 0 && r.x.end <= assembled.shape().w,
               "merge_region_f32: region exceeds the assembled map");
  // A region row is contiguous in both the tile and the assembled map.
  const std::size_t row_bytes = static_cast<std::size_t>(r.x.size()) *
                                static_cast<std::size_t>(c) * sizeof(float);
  bool changed = false;
  for (int y = r.y.begin; y < r.y.end; ++y) {
    float* dst =
        assembled.data().data() + nn::flat_index(assembled.shape(), y, r.x.begin, 0);
    const float* src =
        tile.data().data() + nn::flat_index(tile.shape(), y - r.y.begin, 0, 0);
    if (std::memcmp(dst, src, row_bytes) != 0) {
      std::memcpy(dst, src, row_bytes);
      changed = true;
    }
  }
  return changed;
}

bool merge_region_q_changed(const nn::QTensor& tile, const Region& r,
                            nn::QTensor& assembled) {
  const nn::QuantParams& p = tile.params();
  const nn::QuantParams& t = assembled.params();
  const int c = assembled.shape().c;
  QMCU_REQUIRE(tile.shape() ==
                   nn::TensorShape(r.y.size(), r.x.size(), c),
               "merge_region_q: tile does not cover its region");
  QMCU_REQUIRE(r.y.begin >= 0 && r.y.end <= assembled.shape().h &&
                   r.x.begin >= 0 && r.x.end <= assembled.shape().w,
               "merge_region_q: region exceeds the assembled map");
  bool changed = false;
  if (p == t) {
    const std::size_t row_bytes =
        static_cast<std::size_t>(r.x.size()) * static_cast<std::size_t>(c);
    for (int y = r.y.begin; y < r.y.end; ++y) {
      std::int8_t* dst = assembled.data().data() +
                         nn::flat_index(assembled.shape(), y, r.x.begin, 0);
      const std::int8_t* src =
          tile.data().data() + nn::flat_index(tile.shape(), y - r.y.begin, 0, 0);
      if (std::memcmp(dst, src, row_bytes) != 0) {
        std::memcpy(dst, src, row_bytes);
        changed = true;
      }
    }
    return changed;
  }
  const nn::ops::ElementRequantizer rq(static_cast<double>(p.scale) /
                                       static_cast<double>(t.scale));
  const std::int32_t qmin = t.qmin();
  const std::int32_t qmax = t.qmax();
  for (int y = r.y.begin; y < r.y.end; ++y) {
    for (int x = r.x.begin; x < r.x.end; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        const std::int32_t v =
            rq.apply(static_cast<std::int32_t>(
                         tile.at(y - r.y.begin, x - r.x.begin, ch)) -
                     p.zero_point) +
            t.zero_point;
        const std::int8_t q =
            static_cast<std::int8_t>(std::clamp(v, qmin, qmax));
        std::int8_t& slot = assembled.at(y, x, ch);
        if (slot != q) {
          slot = q;
          changed = true;
        }
      }
    }
  }
  return changed;
}

}  // namespace qmcu::patch
