#include "patch/mcunetv2.h"

namespace qmcu::patch {

PatchSpec plan_mcunetv2(const nn::Graph& g, const McuNetV2Options& opt) {
  QMCU_REQUIRE(opt.grid >= 2, "patch grid must be at least 2");
  QMCU_REQUIRE(opt.stage_downsample >= 2, "downsample target must be >= 2");
  const std::vector<int> cuts = valid_cut_points(g);
  QMCU_REQUIRE(!cuts.empty(), "graph has no valid cut points");

  const nn::TensorShape& in = g.shape(g.inputs().front());
  const int target_h = in.h / opt.stage_downsample;

  PatchSpec spec;
  spec.grid_rows = spec.grid_cols = opt.grid;
  for (int cut : cuts) {
    const nn::TensorShape& s = g.shape(cut);
    if (s.h <= target_h && s.h >= opt.grid && s.w >= opt.grid) {
      spec.split_layer = cut;
      return spec;
    }
  }
  // No cut reaches the downsample target: fall back to the deepest cut that
  // still admits the grid.
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
    const nn::TensorShape& s = g.shape(*it);
    if (s.h >= opt.grid && s.w >= opt.grid) {
      spec.split_layer = *it;
      return spec;
    }
  }
  QMCU_REQUIRE(false, "no cut point admits the requested patch grid");
}

}  // namespace qmcu::patch
