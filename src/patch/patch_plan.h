// patch_plan.h — patch-based inference planning (MCUNetV2-style).
//
// A PatchSpec names a *cut point* (the last layer executed patch-wise) and a
// patch grid. The plan materialises, for every patch, the dataflow branch
// the paper describes: the exact spatial region of every stage feature map
// that branch must compute, obtained by backward receptive-field
// propagation from the patch's tile of the cut layer's output. Overlap
// between neighbouring branches' regions is the redundant computation
// (plan.redundant_macs()).
//
// Stage layers between two cut points may include residual adds and concats
// (MobileNetV2 blocks); the propagation handles any DAG confined to the
// stage.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/graph.h"
#include "patch/receptive_field.h"

namespace qmcu::patch {

struct PatchSpec {
  int split_layer = -1;  // cut point: last layer id executed patch-wise
  int grid_rows = 2;
  int grid_cols = 2;

  [[nodiscard]] int num_patches() const { return grid_rows * grid_cols; }
};

// One layer's work inside one branch.
struct BranchStep {
  int layer_id = -1;
  Region out_region;  // clamped to the layer's extent; what this branch computes
  Region in_region;   // unclamped requirement on the primary producer
  std::int64_t macs = 0;
  std::int64_t element_ops = 0;
  std::int64_t out_elements = 0;  // out_region.area * channels
};

// The dataflow branch that follows one patch (paper Fig. 1a / Fig. 3).
struct PatchBranch {
  int row = 0;
  int col = 0;
  std::vector<BranchStep> steps;  // stage layers in topological order,
                                  // step 0 is the Input crop
  std::int64_t total_macs = 0;

  // Index into `steps` for a stage layer id, or -1.
  [[nodiscard]] int step_of(int layer_id) const;
};

struct PatchPlan {
  PatchSpec spec;
  std::vector<int> stage_layers;  // ids [0 .. split_layer], topo order
  std::vector<PatchBranch> branches;  // row-major grid order

  std::int64_t stage_macs_layer_based = 0;  // stage cost without patching
  std::int64_t stage_macs_patched = 0;      // sum over branches

  [[nodiscard]] std::int64_t redundant_macs() const {
    return stage_macs_patched - stage_macs_layer_based;
  }
  // Redundancy as a fraction of the un-patched stage cost.
  [[nodiscard]] double redundancy_ratio() const {
    return stage_macs_layer_based == 0
               ? 0.0
               : static_cast<double>(redundant_macs()) /
                     static_cast<double>(stage_macs_layer_based);
  }
  // The disjoint tile of the *input image* owned by branch (row, col) —
  // the branch's crop region minus halo; tiles partition the input.
  [[nodiscard]] Region input_tile(int row, int col,
                                  const nn::TensorShape& input_shape) const;
};

// Last step index (within the branch) whose layer reads step
// `step_index`'s output; `step_index` itself if unconsumed inside the
// branch. This is the branch-local liveness interval the compiled patch
// executor's arena planner places slots over.
int branch_last_use(const nn::Graph& g, const PatchBranch& branch,
                    int step_index);

// Layer ids where the graph may be cut: every consumer edge leaving the
// prefix {0..L} originates at L itself, L's feature map is spatial
// (h, w >= grid), and the prefix contains at least one windowed op.
std::vector<int> valid_cut_points(const nn::Graph& g);

// Builds the full plan. `spec.split_layer` must be a valid cut point and
// the grid must divide into at least 1-pixel tiles.
PatchPlan build_patch_plan(const nn::Graph& g, const PatchSpec& spec);

}  // namespace qmcu::patch
