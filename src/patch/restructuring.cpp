#include "patch/restructuring.h"

#include "nn/memory_planner.h"

namespace qmcu::patch {

RestructuringResult restructure_for_memory(const nn::Graph& g,
                                           const mcu::CostModel& cost_model,
                                           std::span<const int> grids) {
  QMCU_REQUIRE(!grids.empty(), "need at least one candidate grid");
  const std::vector<int> cuts = valid_cut_points(g);
  QMCU_REQUIRE(!cuts.empty(), "graph has no valid cut points");
  const std::vector<int> tail8 = nn::uniform_bits(g, 8);

  RestructuringResult best;
  bool have_best = false;
  for (int cut : cuts) {
    const nn::TensorShape& s = g.shape(cut);
    for (int grid : grids) {
      if (s.h < grid || s.w < grid) continue;
      PatchSpec spec;
      spec.split_layer = cut;
      spec.grid_rows = spec.grid_cols = grid;
      const PatchPlan plan = build_patch_plan(g, spec);
      const std::vector<BranchBits> bits = uniform_branch_bits(plan, 8);
      const PatchCost cost =
          evaluate_patch_cost(g, plan, bits, tail8, cost_model);
      ++best.candidates_tried;
      const bool better =
          !have_best || cost.peak_bytes < best.cost.peak_bytes ||
          (cost.peak_bytes == best.cost.peak_bytes &&
           cost.bitops < best.cost.bitops);
      if (better) {
        const int tried = best.candidates_tried;
        best = RestructuringResult{spec, cost, tried};
        have_best = true;
      }
    }
  }
  QMCU_REQUIRE(have_best, "no feasible restructuring candidate");
  return best;
}

}  // namespace qmcu::patch
