// streaming_diff.h — frame differencing for temporal patch reuse.
//
// Always-on streaming workloads feed the patch runtime *sequences* of
// frames, and consecutive frames share most of their pixels. Because every
// dataflow branch reads exactly one (clamped) crop of the input image —
// `PatchBranch::steps[0].out_region`, the patch tile plus its receptive-
// field halo — a branch whose crop is byte-identical between two frames
// must produce a byte-identical tile of the assembled cut-layer map, so
// the streaming runtime can skip it and keep the previous frame's bytes.
//
// This module computes which branches are dirty:
//
//   diff_frames     — per-row changed-column hulls between two frames
//                     (byte-exact compare; rows memcmp-equal are clean).
//   affected_branches — dirty-rect → branch mapper: which branches' crops
//                     overlap a changed rectangle.
//   dirty_branches  — the composition: per-branch dirty flags, exact
//                     (byte compare) or tolerance-based (mean |Δ| per crop
//                     ≤ max_region_delta counts as clean).
//
// Exactness contract: the exact mask is *conservative* — a branch whose
// crop contains any changed byte is always flagged (row hulls may flag a
// branch whose crop straddles the hull without containing a changed
// pixel, which costs a recompute, never a wrong skip).
//
// The crc32 helpers (nn/checksum.h) give cheap content fingerprints of
// full tensors, row ranges and regions — the streaming session, tests and
// benches use them to assert that retained bytes really were reused.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.h"
#include "patch/patch_plan.h"
#include "patch/receptive_field.h"

namespace qmcu::patch {

// Byte-exact difference between two equal-shaped frames, summarised per
// input row: `row_spans[y]` is the smallest column interval containing
// every changed pixel of row y (empty = row is byte-identical), `bounds`
// the hull of all changes, `changed_pixels` the exact count of (y, x)
// positions whose channel bytes differ.
struct FrameDiff {
  std::vector<Interval> row_spans;
  Region bounds;
  std::int64_t changed_pixels = 0;

  [[nodiscard]] bool identical() const { return changed_pixels == 0; }
  // Fraction of pixels that changed, in [0, 1].
  [[nodiscard]] double changed_fraction(const nn::TensorShape& s) const {
    const std::int64_t pixels = static_cast<std::int64_t>(s.h) * s.w;
    return pixels == 0 ? 0.0
                       : static_cast<double>(changed_pixels) /
                             static_cast<double>(pixels);
  }
};

FrameDiff diff_frames(const nn::Tensor& prev, const nn::Tensor& cur);

// The clamped input-image crop branch `branch` reads (tile + halo — the
// region its Input step materialises, intersected with the image bounds;
// out-of-bounds halo is synthesized zero padding and can never change).
Region branch_input_region(const PatchPlan& plan, int branch,
                           const nn::TensorShape& input_shape);

// Dirty-rect → affected-branches mapper: indices (row-major branch order)
// of every branch whose clamped input crop overlaps `rect`. An empty rect
// affects no branch.
std::vector<int> affected_branches(const PatchPlan& plan, const Region& rect,
                                   const nn::TensorShape& input_shape);

// Exact mode: flags[b] != 0 iff branch b's clamped input crop overlaps a
// changed row hull of diff_frames(prev, cur) — a conservative superset of
// "contains a changed byte", never a subset.
std::vector<std::uint8_t> dirty_branches(const nn::Tensor& prev,
                                         const nn::Tensor& cur,
                                         const PatchPlan& plan);

// Tolerance mode: a branch overlapping the diff is still clean when the
// mean absolute delta over its clamped crop is <= max_region_delta
// (<= 0 degenerates to the exact mask). Trades bit-exactness for skips.
std::vector<std::uint8_t> dirty_branches(const nn::Tensor& prev,
                                         const nn::Tensor& cur,
                                         const PatchPlan& plan,
                                         float max_region_delta);

// --- content fingerprints (nn::crc32) --------------------------------------

// CRC32 of the full tensor's payload bytes.
std::uint32_t tensor_crc32(const nn::Tensor& t);
std::uint32_t tensor_crc32(const nn::QTensor& t);
// CRC32 of rows [rows.begin, rows.end) — contiguous in HWC layout.
std::uint32_t rows_crc32(const nn::Tensor& t, const Interval& rows);
std::uint32_t rows_crc32(const nn::QTensor& t, const Interval& rows);
// Region fingerprint: per-row-segment CRC32 values FNV-folded together
// (row segments of a region are not contiguous, and nn::crc32 is
// one-shot; the fold is deterministic and compare-stable, which is all a
// fingerprint needs).
std::uint32_t region_crc32(const nn::Tensor& t, const Region& r);
std::uint32_t region_crc32(const nn::QTensor& t, const Region& r);

}  // namespace qmcu::patch
