// patch_executor.h — actually *runs* patch-based inference.
//
// The correctness invariant of patch-based inference is that it computes
// bit-identical results to layer-based inference: the halos exist precisely
// so no receptive field is truncated. PatchExecutor enforces that invariant
// (tests compare against nn::Executor exactly), and doubles as the
// calibration vehicle for QuantMCU: run_stage() returns every branch's
// region feature maps, optionally transformed per step — the hook the core
// library uses to inject fake-quantization at searched bitwidths.
//
// Construction compiles the plan into a patch::CompiledPatchModel; hook-free
// run() executes against its static tensor arena with zero per-step
// allocation. The hook paths (run_stage / hooked run) keep the per-step
// tensors the calibration machinery mutates and inspects.
#pragma once

#include <functional>
#include <vector>

#include "nn/executor.h"
#include "nn/graph.h"
#include "patch/compiled_patch_model.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Extracts region `want` (possibly extending outside the feature map, where
// it is zero-filled) from `have`, a tensor holding region `avail` of a
// feature map with full shape `full`. Every in-bounds element of `want`
// must be inside `avail`. The `_into` form writes into a caller-bound
// destination (zero-filling out-of-bounds positions).
nn::Tensor crop_from_region(const nn::Tensor& have, const Region& avail,
                            const Region& want, const nn::TensorShape& full);
void crop_from_region_into(const nn::Tensor& have, const Region& avail,
                           const Region& want, const nn::TensorShape& full,
                           nn::Tensor& out);

class PatchExecutor {
 public:
  // Called after each branch step with (branch index, step index, tensor);
  // may mutate the tensor (e.g. fake-quantize it).
  using StepHook = std::function<void(int, int, nn::Tensor&)>;

  PatchExecutor(const nn::Graph& g, PatchPlan plan,
                nn::ops::KernelTier tier = nn::ops::KernelTier::Simd);

  // Stage feature maps per branch: result[b][s] corresponds to
  // plan().branches[b].steps[s].
  [[nodiscard]] std::vector<std::vector<nn::Tensor>> run_stage(
      const nn::Tensor& input, const StepHook& hook = {}) const;

  // Full inference: patch phase, reassembly of the cut layer's feature map,
  // then layer-based tail. Equals nn::Executor::run bit-for-bit when no
  // hook is installed (and then runs through the compiled arena schedule).
  [[nodiscard]] nn::Tensor run(const nn::Tensor& input,
                               const StepHook& hook = {}) const;

  // Hook-free pipelined inference over `pool`: branch tasks, tail row
  // bands and the join scheduled as one dependency graph (per-worker arena
  // slices + work stealing); bit-identical to run().
  [[nodiscard]] nn::Tensor run_parallel(const nn::Tensor& input,
                                        nn::WorkerPool* pool) const {
    return compiled_.run(input, pool);
  }
  // The PR-3 two-phase runtime (branch barrier, tail on the caller) —
  // the pipelined path's comparison baseline. Bit-identical to run().
  [[nodiscard]] nn::Tensor run_parallel_barrier(const nn::Tensor& input,
                                                nn::WorkerPool* pool) const {
    return compiled_.run_barrier(input, pool);
  }

  // The reassembled cut-layer feature map (useful in tests/examples).
  [[nodiscard]] nn::Tensor run_stage_assembled(const nn::Tensor& input,
                                               const StepHook& hook = {}) const;

  [[nodiscard]] const PatchPlan& plan() const { return compiled_.plan(); }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }
  [[nodiscard]] const CompiledPatchModel& compiled() const {
    return compiled_;
  }

 private:
  [[nodiscard]] std::vector<nn::Tensor> run_branch(
      const nn::Tensor& input, int branch_index, const StepHook& hook) const;

  const nn::Graph* graph_;
  // All paths — compiled and legacy/hooked — share the compiled model's
  // kernel backend, so one scratch arena and one weight-panel cache serve
  // the executor.
  CompiledPatchModel compiled_;
};

}  // namespace qmcu::patch
