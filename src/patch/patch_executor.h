// patch_executor.h — actually *runs* patch-based inference.
//
// The correctness invariant of patch-based inference is that it computes
// bit-identical results to layer-based inference: the halos exist precisely
// so no receptive field is truncated. PatchExecutor enforces that invariant
// (tests compare against nn::Executor exactly), and doubles as the
// calibration vehicle for QuantMCU: run_stage() returns every branch's
// region feature maps, optionally transformed per step — the hook the core
// library uses to inject fake-quantization at searched bitwidths.
#pragma once

#include <functional>
#include <vector>

#include "nn/executor.h"
#include "nn/graph.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Extracts region `want` (possibly extending outside the feature map, where
// it is zero-filled) from `have`, a tensor holding region `avail` of a
// feature map with full shape `full`. Every in-bounds element of `want`
// must be inside `avail`.
nn::Tensor crop_from_region(const nn::Tensor& have, const Region& avail,
                            const Region& want, const nn::TensorShape& full);

class PatchExecutor {
 public:
  // Called after each branch step with (branch index, step index, tensor);
  // may mutate the tensor (e.g. fake-quantize it).
  using StepHook = std::function<void(int, int, nn::Tensor&)>;

  PatchExecutor(const nn::Graph& g, PatchPlan plan,
                nn::ops::KernelTier tier = nn::ops::KernelTier::Fast);

  // Stage feature maps per branch: result[b][s] corresponds to
  // plan().branches[b].steps[s].
  [[nodiscard]] std::vector<std::vector<nn::Tensor>> run_stage(
      const nn::Tensor& input, const StepHook& hook = {}) const;

  // Full inference: patch phase, reassembly of the cut layer's feature map,
  // then layer-based tail. Equals nn::Executor::run bit-for-bit when no
  // hook is installed.
  [[nodiscard]] nn::Tensor run(const nn::Tensor& input,
                               const StepHook& hook = {}) const;

  // The reassembled cut-layer feature map (useful in tests/examples).
  [[nodiscard]] nn::Tensor run_stage_assembled(const nn::Tensor& input,
                                               const StepHook& hook = {}) const;

  [[nodiscard]] const PatchPlan& plan() const { return plan_; }
  [[nodiscard]] const nn::Graph& graph() const { return *graph_; }

 private:
  [[nodiscard]] std::vector<nn::Tensor> run_branch(
      const nn::Tensor& input, int branch_index, const StepHook& hook) const;

  const nn::Graph* graph_;
  PatchPlan plan_;
  // Kernel dispatch + scratch arena shared by every branch step, so the
  // patch phase reuses its im2col/accumulator scratch instead of
  // allocating per op.
  mutable nn::ops::KernelBackend backend_;
};

}  // namespace qmcu::patch
