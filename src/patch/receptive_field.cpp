#include "patch/receptive_field.h"

namespace qmcu::patch {

namespace {

Interval windowed_input_interval(Interval out, int kernel, int stride,
                                 int pad) {
  if (out.empty()) return {};
  return {out.begin * stride - pad, (out.end - 1) * stride - pad + kernel};
}

}  // namespace

Region required_input_region(const nn::Layer& l,
                             const nn::TensorShape& input_shape,
                             const Region& out) {
  using nn::OpKind;
  switch (l.kind) {
    case OpKind::Conv2D:
    case OpKind::DepthwiseConv2D:
    case OpKind::MaxPool:
    case OpKind::AvgPool:
      return {windowed_input_interval(out.y, l.kernel_h, l.stride_h, l.pad_h),
              windowed_input_interval(out.x, l.kernel_w, l.stride_w, l.pad_w)};
    case OpKind::Add:
    case OpKind::Concat:
    case OpKind::Softmax:
      return out;
    case OpKind::GlobalAvgPool:
    case OpKind::FullyConnected:
      return full_region(input_shape);
    case OpKind::Input:
      QMCU_REQUIRE(false, "input layer has no input region");
  }
  QMCU_ENSURE(false, "unhandled op kind");
}

}  // namespace qmcu::patch
