// patch_cost.h — BitOPs / latency / peak-SRAM accounting for a patch plan.
//
// Prices a full patch-based execution under an arbitrary per-branch,
// per-feature-map bitwidth assignment (the object QuantMCU's VDQS searches
// over) plus a per-layer assignment for the layer-based tail after the cut.
// Uniform 8-bit assignments price plain MCUNetV2-style patch inference.
//
// Memory model (matches DESIGN.md §6):
//  * the input image is resident throughout the patch phase as per-patch
//    quantized tiles (disjoint tiling; halo margins are re-read from
//    neighbouring tiles and requantized on the fly, costing no storage);
//  * each branch's working set follows intra-branch liveness of its region
//    tensors at the branch's bitwidths;
//  * the cut layer's feature map accumulates slice by slice as branches
//    retire, each slice stored at its branch's final bitwidth;
//  * after the cut, the tail runs layer-based with `tail_bits`, the input
//    image having been freed.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mcu/cost_model.h"
#include "nn/graph.h"
#include "nn/runtime/worker_pool.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Activation bitwidths for one branch, parallel to PatchBranch::steps.
struct BranchBits {
  std::vector<int> bits;
};

struct PatchCost {
  std::int64_t bitops = 0;
  double cycles = 0.0;
  double latency_ms = 0.0;
  std::int64_t peak_bytes = 0;
  std::int64_t stage_bitops = 0;  // patch-phase share of bitops
};

// All branches and every tail layer at the same bitwidth.
std::vector<BranchBits> uniform_branch_bits(const PatchPlan& plan, int bits);

// Relative execution price of every branch (MACs plus element ops), the
// weight the parallel runtimes chunk branches by. Border branches are
// cheaper than interior ones (smaller halos), which is exactly the
// imbalance cost-weighted chunking flattens.
std::vector<std::int64_t> branch_costs(const PatchPlan& plan);

// Splits [0, costs.size()) into at most `max_chunks` contiguous ranges of
// approximately equal total cost (greedy accumulation against the running
// average). Cheap neighbours — border branches — coalesce into one range;
// an expensive interior branch stays alone. Never returns an empty range;
// ranges cover the index space exactly once, in order.
std::vector<nn::IndexRange> weighted_chunks(
    std::span<const std::int64_t> costs, int max_chunks);

// Bytes of the reassembled cut-layer feature map (sum of branch slices).
std::int64_t split_feature_map_bytes(const nn::Graph& g, const PatchPlan& plan,
                                     std::span<const BranchBits> branch_bits);

// Full price of one inference. `branch_bits` has one entry per branch;
// `tail_bits[i]` is the storage bitwidth of layer i's output for i beyond
// the cut (entries at or before the cut are ignored).
PatchCost evaluate_patch_cost(const nn::Graph& g, const PatchPlan& plan,
                              std::span<const BranchBits> branch_bits,
                              std::span<const int> tail_bits,
                              const mcu::CostModel& cost_model,
                              int weight_bits = 8);

}  // namespace qmcu::patch
