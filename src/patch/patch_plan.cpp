#include "patch/patch_plan.h"

#include <algorithm>

namespace qmcu::patch {

namespace {

// Per-output-pixel MAC count of a layer (0 for non-MAC ops).
std::int64_t macs_per_output_pixel(const nn::Graph& g, int id) {
  const nn::Layer& l = g.layer(id);
  switch (l.kind) {
    case nn::OpKind::Conv2D:
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w *
             g.shape(l.inputs[0]).c * l.out_channels;
    case nn::OpKind::DepthwiseConv2D:
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w *
             g.shape(l.inputs[0]).c;
    default:
      return 0;
  }
}

// Per-output-pixel non-MAC element ops.
std::int64_t element_ops_per_output_pixel(const nn::Graph& g, int id) {
  const nn::Layer& l = g.layer(id);
  const int c = g.shape(id).c;
  switch (l.kind) {
    case nn::OpKind::MaxPool:
    case nn::OpKind::AvgPool:
      return static_cast<std::int64_t>(l.kernel_h) * l.kernel_w * c;
    case nn::OpKind::Add:
    case nn::OpKind::Concat:
      return c;
    default:
      return 0;
  }
}

Interval tile_interval(int extent, int tiles, int index) {
  // Near-equal integer tiling: [floor(i*E/T), floor((i+1)*E/T)).
  return {static_cast<int>(static_cast<std::int64_t>(index) * extent / tiles),
          static_cast<int>(static_cast<std::int64_t>(index + 1) * extent /
                           tiles)};
}

}  // namespace

int PatchBranch::step_of(int layer_id) const {
  for (std::size_t i = 0; i < steps.size(); ++i) {
    if (steps[i].layer_id == layer_id) return static_cast<int>(i);
  }
  return -1;
}

int branch_last_use(const nn::Graph& g, const PatchBranch& branch,
                    int step_index) {
  QMCU_REQUIRE(step_index >= 0 &&
                   step_index < static_cast<int>(branch.steps.size()),
               "step index out of range");
  const int layer_id =
      branch.steps[static_cast<std::size_t>(step_index)].layer_id;
  int last = step_index;
  for (std::size_t s = static_cast<std::size_t>(step_index) + 1;
       s < branch.steps.size(); ++s) {
    for (int in : g.layer(branch.steps[s].layer_id).inputs) {
      if (in == layer_id) last = static_cast<int>(s);
    }
  }
  return last;
}

std::vector<int> valid_cut_points(const nn::Graph& g) {
  std::vector<int> cuts;
  bool saw_windowed = false;
  for (int l = 0; l < g.size(); ++l) {
    if (nn::is_windowed_op(g.layer(l).kind)) saw_windowed = true;
    if (!saw_windowed) continue;
    // Spatial output required: patching a 1x1 map is meaningless.
    const nn::TensorShape& s = g.shape(l);
    if (s.h < 2 || s.w < 2) continue;
    bool escapes = false;
    for (int i = 0; i <= l && !escapes; ++i) {
      if (i == l) break;  // edges out of the cut layer itself are fine
      for (int c : g.consumers(i)) {
        if (c > l) {
          escapes = true;
          break;
        }
      }
    }
    if (!escapes) cuts.push_back(l);
  }
  return cuts;
}

Region PatchPlan::input_tile(int row, int col,
                             const nn::TensorShape& input_shape) const {
  return {tile_interval(input_shape.h, spec.grid_rows, row),
          tile_interval(input_shape.w, spec.grid_cols, col)};
}

PatchPlan build_patch_plan(const nn::Graph& g, const PatchSpec& spec) {
  QMCU_REQUIRE(spec.grid_rows >= 1 && spec.grid_cols >= 1,
               "patch grid must be at least 1x1");
  const std::vector<int> cuts = valid_cut_points(g);
  QMCU_REQUIRE(std::find(cuts.begin(), cuts.end(), spec.split_layer) !=
                   cuts.end(),
               "split_layer is not a valid cut point");
  const nn::TensorShape& split_shape = g.shape(spec.split_layer);
  QMCU_REQUIRE(split_shape.h >= spec.grid_rows &&
                   split_shape.w >= spec.grid_cols,
               "grid finer than the cut layer's feature map");

  PatchPlan plan;
  plan.spec = spec;
  for (int l = 0; l <= spec.split_layer; ++l) plan.stage_layers.push_back(l);

  for (int l : plan.stage_layers) {
    plan.stage_macs_layer_based += g.macs(l);
  }

  const int n = spec.split_layer + 1;
  for (int row = 0; row < spec.grid_rows; ++row) {
    for (int col = 0; col < spec.grid_cols; ++col) {
      PatchBranch branch;
      branch.row = row;
      branch.col = col;

      // Backward propagation: required (clamped) region per stage layer.
      std::vector<Region> required(static_cast<std::size_t>(n));
      std::vector<Region> unclamped_need(static_cast<std::size_t>(n));
      required[static_cast<std::size_t>(spec.split_layer)] = {
          tile_interval(split_shape.h, spec.grid_rows, row),
          tile_interval(split_shape.w, spec.grid_cols, col)};
      for (int l = spec.split_layer; l >= 0; --l) {
        const nn::Layer& layer = g.layer(l);
        if (layer.kind == nn::OpKind::Input) continue;
        const Region out = required[static_cast<std::size_t>(l)];
        QMCU_ENSURE(!out.empty(), "stage layer with empty required region");
        for (int in : layer.inputs) {
          QMCU_ENSURE(in <= spec.split_layer,
                      "stage layer consumes a post-cut tensor");
          const Region need =
              required_input_region(layer, g.shape(in), out);
          unclamped_need[static_cast<std::size_t>(l)] =
              unite(unclamped_need[static_cast<std::size_t>(l)], need);
          const nn::TensorShape& ishape = g.shape(in);
          const Region clamped = {clamp(need.y, 0, ishape.h),
                                  clamp(need.x, 0, ishape.w)};
          required[static_cast<std::size_t>(in)] =
              unite(required[static_cast<std::size_t>(in)], clamped);
        }
      }

      // Forward pass: materialise steps in topological order.
      for (int l : plan.stage_layers) {
        const Region out = required[static_cast<std::size_t>(l)];
        if (out.empty()) continue;  // layer not needed by this patch
        BranchStep step;
        step.layer_id = l;
        step.out_region = out;
        step.in_region = unclamped_need[static_cast<std::size_t>(l)];
        step.macs = out.area() * macs_per_output_pixel(g, l);
        step.element_ops = out.area() * element_ops_per_output_pixel(g, l);
        step.out_elements = out.area() * g.shape(l).c;
        branch.total_macs += step.macs;
        branch.steps.push_back(step);
      }
      plan.stage_macs_patched += branch.total_macs;
      plan.branches.push_back(std::move(branch));
    }
  }
  return plan;
}

}  // namespace qmcu::patch
