#include "patch/streaming_diff.h"

#include <cmath>
#include <cstring>

#include "nn/check.h"
#include "nn/checksum.h"
#include "nn/shape.h"

namespace qmcu::patch {

namespace {

// First/last pixel of the row whose channel bytes differ, as a half-open
// column interval ({0,0} when the rows are byte-identical — callers check
// with memcmp first, so this only runs on rows known to differ).
Interval row_changed_span(const float* a, const float* b, int w, int c,
                          std::int64_t& changed_pixels) {
  int first = -1;
  int last = -1;
  for (int x = 0; x < w; ++x) {
    if (std::memcmp(a + static_cast<std::ptrdiff_t>(x) * c,
                    b + static_cast<std::ptrdiff_t>(x) * c,
                    static_cast<std::size_t>(c) * sizeof(float)) != 0) {
      if (first < 0) first = x;
      last = x;
      ++changed_pixels;
    }
  }
  if (first < 0) return {};
  return {first, last + 1};
}

}  // namespace

FrameDiff diff_frames(const nn::Tensor& prev, const nn::Tensor& cur) {
  QMCU_REQUIRE(prev.shape() == cur.shape(),
               "diff_frames: frames must have identical shapes");
  const nn::TensorShape& s = cur.shape();
  const std::int64_t row_elems = static_cast<std::int64_t>(s.w) * s.c;
  const float* a = prev.data().data();
  const float* b = cur.data().data();

  FrameDiff d;
  d.row_spans.resize(static_cast<std::size_t>(s.h));
  for (int y = 0; y < s.h; ++y) {
    const float* ra = a + y * row_elems;
    const float* rb = b + y * row_elems;
    // Fast path: most rows of a mostly-static frame are byte-identical.
    if (std::memcmp(ra, rb,
                    static_cast<std::size_t>(row_elems) * sizeof(float)) == 0) {
      continue;
    }
    const Interval span = row_changed_span(ra, rb, s.w, s.c, d.changed_pixels);
    d.row_spans[static_cast<std::size_t>(y)] = span;
    if (!span.empty()) {
      d.bounds.y = unite(d.bounds.y, Interval{y, y + 1});
      d.bounds.x = unite(d.bounds.x, span);
    }
  }
  return d;
}

Region branch_input_region(const PatchPlan& plan, int branch,
                           const nn::TensorShape& input_shape) {
  const PatchBranch& b = plan.branches[static_cast<std::size_t>(branch)];
  const Region& crop = b.steps.front().out_region;
  return {clamp(crop.y, 0, input_shape.h), clamp(crop.x, 0, input_shape.w)};
}

namespace {

constexpr bool regions_overlap(const Region& a, const Region& b) {
  return a.y.begin < b.y.end && b.y.begin < a.y.end && a.x.begin < b.x.end &&
         b.x.begin < a.x.end;
}

}  // namespace

std::vector<int> affected_branches(const PatchPlan& plan, const Region& rect,
                                   const nn::TensorShape& input_shape) {
  std::vector<int> hit;
  if (rect.empty()) return hit;
  for (int b = 0; b < static_cast<int>(plan.branches.size()); ++b) {
    if (regions_overlap(branch_input_region(plan, b, input_shape), rect)) {
      hit.push_back(b);
    }
  }
  return hit;
}

std::vector<std::uint8_t> dirty_branches(const nn::Tensor& prev,
                                         const nn::Tensor& cur,
                                         const PatchPlan& plan) {
  const FrameDiff d = diff_frames(prev, cur);
  std::vector<std::uint8_t> dirty(plan.branches.size(), 0);
  if (d.identical()) return dirty;
  for (std::size_t b = 0; b < plan.branches.size(); ++b) {
    const Region r =
        branch_input_region(plan, static_cast<int>(b), cur.shape());
    for (int y = std::max(r.y.begin, d.bounds.y.begin);
         y < std::min(r.y.end, d.bounds.y.end); ++y) {
      const Interval& span = d.row_spans[static_cast<std::size_t>(y)];
      if (span.empty()) continue;
      if (r.x.begin < span.end && span.begin < r.x.end) {
        dirty[b] = 1;
        break;
      }
    }
  }
  return dirty;
}

std::vector<std::uint8_t> dirty_branches(const nn::Tensor& prev,
                                         const nn::Tensor& cur,
                                         const PatchPlan& plan,
                                         float max_region_delta) {
  std::vector<std::uint8_t> dirty = dirty_branches(prev, cur, plan);
  if (max_region_delta <= 0.0f) return dirty;
  const nn::TensorShape& s = cur.shape();
  const float* a = prev.data().data();
  const float* b = cur.data().data();
  for (std::size_t bi = 0; bi < dirty.size(); ++bi) {
    if (!dirty[bi]) continue;  // exactness already says clean
    const Region r = branch_input_region(plan, static_cast<int>(bi), s);
    double sum = 0.0;
    for (int y = r.y.begin; y < r.y.end; ++y) {
      for (int x = r.x.begin; x < r.x.end; ++x) {
        const std::int64_t at = nn::flat_index(s, y, x, 0);
        for (int ch = 0; ch < s.c; ++ch) {
          sum += std::fabs(static_cast<double>(a[at + ch]) -
                           static_cast<double>(b[at + ch]));
        }
      }
    }
    const double count = static_cast<double>(r.area()) * s.c;
    if (count > 0.0 && sum / count <= static_cast<double>(max_region_delta)) {
      dirty[bi] = 0;
    }
  }
  return dirty;
}

// --- content fingerprints ---------------------------------------------------

namespace {

template <class T>
std::uint32_t rows_crc_impl(const T& t, const Interval& rows) {
  const nn::TensorShape& s = t.shape();
  QMCU_REQUIRE(rows.begin >= 0 && rows.end <= s.h && !rows.empty(),
               "rows_crc32: row interval out of bounds");
  const std::int64_t stride = static_cast<std::int64_t>(s.w) * s.c;
  const auto span = t.data();
  return nn::crc32(span.data() + rows.begin * stride,
                   static_cast<std::size_t>(rows.size() * stride) *
                       sizeof(span[0]));
}

template <class T>
std::uint32_t region_crc_impl(const T& t, const Region& r) {
  const nn::TensorShape& s = t.shape();
  QMCU_REQUIRE(r.y.begin >= 0 && r.y.end <= s.h && r.x.begin >= 0 &&
                   r.x.end <= s.w,
               "region_crc32: region out of bounds");
  const auto span = t.data();
  std::uint32_t acc = 2166136261u;  // FNV offset basis
  for (int y = r.y.begin; y < r.y.end; ++y) {
    const std::uint32_t row = nn::crc32(
        span.data() + nn::flat_index(s, y, r.x.begin, 0),
        static_cast<std::size_t>(r.x.size()) * static_cast<std::size_t>(s.c) *
            sizeof(span[0]));
    acc = (acc ^ row) * 16777619u;  // FNV-1a fold of the per-row CRCs
  }
  return acc;
}

}  // namespace

std::uint32_t tensor_crc32(const nn::Tensor& t) {
  return nn::crc32(t.data().data(), t.data().size() * sizeof(float));
}

std::uint32_t tensor_crc32(const nn::QTensor& t) {
  return nn::crc32(t.data().data(), t.data().size());
}

std::uint32_t rows_crc32(const nn::Tensor& t, const Interval& rows) {
  return rows_crc_impl(t, rows);
}

std::uint32_t rows_crc32(const nn::QTensor& t, const Interval& rows) {
  return rows_crc_impl(t, rows);
}

std::uint32_t region_crc32(const nn::Tensor& t, const Region& r) {
  return region_crc_impl(t, r);
}

std::uint32_t region_crc32(const nn::QTensor& t, const Region& r) {
  return region_crc_impl(t, r);
}

}  // namespace qmcu::patch
