// patch_quant_executor.h — the deployed execution path: patch-based
// inference in the quantized domain.
//
// Two operating modes, matching the paper's runtime:
//   * uniform — every feature map at its calibrated per-layer QuantParams
//     (the MCUNetV2-style int8 deployment). Bit-identical to the
//     layer-based QuantExecutor: region crops fill padding with the
//     producer's zero point, exactly what the windowed integer kernels
//     assume for out-of-bounds positions.
//   * mixed — each branch carries its own per-step QuantParams (the VDQS
//     bitwidth assignment materialised over the calibrated ranges); the
//     reassembled cut-layer feature map is requantized slice by slice into
//     the tail's parameters, as the deployed runtime would do when copying
//     a branch result into the shared accumulation buffer.
#pragma once

#include <vector>

#include "nn/executor.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Per-step QuantParams for one branch, parallel to PatchBranch::steps.
struct BranchQuantConfig {
  std::vector<nn::QuantParams> per_step;
};

class PatchQuantExecutor {
 public:
  // Uniform mode: stage steps inherit the per-layer params of `cfg`.
  PatchQuantExecutor(const nn::Graph& g, PatchPlan plan,
                     nn::ActivationQuantConfig cfg,
                     nn::ops::KernelTier tier = nn::ops::KernelTier::Fast);

  // Mixed mode: `branch_cfgs[b].per_step[s]` overrides the params of
  // branch b's step s; `cfg` still rules the tail (and the reassembled cut
  // feature map via cfg.params[split]).
  PatchQuantExecutor(const nn::Graph& g, PatchPlan plan,
                     nn::ActivationQuantConfig cfg,
                     std::vector<BranchQuantConfig> branch_cfgs,
                     nn::ops::KernelTier tier = nn::ops::KernelTier::Fast);

  [[nodiscard]] nn::QTensor run(const nn::Tensor& input) const;

  // The reassembled cut-layer feature map (tail params).
  [[nodiscard]] nn::QTensor run_stage_assembled(const nn::Tensor& input) const;

  [[nodiscard]] const PatchPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] const nn::QuantParams& step_params(int branch,
                                                   int step) const;
  [[nodiscard]] std::vector<nn::QTensor> run_branch(const nn::QTensor& qinput,
                                                    int branch) const;

  const nn::Graph* graph_;
  PatchPlan plan_;
  nn::ActivationQuantConfig cfg_;
  // Effective per-layer output params: pools propagate their producer's
  // parameters (the TFLite contract — max/avg/global pooling never
  // requantizes), so cfg.params[pool] is overridden by the producer chain.
  std::vector<nn::QuantParams> effective_;
  std::vector<BranchQuantConfig> branch_cfgs_;  // empty = uniform mode
  // Mixed mode: per-branch per-step int32 biases rescaled to the branch's
  // actual input scales (empty vectors for non-MAC steps).
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias_;
  nn::QuantizedParameters params_;
  // Kernel dispatch + scratch arena shared by all branch steps and the
  // layer-based tail, so patch-branch inference stops allocating per-op
  // temporaries.
  mutable nn::ops::KernelBackend backend_;
};

// Crops region `want` (unclamped; out-of-bounds positions are filled with
// the tensor's zero point, the quantized encoding of real 0) from `have`
// covering `avail` of a feature map with full extent `full`.
nn::QTensor crop_from_region_q(const nn::QTensor& have, const Region& avail,
                               const Region& want,
                               const nn::TensorShape& full);

}  // namespace qmcu::patch
