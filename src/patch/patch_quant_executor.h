// patch_quant_executor.h — the deployed execution path: patch-based
// inference in the quantized domain.
//
// Two operating modes, matching the paper's runtime:
//   * uniform — every feature map at its calibrated per-layer QuantParams
//     (the MCUNetV2-style int8 deployment). Bit-identical to the
//     layer-based QuantExecutor: region crops fill padding with the
//     producer's zero point, exactly what the windowed integer kernels
//     assume for out-of-bounds positions.
//   * mixed — each branch carries its own per-step QuantParams (the VDQS
//     bitwidth assignment materialised over the calibrated ranges); the
//     reassembled cut-layer feature map is requantized slice by slice into
//     the tail's parameters, as the deployed runtime would do when copying
//     a branch result into the shared accumulation buffer.
//
// Construction compiles the plan into a patch::CompiledPatchQuantModel;
// run() executes against its static tensor arena with zero per-step
// allocation. Weight conversion (QuantizedParameters) can be prebuilt once
// and shared across executors — bench sweeps construct many executors over
// the same graph.
#pragma once

#include <memory>
#include <vector>

#include "nn/executor.h"
#include "patch/compiled_patch_model.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

class PatchQuantExecutor {
 public:
  // Uniform mode: stage steps inherit the per-layer params of `cfg`.
  PatchQuantExecutor(
      const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
      nn::ops::KernelTier tier = nn::ops::KernelTier::Simd,
      std::shared_ptr<const nn::QuantizedParameters> params = {});

  // Mixed mode: `branch_cfgs[b].per_step[s]` overrides the params of
  // branch b's step s; `cfg` still rules the tail (and the reassembled cut
  // feature map via cfg.params[split]).
  PatchQuantExecutor(
      const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
      std::vector<BranchQuantConfig> branch_cfgs,
      nn::ops::KernelTier tier = nn::ops::KernelTier::Simd,
      std::shared_ptr<const nn::QuantizedParameters> params = {});

  // Compiled arena path (bit-identical to the legacy per-step-tensor path).
  [[nodiscard]] nn::QTensor run(const nn::Tensor& input) const;

  // Pipelined dataflow inference over `pool` (branch tasks, tail row
  // bands, join); bit-identical to run() for every worker count and
  // readiness order.
  [[nodiscard]] nn::QTensor run_parallel(const nn::Tensor& input,
                                         nn::WorkerPool* pool) const {
    return compiled_.run(input, pool);
  }
  // The PR-3 two-phase runtime, kept as the comparison baseline.
  [[nodiscard]] nn::QTensor run_parallel_barrier(const nn::Tensor& input,
                                                 nn::WorkerPool* pool) const {
    return compiled_.run_barrier(input, pool);
  }

  // The reassembled cut-layer feature map (tail params).
  [[nodiscard]] nn::QTensor run_stage_assembled(const nn::Tensor& input) const;

  [[nodiscard]] const PatchPlan& plan() const { return compiled_.plan(); }
  [[nodiscard]] const CompiledPatchQuantModel& compiled() const {
    return compiled_;
  }
  [[nodiscard]] const std::shared_ptr<const nn::QuantizedParameters>&
  shared_parameters() const {
    return compiled_.shared_parameters();
  }

 private:
  [[nodiscard]] std::vector<nn::QTensor> run_branch(const nn::QTensor& qinput,
                                                    int branch) const;

  const nn::Graph* graph_;
  // Single source of compile-time state: quant config, pool-propagated
  // effective params, branch configs/biases, shared weight conversion and
  // the kernel backend (scratch + panel cache) all live in the compiled
  // model; the legacy run_stage_assembled path reads them from there.
  CompiledPatchQuantModel compiled_;
};

// Crops region `want` (unclamped; out-of-bounds positions are filled with
// the tensor's zero point, the quantized encoding of real 0) from `have`
// covering `avail` of a feature map with full extent `full`. The `_into`
// form writes into a caller-bound destination carrying `have`'s params.
nn::QTensor crop_from_region_q(const nn::QTensor& have, const Region& avail,
                               const Region& want,
                               const nn::TensorShape& full);
void crop_from_region_q_into(const nn::QTensor& have, const Region& avail,
                             const Region& want, const nn::TensorShape& full,
                             nn::QTensor& out);

}  // namespace qmcu::patch
