#include "patch/compiled_patch_model.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "nn/executor.h"
#include "nn/ops/float_kernels.h"
#include "nn/ops/lut/lut_kernels.h"
#include "nn/ops/requantize.h"
#include "patch/patch_cost.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "patch/region_pool.h"

namespace qmcu::patch {

namespace {

using nn::ArenaRequest;

// Branch step liveness is identical across branches (same layer structure),
// so the unified timeline is: step indices [0, S) for the branch phase
// (slots reused branch after branch), then one step per tail layer.
struct PatchTimeline {
  std::vector<ArenaRequest> requests;
  int num_steps = 0;        // S
  int assembled_index = 0;  // request index of the reassembled cut layer
};

PatchTimeline build_timeline(const nn::Graph& g, const PatchPlan& plan,
                             std::int64_t elem_bytes) {
  PatchTimeline t;
  const PatchBranch& proto = plan.branches.front();
  t.num_steps = static_cast<int>(proto.steps.size());
  const int split = plan.spec.split_layer;
  const int tail_count = g.size() - split - 1;

  // Branch slots: the largest region any branch computes at each step.
  for (int s = 0; s < t.num_steps; ++s) {
    std::int64_t size = 0;
    for (const PatchBranch& b : plan.branches) {
      const BranchStep& step = b.steps[static_cast<std::size_t>(s)];
      const std::int64_t c = g.shape(step.layer_id).c;
      size = std::max(size, step.out_region.area() * c * elem_bytes);
    }
    t.requests.push_back({size, s, branch_last_use(g, proto, s)});
  }
  // Tail slots over layer-based lifetimes, shifted onto the timeline.
  for (int id = split + 1; id < g.size(); ++id) {
    t.requests.push_back({g.shape(id).elements() * elem_bytes,
                          t.num_steps + (id - split - 1),
                          t.num_steps + (nn::last_use_step(g, id) - split - 1)});
  }
  // The reassembled cut-layer map: written branch by branch, read by the
  // tail — live from the first branch step through its last tail consumer.
  const int last_use = nn::last_use_step(g, split);
  const int assembled_last = last_use > split
                                 ? t.num_steps + (last_use - split - 1)
                                 : std::max(t.num_steps - 1, 0);
  t.assembled_index = t.num_steps + tail_count;
  t.requests.push_back(
      {g.shape(split).elements() * elem_bytes, 0, assembled_last});
  return t;
}

nn::TensorShape region_shape(const BranchStep& step, int channels) {
  return {step.out_region.y.size(), step.out_region.x.size(), channels};
}

nn::Tensor borrow_f32(nn::ops::ScratchArena& a, const nn::TensorShape& s) {
  auto buf = a.f32(static_cast<std::size_t>(s.elements()));
  return nn::Tensor(s, std::span<float>(buf.data(), buf.size()));
}

nn::QTensor borrow_q(nn::ops::ScratchArena& a, const nn::TensorShape& s,
                     const nn::QuantParams& p) {
  auto buf = a.i8(static_cast<std::size_t>(s.elements()));
  return nn::QTensor(s, p, std::span<std::int8_t>(buf.data(), buf.size()));
}

// Binds a float view onto its planned slot at `base`. `measured` tracks the
// furthest byte actually written through bound views (base-relative), not
// the planned slot size: the high-water is a measurement, and it reaches
// the planned peak because the largest branch fully exercises its slot.
nn::Tensor bind_f32_slot(std::uint8_t* base, const nn::ArenaSlot& slot,
                         const nn::TensorShape& shape,
                         std::int64_t& measured) {
  const std::int64_t bytes =
      shape.elements() * static_cast<std::int64_t>(sizeof(float));
  QMCU_ENSURE(bytes <= slot.size, "bound view exceeds its arena slot");
  measured = std::max(measured, slot.offset + bytes);
  auto* data = reinterpret_cast<float*>(base + slot.offset);
  return nn::Tensor(
      shape, std::span<float>(data, static_cast<std::size_t>(shape.elements())));
}

nn::QTensor bind_q_slot(std::uint8_t* base, const nn::ArenaSlot& slot,
                        const nn::TensorShape& shape, const nn::QuantParams& p,
                        std::int64_t& measured) {
  QMCU_ENSURE(shape.elements() <= slot.size,
              "bound view exceeds its arena slot");
  measured = std::max(measured, slot.offset + shape.elements());
  auto* data = reinterpret_cast<std::int8_t*>(base + slot.offset);
  return nn::QTensor(
      shape, p,
      std::span<std::int8_t>(data,
                             static_cast<std::size_t>(shape.elements())));
}

// A zero-copy view of rows [rows.begin, rows.end) of a full feature map —
// rows are contiguous in HWC layout, so a tail band writes (and element-wise
// bands read) straight through the bound arena view.
nn::Tensor row_view(nn::Tensor& t, const Interval& rows) {
  const nn::TensorShape& s = t.shape();
  const std::int64_t stride = static_cast<std::int64_t>(s.w) * s.c;
  return nn::Tensor(
      nn::TensorShape{rows.size(), s.w, s.c},
      t.data().subspan(static_cast<std::size_t>(rows.begin * stride),
                       static_cast<std::size_t>(rows.size() * stride)));
}

nn::QTensor row_view(nn::QTensor& t, const Interval& rows) {
  const nn::TensorShape& s = t.shape();
  const std::int64_t stride = static_cast<std::int64_t>(s.w) * s.c;
  return nn::QTensor(
      nn::TensorShape{rows.size(), s.w, s.c}, t.params(),
      t.data().subspan(static_cast<std::size_t>(rows.begin * stride),
                       static_cast<std::size_t>(rows.size() * stride)));
}

constexpr bool rows_overlap(const Interval& a, const Interval& b) {
  return a.begin < b.end && b.begin < a.end;
}

// The streaming layout widens every shared slot's lifetime to the whole
// timeline: retained bytes (assembled tiles, tail maps) must survive from
// frame to frame, so no shared slot may ever be overlaid on another.
std::vector<ArenaRequest> widen_shared(std::vector<ArenaRequest> requests) {
  int last = 0;
  for (const ArenaRequest& r : requests) last = std::max(last, r.last_step);
  for (ArenaRequest& r : requests) {
    r.first_step = 0;
    r.last_step = last;
  }
  return requests;
}

// How many branch tasks each grid row contributes for `workers` lanes:
// roughly two tasks per lane across the whole grid keeps the scheduler fed
// without shredding the cost-weighted coalescing.
int chunks_per_grid_row(const PatchPlan& plan, int workers) {
  return std::max(1, (2 * workers + plan.spec.grid_rows - 1) /
                         plan.spec.grid_rows);
}

// Builds the dataflow graph shared by the float and quant pipelined runs:
// cost-weighted branch-chunk tasks per grid row -> tail row-band tasks
// wired through the precomputed readiness structure -> one join task for
// the non-banded rest of the tail. The body callbacks capture only the
// model (`this`), so the returned graph is cacheable per worker count —
// per-run state travels through the model's run_* members instead of the
// closures. Signatures: branch(b, lane), band(pi, j, lane), rest(lane).
template <class BranchBody, class BandBody, class RestBody>
nn::TaskGraph build_pipeline_graph(const PatchPlan& plan,
                                   std::span<const PipelinedTailLayer> bands,
                                   std::span<const std::int64_t> costs,
                                   int workers, BranchBody branch_body,
                                   BandBody band_body, RestBody rest_body) {
  nn::TaskGraph graph;
  const int grid_rows = plan.spec.grid_rows;
  const int grid_cols = plan.spec.grid_cols;
  const int per_row = chunks_per_grid_row(plan, workers);
  std::vector<std::vector<int>> row_tasks(
      static_cast<std::size_t>(grid_rows));
  for (int r = 0; r < grid_rows; ++r) {
    const auto ranges = weighted_chunks(
        costs.subspan(static_cast<std::size_t>(r * grid_cols),
                      static_cast<std::size_t>(grid_cols)),
        per_row);
    for (const nn::IndexRange& range : ranges) {
      const std::int64_t b0 = r * grid_cols + range.begin;
      const std::int64_t b1 = r * grid_cols + range.end;
      row_tasks[static_cast<std::size_t>(r)].push_back(
          graph.add([branch_body, b0, b1](int lane) {
            for (std::int64_t b = b0; b < b1; ++b) branch_body(b, lane);
          }));
    }
  }
  std::vector<std::vector<int>> band_tasks(bands.size());
  for (std::size_t pi = 0; pi < bands.size(); ++pi) {
    const PipelinedTailLayer& pl = bands[pi];
    band_tasks[pi].resize(pl.bands.size());
    for (std::size_t j = 0; j < pl.bands.size(); ++j) {
      const int task = graph.add(
          [band_body, pi, j](int lane) { band_body(pi, j, lane); });
      band_tasks[pi][j] = task;
      for (const int r : pl.grid_row_deps[j]) {
        for (const int t : row_tasks[static_cast<std::size_t>(r)]) {
          graph.depend(task, t);
        }
      }
      for (const auto& [qi, k] : pl.band_deps[j]) {
        graph.depend(task, band_tasks[static_cast<std::size_t>(qi)]
                               [static_cast<std::size_t>(k)]);
      }
    }
  }
  // The join: everything the row bands could not cover (global pools, the
  // classifier head) runs once, after every branch and band retired.
  const int join_preds = graph.size();
  const int join = graph.add([rest_body](int lane) { rest_body(lane); });
  for (int t = 0; t < join_preds; ++t) graph.depend(join, t);
  return graph;
}

}  // namespace

std::vector<PipelinedTailLayer> build_pipelined_tail(
    const nn::Graph& g, const PatchPlan& plan, int bands_per_layer) {
  QMCU_REQUIRE(bands_per_layer >= 1, "need at least one band per layer");
  const int split = plan.spec.split_layer;
  const int grid_rows = plan.spec.grid_rows;
  const int grid_cols = plan.spec.grid_cols;

  // The assembled-map row interval each grid row's branches merge; every
  // branch in a grid row shares its y tile (row-major branch order).
  std::vector<Interval> merged_rows(static_cast<std::size_t>(grid_rows));
  for (int r = 0; r < grid_rows; ++r) {
    merged_rows[static_cast<std::size_t>(r)] =
        plan.branches[static_cast<std::size_t>(r * grid_cols)]
            .steps.back()
            .out_region.y;
  }

  std::vector<PipelinedTailLayer> prefix;
  std::vector<int> prefix_index(static_cast<std::size_t>(g.size()), -1);
  for (int id = split + 1; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    const bool bandable = l.kind == nn::OpKind::Conv2D ||
                          l.kind == nn::OpKind::DepthwiseConv2D ||
                          l.kind == nn::OpKind::MaxPool ||
                          l.kind == nn::OpKind::AvgPool ||
                          l.kind == nn::OpKind::Add ||
                          l.kind == nn::OpKind::Concat;
    if (!bandable) break;
    bool inputs_banded = true;
    for (const int in : l.inputs) {
      if (in != split && prefix_index[static_cast<std::size_t>(in)] < 0) {
        inputs_banded = false;
        break;
      }
    }
    if (!inputs_banded) break;

    PipelinedTailLayer pl;
    pl.layer_id = id;
    const nn::TensorShape& os = g.shape(id);
    // A band of fewer rows than this costs more in scheduling than its
    // kernel work returns, so small maps get fewer bands (down to one —
    // still a task, so the layer overlaps whatever it does not depend on).
    constexpr int kMinRowsPerBand = 4;
    const int bands = std::clamp(
        std::min(bands_per_layer, os.h / kMinRowsPerBand), 1, os.h);
    pl.bands.reserve(static_cast<std::size_t>(bands));
    for (int j = 0; j < bands; ++j) {
      pl.bands.push_back({j * os.h / bands, (j + 1) * os.h / bands});
    }
    pl.grid_row_deps.resize(static_cast<std::size_t>(bands));
    pl.band_deps.resize(static_cast<std::size_t>(bands));
    for (int j = 0; j < bands; ++j) {
      const Region out_region{pl.bands[static_cast<std::size_t>(j)],
                              {0, os.w}};
      for (const int in : l.inputs) {
        const nn::TensorShape& is = g.shape(in);
        const Interval need =
            clamp(required_input_region(l, is, out_region).y, 0, is.h);
        if (need.empty()) continue;
        if (in == split) {
          for (int r = 0; r < grid_rows; ++r) {
            if (rows_overlap(merged_rows[static_cast<std::size_t>(r)],
                             need)) {
              pl.grid_row_deps[static_cast<std::size_t>(j)].push_back(r);
            }
          }
        } else {
          const int pi = prefix_index[static_cast<std::size_t>(in)];
          const PipelinedTailLayer& producer =
              prefix[static_cast<std::size_t>(pi)];
          for (int k = 0; k < static_cast<int>(producer.bands.size()); ++k) {
            if (rows_overlap(producer.bands[static_cast<std::size_t>(k)],
                             need)) {
              pl.band_deps[static_cast<std::size_t>(j)].push_back({pi, k});
            }
          }
        }
      }
    }
    prefix_index[static_cast<std::size_t>(id)] =
        static_cast<int>(prefix.size());
    prefix.push_back(std::move(pl));
  }
  return prefix;
}

std::vector<std::vector<std::vector<std::int32_t>>> build_branch_bias(
    const nn::Graph& g, const PatchPlan& plan,
    std::span<const BranchQuantConfig> branch_cfgs,
    const nn::QuantizedParameters& params) {
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias;
  branch_bias.resize(branch_cfgs.size());
  for (std::size_t b = 0; b < branch_cfgs.size(); ++b) {
    const PatchBranch& branch = plan.branches[b];
    branch_bias[b].resize(branch.steps.size());
    for (std::size_t s = 0; s < branch.steps.size(); ++s) {
      const int id = branch.steps[s].layer_id;
      const nn::Layer& l = g.layer(id);
      if (!nn::is_mac_op(l.kind) || g.bias(id).empty()) continue;
      const int p = branch.step_of(l.inputs[0]);
      QMCU_ENSURE(p >= 0, "MAC step without in-branch producer");
      branch_bias[b][s] = nn::ops::quantize_bias(
          g.bias(id),
          branch_cfgs[b].per_step[static_cast<std::size_t>(p)].scale,
          params.weights[static_cast<std::size_t>(id)].params.scale);
    }
  }
  return branch_bias;
}

// --- float -----------------------------------------------------------------

CompiledPatchModel::CompiledPatchModel(const nn::Graph& g, PatchPlan plan,
                                       nn::ops::KernelTier tier)
    : graph_(&g), plan_(std::move(plan)), backend_(tier) {
  QMCU_REQUIRE(!plan_.branches.empty(), "plan has no branches");
  const PatchTimeline t = build_timeline(
      g, plan_, static_cast<std::int64_t>(sizeof(float)));
  num_steps_ = t.num_steps;
  assembled_slot_ = t.assembled_index;
  aplan_ = nn::ArenaPlanner().plan(t.requests);
  // Parallel layout inputs: branch-step slots become the per-worker slice,
  // tail + assembled slots the shared region.
  slice_requests_.assign(t.requests.begin(),
                         t.requests.begin() + num_steps_);
  shared_requests_.assign(t.requests.begin() + num_steps_, t.requests.end());
  par_assembled_slot_ = static_cast<int>(shared_requests_.size()) - 1;
  // Pipelined dataflow structure: row-banded tail prefix (band count tied
  // to the patch grid's row granularity), branch pricing for cost-weighted
  // task chunking, and the widening horizon for plan_pipelined.
  pipeline_ =
      build_pipelined_tail(g, plan_, std::max(2, plan_.spec.grid_rows));
  branch_costs_ = branch_costs(plan_);
  pipeline_horizon_ =
      num_steps_ + static_cast<int>(pipeline_.size()) - 1;
}

const nn::ParallelArenaPlan& CompiledPatchModel::parallel_plan(
    int num_workers) const {
  auto it = pplans_.find(num_workers);
  if (it == pplans_.end()) {
    it = pplans_
             .emplace(num_workers,
                      nn::ArenaPlanner().plan_parallel(
                          slice_requests_, shared_requests_, num_workers))
             .first;
  }
  return it->second;
}

const nn::ParallelArenaPlan& CompiledPatchModel::pipelined_plan(
    int num_workers) const {
  auto it = pipelined_pplans_.find(num_workers);
  if (it == pipelined_pplans_.end()) {
    it = pipelined_pplans_
             .emplace(num_workers, nn::ArenaPlanner().plan_pipelined(
                                       slice_requests_, shared_requests_,
                                       num_workers, pipeline_horizon_))
             .first;
  }
  return it->second;
}

const nn::ParallelArenaPlan& CompiledPatchModel::streaming_plan(
    int num_workers) const {
  auto it = streaming_pplans_.find(num_workers);
  if (it == streaming_pplans_.end()) {
    it = streaming_pplans_
             .emplace(num_workers,
                      nn::ArenaPlanner().plan_parallel(
                          slice_requests_, widen_shared(shared_requests_),
                          num_workers))
             .first;
  }
  return it->second;
}

std::span<std::uint8_t> CompiledPatchModel::bind_run_arena(
    std::int64_t need, nn::ArenaSlab::Lease& lease) const {
  if (arena_source_ != nullptr) {
    lease = arena_source_->acquire(need);
    return lease.bytes();
  }
  if (static_cast<std::int64_t>(arena_.size()) < need) {
    arena_.resize(static_cast<std::size_t>(need));
  }
  return {arena_.data(), arena_.size()};
}

CompiledPatchModel::WorkerCtx& CompiledPatchModel::worker_ctx(
    int lane) const {
  // Unlike the quant variant there is nothing to prepack: the float conv
  // path packs its k-major panel into arena scratch per call (no f32 panel
  // cache exists), so a fresh context is ready immediately.
  while (static_cast<int>(workers_.size()) <= lane) {
    workers_.push_back(std::make_unique<WorkerCtx>(backend_.tier()));
  }
  return *workers_[static_cast<std::size_t>(lane)];
}

std::int64_t CompiledPatchModel::scratch_bytes() const {
  std::int64_t total = static_cast<std::int64_t>(
      crops_.footprint_bytes() + backend_.arena().footprint_bytes());
  for (const auto& w : workers_) {
    total += static_cast<std::int64_t>(w->crops.footprint_bytes() +
                                       w->backend.arena().footprint_bytes());
  }
  return total;
}

void CompiledPatchModel::exec_branch(
    const PatchBranch& branch, const nn::Tensor& input, std::uint8_t* base,
    std::span<const nn::ArenaSlot> slots, nn::ops::KernelBackend& backend,
    nn::ops::ScratchArena& crops, std::span<nn::Tensor> step_views,
    std::int64_t& measured, nn::Tensor& assembled,
    bool* merge_changed) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  for (int s = 0; s < num_steps_; ++s) {
    const BranchStep& step = branch.steps[static_cast<std::size_t>(s)];
    const nn::Layer& layer = g.layer(step.layer_id);
    nn::Tensor out = bind_f32_slot(
        base, slots[static_cast<std::size_t>(s)],
        region_shape(step, g.shape(step.layer_id).c), measured);
    crops.reset();

    const auto producer_crop = [&](int input_id,
                                   const Region& want) -> nn::Tensor {
      const int p = branch.step_of(input_id);
      QMCU_ENSURE(p >= 0 && p < s, "producer step missing from branch");
      const BranchStep& ps = branch.steps[static_cast<std::size_t>(p)];
      nn::Tensor crop = borrow_f32(
          crops, nn::TensorShape{want.y.size(), want.x.size(),
                                 g.shape(input_id).c});
      crop_from_region_into(step_views[static_cast<std::size_t>(p)],
                            ps.out_region, want, g.shape(input_id), crop);
      return crop;
    };

    switch (layer.kind) {
      case nn::OpKind::Input:
        crop_from_region_into(input, full_region(input.shape()),
                              step.out_region, input.shape(), out);
        break;
      case nn::OpKind::Conv2D:
      case nn::OpKind::DepthwiseConv2D: {
        // Zero padding is exactly what the unclamped crop materialises,
        // so run the kernel pad-free on the region tensor.
        const nn::Tensor padded =
            producer_crop(layer.inputs[0], step.in_region);
        nn::Layer local = layer;
        local.pad_h = local.pad_w = 0;
        if (layer.kind == nn::OpKind::Conv2D) {
          backend.conv2d_f32_into(padded, local, g.weights(step.layer_id),
                                  g.bias(step.layer_id), out);
        } else {
          backend.depthwise_conv2d_f32_into(padded, local,
                                            g.weights(step.layer_id),
                                            g.bias(step.layer_id), out);
        }
        break;
      }
      case nn::OpKind::MaxPool:
      case nn::OpKind::AvgPool: {
        const int p = branch.step_of(layer.inputs[0]);
        QMCU_ENSURE(p >= 0, "producer step missing from branch");
        pool_region_f32_into(
            step_views[static_cast<std::size_t>(p)],
            branch.steps[static_cast<std::size_t>(p)].out_region, layer,
            step.out_region, g.shape(layer.inputs[0]), out);
        break;
      }
      case nn::OpKind::Add: {
        const nn::Tensor a = producer_crop(layer.inputs[0], step.out_region);
        const nn::Tensor b = producer_crop(layer.inputs[1], step.out_region);
        nn::ops::add_f32_into(a, b, layer.act, out);
        break;
      }
      case nn::OpKind::Concat: {
        std::vector<nn::Tensor> cropped;
        cropped.reserve(layer.inputs.size());
        for (int in : layer.inputs) {
          cropped.push_back(producer_crop(in, step.out_region));
        }
        std::vector<const nn::Tensor*> ptrs;
        ptrs.reserve(cropped.size());
        for (const nn::Tensor& t : cropped) ptrs.push_back(&t);
        nn::ops::concat_f32_into(ptrs, out);
        break;
      }
      default:
        QMCU_REQUIRE(false, "op kind not supported inside a patch stage: " +
                                std::string(nn::to_string(layer.kind)));
    }
    step_views[static_cast<std::size_t>(s)] = std::move(out);
  }
  const BranchStep& last = branch.steps.back();
  QMCU_ENSURE(last.layer_id == split, "branch must end at the cut layer");
  if (merge_changed == nullptr) {
    merge_region_f32(step_views[static_cast<std::size_t>(num_steps_ - 1)],
                     last.out_region, assembled);
  } else {
    *merge_changed = merge_region_f32_changed(
        step_views[static_cast<std::size_t>(num_steps_ - 1)], last.out_region,
        assembled);
  }
}

void CompiledPatchModel::bind_tail(std::uint8_t* base,
                                   std::span<const nn::ArenaSlot> slots,
                                   int first_tail_slot, int assembled_slot,
                                   std::int64_t& measured) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  tail_memo_.resize(static_cast<std::size_t>(g.size()));
  tail_memo_[static_cast<std::size_t>(split)] = bind_f32_slot(
      base, slots[static_cast<std::size_t>(assembled_slot)], g.shape(split),
      measured);
  for (int id = split + 1; id < g.size(); ++id) {
    tail_memo_[static_cast<std::size_t>(id)] = bind_f32_slot(
        base,
        slots[static_cast<std::size_t>(first_tail_slot + (id - split - 1))],
        g.shape(id), measured);
  }
}

nn::Tensor CompiledPatchModel::exec_tail(std::uint8_t* base,
                                         std::span<const nn::ArenaSlot> slots,
                                         int first_tail_slot,
                                         int assembled_slot,
                                         std::int64_t& measured) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  bind_tail(base, slots, first_tail_slot, assembled_slot, measured);
  for (int id = split + 1; id < g.size(); ++id) {
    nn::run_layer_f32_into(g, id, tail_memo_, backend_,
                           tail_memo_[static_cast<std::size_t>(id)]);
  }
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

void CompiledPatchModel::exec_tail_band(int layer_id, const Interval& rows,
                                        nn::ops::KernelBackend& backend,
                                        nn::ops::ScratchArena& crops) const {
  const nn::Graph& g = *graph_;
  const nn::Layer& l = g.layer(layer_id);
  const nn::TensorShape& os = g.shape(layer_id);
  const Region out_region{rows, {0, os.w}};
  nn::Tensor out =
      row_view(tail_memo_[static_cast<std::size_t>(layer_id)], rows);
  crops.reset();
  switch (l.kind) {
    case nn::OpKind::Conv2D:
    case nn::OpKind::DepthwiseConv2D: {
      // Same trick as the branch steps: materialise the (unclamped) input
      // region with zero fill and run the kernel pad-free — bit-identical
      // to the padded full-map call, proven by the patch/layer parity
      // tests.
      const nn::TensorShape& is = g.shape(l.inputs[0]);
      const Region want = required_input_region(l, is, out_region);
      nn::Tensor crop = borrow_f32(
          crops,
          nn::TensorShape{want.y.size(), want.x.size(), is.c});
      crop_from_region_into(tail_memo_[static_cast<std::size_t>(l.inputs[0])],
                            full_region(is), want, is, crop);
      nn::Layer local = l;
      local.pad_h = local.pad_w = 0;
      if (l.kind == nn::OpKind::Conv2D) {
        backend.conv2d_f32_into(crop, local, g.weights(layer_id),
                                g.bias(layer_id), out);
      } else {
        backend.depthwise_conv2d_f32_into(crop, local,
                                          g.weights(layer_id),
                                          g.bias(layer_id), out);
      }
      break;
    }
    case nn::OpKind::MaxPool:
    case nn::OpKind::AvgPool: {
      const nn::TensorShape& is = g.shape(l.inputs[0]);
      pool_region_f32_into(tail_memo_[static_cast<std::size_t>(l.inputs[0])],
                           full_region(is), l, out_region, is, out);
      break;
    }
    case nn::OpKind::Add: {
      // Element-wise: the band reads exactly its own rows of both inputs —
      // pure views, no copy.
      nn::Tensor a =
          row_view(tail_memo_[static_cast<std::size_t>(l.inputs[0])], rows);
      nn::Tensor b =
          row_view(tail_memo_[static_cast<std::size_t>(l.inputs[1])], rows);
      nn::ops::add_f32_into(a, b, l.act, out);
      break;
    }
    case nn::OpKind::Concat: {
      std::vector<nn::Tensor> views;
      views.reserve(l.inputs.size());
      for (const int in : l.inputs) {
        views.push_back(
            row_view(tail_memo_[static_cast<std::size_t>(in)], rows));
      }
      std::vector<const nn::Tensor*> ptrs;
      ptrs.reserve(views.size());
      for (const nn::Tensor& t : views) ptrs.push_back(&t);
      nn::ops::concat_f32_into(ptrs, out);
      break;
    }
    default:
      QMCU_ENSURE(false, "op kind is not row-bandable: " +
                             std::string(nn::to_string(l.kind)));
  }
}

nn::Tensor CompiledPatchModel::run(const nn::Tensor& input) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(aplan_.peak_bytes, lease);
  nn::check_arena(arena, aplan_.peak_bytes, alignof(float));
  // Compiled runs are per-run thread-affine: hand this run's contexts to
  // the calling thread.
  backend_.rebind_thread();
  crops_.rebind_thread();
  measured_ = 0;

  nn::Tensor assembled = bind_f32_slot(
      arena.data(), aplan_.slots[static_cast<std::size_t>(assembled_slot_)],
      g.shape(split), measured_);
  step_views_.resize(static_cast<std::size_t>(num_steps_));
  for (const PatchBranch& branch : plan_.branches) {
    exec_branch(branch, input, arena.data(),
                std::span<const nn::ArenaSlot>(aplan_.slots)
                    .subspan(0, static_cast<std::size_t>(num_steps_)),
                backend_, crops_, step_views_, measured_, assembled);
  }
  return exec_tail(arena.data(), aplan_.slots, num_steps_, assembled_slot_,
                   measured_);
}

nn::TaskGraph& CompiledPatchModel::pipeline_graph(int num_workers) const {
  auto it = pipeline_graphs_.find(num_workers);
  if (it != pipeline_graphs_.end()) return it->second;
  const int first_rest =
      plan_.spec.split_layer + 1 + static_cast<int>(pipeline_.size());
  return pipeline_graphs_
      .emplace(
          num_workers,
          build_pipeline_graph(
              plan_, pipeline_, branch_costs_, num_workers,
              [this](std::int64_t b, int lane) {
                // Streaming frames route through the same cached graph:
                // clean branches return immediately, dirty ones report
                // whether their merge changed any retained byte.
                StreamState* stream = run_stream_;
                if (stream != nullptr &&
                    !stream->branch_dirty[static_cast<std::size_t>(b)]) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                bool changed = false;
                exec_branch(
                    plan_.branches[static_cast<std::size_t>(b)], *run_input_,
                    run_data_ + run_pplan_->slice_offset(lane),
                    run_pplan_->slice.slots, ctx.backend, ctx.crops,
                    ctx.step_views, ctx.measured,
                    tail_memo_[static_cast<std::size_t>(
                        plan_.spec.split_layer)],
                    stream != nullptr ? &changed : nullptr);
                if (stream != nullptr) stream_mark_branch(*stream, b, changed);
                if (branch_hook_) branch_hook_(static_cast<int>(b));
              },
              [this](std::size_t pi, std::size_t j, int lane) {
                StreamState* stream = run_stream_;
                if (stream != nullptr && !stream_band_needed(*stream, pi, j)) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                exec_tail_band(pipeline_[pi].layer_id, pipeline_[pi].bands[j],
                               ctx.backend, ctx.crops);
                if (stream != nullptr) stream_mark_band(*stream, pi, j);
              },
              [this, first_rest](int lane) {
                if (run_stream_ != nullptr &&
                    !run_stream_->frame_changed_output()) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                for (int id = first_rest; id < graph_->size(); ++id) {
                  nn::run_layer_f32_into(
                      *graph_, id, tail_memo_, ctx.backend,
                      tail_memo_[static_cast<std::size_t>(id)]);
                }
              }))
      .first->second;
}

// --- streaming (float) ------------------------------------------------------

void CompiledPatchModel::prime_stream_state(StreamState& state,
                                            int workers) const {
  QMCU_REQUIRE(workers >= 1, "streaming needs at least one lane");
  if (state.workers != 0) {
    QMCU_REQUIRE(state.workers == workers,
                 "stream state is pinned to its first frame's worker count");
  }
  state.workers = workers;
  state.branch_dirty.resize(plan_.branches.size(), 1);
  if (state.row_changed == nullptr) {
    state.row_changed = std::make_unique<std::atomic<char>[]>(
        static_cast<std::size_t>(plan_.spec.grid_rows));
    state.band_offset.resize(pipeline_.size());
    int total = 0;
    for (std::size_t pi = 0; pi < pipeline_.size(); ++pi) {
      state.band_offset[pi] = total;
      total += static_cast<int>(pipeline_[pi].bands.size());
    }
    state.band_changed = std::make_unique<std::atomic<char>[]>(
        static_cast<std::size_t>(std::max(total, 1)));
  }
}

std::span<std::uint8_t> CompiledPatchModel::bind_stream_arena(
    std::int64_t need, StreamState& state) const {
  if (arena_source_ != nullptr) {
    if (state.lease.empty() ||
        static_cast<std::int64_t>(state.lease.bytes().size()) < need) {
      QMCU_ENSURE(!state.primed,
                  "streaming arena cannot be re-acquired once primed");
      state.lease = arena_source_->acquire(need);
    }
    return state.lease.bytes();
  }
  if (static_cast<std::int64_t>(state.owned.size()) < need) {
    QMCU_ENSURE(!state.primed, "streaming arena cannot grow once primed");
    state.owned.resize(static_cast<std::size_t>(need));
  }
  return {state.owned.data(), state.owned.size()};
}

bool CompiledPatchModel::stream_band_needed(const StreamState& state,
                                            std::size_t pi,
                                            std::size_t j) const {
  const PipelinedTailLayer& pl = pipeline_[pi];
  for (const int r : pl.grid_row_deps[j]) {
    if (state.row_changed[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed) != 0) {
      return true;
    }
  }
  for (const auto& [qi, k] : pl.band_deps[j]) {
    if (state
            .band_changed[static_cast<std::size_t>(
                state.band_offset[static_cast<std::size_t>(qi)] + k)]
            .load(std::memory_order_relaxed) != 0) {
      return true;
    }
  }
  return false;
}

void CompiledPatchModel::stream_mark_branch(StreamState& state,
                                            std::int64_t b,
                                            bool changed) const {
  state.branches_run.fetch_add(1, std::memory_order_relaxed);
  if (!changed) return;
  state.row_changed[static_cast<std::size_t>(b / plan_.spec.grid_cols)].store(
      1, std::memory_order_relaxed);
  state.any_changed.store(1, std::memory_order_relaxed);
}

void CompiledPatchModel::stream_mark_band(StreamState& state, std::size_t pi,
                                          std::size_t j) const {
  state.bands_run.fetch_add(1, std::memory_order_relaxed);
  state
      .band_changed[static_cast<std::size_t>(state.band_offset[pi]) + j]
      .store(1, std::memory_order_relaxed);
}

namespace {

// Clears one frame's change-propagation flags and counters. On the priming
// frame (`force_all_dirty`) every grid row starts dirty instead: the
// arena's initial bytes are not a valid previous frame, so a first-frame
// merge that happens to match them (all-zero quant tiles over a fresh
// zeroed buffer) must not suppress the bands downstream of it.
void reset_stream_frame(StreamState& state, int grid_rows, int total_bands,
                        bool force_all_dirty) {
  const char row_init = force_all_dirty ? 1 : 0;
  for (int r = 0; r < grid_rows; ++r) {
    state.row_changed[static_cast<std::size_t>(r)].store(
        row_init, std::memory_order_relaxed);
  }
  for (int i = 0; i < total_bands; ++i) {
    state.band_changed[static_cast<std::size_t>(i)].store(
        0, std::memory_order_relaxed);
  }
  state.any_changed.store(row_init, std::memory_order_relaxed);
  state.branches_run.store(0, std::memory_order_relaxed);
  state.bands_run.store(0, std::memory_order_relaxed);
}

int total_band_count(std::span<const PipelinedTailLayer> pipeline) {
  int total = 0;
  for (const PipelinedTailLayer& pl : pipeline) {
    total += static_cast<int>(pl.bands.size());
  }
  return total;
}

}  // namespace

nn::Tensor CompiledPatchModel::run_streaming(const nn::Tensor& input,
                                             nn::WorkerPool* pool,
                                             StreamState& state) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  const int w = pool == nullptr ? 1 : pool->num_workers();
  prime_stream_state(state, w);
  const nn::ParallelArenaPlan& pplan = streaming_plan(w);
  const std::span<std::uint8_t> arena =
      bind_stream_arena(pplan.total_bytes(), state);
  nn::check_arena(arena, pplan.total_bytes(), alignof(float));

  // First frame: nothing retained yet, every branch runs.
  if (!state.primed) {
    std::fill(state.branch_dirty.begin(), state.branch_dirty.end(),
              std::uint8_t{1});
  }
  reset_stream_frame(state, plan_.spec.grid_rows, total_band_count(pipeline_),
                     !state.primed);

  std::int64_t shared_measured = 0;
  run_input_ = &input;
  run_data_ = arena.data();
  run_pplan_ = &pplan;
  bind_tail(run_data_ + pplan.shared_offset(), pplan.shared.slots, 0,
            par_assembled_slot_, shared_measured);
  run_stream_ = &state;

  if (w == 1) {
    backend_.rebind_thread();
    crops_.rebind_thread();
    step_views_.resize(static_cast<std::size_t>(num_steps_));
    std::int64_t slice_measured = 0;
    std::uint8_t* const slice_base = run_data_ + pplan.slice_offset(0);
    for (std::size_t b = 0; b < plan_.branches.size(); ++b) {
      if (!state.branch_dirty[b]) continue;
      bool changed = false;
      exec_branch(plan_.branches[b], input, slice_base, pplan.slice.slots,
                  backend_, crops_, step_views_, slice_measured,
                  tail_memo_[static_cast<std::size_t>(split)], &changed);
      stream_mark_branch(state, static_cast<std::int64_t>(b), changed);
      if (branch_hook_) branch_hook_(static_cast<int>(b));
    }
    for (std::size_t pi = 0; pi < pipeline_.size(); ++pi) {
      const std::size_t nb = pipeline_[pi].bands.size();
      std::size_t needed = 0;
      for (std::size_t j = 0; j < nb; ++j) {
        needed += stream_band_needed(state, pi, j) ? 1 : 0;
      }
      if (needed == nb) {
        // Every band is dirty: run the layer whole like the sequential
        // tail (bit-identical) instead of paying one halo crop per band.
        const int id = pipeline_[pi].layer_id;
        nn::run_layer_f32_into(g, id, tail_memo_, backend_,
                               tail_memo_[static_cast<std::size_t>(id)]);
        for (std::size_t j = 0; j < nb; ++j) stream_mark_band(state, pi, j);
        continue;
      }
      for (std::size_t j = 0; j < nb; ++j) {
        if (!stream_band_needed(state, pi, j)) continue;
        exec_tail_band(pipeline_[pi].layer_id, pipeline_[pi].bands[j],
                       backend_, crops_);
        stream_mark_band(state, pi, j);
      }
    }
    if (state.frame_changed_output()) {
      const int first_rest = split + 1 + static_cast<int>(pipeline_.size());
      for (int id = first_rest; id < g.size(); ++id) {
        nn::run_layer_f32_into(g, id, tail_memo_, backend_,
                               tail_memo_[static_cast<std::size_t>(id)]);
      }
    }
    measured_ = std::max(pplan.shared_offset() + shared_measured,
                         pplan.slice_offset(0) + slice_measured);
  } else {
    for (int lane = 0; lane < w; ++lane) {
      WorkerCtx& ctx = worker_ctx(lane);
      ctx.backend.rebind_thread();
      ctx.crops.rebind_thread();
      ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
      ctx.measured = 0;
    }
    pool->run_graph(pipeline_graph(w));
    measured_ = pplan.shared_offset() + shared_measured;
    for (int lane = 0; lane < w; ++lane) {
      measured_ = std::max(
          measured_, pplan.slice_offset(lane) +
                         workers_[static_cast<std::size_t>(lane)]->measured);
    }
  }
  run_stream_ = nullptr;
  state.primed = true;
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

nn::Tensor CompiledPatchModel::run(const nn::Tensor& input,
                                   nn::WorkerPool* pool) const {
  if (pool == nullptr || pool->num_workers() == 1) return run(input);
  const nn::Graph& g = *graph_;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  const int w = pool->num_workers();
  const nn::ParallelArenaPlan& pplan = pipelined_plan(w);
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(pplan.total_bytes(), lease);
  nn::check_arena(arena, pplan.total_bytes(), alignof(float));
  std::int64_t shared_measured = 0;

  // Stage this run's state for the cached graph's tasks: arena base, plan
  // and input, plus every shared view (assembled map and all tail layers)
  // bound before dispatch — tasks only read and write through them.
  run_input_ = &input;
  run_data_ = arena.data();
  run_pplan_ = &pplan;
  bind_tail(run_data_ + pplan.shared_offset(), pplan.shared.slots, 0,
            par_assembled_slot_, shared_measured);

  for (int lane = 0; lane < w; ++lane) {
    WorkerCtx& ctx = worker_ctx(lane);
    ctx.backend.rebind_thread();
    ctx.crops.rebind_thread();
    ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
    ctx.measured = 0;
  }

  pool->run_graph(pipeline_graph(w));

  measured_ = pplan.shared_offset() + shared_measured;
  for (int lane = 0; lane < w; ++lane) {
    measured_ = std::max(
        measured_, pplan.slice_offset(lane) +
                       workers_[static_cast<std::size_t>(lane)]->measured);
  }
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

nn::Tensor CompiledPatchModel::run_barrier(const nn::Tensor& input,
                                           nn::WorkerPool* pool) const {
  if (pool == nullptr || pool->num_workers() == 1) return run(input);
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  QMCU_REQUIRE(input.shape() == g.shape(g.inputs().front()),
               "input shape does not match graph input");
  const int w = pool->num_workers();
  const nn::ParallelArenaPlan& pplan = parallel_plan(w);
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(pplan.total_bytes(), lease);
  nn::check_arena(arena, pplan.total_bytes(), alignof(float));
  backend_.rebind_thread();  // tail runs on the calling thread
  crops_.rebind_thread();
  std::uint8_t* const shared_base = arena.data() + pplan.shared_offset();
  std::int64_t shared_measured = 0;

  nn::Tensor assembled = bind_f32_slot(
      shared_base,
      pplan.shared.slots[static_cast<std::size_t>(par_assembled_slot_)],
      g.shape(split), shared_measured);

  for (int lane = 0; lane < w; ++lane) {
    WorkerCtx& ctx = worker_ctx(lane);
    ctx.backend.rebind_thread();
    ctx.crops.rebind_thread();
    ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
    ctx.measured = 0;
  }

  const auto chunks = weighted_chunks(
      branch_costs_, plan_.spec.grid_rows * chunks_per_grid_row(plan_, w));
  pool->parallel_ranges(
      chunks, [&](std::int64_t b0, std::int64_t b1, int lane) {
        WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
        std::uint8_t* base = arena.data() + pplan.slice_offset(lane);
        for (std::int64_t b = b0; b < b1; ++b) {
          exec_branch(plan_.branches[static_cast<std::size_t>(b)], input,
                      base, pplan.slice.slots, ctx.backend, ctx.crops,
                      ctx.step_views, ctx.measured, assembled);
          if (branch_hook_) branch_hook_(static_cast<int>(b));
        }
      });

  measured_ = pplan.shared_offset() + shared_measured;
  for (int lane = 0; lane < w; ++lane) {
    measured_ = std::max(
        measured_, pplan.slice_offset(lane) +
                       workers_[static_cast<std::size_t>(lane)]->measured);
  }
  std::int64_t tail_measured = 0;
  nn::Tensor out = exec_tail(shared_base, pplan.shared.slots, 0,
                             par_assembled_slot_, tail_measured);
  measured_ = std::max(measured_, pplan.shared_offset() + tail_measured);
  return out;
}

// --- quantized -------------------------------------------------------------

CompiledPatchQuantModel::CompiledPatchQuantModel(
    const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
    std::vector<BranchQuantConfig> branch_cfgs, nn::ops::KernelTier tier,
    std::shared_ptr<const nn::QuantizedParameters> params)
    : CompiledPatchQuantModel(g, std::move(plan), std::move(cfg),
                              std::move(branch_cfgs), std::move(params),
                              PrecompiledPatchParts{}, tier) {}

CompiledPatchQuantModel::CompiledPatchQuantModel(
    const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
    std::vector<BranchQuantConfig> branch_cfgs,
    std::shared_ptr<const nn::QuantizedParameters> params,
    PrecompiledPatchParts parts, nn::ops::KernelTier tier)
    : graph_(&g),
      plan_(std::move(plan)),
      cfg_(std::move(cfg)),
      effective_(nn::effective_output_params(g, cfg_)),
      branch_cfgs_(std::move(branch_cfgs)),
      params_(params ? std::move(params)
                     : nn::QuantizedParameters::build_shared(g, cfg_)),
      bundle_(std::move(parts.kernels)),
      backend_(tier) {
  QMCU_REQUIRE(!plan_.branches.empty(), "plan has no branches");
  if (bundle_ != nullptr) bundle_->apply(backend_);
  if (!branch_cfgs_.empty()) {
    QMCU_REQUIRE(branch_cfgs_.size() == plan_.branches.size(),
                 "branch configs must cover every branch");
    for (std::size_t b = 0; b < branch_cfgs_.size(); ++b) {
      QMCU_REQUIRE(branch_cfgs_[b].per_step.size() ==
                       plan_.branches[b].steps.size(),
                   "branch config must cover every step");
    }
    if (parts.branch_bias.empty()) {
      branch_bias_ = build_branch_bias(g, plan_, branch_cfgs_, *params_);
    } else {
      // Artifact-supplied biases (the graph may be topology-only, so the
      // float-bias rescale that build_branch_bias runs is not available).
      QMCU_REQUIRE(parts.branch_bias.size() == plan_.branches.size(),
                   "precomputed branch bias must cover every branch");
      branch_bias_ = std::move(parts.branch_bias);
    }
  }
  // AvgPool reciprocal tables for every window size the graph uses —
  // built now so the run path (possibly many workers at once) only reads.
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    if (l.kind != nn::OpKind::AvgPool) continue;
    const int count = l.kernel_h * l.kernel_w;
    pool_tables_.emplace(count, nn::ops::AvgPoolMultipliers(count));
  }
  PatchTimeline t = build_timeline(g, plan_, 1);
  num_steps_ = t.num_steps;
  assembled_slot_ = t.assembled_index;
  // Quantized full input, cropped by every branch: live across the whole
  // branch phase.
  input_slot_ = static_cast<int>(t.requests.size());
  t.requests.push_back({g.shape(g.inputs().front()).elements(), 0,
                        std::max(num_steps_ - 1, 0)});
  aplan_ = nn::ArenaPlanner().plan(t.requests);
  slice_requests_.assign(t.requests.begin(),
                         t.requests.begin() + num_steps_);
  shared_requests_.assign(t.requests.begin() + num_steps_, t.requests.end());
  par_assembled_slot_ = static_cast<int>(shared_requests_.size()) - 2;
  par_input_slot_ = static_cast<int>(shared_requests_.size()) - 1;
  pipeline_ =
      parts.pipeline.empty()
          ? build_pipelined_tail(g, plan_, std::max(2, plan_.spec.grid_rows))
          : std::move(parts.pipeline);
  branch_costs_ = branch_costs(plan_);
  pipeline_horizon_ =
      num_steps_ + static_cast<int>(pipeline_.size()) - 1;
}

const nn::ParallelArenaPlan& CompiledPatchQuantModel::parallel_plan(
    int num_workers) const {
  auto it = pplans_.find(num_workers);
  if (it == pplans_.end()) {
    it = pplans_
             .emplace(num_workers,
                      nn::ArenaPlanner().plan_parallel(
                          slice_requests_, shared_requests_, num_workers))
             .first;
  }
  return it->second;
}

const nn::ParallelArenaPlan& CompiledPatchQuantModel::pipelined_plan(
    int num_workers) const {
  auto it = pipelined_pplans_.find(num_workers);
  if (it == pipelined_pplans_.end()) {
    it = pipelined_pplans_
             .emplace(num_workers, nn::ArenaPlanner().plan_pipelined(
                                       slice_requests_, shared_requests_,
                                       num_workers, pipeline_horizon_))
             .first;
  }
  return it->second;
}

const nn::ParallelArenaPlan& CompiledPatchQuantModel::streaming_plan(
    int num_workers) const {
  auto it = streaming_pplans_.find(num_workers);
  if (it == streaming_pplans_.end()) {
    it = streaming_pplans_
             .emplace(num_workers,
                      nn::ArenaPlanner().plan_parallel(
                          slice_requests_, widen_shared(shared_requests_),
                          num_workers))
             .first;
  }
  return it->second;
}

std::span<std::uint8_t> CompiledPatchQuantModel::bind_run_arena(
    std::int64_t need, nn::ArenaSlab::Lease& lease) const {
  if (arena_source_ != nullptr) {
    lease = arena_source_->acquire(need);
    return lease.bytes();
  }
  if (static_cast<std::int64_t>(arena_.size()) < need) {
    arena_.resize(static_cast<std::size_t>(need));
  }
  return {arena_.data(), arena_.size()};
}

const nn::QuantParams& CompiledPatchQuantModel::step_params(int branch,
                                                            int step) const {
  if (!branch_cfgs_.empty()) {
    return branch_cfgs_[static_cast<std::size_t>(branch)]
        .per_step[static_cast<std::size_t>(step)];
  }
  const int layer_id = plan_.branches[static_cast<std::size_t>(branch)]
                           .steps[static_cast<std::size_t>(step)]
                           .layer_id;
  return effective_[static_cast<std::size_t>(layer_id)];
}

std::int64_t CompiledPatchQuantModel::scratch_bytes() const {
  std::int64_t total = static_cast<std::int64_t>(
      crops_.footprint_bytes() + backend_.arena().footprint_bytes());
  for (const auto& w : workers_) {
    total += static_cast<std::int64_t>(w->crops.footprint_bytes() +
                                       w->backend.arena().footprint_bytes());
  }
  return total;
}

const nn::ops::AvgPoolMultipliers* CompiledPatchQuantModel::pool_table(
    const nn::Layer& l) const {
  if (l.kind != nn::OpKind::AvgPool) return nullptr;
  const auto it = pool_tables_.find(l.kernel_h * l.kernel_w);
  QMCU_ENSURE(it != pool_tables_.end(),
              "AvgPool window missing from the precomputed tables");
  return &it->second;
}

CompiledPatchQuantModel::WorkerCtx& CompiledPatchQuantModel::worker_ctx(
    int lane) const {
  while (static_cast<int>(workers_.size()) <= lane) {
    auto ctx = std::make_unique<WorkerCtx>(backend_.tier());
    // Artifact path: adopt the precomputed panels first, so the prepack
    // pass below is a no-op for everything the artifact baked.
    if (bundle_ != nullptr) bundle_->apply(ctx->backend);
    // Pre-pack the conv panels any task on this lane may need — stage
    // convs for branch tasks, tail convs for row bands and the join — so a
    // lane's first run pays no packing cost (construction-time work,
    // exempt from the affinity guard). Gated on the quantized params, not
    // the graph: the artifact path loads a topology-only graph.
    const nn::Graph& g = *graph_;
    const auto prepack = [&](int layer_id) {
      const nn::Layer& l = g.layer(layer_id);
      const auto& w = params_->weights[static_cast<std::size_t>(layer_id)];
      if (w.data.empty()) return;
      const auto in_bits = [&] {
        return effective_[static_cast<std::size_t>(l.inputs[0])].bits;
      };
      if (l.kind == nn::OpKind::Conv2D) {
        const int n = l.out_channels;
        const int k = static_cast<int>(w.data.size()) / n;
        ctx->backend.prepack(w.data, n, k);
        // Sub-byte stages may take the LUT path: bake the recode up front
        // so a lane's first patch pays no table construction. Only tables
        // the current force mode can actually run are baked — 4-bit
        // tables cost 32*n*k bytes and only run under QMCU_FORCE_LUT.
        const int bits = in_bits();
        if (nn::ops::lut::lut_planned(bits)) {
          ctx->backend.prepack_lut(w.data, n, k, bits);
        }
      } else if (l.kind == nn::OpKind::FullyConnected) {
        const int k = static_cast<int>(g.shape(l.inputs[0]).elements());
        // fc shares the conv panel GEMM since the microkernel rewrite.
        ctx->backend.prepack(w.data, l.out_channels, k);
        if (nn::ops::lut::lut_planned(in_bits())) {
          ctx->backend.prepack_lut(w.data, l.out_channels, k, in_bits());
        }
      }
    };
    for (const BranchStep& step : plan_.branches.front().steps) {
      prepack(step.layer_id);
    }
    for (int id = plan_.spec.split_layer + 1; id < g.size(); ++id) {
      prepack(id);
    }
    workers_.push_back(std::move(ctx));
  }
  return *workers_[static_cast<std::size_t>(lane)];
}

void CompiledPatchQuantModel::exec_branch(
    int branch_index, const nn::QTensor& qinput, std::uint8_t* base,
    std::span<const nn::ArenaSlot> slots, nn::ops::KernelBackend& backend,
    nn::ops::ScratchArena& crops, std::span<nn::QTensor> step_views,
    std::int64_t& measured, nn::QTensor& assembled,
    bool* merge_changed) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  const PatchBranch& branch =
      plan_.branches[static_cast<std::size_t>(branch_index)];
  for (int s = 0; s < num_steps_; ++s) {
    const BranchStep& step = branch.steps[static_cast<std::size_t>(s)];
    const nn::Layer& layer = g.layer(step.layer_id);
    const bool pool = layer.kind == nn::OpKind::MaxPool ||
                      layer.kind == nn::OpKind::AvgPool;
    // Pools never requantize: their slot carries the producer's actual
    // params, exactly as the legacy executor's region tensors do.
    nn::QuantParams out_p;
    if (pool) {
      const int p = branch.step_of(layer.inputs[0]);
      QMCU_ENSURE(p >= 0 && p < s, "producer step missing from branch");
      out_p = step_views[static_cast<std::size_t>(p)].params();
    } else {
      out_p = step_params(branch_index, s);
    }
    nn::QTensor out = bind_q_slot(
        base, slots[static_cast<std::size_t>(s)],
        region_shape(step, g.shape(step.layer_id).c), out_p, measured);
    crops.reset();

    const auto producer_crop = [&](int input_id,
                                   const Region& want) -> nn::QTensor {
      const int p = branch.step_of(input_id);
      QMCU_ENSURE(p >= 0 && p < s, "producer step missing from branch");
      const BranchStep& ps = branch.steps[static_cast<std::size_t>(p)];
      const nn::QTensor& have = step_views[static_cast<std::size_t>(p)];
      nn::QTensor crop = borrow_q(
          crops,
          nn::TensorShape{want.y.size(), want.x.size(), g.shape(input_id).c},
          have.params());
      crop_from_region_q_into(have, ps.out_region, want, g.shape(input_id),
                              crop);
      return crop;
    };

    switch (layer.kind) {
      case nn::OpKind::Input: {
        // The input patch tile is quantized straight into the branch's
        // params (mixed mode stores it sub-byte, uniform mode at int8).
        nn::QTensor crop = borrow_q(crops, out.shape(), qinput.params());
        crop_from_region_q_into(qinput, full_region(g.shape(step.layer_id)),
                                step.out_region, g.shape(step.layer_id),
                                crop);
        backend.requantize_into(crop, out);
        break;
      }
      case nn::OpKind::Conv2D:
      case nn::OpKind::DepthwiseConv2D: {
        // Out-of-bounds crop positions carry the producer's zero point —
        // the quantized encoding of real 0, i.e. genuine zero padding.
        const nn::QTensor padded =
            producer_crop(layer.inputs[0], step.in_region);
        nn::Layer local = layer;
        local.pad_h = local.pad_w = 0;
        const std::span<const std::int32_t> bias =
            branch_cfgs_.empty()
                ? params_->bias[static_cast<std::size_t>(step.layer_id)]
                : std::span<const std::int32_t>(
                      branch_bias_[static_cast<std::size_t>(branch_index)]
                                  [static_cast<std::size_t>(s)]);
        const auto& w =
            params_->weights[static_cast<std::size_t>(step.layer_id)];
        if (layer.kind == nn::OpKind::Conv2D) {
          backend.conv2d_into(padded, local, w.data, w.params, bias, out);
        } else {
          backend.depthwise_conv2d_into(padded, local, w.data, w.params,
                                        bias, out);
        }
        break;
      }
      case nn::OpKind::MaxPool:
      case nn::OpKind::AvgPool: {
        const int p = branch.step_of(layer.inputs[0]);
        QMCU_ENSURE(p >= 0, "producer step missing from branch");
        pool_region_q_into(
            step_views[static_cast<std::size_t>(p)],
            branch.steps[static_cast<std::size_t>(p)].out_region, layer,
            step.out_region, g.shape(layer.inputs[0]), pool_table(layer),
            out);
        break;
      }
      case nn::OpKind::Add: {
        const nn::QTensor a = producer_crop(layer.inputs[0], step.out_region);
        const nn::QTensor b = producer_crop(layer.inputs[1], step.out_region);
        backend.add_into(a, b, layer.act, out);
        break;
      }
      case nn::OpKind::Concat: {
        std::vector<nn::QTensor> cropped;
        cropped.reserve(layer.inputs.size());
        for (int in : layer.inputs) {
          cropped.push_back(producer_crop(in, step.out_region));
        }
        std::vector<const nn::QTensor*> ptrs;
        ptrs.reserve(cropped.size());
        for (const nn::QTensor& t : cropped) ptrs.push_back(&t);
        backend.concat_into(ptrs, out);
        break;
      }
      default:
        QMCU_REQUIRE(false, "op kind not supported inside a patch stage: " +
                                std::string(nn::to_string(layer.kind)));
    }
    step_views[static_cast<std::size_t>(s)] = std::move(out);
  }
  const BranchStep& last = branch.steps.back();
  QMCU_ENSURE(last.layer_id == split, "branch must end at the cut layer");
  // The branch slice is requantized into the shared accumulation buffer's
  // parameters (identity copy in uniform mode). Tiles are disjoint, so
  // concurrent merges from several workers commute.
  if (merge_changed == nullptr) {
    merge_region_q(step_views[static_cast<std::size_t>(num_steps_ - 1)],
                   last.out_region, assembled);
  } else {
    *merge_changed = merge_region_q_changed(
        step_views[static_cast<std::size_t>(num_steps_ - 1)], last.out_region,
        assembled);
  }
}

void CompiledPatchQuantModel::bind_tail(std::uint8_t* base,
                                        std::span<const nn::ArenaSlot> slots,
                                        int first_tail_slot,
                                        int assembled_slot,
                                        std::int64_t& measured) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  tail_memo_.resize(static_cast<std::size_t>(g.size()));
  tail_memo_[static_cast<std::size_t>(split)] = bind_q_slot(
      base, slots[static_cast<std::size_t>(assembled_slot)], g.shape(split),
      effective_[static_cast<std::size_t>(split)], measured);
  for (int id = split + 1; id < g.size(); ++id) {
    tail_memo_[static_cast<std::size_t>(id)] = bind_q_slot(
        base,
        slots[static_cast<std::size_t>(first_tail_slot + (id - split - 1))],
        g.shape(id), effective_[static_cast<std::size_t>(id)], measured);
  }
}

nn::QTensor CompiledPatchQuantModel::exec_tail(
    std::uint8_t* base, std::span<const nn::ArenaSlot> slots,
    int first_tail_slot, int assembled_slot, std::int64_t& measured) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  bind_tail(base, slots, first_tail_slot, assembled_slot, measured);
  for (int id = split + 1; id < g.size(); ++id) {
    nn::run_layer_q_into(g, id, tail_memo_, *params_, backend_,
                         tail_memo_[static_cast<std::size_t>(id)]);
  }
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

void CompiledPatchQuantModel::exec_tail_band(
    int layer_id, const Interval& rows, nn::ops::KernelBackend& backend,
    nn::ops::ScratchArena& crops) const {
  const nn::Graph& g = *graph_;
  const nn::Layer& l = g.layer(layer_id);
  const nn::TensorShape& os = g.shape(layer_id);
  const Region out_region{rows, {0, os.w}};
  nn::QTensor out =
      row_view(tail_memo_[static_cast<std::size_t>(layer_id)], rows);
  crops.reset();
  switch (l.kind) {
    case nn::OpKind::Conv2D:
    case nn::OpKind::DepthwiseConv2D: {
      // Out-of-bounds crop positions carry the producer's zero point (the
      // quantized encoding of real 0) and the kernel runs pad-free — the
      // same construction every branch step uses, bit-identical to the
      // padded full-map call.
      const nn::TensorShape& is = g.shape(l.inputs[0]);
      nn::QTensor& in_full =
          tail_memo_[static_cast<std::size_t>(l.inputs[0])];
      const Region want = required_input_region(l, is, out_region);
      nn::QTensor crop = borrow_q(
          crops, nn::TensorShape{want.y.size(), want.x.size(), is.c},
          in_full.params());
      crop_from_region_q_into(in_full, full_region(is), want, is, crop);
      nn::Layer local = l;
      local.pad_h = local.pad_w = 0;
      const auto& w = params_->weights[static_cast<std::size_t>(layer_id)];
      const auto& bias = params_->bias[static_cast<std::size_t>(layer_id)];
      if (l.kind == nn::OpKind::Conv2D) {
        backend.conv2d_into(crop, local, w.data, w.params, bias, out);
      } else {
        backend.depthwise_conv2d_into(crop, local, w.data, w.params,
                                      bias, out);
      }
      break;
    }
    case nn::OpKind::MaxPool:
    case nn::OpKind::AvgPool: {
      const nn::TensorShape& is = g.shape(l.inputs[0]);
      pool_region_q_into(tail_memo_[static_cast<std::size_t>(l.inputs[0])],
                         full_region(is), l, out_region, is, pool_table(l),
                         out);
      break;
    }
    case nn::OpKind::Add: {
      nn::QTensor a =
          row_view(tail_memo_[static_cast<std::size_t>(l.inputs[0])], rows);
      nn::QTensor b =
          row_view(tail_memo_[static_cast<std::size_t>(l.inputs[1])], rows);
      backend.add_into(a, b, l.act, out);
      break;
    }
    case nn::OpKind::Concat: {
      std::vector<nn::QTensor> views;
      views.reserve(l.inputs.size());
      for (const int in : l.inputs) {
        views.push_back(
            row_view(tail_memo_[static_cast<std::size_t>(in)], rows));
      }
      std::vector<const nn::QTensor*> ptrs;
      ptrs.reserve(views.size());
      for (const nn::QTensor& t : views) ptrs.push_back(&t);
      backend.concat_into(ptrs, out);
      break;
    }
    default:
      QMCU_ENSURE(false, "op kind is not row-bandable: " +
                             std::string(nn::to_string(l.kind)));
  }
}

nn::QTensor CompiledPatchQuantModel::run(const nn::Tensor& input) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  const int input_layer = g.inputs().front();
  QMCU_REQUIRE(input.shape() == g.shape(input_layer),
               "input shape does not match graph input");
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(aplan_.peak_bytes, lease);
  nn::check_arena(arena, aplan_.peak_bytes, 1);
  backend_.rebind_thread();
  crops_.rebind_thread();
  measured_ = 0;

  nn::QTensor qinput = bind_q_slot(
      arena.data(), aplan_.slots[static_cast<std::size_t>(input_slot_)],
      g.shape(input_layer), cfg_.params[static_cast<std::size_t>(input_layer)],
      measured_);
  nn::quantize_into(input, qinput);
  nn::QTensor assembled = bind_q_slot(
      arena.data(), aplan_.slots[static_cast<std::size_t>(assembled_slot_)],
      g.shape(split), effective_[static_cast<std::size_t>(split)], measured_);
  step_views_.resize(static_cast<std::size_t>(num_steps_));

  for (int bi = 0; bi < static_cast<int>(plan_.branches.size()); ++bi) {
    exec_branch(bi, qinput, arena.data(),
                std::span<const nn::ArenaSlot>(aplan_.slots)
                    .subspan(0, static_cast<std::size_t>(num_steps_)),
                backend_, crops_, step_views_, measured_, assembled);
  }
  nn::QTensor out = exec_tail(arena.data(), aplan_.slots, num_steps_,
                              assembled_slot_, measured_);
  invoke_stats_hook();
  return out;
}

nn::TaskGraph& CompiledPatchQuantModel::pipeline_graph(
    int num_workers) const {
  auto it = pipeline_graphs_.find(num_workers);
  if (it != pipeline_graphs_.end()) return it->second;
  const int first_rest =
      plan_.spec.split_layer + 1 + static_cast<int>(pipeline_.size());
  return pipeline_graphs_
      .emplace(
          num_workers,
          build_pipeline_graph(
              plan_, pipeline_, branch_costs_, num_workers,
              [this](std::int64_t b, int lane) {
                // Streaming frames route through the same cached graph
                // (see CompiledPatchModel::pipeline_graph).
                StreamState* stream = run_stream_;
                if (stream != nullptr &&
                    !stream->branch_dirty[static_cast<std::size_t>(b)]) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                bool changed = false;
                exec_branch(
                    static_cast<int>(b), run_qinput_,
                    run_data_ + run_pplan_->slice_offset(lane),
                    run_pplan_->slice.slots, ctx.backend, ctx.crops,
                    ctx.step_views, ctx.measured,
                    tail_memo_[static_cast<std::size_t>(
                        plan_.spec.split_layer)],
                    stream != nullptr ? &changed : nullptr);
                if (stream != nullptr) stream_mark_branch(*stream, b, changed);
                if (branch_hook_) branch_hook_(static_cast<int>(b));
              },
              [this](std::size_t pi, std::size_t j, int lane) {
                StreamState* stream = run_stream_;
                if (stream != nullptr && !stream_band_needed(*stream, pi, j)) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                exec_tail_band(pipeline_[pi].layer_id, pipeline_[pi].bands[j],
                               ctx.backend, ctx.crops);
                if (stream != nullptr) stream_mark_band(*stream, pi, j);
              },
              [this, first_rest](int lane) {
                if (run_stream_ != nullptr &&
                    !run_stream_->frame_changed_output()) {
                  return;
                }
                WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
                for (int id = first_rest; id < graph_->size(); ++id) {
                  nn::run_layer_q_into(
                      *graph_, id, tail_memo_, *params_, ctx.backend,
                      tail_memo_[static_cast<std::size_t>(id)]);
                }
              }))
      .first->second;
}

// --- streaming (quantized) --------------------------------------------------

void CompiledPatchQuantModel::prime_stream_state(StreamState& state,
                                                 int workers) const {
  QMCU_REQUIRE(workers >= 1, "streaming needs at least one lane");
  if (state.workers != 0) {
    QMCU_REQUIRE(state.workers == workers,
                 "stream state is pinned to its first frame's worker count");
  }
  state.workers = workers;
  state.branch_dirty.resize(plan_.branches.size(), 1);
  if (state.row_changed == nullptr) {
    state.row_changed = std::make_unique<std::atomic<char>[]>(
        static_cast<std::size_t>(plan_.spec.grid_rows));
    state.band_offset.resize(pipeline_.size());
    int total = 0;
    for (std::size_t pi = 0; pi < pipeline_.size(); ++pi) {
      state.band_offset[pi] = total;
      total += static_cast<int>(pipeline_[pi].bands.size());
    }
    state.band_changed = std::make_unique<std::atomic<char>[]>(
        static_cast<std::size_t>(std::max(total, 1)));
  }
}

std::span<std::uint8_t> CompiledPatchQuantModel::bind_stream_arena(
    std::int64_t need, StreamState& state) const {
  if (arena_source_ != nullptr) {
    if (state.lease.empty() ||
        static_cast<std::int64_t>(state.lease.bytes().size()) < need) {
      QMCU_ENSURE(!state.primed,
                  "streaming arena cannot be re-acquired once primed");
      state.lease = arena_source_->acquire(need);
    }
    return state.lease.bytes();
  }
  if (static_cast<std::int64_t>(state.owned.size()) < need) {
    QMCU_ENSURE(!state.primed, "streaming arena cannot grow once primed");
    state.owned.resize(static_cast<std::size_t>(need));
  }
  return {state.owned.data(), state.owned.size()};
}

bool CompiledPatchQuantModel::stream_band_needed(const StreamState& state,
                                                 std::size_t pi,
                                                 std::size_t j) const {
  const PipelinedTailLayer& pl = pipeline_[pi];
  for (const int r : pl.grid_row_deps[j]) {
    if (state.row_changed[static_cast<std::size_t>(r)].load(
            std::memory_order_relaxed) != 0) {
      return true;
    }
  }
  for (const auto& [qi, k] : pl.band_deps[j]) {
    if (state
            .band_changed[static_cast<std::size_t>(
                state.band_offset[static_cast<std::size_t>(qi)] + k)]
            .load(std::memory_order_relaxed) != 0) {
      return true;
    }
  }
  return false;
}

void CompiledPatchQuantModel::stream_mark_branch(StreamState& state,
                                                 std::int64_t b,
                                                 bool changed) const {
  state.branches_run.fetch_add(1, std::memory_order_relaxed);
  if (!changed) return;
  state.row_changed[static_cast<std::size_t>(b / plan_.spec.grid_cols)].store(
      1, std::memory_order_relaxed);
  state.any_changed.store(1, std::memory_order_relaxed);
}

void CompiledPatchQuantModel::stream_mark_band(StreamState& state,
                                               std::size_t pi,
                                               std::size_t j) const {
  state.bands_run.fetch_add(1, std::memory_order_relaxed);
  state
      .band_changed[static_cast<std::size_t>(state.band_offset[pi]) + j]
      .store(1, std::memory_order_relaxed);
}

void CompiledPatchQuantModel::invoke_stats_hook() const {
  if (!stats_hook_) return;
  const int split = plan_.spec.split_layer;
  for (int id = split; id < graph_->size(); ++id) {
    stats_hook_(id, tail_memo_[static_cast<std::size_t>(id)]);
  }
}

nn::QTensor CompiledPatchQuantModel::run_streaming(const nn::Tensor& input,
                                                   nn::WorkerPool* pool,
                                                   StreamState& state) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  const int input_layer = g.inputs().front();
  QMCU_REQUIRE(input.shape() == g.shape(input_layer),
               "input shape does not match graph input");
  const int w = pool == nullptr ? 1 : pool->num_workers();
  prime_stream_state(state, w);
  const nn::ParallelArenaPlan& pplan = streaming_plan(w);
  const std::span<std::uint8_t> arena =
      bind_stream_arena(pplan.total_bytes(), state);
  nn::check_arena(arena, pplan.total_bytes(), 1);

  if (!state.primed) {
    std::fill(state.branch_dirty.begin(), state.branch_dirty.end(),
              std::uint8_t{1});
  }
  reset_stream_frame(state, plan_.spec.grid_rows, total_band_count(pipeline_),
                     !state.primed);

  // The full frame is requantized every time (cheap, and dirty branches
  // crop it); a byte-identical float crop quantizes to byte-identical
  // int8, so clean branches stay clean through this write.
  std::int64_t shared_measured = 0;
  run_data_ = arena.data();
  run_pplan_ = &pplan;
  std::uint8_t* const shared_base = run_data_ + pplan.shared_offset();
  run_qinput_ = bind_q_slot(
      shared_base,
      pplan.shared.slots[static_cast<std::size_t>(par_input_slot_)],
      g.shape(input_layer), cfg_.params[static_cast<std::size_t>(input_layer)],
      shared_measured);
  nn::quantize_into(input, run_qinput_);
  bind_tail(shared_base, pplan.shared.slots, 0, par_assembled_slot_,
            shared_measured);
  run_stream_ = &state;

  if (w == 1) {
    backend_.rebind_thread();
    crops_.rebind_thread();
    step_views_.resize(static_cast<std::size_t>(num_steps_));
    std::int64_t slice_measured = 0;
    std::uint8_t* const slice_base = run_data_ + pplan.slice_offset(0);
    for (std::size_t b = 0; b < plan_.branches.size(); ++b) {
      if (!state.branch_dirty[b]) continue;
      bool changed = false;
      exec_branch(static_cast<int>(b), run_qinput_, slice_base,
                  pplan.slice.slots, backend_, crops_, step_views_,
                  slice_measured, tail_memo_[static_cast<std::size_t>(split)],
                  &changed);
      stream_mark_branch(state, static_cast<std::int64_t>(b), changed);
      if (branch_hook_) branch_hook_(static_cast<int>(b));
    }
    for (std::size_t pi = 0; pi < pipeline_.size(); ++pi) {
      const std::size_t nb = pipeline_[pi].bands.size();
      std::size_t needed = 0;
      for (std::size_t j = 0; j < nb; ++j) {
        needed += stream_band_needed(state, pi, j) ? 1 : 0;
      }
      if (needed == nb) {
        // Every band is dirty: the banded path would pay one halo crop per
        // band for nothing — run the layer whole, exactly like the
        // sequential tail does (bit-identical; the bands exist for
        // multi-worker pipelining, not for single-lane execution).
        const int id = pipeline_[pi].layer_id;
        nn::run_layer_q_into(g, id, tail_memo_, *params_, backend_,
                             tail_memo_[static_cast<std::size_t>(id)]);
        for (std::size_t j = 0; j < nb; ++j) stream_mark_band(state, pi, j);
        continue;
      }
      for (std::size_t j = 0; j < nb; ++j) {
        if (!stream_band_needed(state, pi, j)) continue;
        exec_tail_band(pipeline_[pi].layer_id, pipeline_[pi].bands[j],
                       backend_, crops_);
        stream_mark_band(state, pi, j);
      }
    }
    if (state.frame_changed_output()) {
      const int first_rest = split + 1 + static_cast<int>(pipeline_.size());
      for (int id = first_rest; id < g.size(); ++id) {
        nn::run_layer_q_into(g, id, tail_memo_, *params_, backend_,
                             tail_memo_[static_cast<std::size_t>(id)]);
      }
    }
    measured_ = std::max(pplan.shared_offset() + shared_measured,
                         pplan.slice_offset(0) + slice_measured);
  } else {
    for (int lane = 0; lane < w; ++lane) {
      WorkerCtx& ctx = worker_ctx(lane);
      ctx.backend.rebind_thread();
      ctx.crops.rebind_thread();
      ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
      ctx.measured = 0;
    }
    pool->run_graph(pipeline_graph(w));
    measured_ = pplan.shared_offset() + shared_measured;
    for (int lane = 0; lane < w; ++lane) {
      measured_ = std::max(
          measured_, pplan.slice_offset(lane) +
                         workers_[static_cast<std::size_t>(lane)]->measured);
    }
  }
  run_stream_ = nullptr;
  state.primed = true;
  invoke_stats_hook();
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

nn::QTensor CompiledPatchQuantModel::run(const nn::Tensor& input,
                                         nn::WorkerPool* pool) const {
  if (pool == nullptr || pool->num_workers() == 1) return run(input);
  const nn::Graph& g = *graph_;
  const int input_layer = g.inputs().front();
  QMCU_REQUIRE(input.shape() == g.shape(input_layer),
               "input shape does not match graph input");
  const int w = pool->num_workers();
  const nn::ParallelArenaPlan& pplan = pipelined_plan(w);
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(pplan.total_bytes(), lease);
  nn::check_arena(arena, pplan.total_bytes(), 1);
  std::int64_t shared_measured = 0;

  // Stage this run's state for the cached graph's tasks. The quantized
  // input is written once here, before dispatch, and only read by the
  // branches; the assembled map and all tail views are bound up front too
  // (dispatch publishes everything to every lane).
  run_data_ = arena.data();
  run_pplan_ = &pplan;
  std::uint8_t* const shared_base = run_data_ + pplan.shared_offset();
  run_qinput_ = bind_q_slot(
      shared_base,
      pplan.shared.slots[static_cast<std::size_t>(par_input_slot_)],
      g.shape(input_layer), cfg_.params[static_cast<std::size_t>(input_layer)],
      shared_measured);
  nn::quantize_into(input, run_qinput_);
  bind_tail(shared_base, pplan.shared.slots, 0, par_assembled_slot_,
            shared_measured);

  for (int lane = 0; lane < w; ++lane) {
    WorkerCtx& ctx = worker_ctx(lane);
    ctx.backend.rebind_thread();
    ctx.crops.rebind_thread();
    ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
    ctx.measured = 0;
  }

  pool->run_graph(pipeline_graph(w));

  measured_ = pplan.shared_offset() + shared_measured;
  for (int lane = 0; lane < w; ++lane) {
    measured_ = std::max(
        measured_, pplan.slice_offset(lane) +
                       workers_[static_cast<std::size_t>(lane)]->measured);
  }
  invoke_stats_hook();
  return tail_memo_[static_cast<std::size_t>(g.output())];
}

nn::QTensor CompiledPatchQuantModel::run_barrier(const nn::Tensor& input,
                                                 nn::WorkerPool* pool) const {
  if (pool == nullptr || pool->num_workers() == 1) return run(input);
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  const int input_layer = g.inputs().front();
  QMCU_REQUIRE(input.shape() == g.shape(input_layer),
               "input shape does not match graph input");
  const int w = pool->num_workers();
  const nn::ParallelArenaPlan& pplan = parallel_plan(w);
  nn::ArenaSlab::Lease lease;
  const std::span<std::uint8_t> arena =
      bind_run_arena(pplan.total_bytes(), lease);
  nn::check_arena(arena, pplan.total_bytes(), 1);
  backend_.rebind_thread();
  crops_.rebind_thread();
  std::uint8_t* const shared_base = arena.data() + pplan.shared_offset();
  std::int64_t shared_measured = 0;

  // The quantized input is written once here, before dispatch, and only
  // read by the branches (the dispatch barrier publishes it).
  nn::QTensor qinput = bind_q_slot(
      shared_base,
      pplan.shared.slots[static_cast<std::size_t>(par_input_slot_)],
      g.shape(input_layer), cfg_.params[static_cast<std::size_t>(input_layer)],
      shared_measured);
  nn::quantize_into(input, qinput);
  nn::QTensor assembled = bind_q_slot(
      shared_base,
      pplan.shared.slots[static_cast<std::size_t>(par_assembled_slot_)],
      g.shape(split), effective_[static_cast<std::size_t>(split)],
      shared_measured);

  for (int lane = 0; lane < w; ++lane) {
    WorkerCtx& ctx = worker_ctx(lane);
    ctx.backend.rebind_thread();
    ctx.crops.rebind_thread();
    ctx.step_views.resize(static_cast<std::size_t>(num_steps_));
    ctx.measured = 0;
  }

  const auto chunks = weighted_chunks(
      branch_costs_, plan_.spec.grid_rows * chunks_per_grid_row(plan_, w));
  pool->parallel_ranges(
      chunks, [&](std::int64_t b0, std::int64_t b1, int lane) {
        WorkerCtx& ctx = *workers_[static_cast<std::size_t>(lane)];
        std::uint8_t* base = arena.data() + pplan.slice_offset(lane);
        for (std::int64_t b = b0; b < b1; ++b) {
          exec_branch(static_cast<int>(b), qinput, base, pplan.slice.slots,
                      ctx.backend, ctx.crops, ctx.step_views, ctx.measured,
                      assembled);
          if (branch_hook_) branch_hook_(static_cast<int>(b));
        }
      });

  measured_ = pplan.shared_offset() + shared_measured;
  for (int lane = 0; lane < w; ++lane) {
    measured_ = std::max(
        measured_, pplan.slice_offset(lane) +
                       workers_[static_cast<std::size_t>(lane)]->measured);
  }
  std::int64_t tail_measured = 0;
  nn::QTensor out = exec_tail(shared_base, pplan.shared.slots, 0,
                              par_assembled_slot_, tail_measured);
  measured_ = std::max(measured_, pplan.shared_offset() + tail_measured);
  invoke_stats_hook();
  return out;
}

}  // namespace qmcu::patch
