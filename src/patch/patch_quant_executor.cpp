#include "patch/patch_quant_executor.h"

#include <cmath>

#include "nn/ops/int8_kernels.h"
#include "nn/ops/requantize.h"
#include "patch/region_pool.h"

namespace qmcu::patch {

nn::QTensor crop_from_region_q(const nn::QTensor& have, const Region& avail,
                               const Region& want,
                               const nn::TensorShape& full) {
  QMCU_REQUIRE(have.shape().h == avail.y.size() &&
                   have.shape().w == avail.x.size(),
               "tensor extents must match its declared region");
  const int c = have.shape().c;
  nn::QTensor out(nn::TensorShape{want.y.size(), want.x.size(), c},
                  have.params());
  const auto zp = static_cast<std::int8_t>(have.params().zero_point);
  for (int gy = want.y.begin; gy < want.y.end; ++gy) {
    for (int gx = want.x.begin; gx < want.x.end; ++gx) {
      const int oy = gy - want.y.begin;
      const int ox = gx - want.x.begin;
      const bool in_bounds = gy >= 0 && gy < full.h && gx >= 0 && gx < full.w;
      if (!in_bounds) {
        for (int ch = 0; ch < c; ++ch) out.at(oy, ox, ch) = zp;
        continue;
      }
      QMCU_ENSURE(gy >= avail.y.begin && gy < avail.y.end &&
                      gx >= avail.x.begin && gx < avail.x.end,
                  "required element missing from available region");
      const int sy = gy - avail.y.begin;
      const int sx = gx - avail.x.begin;
      for (int ch = 0; ch < c; ++ch) {
        out.at(oy, ox, ch) = have.at(sy, sx, ch);
      }
    }
  }
  return out;
}

PatchQuantExecutor::PatchQuantExecutor(const nn::Graph& g, PatchPlan plan,
                                       nn::ActivationQuantConfig cfg,
                                       nn::ops::KernelTier tier)
    : PatchQuantExecutor(g, std::move(plan), std::move(cfg), {}, tier) {}

namespace {

bool is_pool(nn::OpKind k) {
  return k == nn::OpKind::MaxPool || k == nn::OpKind::AvgPool ||
         k == nn::OpKind::GlobalAvgPool;
}

}  // namespace

PatchQuantExecutor::PatchQuantExecutor(
    const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
    std::vector<BranchQuantConfig> branch_cfgs, nn::ops::KernelTier tier)
    : graph_(&g),
      plan_(std::move(plan)),
      cfg_(std::move(cfg)),
      branch_cfgs_(std::move(branch_cfgs)),
      params_(nn::QuantizedParameters::build(g, cfg_)),
      backend_(tier) {
  QMCU_REQUIRE(static_cast<int>(cfg_.params.size()) == g.size(),
               "quant config must cover every layer");
  effective_.reserve(cfg_.params.size());
  for (int id = 0; id < g.size(); ++id) {
    const nn::Layer& l = g.layer(id);
    effective_.push_back(
        is_pool(l.kind)
            ? effective_[static_cast<std::size_t>(l.inputs[0])]
            : cfg_.params[static_cast<std::size_t>(id)]);
  }
  if (!branch_cfgs_.empty()) {
    QMCU_REQUIRE(branch_cfgs_.size() == plan_.branches.size(),
                 "branch configs must cover every branch");
    for (std::size_t b = 0; b < branch_cfgs_.size(); ++b) {
      QMCU_REQUIRE(branch_cfgs_[b].per_step.size() ==
                       plan_.branches[b].steps.size(),
                   "branch config must cover every step");
    }
    // Mixed mode: the branch's step parameters set the real input scale of
    // each MAC step, so biases must be rescaled per branch (the shared
    // params_.bias table is built against the deployment config).
    branch_bias_.resize(branch_cfgs_.size());
    for (std::size_t b = 0; b < branch_cfgs_.size(); ++b) {
      const PatchBranch& branch = plan_.branches[b];
      branch_bias_[b].resize(branch.steps.size());
      for (std::size_t s = 0; s < branch.steps.size(); ++s) {
        const int id = branch.steps[s].layer_id;
        const nn::Layer& l = g.layer(id);
        if (!nn::is_mac_op(l.kind) || g.bias(id).empty()) continue;
        const int p = branch.step_of(l.inputs[0]);
        QMCU_ENSURE(p >= 0, "MAC step without in-branch producer");
        branch_bias_[b][s] = nn::ops::quantize_bias(
            g.bias(id), branch_cfgs_[b].per_step[static_cast<std::size_t>(p)]
                            .scale,
            params_.weights[static_cast<std::size_t>(id)].params.scale);
      }
    }
  }
}

const nn::QuantParams& PatchQuantExecutor::step_params(int branch,
                                                       int step) const {
  if (!branch_cfgs_.empty()) {
    return branch_cfgs_[static_cast<std::size_t>(branch)]
        .per_step[static_cast<std::size_t>(step)];
  }
  const int layer_id = plan_.branches[static_cast<std::size_t>(branch)]
                           .steps[static_cast<std::size_t>(step)]
                           .layer_id;
  return effective_[static_cast<std::size_t>(layer_id)];
}

std::vector<nn::QTensor> PatchQuantExecutor::run_branch(
    const nn::QTensor& qinput, int branch_index) const {
  const nn::Graph& g = *graph_;
  const PatchBranch& branch =
      plan_.branches[static_cast<std::size_t>(branch_index)];
  std::vector<nn::QTensor> regions(branch.steps.size());

  for (std::size_t s = 0; s < branch.steps.size(); ++s) {
    const BranchStep& step = branch.steps[s];
    const nn::Layer& layer = g.layer(step.layer_id);
    const nn::QuantParams& out_p =
        step_params(branch_index, static_cast<int>(s));

    const auto producer_tensor = [&](int input_id,
                                     const Region& want) -> nn::QTensor {
      const int p = branch.step_of(input_id);
      QMCU_ENSURE(p >= 0 && p < static_cast<int>(s),
                  "producer step missing from branch");
      return crop_from_region_q(regions[static_cast<std::size_t>(p)],
                                branch.steps[static_cast<std::size_t>(p)]
                                    .out_region,
                                want, g.shape(input_id));
    };

    switch (layer.kind) {
      case nn::OpKind::Input: {
        // The input patch tile is quantized straight into the branch's
        // params (mixed mode stores it sub-byte, uniform mode at int8).
        nn::QTensor crop = crop_from_region_q(
            qinput, full_region(g.shape(step.layer_id)), step.out_region,
            g.shape(step.layer_id));
        regions[s] = backend_.requantize(crop, out_p);
        break;
      }
      case nn::OpKind::Conv2D:
      case nn::OpKind::DepthwiseConv2D: {
        // Out-of-bounds crop positions carry the producer's zero point —
        // the quantized encoding of real 0, i.e. genuine zero padding.
        const nn::QTensor padded =
            producer_tensor(layer.inputs[0], step.in_region);
        nn::Layer local = layer;
        local.pad_h = local.pad_w = 0;
        const std::vector<std::int32_t>& bias =
            branch_cfgs_.empty()
                ? params_.bias[static_cast<std::size_t>(step.layer_id)]
                : branch_bias_[static_cast<std::size_t>(branch_index)][s];
        if (layer.kind == nn::OpKind::Conv2D) {
          regions[s] = backend_.conv2d(
              padded, local,
              params_.weights[static_cast<std::size_t>(step.layer_id)].data,
              params_.weights[static_cast<std::size_t>(step.layer_id)].params,
              bias, out_p);
        } else {
          regions[s] = backend_.depthwise_conv2d(
              padded, local,
              params_.weights[static_cast<std::size_t>(step.layer_id)].data,
              params_.weights[static_cast<std::size_t>(step.layer_id)].params,
              bias, out_p);
        }
        break;
      }
      case nn::OpKind::MaxPool:
      case nn::OpKind::AvgPool: {
        // Pooling excludes padding from the window; see region_pool.h.
        const int p = branch.step_of(layer.inputs[0]);
        QMCU_ENSURE(p >= 0, "producer step missing from branch");
        regions[s] = pool_region_q(
            regions[static_cast<std::size_t>(p)],
            branch.steps[static_cast<std::size_t>(p)].out_region, layer,
            step.out_region, g.shape(layer.inputs[0]));
        break;
      }
      case nn::OpKind::Add: {
        const nn::QTensor a =
            producer_tensor(layer.inputs[0], step.out_region);
        const nn::QTensor b =
            producer_tensor(layer.inputs[1], step.out_region);
        regions[s] = backend_.add(a, b, layer.act, out_p);
        break;
      }
      case nn::OpKind::Concat: {
        std::vector<nn::QTensor> cropped;
        cropped.reserve(layer.inputs.size());
        for (int in : layer.inputs) {
          cropped.push_back(producer_tensor(in, step.out_region));
        }
        std::vector<const nn::QTensor*> ptrs;
        ptrs.reserve(cropped.size());
        for (const nn::QTensor& t : cropped) ptrs.push_back(&t);
        regions[s] = backend_.concat(ptrs, out_p);
        break;
      }
      default:
        QMCU_REQUIRE(false,
                     "op kind not supported inside a patch stage: " +
                         std::string(nn::to_string(layer.kind)));
    }
  }
  return regions;
}

nn::QTensor PatchQuantExecutor::run_stage_assembled(
    const nn::Tensor& input) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  const int input_layer = g.inputs().front();
  const nn::QTensor qinput =
      nn::quantize(input, cfg_.params[static_cast<std::size_t>(input_layer)]);

  nn::QTensor assembled(g.shape(split),
                        effective_[static_cast<std::size_t>(split)]);
  for (int b = 0; b < static_cast<int>(plan_.branches.size()); ++b) {
    const std::vector<nn::QTensor> regions = run_branch(qinput, b);
    const PatchBranch& branch = plan_.branches[static_cast<std::size_t>(b)];
    const BranchStep& last = branch.steps.back();
    QMCU_ENSURE(last.layer_id == split, "branch must end at the cut layer");
    // The branch slice is requantized into the shared accumulation
    // buffer's parameters (identity in uniform mode).
    const nn::QTensor tile =
        backend_.requantize(regions.back(), assembled.params());
    for (int y = last.out_region.y.begin; y < last.out_region.y.end; ++y) {
      for (int x = last.out_region.x.begin; x < last.out_region.x.end; ++x) {
        for (int c = 0; c < assembled.shape().c; ++c) {
          assembled.at(y, x, c) = tile.at(y - last.out_region.y.begin,
                                          x - last.out_region.x.begin, c);
        }
      }
    }
  }
  return assembled;
}

nn::QTensor PatchQuantExecutor::run(const nn::Tensor& input) const {
  const nn::Graph& g = *graph_;
  const int split = plan_.spec.split_layer;
  std::vector<nn::QTensor> memo(static_cast<std::size_t>(g.size()));
  memo[static_cast<std::size_t>(split)] = run_stage_assembled(input);
  for (int id = split + 1; id < g.size(); ++id) {
    memo[static_cast<std::size_t>(id)] =
        nn::run_layer_q(g, id, memo, params_,
                        effective_[static_cast<std::size_t>(id)], backend_);
  }
  return std::move(memo[static_cast<std::size_t>(g.output())]);
}

}  // namespace qmcu::patch
