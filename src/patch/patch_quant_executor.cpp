#include "patch/patch_quant_executor.h"

#include <cmath>

#include "nn/ops/int8_kernels.h"
#include "nn/ops/requantize.h"
#include "patch/region_pool.h"

namespace qmcu::patch {

void crop_from_region_q_into(const nn::QTensor& have, const Region& avail,
                             const Region& want, const nn::TensorShape& full,
                             nn::QTensor& out) {
  QMCU_REQUIRE(have.shape().h == avail.y.size() &&
                   have.shape().w == avail.x.size(),
               "tensor extents must match its declared region");
  const int c = have.shape().c;
  QMCU_REQUIRE(out.shape() == nn::TensorShape(want.y.size(), want.x.size(), c),
               "crop destination shape mismatch");
  QMCU_REQUIRE(out.params() == have.params(),
               "crop destination must carry the source params");
  const auto zp = static_cast<std::int8_t>(have.params().zero_point);
  for (int gy = want.y.begin; gy < want.y.end; ++gy) {
    for (int gx = want.x.begin; gx < want.x.end; ++gx) {
      const int oy = gy - want.y.begin;
      const int ox = gx - want.x.begin;
      const bool in_bounds = gy >= 0 && gy < full.h && gx >= 0 && gx < full.w;
      if (!in_bounds) {
        for (int ch = 0; ch < c; ++ch) out.at(oy, ox, ch) = zp;
        continue;
      }
      QMCU_ENSURE(gy >= avail.y.begin && gy < avail.y.end &&
                      gx >= avail.x.begin && gx < avail.x.end,
                  "required element missing from available region");
      const int sy = gy - avail.y.begin;
      const int sx = gx - avail.x.begin;
      for (int ch = 0; ch < c; ++ch) {
        out.at(oy, ox, ch) = have.at(sy, sx, ch);
      }
    }
  }
}

nn::QTensor crop_from_region_q(const nn::QTensor& have, const Region& avail,
                               const Region& want,
                               const nn::TensorShape& full) {
  nn::QTensor out(nn::TensorShape{want.y.size(), want.x.size(),
                                  have.shape().c},
                  have.params());
  crop_from_region_q_into(have, avail, want, full, out);
  return out;
}

PatchQuantExecutor::PatchQuantExecutor(
    const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
    nn::ops::KernelTier tier,
    std::shared_ptr<const nn::QuantizedParameters> params)
    : PatchQuantExecutor(g, std::move(plan), std::move(cfg), {}, tier,
                         std::move(params)) {}

PatchQuantExecutor::PatchQuantExecutor(
    const nn::Graph& g, PatchPlan plan, nn::ActivationQuantConfig cfg,
    std::vector<BranchQuantConfig> branch_cfgs, nn::ops::KernelTier tier,
    std::shared_ptr<const nn::QuantizedParameters> params)
    : graph_(&g),
      compiled_(g, std::move(plan), std::move(cfg), std::move(branch_cfgs),
                tier, std::move(params)) {}

std::vector<nn::QTensor> PatchQuantExecutor::run_branch(
    const nn::QTensor& qinput, int branch_index) const {
  const nn::Graph& g = *graph_;
  const nn::QuantizedParameters& params = *compiled_.shared_parameters();
  const PatchBranch& branch =
      plan().branches[static_cast<std::size_t>(branch_index)];
  std::vector<nn::QTensor> regions(branch.steps.size());

  for (std::size_t s = 0; s < branch.steps.size(); ++s) {
    const BranchStep& step = branch.steps[s];
    const nn::Layer& layer = g.layer(step.layer_id);
    const nn::QuantParams& out_p =
        compiled_.step_params(branch_index, static_cast<int>(s));

    const auto producer_tensor = [&](int input_id,
                                     const Region& want) -> nn::QTensor {
      const int p = branch.step_of(input_id);
      QMCU_ENSURE(p >= 0 && p < static_cast<int>(s),
                  "producer step missing from branch");
      return crop_from_region_q(regions[static_cast<std::size_t>(p)],
                                branch.steps[static_cast<std::size_t>(p)]
                                    .out_region,
                                want, g.shape(input_id));
    };

    switch (layer.kind) {
      case nn::OpKind::Input: {
        // The input patch tile is quantized straight into the branch's
        // params (mixed mode stores it sub-byte, uniform mode at int8).
        nn::QTensor crop = crop_from_region_q(
            qinput, full_region(g.shape(step.layer_id)), step.out_region,
            g.shape(step.layer_id));
        regions[s] = compiled_.backend().requantize(crop, out_p);
        break;
      }
      case nn::OpKind::Conv2D:
      case nn::OpKind::DepthwiseConv2D: {
        // Out-of-bounds crop positions carry the producer's zero point —
        // the quantized encoding of real 0, i.e. genuine zero padding.
        const nn::QTensor padded =
            producer_tensor(layer.inputs[0], step.in_region);
        nn::Layer local = layer;
        local.pad_h = local.pad_w = 0;
        const std::span<const std::int32_t> bias =
            compiled_.branch_configs().empty()
                ? params.bias[static_cast<std::size_t>(step.layer_id)]
                : std::span<const std::int32_t>(
                      compiled_.branch_bias()
                          [static_cast<std::size_t>(branch_index)][s]);
        if (layer.kind == nn::OpKind::Conv2D) {
          regions[s] = compiled_.backend().conv2d(
              padded, local,
              params.weights[static_cast<std::size_t>(step.layer_id)].data,
              params.weights[static_cast<std::size_t>(step.layer_id)].params,
              bias, out_p);
        } else {
          regions[s] = compiled_.backend().depthwise_conv2d(
              padded, local,
              params.weights[static_cast<std::size_t>(step.layer_id)].data,
              params.weights[static_cast<std::size_t>(step.layer_id)].params,
              bias, out_p);
        }
        break;
      }
      case nn::OpKind::MaxPool:
      case nn::OpKind::AvgPool: {
        // Pooling excludes padding from the window; see region_pool.h.
        const int p = branch.step_of(layer.inputs[0]);
        QMCU_ENSURE(p >= 0, "producer step missing from branch");
        regions[s] = pool_region_q(
            regions[static_cast<std::size_t>(p)],
            branch.steps[static_cast<std::size_t>(p)].out_region, layer,
            step.out_region, g.shape(layer.inputs[0]));
        break;
      }
      case nn::OpKind::Add: {
        const nn::QTensor a =
            producer_tensor(layer.inputs[0], step.out_region);
        const nn::QTensor b =
            producer_tensor(layer.inputs[1], step.out_region);
        regions[s] = compiled_.backend().add(a, b, layer.act, out_p);
        break;
      }
      case nn::OpKind::Concat: {
        std::vector<nn::QTensor> cropped;
        cropped.reserve(layer.inputs.size());
        for (int in : layer.inputs) {
          cropped.push_back(producer_tensor(in, step.out_region));
        }
        std::vector<const nn::QTensor*> ptrs;
        ptrs.reserve(cropped.size());
        for (const nn::QTensor& t : cropped) ptrs.push_back(&t);
        regions[s] = compiled_.backend().concat(ptrs, out_p);
        break;
      }
      default:
        QMCU_REQUIRE(false,
                     "op kind not supported inside a patch stage: " +
                         std::string(nn::to_string(layer.kind)));
    }
  }
  return regions;
}

nn::QTensor PatchQuantExecutor::run_stage_assembled(
    const nn::Tensor& input) const {
  const nn::Graph& g = *graph_;
  const int split = plan().spec.split_layer;
  const int input_layer = g.inputs().front();
  const nn::QTensor qinput = nn::quantize(
      input,
      compiled_.config().params[static_cast<std::size_t>(input_layer)]);

  nn::QTensor assembled(
      g.shape(split),
      compiled_.effective_params()[static_cast<std::size_t>(split)]);
  for (int b = 0; b < static_cast<int>(plan().branches.size()); ++b) {
    const std::vector<nn::QTensor> regions = run_branch(qinput, b);
    const PatchBranch& branch = plan().branches[static_cast<std::size_t>(b)];
    const BranchStep& last = branch.steps.back();
    QMCU_ENSURE(last.layer_id == split, "branch must end at the cut layer");
    // The branch slice is requantized into the shared accumulation
    // buffer's parameters (identity in uniform mode).
    const nn::QTensor tile =
        compiled_.backend().requantize(regions.back(), assembled.params());
    for (int y = last.out_region.y.begin; y < last.out_region.y.end; ++y) {
      for (int x = last.out_region.x.begin; x < last.out_region.x.end; ++x) {
        for (int c = 0; c < assembled.shape().c; ++c) {
          assembled.at(y, x, c) = tile.at(y - last.out_region.y.begin,
                                          x - last.out_region.x.begin, c);
        }
      }
    }
  }
  return assembled;
}

nn::QTensor PatchQuantExecutor::run(const nn::Tensor& input) const {
  return compiled_.run(input);
}

}  // namespace qmcu::patch
