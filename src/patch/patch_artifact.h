// patch_artifact.h — QMCP plan artifacts for patch-based quantized models.
//
// Extends the nn::plan_artifact format with three patch sections:
//
//   PTCH  the PatchSpec (cut layer + grid) and the mixed-mode per-branch
//         per-step quant configs
//   BBIA  the branch-rescaled int32 biases build_branch_bias derives from
//         float biases — serialized because the artifact's graph is
//         topology-only (the float biases are not shipped)
//   PIPE  the row-banded pipelined-tail structure (bands + dependencies)
//
// The loader rebuilds the PatchPlan from the spec (pure receptive-field
// propagation over the topology) and constructs a CompiledPatchQuantModel
// whose weights, panels and offset rows view the shared mapping, exactly
// like nn::load_compiled does for layer-based models.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "nn/plan_artifact.h"
#include "patch/compiled_patch_model.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

// Bakes a patch-quant artifact: everything CompiledPatchQuantModel computes
// from float parameters at construction. `branch_cfgs` empty = uniform
// mode; otherwise one config per branch of build_patch_plan(g, spec).
void compile_to_artifact(const nn::Graph& g, const PatchSpec& spec,
                         const nn::ActivationQuantConfig& cfg,
                         std::span<const BranchQuantConfig> branch_cfgs,
                         const std::string& path);

// Artifact + model under shared ownership (the model views the mapping).
struct LoadedPatchModel {
  std::shared_ptr<const nn::PlanArtifact> artifact;
  std::unique_ptr<CompiledPatchQuantModel> model;
};

LoadedPatchModel load_compiled_patch(
    const std::string& path,
    nn::ops::KernelTier tier = nn::ops::KernelTier::Simd);

}  // namespace qmcu::patch
