#include "patch/patch_artifact.h"

#include <utility>
#include <vector>

namespace qmcu::patch {

namespace {

using nn::artifact_detail::ByteReader;
using nn::artifact_detail::ByteWriter;

constexpr std::uint32_t kTagPatch = nn::artifact_tag('P', 'T', 'C', 'H');
constexpr std::uint32_t kTagBranchBias = nn::artifact_tag('B', 'B', 'I', 'A');
constexpr std::uint32_t kTagPipeline = nn::artifact_tag('P', 'I', 'P', 'E');

std::string patch_section(const PatchSpec& spec,
                          std::span<const BranchQuantConfig> branch_cfgs) {
  ByteWriter w;
  w.i32(spec.split_layer);
  w.i32(spec.grid_rows);
  w.i32(spec.grid_cols);
  w.u32(static_cast<std::uint32_t>(branch_cfgs.size()));
  for (const BranchQuantConfig& b : branch_cfgs) {
    w.u32(static_cast<std::uint32_t>(b.per_step.size()));
    for (const nn::QuantParams& p : b.per_step) {
      w.f32(p.scale);
      w.i32(p.zero_point);
      w.i32(p.bits);
    }
  }
  return std::move(w.out);
}

std::string branch_bias_section(
    const std::vector<std::vector<std::vector<std::int32_t>>>& bias) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(bias.size()));
  for (const auto& branch : bias) {
    w.u32(static_cast<std::uint32_t>(branch.size()));
    for (const auto& step : branch) {
      w.u32(static_cast<std::uint32_t>(step.size()));
      for (std::int32_t v : step) w.i32(v);
    }
  }
  return std::move(w.out);
}

std::string pipeline_section(std::span<const PipelinedTailLayer> pipeline) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(pipeline.size()));
  for (const PipelinedTailLayer& l : pipeline) {
    w.i32(l.layer_id);
    w.u32(static_cast<std::uint32_t>(l.bands.size()));
    for (const Interval& b : l.bands) {
      w.i32(b.begin);
      w.i32(b.end);
    }
    for (const auto& deps : l.grid_row_deps) {
      w.u32(static_cast<std::uint32_t>(deps.size()));
      for (int d : deps) w.i32(d);
    }
    for (const auto& deps : l.band_deps) {
      w.u32(static_cast<std::uint32_t>(deps.size()));
      for (const auto& [layer, band] : deps) {
        w.i32(layer);
        w.i32(band);
      }
    }
  }
  return std::move(w.out);
}

std::vector<std::vector<std::vector<std::int32_t>>> parse_branch_bias(
    std::span<const std::uint8_t> bytes) {
  std::vector<std::vector<std::vector<std::int32_t>>> bias;
  if (bytes.empty()) return bias;
  ByteReader r(bytes);
  const std::uint32_t nbranches = r.u32();
  QMCU_REQUIRE(nbranches <= (1u << 16), "implausible branch count");
  bias.resize(nbranches);
  for (auto& branch : bias) {
    const std::uint32_t nsteps = r.u32();
    QMCU_REQUIRE(nsteps <= (1u << 16), "implausible step count");
    branch.resize(nsteps);
    for (auto& step : branch) {
      const std::uint32_t count = r.u32();
      QMCU_REQUIRE(count <= (1u << 20), "implausible bias count");
      step.resize(count);
      for (std::int32_t& v : step) v = r.i32();
    }
  }
  QMCU_REQUIRE(r.done(), "trailing bytes in artifact branch-bias section");
  return bias;
}

std::vector<PipelinedTailLayer> parse_pipeline(
    std::span<const std::uint8_t> bytes) {
  std::vector<PipelinedTailLayer> pipeline;
  if (bytes.empty()) return pipeline;
  ByteReader r(bytes);
  const std::uint32_t nlayers = r.u32();
  QMCU_REQUIRE(nlayers <= (1u << 16), "implausible pipeline depth");
  pipeline.resize(nlayers);
  for (PipelinedTailLayer& l : pipeline) {
    l.layer_id = r.i32();
    const std::uint32_t nbands = r.u32();
    QMCU_REQUIRE(nbands <= (1u << 16), "implausible band count");
    l.bands.resize(nbands);
    for (Interval& b : l.bands) {
      b.begin = r.i32();
      b.end = r.i32();
    }
    l.grid_row_deps.resize(nbands);
    for (auto& deps : l.grid_row_deps) {
      const std::uint32_t n = r.u32();
      QMCU_REQUIRE(n <= (1u << 16), "implausible dependency count");
      deps.resize(n);
      for (int& d : deps) d = r.i32();
    }
    l.band_deps.resize(nbands);
    for (auto& deps : l.band_deps) {
      const std::uint32_t n = r.u32();
      QMCU_REQUIRE(n <= (1u << 16), "implausible dependency count");
      deps.resize(n);
      for (auto& [layer, band] : deps) {
        layer = r.i32();
        band = r.i32();
      }
    }
  }
  QMCU_REQUIRE(r.done(), "trailing bytes in artifact pipeline section");
  return pipeline;
}

}  // namespace

void compile_to_artifact(const nn::Graph& g, const PatchSpec& spec,
                         const nn::ActivationQuantConfig& cfg,
                         std::span<const BranchQuantConfig> branch_cfgs,
                         const std::string& path) {
  const PatchPlan plan = build_patch_plan(g, spec);
  std::vector<std::vector<std::vector<std::int32_t>>> branch_bias;
  if (!branch_cfgs.empty()) {
    QMCU_REQUIRE(branch_cfgs.size() == plan.branches.size(),
                 "branch configs must cover every branch");
    const nn::QuantizedParameters params =
        nn::QuantizedParameters::build(g, cfg);
    branch_bias = build_branch_bias(g, plan, branch_cfgs, params);
  }
  const std::vector<PipelinedTailLayer> pipeline =
      build_pipelined_tail(g, plan, std::max(2, spec.grid_rows));

  std::vector<nn::ArtifactSection> extra;
  extra.push_back({kTagPatch, patch_section(spec, branch_cfgs)});
  if (!branch_bias.empty()) {
    extra.push_back({kTagBranchBias, branch_bias_section(branch_bias)});
  }
  extra.push_back({kTagPipeline, pipeline_section(pipeline)});
  nn::compile_to_artifact(g, cfg, path, extra,
                          nn::ArtifactModelKind::PatchQuant);
}

LoadedPatchModel load_compiled_patch(const std::string& path,
                                     nn::ops::KernelTier tier) {
  LoadedPatchModel out;
  out.artifact = nn::PlanArtifact::map(path);
  QMCU_REQUIRE(out.artifact->kind() == nn::ArtifactModelKind::PatchQuant,
               "artifact does not describe a patch-quant model");

  const std::span<const std::uint8_t> ptch = out.artifact->section(kTagPatch);
  QMCU_REQUIRE(!ptch.empty(), "artifact missing section: PTCH");
  ByteReader r(ptch);
  PatchSpec spec;
  spec.split_layer = r.i32();
  spec.grid_rows = r.i32();
  spec.grid_cols = r.i32();
  const std::uint32_t nbranches = r.u32();
  QMCU_REQUIRE(nbranches <= (1u << 16), "implausible branch count");
  std::vector<BranchQuantConfig> branch_cfgs(nbranches);
  for (BranchQuantConfig& b : branch_cfgs) {
    const std::uint32_t nsteps = r.u32();
    QMCU_REQUIRE(nsteps <= (1u << 16), "implausible step count");
    b.per_step.resize(nsteps);
    for (nn::QuantParams& p : b.per_step) {
      p.scale = r.f32();
      p.zero_point = r.i32();
      p.bits = r.i32();
      QMCU_REQUIRE(p.scale > 0.0f && p.bits >= 2 && p.bits <= 8,
                   "invalid branch quant params in artifact");
    }
  }
  QMCU_REQUIRE(r.done(), "trailing bytes in artifact patch section");

  // The plan is pure receptive-field propagation over the (deserialized)
  // topology — cheap, and exactly what the writer's build_patch_plan ran.
  PatchPlan plan = build_patch_plan(out.artifact->graph(), spec);

  PrecompiledPatchParts parts;
  parts.branch_bias =
      parse_branch_bias(out.artifact->section(kTagBranchBias));
  parts.pipeline = parse_pipeline(out.artifact->section(kTagPipeline));
  parts.kernels = out.artifact->bundle();

  out.model = std::make_unique<CompiledPatchQuantModel>(
      out.artifact->graph(), std::move(plan), out.artifact->config(),
      std::move(branch_cfgs), out.artifact->parameters(), std::move(parts),
      tier);
  return out;
}

}  // namespace qmcu::patch
