// region_pool.h — bounds-aware pooling over feature-map regions.
//
// Convolution may treat out-of-bounds halo positions as zeros (that is
// what zero padding means), but pooling must *exclude* them: layer-based
// MaxPool never lets padding win the max and AvgPool divides by the valid
// count only. A zero-filled crop would silently change both (e.g. the max
// of an all-negative window). These helpers evaluate pool windows in the
// feature map's global coordinate space, skipping positions outside the
// map, and are the pooling path of both patch executors.
#pragma once

#include "nn/graph.h"
#include "nn/ops/int8_kernels.h"
#include "nn/tensor.h"
#include "patch/receptive_field.h"

namespace qmcu::patch {

// Pools `out_region` of layer `l` (MaxPool or AvgPool) from the producer's
// region tensor `have` covering `avail` of a map with full extent `full`.
// The `_into` forms write into a caller-bound destination sized
// out_region x channels (quantized destinations carry the producer's
// params) — the compiled patch executor's allocation-free path.
nn::Tensor pool_region_f32(const nn::Tensor& have, const Region& avail,
                           const nn::Layer& l, const Region& out_region,
                           const nn::TensorShape& full);
void pool_region_f32_into(const nn::Tensor& have, const Region& avail,
                          const nn::Layer& l, const Region& out_region,
                          const nn::TensorShape& full, nn::Tensor& out);

nn::QTensor pool_region_q(const nn::QTensor& have, const Region& avail,
                          const nn::Layer& l, const Region& out_region,
                          const nn::TensorShape& full);
void pool_region_q_into(const nn::QTensor& have, const Region& avail,
                        const nn::Layer& l, const Region& out_region,
                        const nn::TensorShape& full, nn::QTensor& out);
// Allocation-free flavour for the compiled hot path: `avg` must cover the
// layer's kernel window for AvgPool (callers cache it per window size) and
// may be null for MaxPool.
void pool_region_q_into(const nn::QTensor& have, const Region& avail,
                        const nn::Layer& l, const Region& out_region,
                        const nn::TensorShape& full,
                        const nn::ops::AvgPoolMultipliers* avg,
                        nn::QTensor& out);

// --- tiled region merge ----------------------------------------------------
//
// Writes one branch's finished tile into the shared assembled feature map.
// Each call touches exactly the rows/columns of `r` and nothing else, and
// the patch grid partitions the assembled map into disjoint tiles
// (patch_plan.cpp: required[split] is the branch's tile_interval), so
// merges commute: any completion order — sequential, shuffled, or
// concurrent from several workers — produces the identical assembled map.
// This is what lets the parallel patch runtime merge without locks and
// still be bit-identical to the sequential path. The quantized form
// rescales the tile into the assembled map's params (identity memcpy when
// they already match — uniform mode).
void merge_region_f32(const nn::Tensor& tile, const Region& r,
                      nn::Tensor& assembled);
void merge_region_q(const nn::QTensor& tile, const Region& r,
                    nn::QTensor& assembled);

// Compare-before-write merge for the streaming runtime: identical to the
// plain merge, but returns whether any assembled byte actually changed (a
// recomputed branch whose tile matches the retained bytes leaves its grid
// row clean, so downstream tail bands can still be skipped). Byte-exact
// compare — merges remain order-independent because rows that would write
// identical bytes write nothing.
bool merge_region_f32_changed(const nn::Tensor& tile, const Region& r,
                              nn::Tensor& assembled);
bool merge_region_q_changed(const nn::QTensor& tile, const Region& r,
                            nn::QTensor& assembled);

}  // namespace qmcu::patch
