// restructuring.h — dataflow restructuring for active memory reduction
// (Cipolletta & Calimera, DATE 2021, reference [9]).
//
// Their restructuring algorithm searches for the patch split layer and
// branch depth that minimise peak memory. This implementation performs the
// same search exhaustively over every valid cut point and candidate patch
// grid, pricing each candidate with the uniform-int8 patch cost model and
// keeping the lowest-peak plan (ties broken towards fewer redundant MACs —
// the paper notes the method trades extra recomputation for memory, which
// is exactly what Table I shows: lowest peak, highest BitOPs).
#pragma once

#include <array>
#include <span>

#include "mcu/cost_model.h"
#include "patch/patch_cost.h"
#include "patch/patch_plan.h"

namespace qmcu::patch {

struct RestructuringResult {
  PatchSpec spec;
  PatchCost cost;       // at uniform int8
  int candidates_tried = 0;
};

inline constexpr std::array<int, 3> kDefaultGrids{2, 3, 4};

RestructuringResult restructure_for_memory(
    const nn::Graph& g, const mcu::CostModel& cost_model,
    std::span<const int> grids = kDefaultGrids);

}  // namespace qmcu::patch
