// mcunetv2.h — MCUNetV2-style patch planner (Lin et al., reference [8]).
//
// MCUNetV2 runs the memory-hungry initial stage per patch and the rest
// layer-based. The planner picks the first valid cut point at which the
// feature map has been spatially reduced by `stage_downsample` (default 4x,
// the MCUNetV2 configuration) and a fixed patch grid.
#pragma once

#include "patch/patch_plan.h"

namespace qmcu::patch {

struct McuNetV2Options {
  int grid = 3;              // p x p patches (MCUNetV2 default 3x3)
  int stage_downsample = 4;  // patch until spatially reduced by this factor
};

PatchSpec plan_mcunetv2(const nn::Graph& g, const McuNetV2Options& opt = {});

}  // namespace qmcu::patch
