#include "patch/patch_executor.h"

#include <cstring>

#include "nn/ops/float_kernels.h"
#include "patch/region_pool.h"

namespace qmcu::patch {

void crop_from_region_into(const nn::Tensor& have, const Region& avail,
                           const Region& want, const nn::TensorShape& full,
                           nn::Tensor& out) {
  QMCU_REQUIRE(have.shape().h == avail.y.size() &&
                   have.shape().w == avail.x.size(),
               "tensor extents must match its declared region");
  const int c = have.shape().c;
  QMCU_REQUIRE(out.shape() == nn::TensorShape(want.y.size(), want.x.size(), c),
               "crop destination shape mismatch");
  // Zero-fill first: destinations may be reused scratch, and out-of-bounds
  // positions must read as zero padding.
  std::memset(out.data().data(), 0, out.data().size() * sizeof(float));
  for (int gy = want.y.begin; gy < want.y.end; ++gy) {
    for (int gx = want.x.begin; gx < want.x.end; ++gx) {
      const int oy = gy - want.y.begin;
      const int ox = gx - want.x.begin;
      const bool in_bounds = gy >= 0 && gy < full.h && gx >= 0 && gx < full.w;
      if (!in_bounds) continue;  // zero padding
      QMCU_ENSURE(gy >= avail.y.begin && gy < avail.y.end &&
                      gx >= avail.x.begin && gx < avail.x.end,
                  "required element missing from available region");
      const int sy = gy - avail.y.begin;
      const int sx = gx - avail.x.begin;
      for (int ch = 0; ch < c; ++ch) {
        out.at(oy, ox, ch) = have.at(sy, sx, ch);
      }
    }
  }
}

nn::Tensor crop_from_region(const nn::Tensor& have, const Region& avail,
                            const Region& want,
                            const nn::TensorShape& full) {
  nn::Tensor out(
      nn::TensorShape{want.y.size(), want.x.size(), have.shape().c});
  crop_from_region_into(have, avail, want, full, out);
  return out;
}

PatchExecutor::PatchExecutor(const nn::Graph& g, PatchPlan plan,
                             nn::ops::KernelTier tier)
    : graph_(&g), compiled_(g, std::move(plan), tier) {}

std::vector<nn::Tensor> PatchExecutor::run_branch(const nn::Tensor& input,
                                                  int branch_index,
                                                  const StepHook& hook) const {
  const nn::Graph& g = *graph_;
  const PatchBranch& branch =
      plan().branches[static_cast<std::size_t>(branch_index)];
  std::vector<nn::Tensor> regions(branch.steps.size());

  for (std::size_t s = 0; s < branch.steps.size(); ++s) {
    const BranchStep& step = branch.steps[s];
    const nn::Layer& layer = g.layer(step.layer_id);

    const auto producer_tensor = [&](int input_id,
                                     const Region& want) -> nn::Tensor {
      const int p = branch.step_of(input_id);
      QMCU_ENSURE(p >= 0 && p < static_cast<int>(s),
                  "producer step missing from branch");
      return crop_from_region(regions[static_cast<std::size_t>(p)],
                              branch.steps[static_cast<std::size_t>(p)]
                                  .out_region,
                              want, g.shape(input_id));
    };

    switch (layer.kind) {
      case nn::OpKind::Input:
        regions[s] = crop_from_region(
            input, full_region(input.shape()), step.out_region,
            input.shape());
        break;
      case nn::OpKind::Conv2D:
      case nn::OpKind::DepthwiseConv2D: {
        // Zero padding is exactly what the unclamped crop materialises, so
        // run the kernel pad-free on the region tensor.
        const nn::Tensor padded =
            producer_tensor(layer.inputs[0], step.in_region);
        nn::Layer local = layer;
        local.pad_h = local.pad_w = 0;
        if (layer.kind == nn::OpKind::Conv2D) {
          regions[s] = compiled_.backend().conv2d_f32(padded, local,
                                           g.weights(step.layer_id),
                                           g.bias(step.layer_id));
        } else {
          regions[s] = compiled_.backend().depthwise_conv2d_f32(
              padded, local, g.weights(step.layer_id),
              g.bias(step.layer_id));
        }
        QMCU_ENSURE(regions[s].shape().h == step.out_region.y.size() &&
                        regions[s].shape().w == step.out_region.x.size(),
                    "computed region extent mismatch");
        break;
      }
      case nn::OpKind::MaxPool:
      case nn::OpKind::AvgPool: {
        // Pooling must *exclude* padding from the window (max of an
        // all-negative window, avg divisor) — see region_pool.h.
        const int p = branch.step_of(layer.inputs[0]);
        QMCU_ENSURE(p >= 0, "producer step missing from branch");
        regions[s] = pool_region_f32(
            regions[static_cast<std::size_t>(p)],
            branch.steps[static_cast<std::size_t>(p)].out_region, layer,
            step.out_region, g.shape(layer.inputs[0]));
        break;
      }
      case nn::OpKind::Add: {
        const nn::Tensor a = producer_tensor(layer.inputs[0], step.out_region);
        const nn::Tensor b = producer_tensor(layer.inputs[1], step.out_region);
        regions[s] = nn::ops::add_f32(a, b, layer.act);
        break;
      }
      case nn::OpKind::Concat: {
        std::vector<nn::Tensor> cropped;
        cropped.reserve(layer.inputs.size());
        for (int in : layer.inputs) {
          cropped.push_back(producer_tensor(in, step.out_region));
        }
        std::vector<const nn::Tensor*> ptrs;
        ptrs.reserve(cropped.size());
        for (const nn::Tensor& t : cropped) ptrs.push_back(&t);
        regions[s] = nn::ops::concat_f32(ptrs);
        break;
      }
      default:
        QMCU_REQUIRE(false,
                     "op kind not supported inside a patch stage: " +
                         std::string(nn::to_string(layer.kind)));
    }
    if (hook) hook(branch_index, static_cast<int>(s), regions[s]);
  }
  return regions;
}

std::vector<std::vector<nn::Tensor>> PatchExecutor::run_stage(
    const nn::Tensor& input, const StepHook& hook) const {
  std::vector<std::vector<nn::Tensor>> out;
  out.reserve(plan().branches.size());
  for (int b = 0; b < static_cast<int>(plan().branches.size()); ++b) {
    out.push_back(run_branch(input, b, hook));
  }
  return out;
}

nn::Tensor PatchExecutor::run_stage_assembled(const nn::Tensor& input,
                                              const StepHook& hook) const {
  const nn::Graph& g = *graph_;
  const int split = plan().spec.split_layer;
  nn::Tensor assembled(g.shape(split));
  for (int b = 0; b < static_cast<int>(plan().branches.size()); ++b) {
    const std::vector<nn::Tensor> regions = run_branch(input, b, hook);
    const PatchBranch& branch = plan().branches[static_cast<std::size_t>(b)];
    const BranchStep& last = branch.steps.back();
    QMCU_ENSURE(last.layer_id == split, "branch must end at the cut layer");
    const nn::Tensor& tile = regions.back();
    for (int y = last.out_region.y.begin; y < last.out_region.y.end; ++y) {
      for (int x = last.out_region.x.begin; x < last.out_region.x.end; ++x) {
        for (int c = 0; c < assembled.shape().c; ++c) {
          assembled.at(y, x, c) = tile.at(y - last.out_region.y.begin,
                                          x - last.out_region.x.begin, c);
        }
      }
    }
  }
  return assembled;
}

nn::Tensor PatchExecutor::run(const nn::Tensor& input,
                              const StepHook& hook) const {
  if (!hook) return compiled_.run(input);
  const nn::Graph& g = *graph_;
  const int split = plan().spec.split_layer;
  std::vector<nn::Tensor> memo(static_cast<std::size_t>(g.size()));
  memo[static_cast<std::size_t>(split)] = run_stage_assembled(input, hook);
  for (int id = split + 1; id < g.size(); ++id) {
    memo[static_cast<std::size_t>(id)] =
        nn::run_layer_f32(g, id, memo, compiled_.backend());
  }
  return std::move(memo[static_cast<std::size_t>(g.output())]);
}

}  // namespace qmcu::patch
