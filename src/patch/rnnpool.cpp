#include "patch/rnnpool.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "patch/patch_plan.h"

namespace qmcu::patch {

namespace {

using nn::Activation;
using nn::Graph;
using nn::OpKind;

// Appends the pooling block to `out` and returns its output layer id. The
// block: conv3x3 s2 (width) -> [dw3x3 s2 + pw1x1] until the target spatial
// size -> pw1x1 projection to `target_c`.
int append_pool_block(Graph& out, int input, int width, int target_h,
                      int target_c) {
  int x = out.add_conv2d(input, width, 3, 2, 1, Activation::ReLU,
                         "rnnpool_stem");
  while (out.shape(x).h > target_h) {
    x = out.add_depthwise_conv2d(x, 3, 2, 1, Activation::ReLU);
    x = out.add_conv2d(x, width, 1, 1, 0, Activation::ReLU);
  }
  return out.add_conv2d(x, target_c, 1, 1, 0, Activation::None,
                        "rnnpool_proj");
}

std::int64_t block_macs_for_width(const Graph& g, int input_id, int width,
                                  int target_h, int target_c) {
  Graph probe("probe");
  const int in = probe.add_input(g.shape(input_id));
  const int end = append_pool_block(probe, in, width, target_h, target_c);
  std::int64_t macs = 0;
  for (int i = 0; i <= end; ++i) macs += probe.macs(i);
  return macs;
}

// Re-adds layer `id` of `src` into `dst` with remapped inputs; copies its
// parameters verbatim.
int clone_layer(const Graph& src, int id, Graph& dst,
                const std::vector<int>& remap) {
  const nn::Layer& l = src.layer(id);
  std::vector<int> ins;
  ins.reserve(l.inputs.size());
  for (int in : l.inputs) {
    QMCU_ENSURE(remap[static_cast<std::size_t>(in)] >= 0,
                "tail layer consumes an unmapped tensor");
    ins.push_back(remap[static_cast<std::size_t>(in)]);
  }
  int nid = -1;
  switch (l.kind) {
    case OpKind::Conv2D:
      nid = dst.add_conv2d(ins[0], l.out_channels, l.kernel_h, l.stride_h,
                           l.pad_h, l.act, l.name);
      break;
    case OpKind::DepthwiseConv2D:
      nid = dst.add_depthwise_conv2d(ins[0], l.kernel_h, l.stride_h, l.pad_h,
                                     l.act, l.name);
      break;
    case OpKind::FullyConnected:
      nid = dst.add_fully_connected(ins[0], l.out_channels, l.act, l.name);
      break;
    case OpKind::MaxPool:
      nid = dst.add_max_pool(ins[0], l.kernel_h, l.stride_h, l.pad_h, l.name);
      break;
    case OpKind::AvgPool:
      nid = dst.add_avg_pool(ins[0], l.kernel_h, l.stride_h, l.pad_h, l.name);
      break;
    case OpKind::GlobalAvgPool:
      nid = dst.add_global_avg_pool(ins[0], l.name);
      break;
    case OpKind::Add:
      nid = dst.add_residual_add(ins[0], ins[1], l.act, l.name);
      break;
    case OpKind::Concat:
      nid = dst.add_concat(ins, l.name);
      break;
    case OpKind::Softmax:
      nid = dst.add_softmax(ins[0], l.name);
      break;
    case OpKind::Input:
      QMCU_ENSURE(false, "inputs are not cloned");
  }
  if (src.has_parameters(id)) {
    dst.set_parameters(nid,
                       std::vector<float>(src.weights(id).begin(),
                                          src.weights(id).end()),
                       std::vector<float>(src.bias(id).begin(),
                                          src.bias(id).end()));
  }
  return nid;
}

}  // namespace

RnnPoolResult make_rnnpool_variant(const nn::Graph& g, int stage_downsample) {
  QMCU_REQUIRE(stage_downsample >= 2, "downsample target must be >= 2");
  const std::vector<int> cuts = valid_cut_points(g);
  QMCU_REQUIRE(!cuts.empty(), "graph has no valid cut points");
  const nn::TensorShape& in_shape = g.shape(g.inputs().front());
  const int target_h = in_shape.h / stage_downsample;
  int cut = -1;
  for (int c : cuts) {
    if (g.shape(c).h <= target_h) {
      cut = c;
      break;
    }
  }
  QMCU_REQUIRE(cut >= 0, "no cut point reaches the downsample target");

  RnnPoolResult result{Graph(g.name() + "_rnnpool"), cut, 0, 0};
  for (int i = 0; i <= cut; ++i) result.original_stage_macs += g.macs(i);

  const int input_id = g.inputs().front();
  const nn::TensorShape& cut_shape = g.shape(cut);

  // Width search: match block MACs to the replaced stage within ~10%.
  int best_width = 8;
  std::int64_t best_diff = std::numeric_limits<std::int64_t>::max();
  for (int width = 8; width <= 256; width += 8) {
    const std::int64_t macs = block_macs_for_width(
        g, input_id, width, cut_shape.h, cut_shape.c);
    const std::int64_t diff = std::abs(macs - result.original_stage_macs);
    if (diff < best_diff) {
      best_diff = diff;
      best_width = width;
    }
    if (macs > result.original_stage_macs) break;  // monotone in width
  }

  Graph& out = result.graph;
  const int new_input = out.add_input(in_shape);
  const int block_out = append_pool_block(out, new_input, best_width,
                                          cut_shape.h, cut_shape.c);
  for (int i = 0; i <= block_out; ++i) result.block_macs += out.macs(i);

  std::vector<int> remap(static_cast<std::size_t>(g.size()), -1);
  remap[static_cast<std::size_t>(input_id)] = new_input;
  remap[static_cast<std::size_t>(cut)] = block_out;
  for (int id = cut + 1; id < g.size(); ++id) {
    remap[static_cast<std::size_t>(id)] = clone_layer(g, id, out, remap);
  }
  return result;
}

}  // namespace qmcu::patch
