// quantmcu.h — the QuantMCU pipeline (the paper's system, end to end).
//
// Offline (build_quantmcu_plan):
//   1. plan MCUNetV2-style patch inference (split layer + grid);
//   2. calibrate activation statistics on a calibration batch;
//   3. VDPC: measure how often each patch position carries outlier values;
//   4. VDQS: per dataflow branch, profile feature-map entropies at the
//      candidate bitwidths and run the quantization-score search with the
//      Eq. 7 memory repair (Algorithm 1). The measured wall-clock of
//      profiling + search is the paper's Table II "Time" column.
//
// Online (evaluate_quantmcu): per input image, classify patches (Eq. 1);
// outlier-class branches execute uniformly at 8-bit, non-outlier branches
// at their searched mixed-precision assignment. The evaluator prices
// BitOPs / latency / peak SRAM of every image's realised schedule and
// aggregates the quantization-noise measurements that feed AccuracyModel.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/accuracy_model.h"
#include "core/vdpc.h"
#include "core/vdqs.h"
#include "mcu/cost_model.h"
#include "mcu/device.h"
#include "nn/graph.h"
#include "nn/tensor.h"
#include "patch/mcunetv2.h"
#include "patch/patch_cost.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "patch/restructuring.h"
#include "quant/calibration.h"

namespace qmcu::core {

// How QuantMCU picks its underlying patch plan: the MCUNetV2 heuristic
// (fixed grid, stage to /4 resolution) or the Cipolletta-style exhaustive
// minimum-peak restructuring. The paper's Table I peaks (QuantMCU below
// even Cipolletta) imply the aggressive plan: mixed precision absorbs the
// extra halo recomputation that a deep split costs.
enum class PatchPlannerKind { McuNetV2, MinPeak };

struct QuantMcuConfig {
  VdpcConfig vdpc{};                // φ
  double lambda = 0.6;              // Eq. 6 weight (Table III sweep)
  PatchPlannerKind planner = PatchPlannerKind::McuNetV2;
  // k of Eq. 3. Deliberately coarse: with k = 16 bins, 8-bit and 4-bit
  // quantization preserve nearly all *binned* entropy while 2-bit visibly
  // destroys it, which is what lets Eq. 6 trade Φ against Ω at the paper's
  // λ operating points (k >> 2^b would make any sub-byte choice look
  // catastrophic and pin the search at 8-bit).
  int histogram_bins = 16;
  patch::McuNetV2Options patch{};   // grid + stage selection
  int weight_bits = 8;
  // Eq. 7 budget M as a fraction of device SRAM (the tensor arena share;
  // the rest holds runtime state and scratch).
  double memory_fraction = 0.5;
  bool enable_vdpc = true;  // false = "QuantMCU w/o VDPC" ablation (Fig. 4)
  // Apply VDQS to the shared post-merge feature maps as well (treated as
  // one more dataflow branch). Table I's BitOPs reductions (2.2x average)
  // are only reachable when the tail is quantized too; the stage-only
  // variant is kept as an ablation knob.
  bool quantize_tail = true;
};

struct QuantMcuPlan {
  patch::PatchPlan patch_plan;
  std::vector<patch::BranchBits> mixed_bits;  // non-outlier branch config
  std::vector<VdqsResult> searches;           // per branch
  std::vector<int> tail_bits;                 // per layer after the cut
  double search_seconds = 0.0;
  double calib_outlier_fraction = 0.0;  // VDPC statistics on calibration set
  double last_output_entropy = 0.0;     // H(N, b_last)
  std::int64_t full_precision_bitops = 0;  // B
};

QuantMcuPlan build_quantmcu_plan(const nn::Graph& g, const mcu::Device& dev,
                                 std::span<const nn::Tensor> calibration,
                                 const QuantMcuConfig& cfg);

struct QuantMcuEvaluation {
  double mean_bitops = 0.0;
  double mean_latency_ms = 0.0;
  double mean_peak_bytes = 0.0;
  double outlier_patch_fraction = 0.0;
  NoiseSummary noise{};
  double top1_penalty_pp = 0.0;
  double top5_penalty_pp = 0.0;
  double map_penalty_pp = 0.0;
};

QuantMcuEvaluation evaluate_quantmcu(const nn::Graph& g,
                                     const QuantMcuPlan& plan,
                                     const mcu::CostModel& cost_model,
                                     std::span<const nn::Tensor> eval_images,
                                     const QuantMcuConfig& cfg,
                                     const AccuracyModel& acc = {});

// Convenience for the uniform-8-bit patch baselines (MCUNetV2 row of
// Table I): the same evaluator with every branch pinned to 8-bit and VDPC
// disabled (classification is irrelevant when both classes run int8).
QuantMcuEvaluation evaluate_uniform_patch(
    const nn::Graph& g, const patch::PatchPlan& patch_plan,
    const mcu::CostModel& cost_model, std::span<const nn::Tensor> eval_images,
    const AccuracyModel& acc = {});

// --- materialising the plan into a runnable quantized deployment ----------
// Turns the searched bitwidths into concrete QuantParams over calibrated
// ranges, ready for patch::PatchQuantExecutor: per-branch step params (the
// non-outlier mixed-precision path) and the tail/whole-graph config (which
// also covers the outlier-class 8-bit path).
std::vector<patch::BranchQuantConfig> make_branch_quant_configs(
    const nn::Graph& g, const QuantMcuPlan& plan,
    std::span<const quant::LayerRange> ranges);

nn::ActivationQuantConfig make_deployment_quant_config(
    const nn::Graph& g, const QuantMcuPlan& plan,
    std::span<const quant::LayerRange> ranges);

}  // namespace qmcu::core
