#include "core/vdpc.h"

#include <cmath>
#include <limits>

namespace qmcu::core {

GaussianFit fit_gaussian(std::span<const float> values) {
  QMCU_REQUIRE(!values.empty(), "cannot fit a distribution to no data");
  double mean = 0.0;
  for (float v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (float v : values) {
    const double d = static_cast<double>(v) - mean;
    var += d * d;
  }
  var /= static_cast<double>(values.size());
  return {mean, std::sqrt(var)};
}

double inverse_normal_cdf(double p) {
  QMCU_REQUIRE(p > 0.0 && p < 1.0, "quantile argument must be in (0, 1)");
  // Peter Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double plow = 0.02425;
  constexpr double phigh = 1.0 - plow;

  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > phigh) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

double outlier_threshold(const GaussianFit& fit, double phi) {
  if (phi >= 1.0) return std::numeric_limits<double>::infinity();
  if (phi <= 0.0) return 0.0;
  const double z = inverse_normal_cdf(0.5 * (1.0 + phi));
  return fit.stddev * z;
}

int PatchClassification::num_outlier() const {
  int n = 0;
  for (bool o : outlier) n += o ? 1 : 0;
  return n;
}

double PatchClassification::outlier_fraction() const {
  return outlier.empty()
             ? 0.0
             : static_cast<double>(num_outlier()) /
                   static_cast<double>(outlier.size());
}

PatchClassification classify_patches(const nn::Tensor& input,
                                     const patch::PatchPlan& plan,
                                     const VdpcConfig& cfg) {
  PatchClassification out;
  out.fit = fit_gaussian(input.data());
  out.threshold = outlier_threshold(out.fit, cfg.phi);
  out.outlier.reserve(plan.branches.size());

  for (const patch::PatchBranch& br : plan.branches) {
    const patch::Region tile = plan.input_tile(br.row, br.col, input.shape());
    bool has_outlier = false;
    for (int y = tile.y.begin; y < tile.y.end && !has_outlier; ++y) {
      for (int x = tile.x.begin; x < tile.x.end && !has_outlier; ++x) {
        for (int c = 0; c < input.shape().c; ++c) {
          if (std::abs(static_cast<double>(input.at(y, x, c)) -
                       out.fit.mean) > out.threshold) {
            has_outlier = true;
            break;
          }
        }
      }
    }
    out.outlier.push_back(has_outlier);
  }
  return out;
}

}  // namespace qmcu::core
