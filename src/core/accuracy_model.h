// accuracy_model.h — proxy accuracy for quantized deployments.
//
// SUBSTITUTION (DESIGN.md §2): the paper reports Top-1 / Top-5 / mAP of
// *trained* networks on ImageNet / Pascal VOC. Without trained weights or
// the datasets, this reproduction models accuracy as
//
//     accuracy = published FP32 baseline − penalty(measured noise)
//
// where the penalty is computed from quantities *measured on the actual
// synthetic activations* of this codebase:
//
//   * a floor for plain 8-bit post-training quantization (~0.2 pp, the
//     empirically typical int8 PTQ loss);
//   * a term driven by the activation-volume-weighted relative quantization
//     MSE of every sub-byte feature map (more noise ⇒ more loss, log-scaled
//     like SQNR);
//   * an outlier-crush term driven by the share of accuracy-relevant
//     outlier values (|x−μ| > z_ref·σ) that pass through sub-byte feature
//     maps, and by the measured relative error on exactly those values.
//     This is the effect VDPC exists to prevent; it dominates the paper's
//     "QuantMCU w/o VDPC" ablation (Fig. 4's 10–15 pp drop).
//
// The three scale constants are calibrated once (documented below) so that
// int8 ≈ lossless, blind 2/4-bit ≈ double-digit loss, VDPC-guarded mixed
// precision ≈ sub-1 pp — the paper's qualitative accuracy landscape. They
// are never tuned per experiment.
#pragma once

#include <string_view>

namespace qmcu::core {

struct AccuracyBase {
  double imagenet_top1 = 0.0;
  double imagenet_top5 = 0.0;
  double voc_map = 0.0;
};

// Published FP32 reference accuracies (Top-1/Top-5: ImageNet; mAP: VOC
// detection heads built on the same backbone).
AccuracyBase base_accuracy(std::string_view model_name);

// Measured quantization-noise summary of one deployment configuration.
struct NoiseSummary {
  bool any_quantization = false;  // false for a float deployment
  // Activation-volume-weighted mean of (quantization MSE / variance) over
  // sub-byte feature maps (8-bit maps contribute their tiny MSE too).
  double mean_relative_mse = 0.0;
  // Share of accuracy-relevant outlier values that are processed at
  // sub-byte precision (0 when VDPC routes every outlier patch to 8-bit).
  double crushed_outlier_fraction = 0.0;
  // Mean squared quantization error on exactly those crushed values,
  // normalised by the non-outlier band width (z_ref·σ)².
  double crush_severity = 0.0;
};

struct AccuracyModel {
  // Calibration constants — see header note.
  double int8_floor_pp = 0.2;
  double noise_scale_pp = 14.0;
  double outlier_scale_pp = 60.0;
  double top5_ratio = 0.55;  // Top-5 degrades slower than Top-1
  double map_ratio = 1.10;   // detection degrades slightly faster
  double z_ref = 2.1;        // definition of accuracy-relevant outliers

  [[nodiscard]] double top1_penalty_pp(const NoiseSummary& s) const;
  [[nodiscard]] double top5_penalty_pp(const NoiseSummary& s) const {
    return top5_ratio * top1_penalty_pp(s);
  }
  [[nodiscard]] double map_penalty_pp(const NoiseSummary& s) const {
    return map_ratio * top1_penalty_pp(s);
  }
};

}  // namespace qmcu::core
