// vdqs.h — Value-Driven Quantization Search (paper §III-B, Eqs. 2–6,
// Algorithm 1).
//
// For every feature map i of a dataflow branch and every candidate bitwidth
// b ∈ {8, 4, 2} the quantization score combines the computation benefit
//     Φ(i,b) = ΔBitOPs(i,b) / B                       (Eq. 2)
// with the accuracy cost measured as activation-entropy loss
//     Ω(i,b) = ΔH(i,b) / H(N, b_last)                  (Eq. 5)
// into  S(i,b) = −λ·Ω(i,b) + (1−λ)·Φ(i,b)             (Eq. 6).
//
// Both ratios are normalised within the branch being searched (Algorithm
// 1's N is the branch length), and ΔB is measured against the deployed
// baseline — the W8/A8 configuration, since FP32 never runs on the MCU:
//     ΔB(i,b) = consumer_MACs(i) · w_bits · (8 − b),  B = Σ MACs · w_bits · 8.
// Measuring against FP32 instead would bury the candidate differences under
// the constant 32×32 term (Φ would be nearly identical for b = 8, 4, 2) and
// λ would lose its Table-III role as the accuracy/computation dial.
// Entropy replaces training as the accuracy proxy, which is why the whole
// search finishes in a fraction of a second (Table II's "Time" column).
//
// Algorithm 1 then assigns each feature map its best-scoring bitwidth and
// repairs memory violations of Eq. 7 — Mem(i,b_i) + Mem(i+1,b_{i+1}) ≤ M for
// adjacent feature maps — with two traversal passes (forward adjusting the
// latter of each pair, backward the former), demoting feature maps one step
// down their own score-sorted candidate list. As printed in the paper the
// repair can stall (NEED_CHANGE's guard can reject every move of a violated
// pair); this implementation adds a documented fallback that demotes the
// larger feature map of the worst violated pair and flags `used_fallback`.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "nn/check.h"

namespace qmcu::core {

inline constexpr std::array<int, 3> kVdqsCandidateBits{8, 4, 2};

// Everything VDQS needs to know about one feature map of a branch.
struct FeatureMapProfile {
  std::int64_t elements = 0;       // region size; Mem(i,b) = elements*b/8
  std::int64_t consumer_macs = 0;  // MACs of in-branch consumers of this fm
  double entropy_float = 0.0;      // H(i) before quantization
  // Entropy after simulated quantization, aligned with kVdqsCandidateBits.
  std::array<double, 3> entropy_at_bits{};
};

struct VdqsConfig {
  double lambda = 0.6;             // paper's chosen operating point (Table III)
  int weight_bits = 8;
  int reference_bits = 8;          // deployed baseline activation width
  std::int64_t memory_budget = 0;  // M of Eq. 7 (bytes)
  std::int64_t reference_bitops = 1;  // B of Eq. 2 (branch MACs·w_bits·ref)
  double last_output_entropy = 1.0;   // H(N, b_last) of Eq. 5
  int max_repair_rounds = 64;
};

struct VdqsResult {
  std::vector<int> bits;  // chosen bitwidth per feature map
  // score[i][j]: S(i, kVdqsCandidateBits[j]).
  std::vector<std::array<double, 3>> scores;
  int repair_rounds = 0;
  bool used_fallback = false;
  bool feasible = true;  // Eq. 7 satisfied for every adjacent pair
};

// Mem(i, b) in bytes (bit-packed storage).
std::int64_t feature_map_bytes(const FeatureMapProfile& fm, int bits);

// Quantization score S(i, b) (Eq. 6) for one feature map.
double quantization_score(const FeatureMapProfile& fm, int bits,
                          const VdqsConfig& cfg);

// The full search over one dataflow branch (feature maps in branch order).
VdqsResult vdqs_search(std::span<const FeatureMapProfile> fms,
                       const VdqsConfig& cfg);

}  // namespace qmcu::core
