#include "core/accuracy_model.h"

#include <algorithm>
#include <cmath>

#include "nn/check.h"

namespace qmcu::core {

AccuracyBase base_accuracy(std::string_view model_name) {
  // Top-1/Top-5 from the usual ImageNet references (MobileNetV2 Top-1
  // matches the paper's Table II baseline row); mAP from the common
  // VOC07+12 detection setups on each backbone.
  if (model_name == "mobilenetv2") return {71.9, 90.3, 62.4};
  if (model_name == "inceptionv3") return {77.2, 93.5, 65.8};
  if (model_name == "squeezenet") return {58.1, 80.4, 45.2};
  if (model_name == "resnet18") return {69.8, 89.1, 58.9};
  if (model_name == "vgg16") return {71.6, 90.4, 66.1};
  if (model_name == "mcunet") return {61.8, 84.2, 51.6};
  if (model_name == "mnasnet") return {75.2, 92.5, 60.0};
  if (model_name == "fbnet_a") return {73.0, 90.9, 58.0};
  if (model_name == "ofa_cpu") return {71.5, 90.1, 57.0};
  QMCU_REQUIRE(false,
               "no accuracy baseline for model: " + std::string(model_name));
}

double AccuracyModel::top1_penalty_pp(const NoiseSummary& s) const {
  if (!s.any_quantization) return 0.0;
  const double noise_term =
      noise_scale_pp * std::log2(1.0 + std::max(0.0, s.mean_relative_mse));
  const double crush_term =
      outlier_scale_pp *
      std::clamp(s.crushed_outlier_fraction, 0.0, 1.0) *
      std::sqrt(std::clamp(s.crush_severity, 0.0, 1.0));
  return int8_floor_pp + noise_term + crush_term;
}

}  // namespace qmcu::core
