#include "core/quantmcu.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "mcu/bitops.h"
#include "nn/executor.h"
#include "quant/entropy.h"

namespace qmcu::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Entropy of the model's final feature map (pre-softmax if the graph ends
// in one — softmax collapses the range and would make H(N, b_last) an
// unstable normaliser).
int last_entropy_layer(const nn::Graph& g) {
  int id = g.output();
  if (g.layer(id).kind == nn::OpKind::Softmax) id = g.layer(id).inputs[0];
  return id;
}

}  // namespace

QuantMcuPlan build_quantmcu_plan(const nn::Graph& g, const mcu::Device& dev,
                                 std::span<const nn::Tensor> calibration,
                                 const QuantMcuConfig& cfg) {
  QMCU_REQUIRE(!calibration.empty(), "calibration batch must not be empty");
  QMCU_REQUIRE(cfg.lambda >= 0.0 && cfg.lambda <= 1.0,
               "lambda must be in [0, 1]");

  QuantMcuPlan plan;
  if (cfg.planner == PatchPlannerKind::MinPeak) {
    const mcu::CostModel cm(dev);
    plan.patch_plan = patch::build_patch_plan(
        g, patch::restructure_for_memory(g, cm).spec);
  } else {
    plan.patch_plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, cfg.patch));
  }
  plan.full_precision_bitops = mcu::full_precision_bitops(g);
  plan.tail_bits = std::vector<int>(static_cast<std::size_t>(g.size()), 8);

  // ---- whole-model float calibration pass --------------------------------
  // Needed for H(N, b_last) and, when the tail is quantized, for the tail
  // branch's entropy profile.
  const nn::Executor exec(g);
  const int last_id = last_entropy_layer(g);
  const int split = plan.patch_plan.spec.split_layer;
  std::vector<FeatureMapProfile> tail_profile(
      static_cast<std::size_t>(g.size() - split - 1));
  {
    double h_sum = 0.0;
    for (const nn::Tensor& img : calibration) {
      const std::vector<nn::Tensor> fms = exec.run_all(img);
      h_sum += quant::quantized_activation_entropy(
          fms[static_cast<std::size_t>(last_id)], 8, cfg.histogram_bins);
      if (cfg.quantize_tail) {
        for (int id = split + 1; id < g.size(); ++id) {
          FeatureMapProfile& p =
              tail_profile[static_cast<std::size_t>(id - split - 1)];
          const nn::Tensor& fm = fms[static_cast<std::size_t>(id)];
          p.entropy_float +=
              quant::activation_entropy(fm, cfg.histogram_bins);
          for (std::size_t j = 0; j < kVdqsCandidateBits.size(); ++j) {
            p.entropy_at_bits[j] += quant::quantized_activation_entropy(
                fm, kVdqsCandidateBits[j], cfg.histogram_bins);
          }
        }
      }
    }
    plan.last_output_entropy =
        std::max(1e-6, h_sum / static_cast<double>(calibration.size()));
  }

  // ---- VDPC statistics on the calibration set ----------------------------
  {
    double frac = 0.0;
    for (const nn::Tensor& img : calibration) {
      frac += classify_patches(img, plan.patch_plan, cfg.vdpc)
                  .outlier_fraction();
    }
    plan.calib_outlier_fraction =
        frac / static_cast<double>(calibration.size());
  }

  // ---- VDQS: profile + search (timed — Table II "Time") ------------------
  const auto t0 = Clock::now();
  const patch::PatchExecutor pexec(g, plan.patch_plan);
  const int num_branches = static_cast<int>(plan.patch_plan.branches.size());

  // Accumulated entropy profiles per branch/step.
  std::vector<std::vector<FeatureMapProfile>> profiles(
      static_cast<std::size_t>(num_branches));
  for (int b = 0; b < num_branches; ++b) {
    profiles[static_cast<std::size_t>(b)].resize(
        plan.patch_plan.branches[static_cast<std::size_t>(b)].steps.size());
  }

  for (const nn::Tensor& img : calibration) {
    const auto stage = pexec.run_stage(img);
    for (int b = 0; b < num_branches; ++b) {
      const auto& steps =
          plan.patch_plan.branches[static_cast<std::size_t>(b)].steps;
      for (std::size_t s = 0; s < steps.size(); ++s) {
        const nn::Tensor& fm = stage[static_cast<std::size_t>(b)][s];
        FeatureMapProfile& p = profiles[static_cast<std::size_t>(b)][s];
        p.entropy_float +=
            quant::activation_entropy(fm, cfg.histogram_bins);
        for (std::size_t j = 0; j < kVdqsCandidateBits.size(); ++j) {
          p.entropy_at_bits[j] += quant::quantized_activation_entropy(
              fm, kVdqsCandidateBits[j], cfg.histogram_bins);
        }
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(calibration.size());
  for (int b = 0; b < num_branches; ++b) {
    const patch::PatchBranch& branch =
        plan.patch_plan.branches[static_cast<std::size_t>(b)];
    for (std::size_t s = 0; s < branch.steps.size(); ++s) {
      FeatureMapProfile& p = profiles[static_cast<std::size_t>(b)][s];
      p.entropy_float *= inv_n;
      for (double& h : p.entropy_at_bits) h *= inv_n;
      p.elements = branch.steps[s].out_elements;
      // In-branch consumers of this step's feature map.
      for (const patch::BranchStep& t : branch.steps) {
        const nn::Layer& l = g.layer(t.layer_id);
        if (l.kind == nn::OpKind::Input || t.macs == 0) continue;
        if (l.inputs[0] == branch.steps[s].layer_id) p.consumer_macs += t.macs;
      }
    }
  }

  plan.mixed_bits.reserve(static_cast<std::size_t>(num_branches));
  plan.searches.reserve(static_cast<std::size_t>(num_branches));
  for (int b = 0; b < num_branches; ++b) {
    // Eqs. 2 and 5 normalise within the dataflow branch being searched
    // (Algorithm 1's N is the branch length): B is the branch's
    // full-precision BitOPs and H(N, b_last) the entropy of the branch's
    // last feature map at its deployed 8-bit width.
    VdqsConfig vcfg;
    vcfg.lambda = cfg.lambda;
    vcfg.weight_bits = cfg.weight_bits;
    vcfg.memory_budget = static_cast<std::int64_t>(
        cfg.memory_fraction * static_cast<double>(dev.sram_bytes));
    vcfg.reference_bitops = std::max<std::int64_t>(
        1, plan.patch_plan.branches[static_cast<std::size_t>(b)].total_macs *
               cfg.weight_bits * vcfg.reference_bits);
    vcfg.last_output_entropy = std::max(
        1e-6, profiles[static_cast<std::size_t>(b)].back().entropy_at_bits[0]);
    VdqsResult r = vdqs_search(profiles[static_cast<std::size_t>(b)], vcfg);
    plan.mixed_bits.push_back(patch::BranchBits{r.bits});
    plan.searches.push_back(std::move(r));
  }

  // ---- tail branch: the shared post-merge feature maps -------------------
  if (cfg.quantize_tail && !tail_profile.empty()) {
    const double inv = 1.0 / static_cast<double>(calibration.size());
    std::int64_t tail_macs = 0;
    for (int id = split + 1; id < g.size(); ++id) {
      FeatureMapProfile& p =
          tail_profile[static_cast<std::size_t>(id - split - 1)];
      p.entropy_float *= inv;
      for (double& h : p.entropy_at_bits) h *= inv;
      p.elements = g.shape(id).elements();
      for (int c : g.consumers(id)) {
        if (nn::is_mac_op(g.layer(c).kind) && g.layer(c).inputs[0] == id) {
          p.consumer_macs += g.macs(c);
        }
      }
      tail_macs += g.macs(id);
    }
    VdqsConfig vcfg;
    vcfg.lambda = cfg.lambda;
    vcfg.weight_bits = cfg.weight_bits;
    vcfg.memory_budget = static_cast<std::int64_t>(
        cfg.memory_fraction * static_cast<double>(dev.sram_bytes));
    vcfg.reference_bitops = std::max<std::int64_t>(
        1, tail_macs * cfg.weight_bits * vcfg.reference_bits);
    vcfg.last_output_entropy =
        std::max(1e-6, tail_profile.back().entropy_at_bits[0]);
    VdqsResult r = vdqs_search(tail_profile, vcfg);
    for (int id = split + 1; id < g.size(); ++id) {
      plan.tail_bits[static_cast<std::size_t>(id)] =
          r.bits[static_cast<std::size_t>(id - split - 1)];
    }
    plan.searches.push_back(std::move(r));
  }
  plan.search_seconds = seconds_since(t0);
  return plan;
}

namespace {

// Noise bookkeeping for one image's realised schedule.
struct NoiseAccumulator {
  double weighted_rel_mse = 0.0;
  double volume = 0.0;
  double outlier_values = 0.0;
  double crushed_values = 0.0;
  // Σ of (err / (z_ref·σ))² over crushed values: quantization error on an
  // outlier is weighed against the *decision-relevant* scale (the width of
  // the non-outlier band), not the outlier's own magnitude — an error of
  // half the band destroys the information the outlier carried even when
  // it is small relative to the outlier itself.
  double crush_normalized_err = 0.0;
};

// Quantization noise of the shared tail feature maps at `tail_bits`.
void accumulate_tail_noise(const nn::Graph& g, int split,
                           std::span<const nn::Tensor> fms,
                           std::span<const int> tail_bits,
                           NoiseAccumulator& acc) {
  for (int id = split + 1; id < g.size(); ++id) {
    const nn::Tensor& fm = fms[static_cast<std::size_t>(id)];
    const double var = quant::tensor_variance(fm);
    if (var <= 0.0) continue;
    const double rel =
        quant::quantization_mse(fm, tail_bits[static_cast<std::size_t>(id)]) /
        var;
    const double vol = static_cast<double>(fm.elements());
    acc.weighted_rel_mse += rel * vol;
    acc.volume += vol;
  }
}

void accumulate_branch_noise(const patch::PatchPlan& pplan,
                             const std::vector<std::vector<nn::Tensor>>& stage,
                             std::span<const patch::BranchBits> realized,
                             const nn::Tensor& input, double z_ref,
                             NoiseAccumulator& acc) {
  // Accuracy-relevant outliers are defined on the input feature map.
  const GaussianFit fit = fit_gaussian(input.data());
  const double tau = z_ref * fit.stddev;

  for (std::size_t b = 0; b < pplan.branches.size(); ++b) {
    const patch::PatchBranch& branch = pplan.branches[b];
    const patch::BranchBits& bits = realized[b];
    int min_bits = 8;
    for (std::size_t s = 0; s < branch.steps.size(); ++s) {
      const nn::Tensor& fm = stage[b][s];
      const int fm_bits = bits.bits[s];
      min_bits = std::min(min_bits, fm_bits);
      const double var = quant::tensor_variance(fm);
      if (var > 0.0) {
        const double rel = quant::quantization_mse(fm, fm_bits) / var;
        const double vol = static_cast<double>(branch.steps[s].out_elements);
        acc.weighted_rel_mse += rel * vol;
        acc.volume += vol;
      }
    }
    // Outlier crush on this patch's input tile.
    const patch::Region tile =
        pplan.input_tile(branch.row, branch.col, input.shape());
    const auto [lo, hi] = nn::tensor_min_max(input);
    const nn::QuantParams qp = nn::choose_quant_params(lo, hi, min_bits);
    const double band = std::max(1e-12, tau);
    for (int y = tile.y.begin; y < tile.y.end; ++y) {
      for (int x = tile.x.begin; x < tile.x.end; ++x) {
        for (int c = 0; c < input.shape().c; ++c) {
          const double v = input.at(y, x, c);
          if (std::abs(v - fit.mean) <= tau) continue;
          acc.outlier_values += 1.0;
          if (min_bits >= 8) continue;
          acc.crushed_values += 1.0;
          const double err =
              v - qp.quantize_dequantize(static_cast<float>(v));
          acc.crush_normalized_err += (err / band) * (err / band);
        }
      }
    }
  }
}

QuantMcuEvaluation finalize(const NoiseAccumulator& acc,
                            const AccuracyModel& model,
                            QuantMcuEvaluation ev) {
  ev.noise.any_quantization = true;
  ev.noise.mean_relative_mse =
      acc.volume > 0.0 ? acc.weighted_rel_mse / acc.volume : 0.0;
  ev.noise.crushed_outlier_fraction =
      acc.outlier_values > 0.0 ? acc.crushed_values / acc.outlier_values : 0.0;
  ev.noise.crush_severity =
      acc.crushed_values > 0.0
          ? acc.crush_normalized_err / acc.crushed_values
          : 0.0;
  ev.top1_penalty_pp = model.top1_penalty_pp(ev.noise);
  ev.top5_penalty_pp = model.top5_penalty_pp(ev.noise);
  ev.map_penalty_pp = model.map_penalty_pp(ev.noise);
  return ev;
}

}  // namespace

QuantMcuEvaluation evaluate_quantmcu(const nn::Graph& g,
                                     const QuantMcuPlan& plan,
                                     const mcu::CostModel& cost_model,
                                     std::span<const nn::Tensor> eval_images,
                                     const QuantMcuConfig& cfg,
                                     const AccuracyModel& acc_model) {
  QMCU_REQUIRE(!eval_images.empty(), "evaluation batch must not be empty");
  const patch::PatchExecutor pexec(g, plan.patch_plan);
  const nn::Executor exec(g);
  const int split = plan.patch_plan.spec.split_layer;
  bool tail_quantized = false;
  for (int id = split + 1; id < g.size(); ++id) {
    tail_quantized =
        tail_quantized || plan.tail_bits[static_cast<std::size_t>(id)] < 8;
  }

  QuantMcuEvaluation ev;
  NoiseAccumulator acc;
  for (const nn::Tensor& img : eval_images) {
    PatchClassification cls;
    if (cfg.enable_vdpc) {
      cls = classify_patches(img, plan.patch_plan, cfg.vdpc);
    } else {
      cls.outlier.assign(plan.patch_plan.branches.size(), false);
    }
    ev.outlier_patch_fraction += cls.outlier_fraction();

    // Realised schedule: outlier branches at uniform 8-bit.
    std::vector<patch::BranchBits> realized = plan.mixed_bits;
    for (std::size_t b = 0; b < realized.size(); ++b) {
      if (cls.outlier[b]) {
        realized[b].bits.assign(realized[b].bits.size(), 8);
      }
    }

    const patch::PatchCost cost =
        patch::evaluate_patch_cost(g, plan.patch_plan, realized,
                                   plan.tail_bits, cost_model,
                                   cfg.weight_bits);
    ev.mean_bitops += static_cast<double>(cost.bitops);
    ev.mean_latency_ms += cost.latency_ms;
    ev.mean_peak_bytes += static_cast<double>(cost.peak_bytes);

    const auto stage = pexec.run_stage(img);
    accumulate_branch_noise(plan.patch_plan, stage, realized, img,
                            acc_model.z_ref, acc);
    if (tail_quantized) {
      const std::vector<nn::Tensor> fms = exec.run_all(img);
      accumulate_tail_noise(g, split, fms, plan.tail_bits, acc);
    }
  }
  const double inv = 1.0 / static_cast<double>(eval_images.size());
  ev.mean_bitops *= inv;
  ev.mean_latency_ms *= inv;
  ev.mean_peak_bytes *= inv;
  ev.outlier_patch_fraction *= inv;
  return finalize(acc, acc_model, ev);
}

std::vector<patch::BranchQuantConfig> make_branch_quant_configs(
    const nn::Graph& g, const QuantMcuPlan& plan,
    std::span<const quant::LayerRange> ranges) {
  QMCU_REQUIRE(static_cast<int>(ranges.size()) == g.size(),
               "ranges must cover every layer");
  std::vector<patch::BranchQuantConfig> out;
  out.reserve(plan.patch_plan.branches.size());
  for (std::size_t b = 0; b < plan.patch_plan.branches.size(); ++b) {
    const patch::PatchBranch& branch = plan.patch_plan.branches[b];
    patch::BranchQuantConfig cfg;
    cfg.per_step.reserve(branch.steps.size());
    for (std::size_t s = 0; s < branch.steps.size(); ++s) {
      const int id = branch.steps[s].layer_id;
      cfg.per_step.push_back(nn::choose_quant_params(
          ranges[static_cast<std::size_t>(id)].min_v,
          ranges[static_cast<std::size_t>(id)].max_v,
          plan.mixed_bits[b].bits[s]));
    }
    out.push_back(std::move(cfg));
  }
  return out;
}

nn::ActivationQuantConfig make_deployment_quant_config(
    const nn::Graph& g, const QuantMcuPlan& plan,
    std::span<const quant::LayerRange> ranges) {
  QMCU_REQUIRE(static_cast<int>(ranges.size()) == g.size(),
               "ranges must cover every layer");
  nn::ActivationQuantConfig cfg;
  cfg.params.reserve(ranges.size());
  const int split = plan.patch_plan.spec.split_layer;
  for (int id = 0; id < g.size(); ++id) {
    // Stage layers deploy at 8-bit here (the outlier-class path and the
    // shared accumulation buffer); the per-branch sub-byte parameters come
    // from make_branch_quant_configs.
    const int bits =
        id <= split ? 8 : plan.tail_bits[static_cast<std::size_t>(id)];
    cfg.params.push_back(nn::choose_quant_params(
        ranges[static_cast<std::size_t>(id)].min_v,
        ranges[static_cast<std::size_t>(id)].max_v, bits));
  }
  return cfg;
}

QuantMcuEvaluation evaluate_uniform_patch(
    const nn::Graph& g, const patch::PatchPlan& patch_plan,
    const mcu::CostModel& cost_model, std::span<const nn::Tensor> eval_images,
    const AccuracyModel& acc_model) {
  QMCU_REQUIRE(!eval_images.empty(), "evaluation batch must not be empty");
  const patch::PatchExecutor pexec(g, patch_plan);
  const std::vector<patch::BranchBits> bits8 =
      patch::uniform_branch_bits(patch_plan, 8);
  std::vector<int> tail8(static_cast<std::size_t>(g.size()), 8);

  QuantMcuEvaluation ev;
  NoiseAccumulator acc;
  for (const nn::Tensor& img : eval_images) {
    const patch::PatchCost cost =
        patch::evaluate_patch_cost(g, patch_plan, bits8, tail8, cost_model);
    ev.mean_bitops += static_cast<double>(cost.bitops);
    ev.mean_latency_ms += cost.latency_ms;
    ev.mean_peak_bytes += static_cast<double>(cost.peak_bytes);
    const auto stage = pexec.run_stage(img);
    accumulate_branch_noise(patch_plan, stage, bits8, img,
                            AccuracyModel{}.z_ref, acc);
  }
  const double inv = 1.0 / static_cast<double>(eval_images.size());
  ev.mean_bitops *= inv;
  ev.mean_latency_ms *= inv;
  ev.mean_peak_bytes *= inv;
  return finalize(acc, acc_model, ev);
}

}  // namespace qmcu::core
