#include "core/vdqs.h"

#include <algorithm>

#include "mcu/bitops.h"

namespace qmcu::core {

namespace {

int candidate_index(int bits) {
  for (std::size_t j = 0; j < kVdqsCandidateBits.size(); ++j) {
    if (kVdqsCandidateBits[j] == bits) return static_cast<int>(j);
  }
  QMCU_REQUIRE(false, "bits is not a VDQS candidate");
}

}  // namespace

std::int64_t feature_map_bytes(const FeatureMapProfile& fm, int bits) {
  return (fm.elements * bits + 7) / 8;
}

double quantization_score(const FeatureMapProfile& fm, int bits,
                          const VdqsConfig& cfg) {
  QMCU_REQUIRE(cfg.reference_bitops > 0, "B must be positive");
  QMCU_REQUIRE(cfg.last_output_entropy > 0.0,
               "H(N, b_last) must be positive");
  const int j = candidate_index(bits);
  // Eq. 2: ΔB(i,b) over the consumers of feature map i, measured against
  // the deployed W8/A(reference_bits) baseline (see header note).
  const double delta_b = static_cast<double>(fm.consumer_macs) *
                         cfg.weight_bits *
                         (cfg.reference_bits - bits);
  const double phi = delta_b / static_cast<double>(cfg.reference_bitops);
  // Eq. 5: ΔH(i,b), clamped at zero — binning noise can nudge the quantized
  // estimate a hair above the float one; entropy cannot truly increase.
  const double delta_h = std::max(
      0.0, fm.entropy_float - fm.entropy_at_bits[static_cast<std::size_t>(j)]);
  const double omega = delta_h / cfg.last_output_entropy;
  // Eq. 6.
  return -cfg.lambda * omega + (1.0 - cfg.lambda) * phi;
}

VdqsResult vdqs_search(std::span<const FeatureMapProfile> fms,
                       const VdqsConfig& cfg) {
  QMCU_REQUIRE(!fms.empty(), "branch must contain feature maps");
  QMCU_REQUIRE(cfg.memory_budget > 0, "memory budget must be positive");
  const int n = static_cast<int>(fms.size());
  constexpr int m = static_cast<int>(kVdqsCandidateBits.size());

  VdqsResult result;
  result.scores.resize(static_cast<std::size_t>(n));

  // Score-sorted candidate lists t^i (Algorithm 1 lines 1–7).
  std::vector<std::array<int, 3>> sorted(static_cast<std::size_t>(n));
  std::vector<int> rank(static_cast<std::size_t>(n));  // index into sorted
  for (int i = 0; i < n; ++i) {
    std::array<double, 3>& s = result.scores[static_cast<std::size_t>(i)];
    for (int j = 0; j < m; ++j) {
      s[static_cast<std::size_t>(j)] = quantization_score(
          fms[static_cast<std::size_t>(i)],
          kVdqsCandidateBits[static_cast<std::size_t>(j)], cfg);
    }
    std::array<int, 3>& t = sorted[static_cast<std::size_t>(i)];
    t = {0, 1, 2};
    std::stable_sort(t.begin(), t.end(), [&s](int a, int b) {
      return s[static_cast<std::size_t>(a)] > s[static_cast<std::size_t>(b)];
    });
    rank[static_cast<std::size_t>(i)] = 0;
  }

  const auto bits_of = [&](int i) {
    return kVdqsCandidateBits[static_cast<std::size_t>(
        sorted[static_cast<std::size_t>(i)][static_cast<std::size_t>(
            rank[static_cast<std::size_t>(i)])])];
  };
  const auto mem_of = [&](int i) {
    return feature_map_bytes(fms[static_cast<std::size_t>(i)], bits_of(i));
  };
  const auto pair_violated = [&](int i) {
    return mem_of(i) + mem_of(i + 1) > cfg.memory_budget;
  };
  const auto any_violated = [&]() {
    for (int i = 0; i + 1 < n; ++i) {
      if (pair_violated(i)) return true;
    }
    return n == 1 && mem_of(0) > cfg.memory_budget;
  };

  // NEED_CHANGE (Algorithm 1 lines 20–27): demote fm (i+r) of pair
  // (i, i+1) while the pair violates Eq. 7, the demoted fm has candidates
  // left, and the non-demoted fm is not the larger of the two.
  const auto need_change = [&](int i, int r) {
    if (!pair_violated(i)) return false;
    const int target = r > 0 ? i + 1 : i;
    const int other = r > 0 ? i : i + 1;
    if (rank[static_cast<std::size_t>(target)] >= m - 1) return false;
    return mem_of(other) <= mem_of(target);
  };

  // TRAVERSE (lines 12–19). `r > 0`: forward pass demoting the latter fm of
  // each pair; `r < 0`: backward pass demoting the former.
  const auto traverse = [&](int r) {
    if (r > 0) {
      for (int i = 0; i + 1 < n; ++i) {
        while (need_change(i, r)) ++rank[static_cast<std::size_t>(i + 1)];
      }
    } else {
      for (int i = n - 2; i >= 0; --i) {
        while (need_change(i, r)) ++rank[static_cast<std::size_t>(i)];
      }
    }
  };

  while (any_violated() && result.repair_rounds < cfg.max_repair_rounds) {
    const std::vector<int> before = rank;
    traverse(+1);
    traverse(-1);
    ++result.repair_rounds;
    if (rank == before) {
      // Printed algorithm stalled: demote the larger fm of the worst pair.
      result.used_fallback = true;
      int worst = -1;
      std::int64_t worst_mem = -1;
      for (int i = 0; i + 1 < n; ++i) {
        if (!pair_violated(i)) continue;
        const std::int64_t pair_mem = mem_of(i) + mem_of(i + 1);
        if (pair_mem > worst_mem) {
          worst_mem = pair_mem;
          worst = i;
        }
      }
      if (worst < 0) break;
      const int bigger = mem_of(worst) >= mem_of(worst + 1) ? worst
                                                            : worst + 1;
      if (rank[static_cast<std::size_t>(bigger)] < m - 1) {
        ++rank[static_cast<std::size_t>(bigger)];
      } else if (rank[static_cast<std::size_t>(worst + 1 - (bigger - worst))] <
                 m - 1) {
        ++rank[static_cast<std::size_t>(worst + 1 - (bigger - worst))];
      } else {
        break;  // both exhausted: infeasible
      }
    }
  }

  result.feasible = !any_violated();
  result.bits.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    result.bits[static_cast<std::size_t>(i)] = bits_of(i);
  }
  return result;
}

}  // namespace qmcu::core
