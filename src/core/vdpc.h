// vdpc.h — Value-Driven Patch Classification (paper §III-A, Eq. 1).
//
// The activation distribution of early feature maps is bell-shaped
// (Fig. 2a): most values cluster near the mean, a sparse tail carries a
// disproportionate share of the information. Eq. 1 marks a value x as an
// outlier when its Gaussian PDF value falls below a threshold φ. This
// implementation expresses φ in its equivalent *central coverage* form: the
// non-outlier band is the symmetric interval containing fraction φ of the
// Gaussian mass, i.e. |x − μ| ≤ σ · z((1+φ)/2) with z the standard normal
// quantile. The two forms are monotonically related (a PDF cutoff *is* a
// |x − μ| cutoff); coverage is the form that makes the paper's sweep values
// (φ = 0.90 … 1.00, Fig. 5) dimensionally meaningful, matching the observed
// behaviour: small φ ⇒ wide tails counted as outliers ⇒ most patches kept
// at 8-bit; φ → 1 ⇒ no value is an outlier ⇒ accuracy collapses.
//
// A patch is an **outlier-class patch** iff it contains at least one
// outlier value; its whole dataflow branch then stays at 8-bit (paper
// Fig. 3).
#pragma once

#include <span>
#include <vector>

#include "nn/tensor.h"
#include "patch/patch_plan.h"

namespace qmcu::core {

struct VdpcConfig {
  double phi = 0.96;  // central coverage; paper's chosen operating point
};

struct GaussianFit {
  double mean = 0.0;
  double stddev = 0.0;
};

// Moment fit of the (assumed Gaussian, Eq. 1) activation distribution.
GaussianFit fit_gaussian(std::span<const float> values);

// Standard normal quantile (Acklam's rational approximation, |ε| < 1.2e-9).
double inverse_normal_cdf(double p);

// |x − μ| threshold above which a value is an outlier. Returns +inf when
// phi >= 1 (nothing is an outlier) and 0 when phi <= 0 (everything is).
double outlier_threshold(const GaussianFit& fit, double phi);

struct PatchClassification {
  std::vector<bool> outlier;  // per branch, plan order (row-major)
  GaussianFit fit;
  double threshold = 0.0;

  [[nodiscard]] int num_outlier() const;
  [[nodiscard]] double outlier_fraction() const;
};

// Classifies every patch of `input` (the feature map being split; each
// patch is the branch's disjoint input tile). The Gaussian is fit on the
// whole input, the threshold applied per patch.
PatchClassification classify_patches(const nn::Tensor& input,
                                     const patch::PatchPlan& plan,
                                     const VdpcConfig& cfg);

}  // namespace qmcu::core
