// Tests for the layer-based executors (nn/executor.h): float reference,
// incremental re-execution, and the integer executor against calibration.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "models/weights.h"
#include "quant/calibration.h"

namespace qmcu::nn {
namespace {

Tensor random_input(TensorShape s, std::uint64_t seed) {
  Tensor t(s);
  Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// A small but representative net: conv stem, residual block, pooling, head.
Graph small_net() {
  Graph g("small");
  const int in = g.add_input(TensorShape{16, 16, 3});
  const int stem = g.add_conv2d(in, 8, 3, 2, 1, Activation::ReLU6, "stem");
  const int a = g.add_conv2d(stem, 8, 3, 1, 1, Activation::ReLU, "a");
  const int b = g.add_conv2d(a, 8, 3, 1, 1, Activation::None, "b");
  const int add = g.add_residual_add(stem, b, Activation::ReLU, "res");
  const int dw = g.add_depthwise_conv2d(add, 3, 2, 1, Activation::ReLU6);
  const int gap = g.add_global_avg_pool(dw);
  const int fc = g.add_fully_connected(gap, 10, Activation::None, "logits");
  g.add_softmax(fc);
  models::init_parameters(g, 42);
  return g;
}

TEST(Executor, RunAllProducesEveryFeatureMap) {
  const Graph g = small_net();
  const Executor exec(g);
  const auto fms = exec.run_all(random_input(g.shape(0), 1));
  ASSERT_EQ(static_cast<int>(fms.size()), g.size());
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_EQ(fms[static_cast<std::size_t>(i)].shape(), g.shape(i))
        << "layer " << i;
  }
}

TEST(Executor, RunReturnsFinalLayer) {
  const Graph g = small_net();
  const Executor exec(g);
  const Tensor in = random_input(g.shape(0), 2);
  const Tensor out = exec.run(in);
  const auto fms = exec.run_all(in);
  const Tensor& last = fms.back();
  ASSERT_EQ(out.shape(), last.shape());
  for (std::size_t i = 0; i < out.data().size(); ++i) {
    EXPECT_FLOAT_EQ(out.data()[i], last.data()[i]);
  }
}

TEST(Executor, DeterministicAcrossRuns) {
  const Graph g = small_net();
  const Executor exec(g);
  const Tensor in = random_input(g.shape(0), 3);
  const Tensor a = exec.run(in);
  const Tensor b = exec.run(in);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_FLOAT_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Executor, RejectsWrongInputShape) {
  const Graph g = small_net();
  const Executor exec(g);
  EXPECT_THROW(exec.run(Tensor(TensorShape{8, 8, 3})), std::invalid_argument);
}

TEST(Executor, RunFromUnchangedMemoIsIdentity) {
  const Graph g = small_net();
  const Executor exec(g);
  const Tensor in = random_input(g.shape(0), 4);
  const auto base = exec.run_all(in);
  // "Change" layer 1 to its own value: downstream recompute must reproduce
  // the same feature maps bit for bit.
  const auto redone = exec.run_from(base, 1);
  for (int i = 0; i < g.size(); ++i) {
    const auto& x = base[static_cast<std::size_t>(i)].data();
    const auto& y = redone[static_cast<std::size_t>(i)].data();
    for (std::size_t j = 0; j < x.size(); ++j) {
      EXPECT_FLOAT_EQ(x[j], y[j]) << "layer " << i;
    }
  }
}

TEST(Executor, RunFromMatchesFullRerunAfterPerturbation) {
  const Graph g = small_net();
  const Executor exec(g);
  const Tensor in = random_input(g.shape(0), 5);
  auto memo = exec.run_all(in);

  // Perturb the stem output and compare incremental vs full recompute.
  const int target = 1;
  Tensor perturbed = memo[static_cast<std::size_t>(target)];
  for (float& v : perturbed.data()) v *= 1.5f;
  memo[static_cast<std::size_t>(target)] = perturbed;
  const auto incremental = exec.run_from(memo, target);

  // Full recompute with the same perturbation injected manually.
  std::vector<Tensor> manual(static_cast<std::size_t>(g.size()));
  manual[0] = in;
  manual[1] = perturbed;
  for (int id = 2; id < g.size(); ++id) {
    manual[static_cast<std::size_t>(id)] = run_layer_f32(g, id, manual);
  }
  for (int i = 0; i < g.size(); ++i) {
    const auto& x = incremental[static_cast<std::size_t>(i)].data();
    const auto& y = manual[static_cast<std::size_t>(i)].data();
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t j = 0; j < x.size(); ++j) {
      EXPECT_FLOAT_EQ(x[j], y[j]) << "layer " << i;
    }
  }
}

TEST(QuantExecutor, Int8TracksFloatWithinTolerance) {
  const Graph g = small_net();
  const std::vector<Tensor> calib{random_input(g.shape(0), 6),
                                  random_input(g.shape(0), 7)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg = quant::make_quant_config(g, ranges, uniform_bits(g, 8));
  const QuantExecutor qexec(g, cfg);
  const Executor exec(g);

  const Tensor in = random_input(g.shape(0), 8);
  const Tensor ref = exec.run(in);
  const QTensor qout = qexec.run(in);
  const Tensor deq = dequantize(qout);
  // Softmax output in [0, 1]; int8 end-to-end drift stays small.
  for (std::size_t i = 0; i < deq.data().size(); ++i) {
    EXPECT_NEAR(deq.data()[i], ref.data()[i], 0.1f) << "class " << i;
  }
}

TEST(QuantExecutor, LowerBitsDegradeOutputMonotonically) {
  const Graph g = small_net();
  const std::vector<Tensor> calib{random_input(g.shape(0), 9)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const Executor exec(g);
  const Tensor in = random_input(g.shape(0), 10);
  const Tensor ref = exec.run(in);

  const auto error_at = [&](int bits) {
    const auto cfg =
        quant::make_quant_config(g, ranges, uniform_bits(g, bits));
    const QuantExecutor qexec(g, cfg);
    const Tensor out = dequantize(qexec.run(in));
    double err = 0.0;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      err += std::abs(out.data()[i] - ref.data()[i]);
    }
    return err;
  };
  EXPECT_LE(error_at(8), error_at(4) + 1e-9);
  EXPECT_LE(error_at(4), error_at(2) + 1e-9);
}

TEST(QuantExecutor, RequiresConfigCoveringAllLayers) {
  const Graph g = small_net();
  ActivationQuantConfig cfg;  // empty
  EXPECT_THROW(QuantExecutor(g, cfg), std::invalid_argument);
}

TEST(Calibration, RangesCoverObservedValues) {
  const Graph g = small_net();
  const std::vector<Tensor> calib{random_input(g.shape(0), 11)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const Executor exec(g);
  const auto fms = exec.run_all(calib[0]);
  for (int i = 0; i < g.size(); ++i) {
    const auto [lo, hi] = tensor_min_max(fms[static_cast<std::size_t>(i)]);
    EXPECT_LE(ranges[static_cast<std::size_t>(i)].min_v, lo + 1e-6f);
    EXPECT_GE(ranges[static_cast<std::size_t>(i)].max_v, hi - 1e-6f);
  }
}

TEST(Calibration, MultipleImagesWidenRanges) {
  const Graph g = small_net();
  const std::vector<Tensor> one{random_input(g.shape(0), 12)};
  const std::vector<Tensor> two{random_input(g.shape(0), 12),
                                random_input(g.shape(0), 13)};
  const auto r1 = quant::calibrate_ranges(g, one);
  const auto r2 = quant::calibrate_ranges(g, two);
  for (int i = 0; i < g.size(); ++i) {
    EXPECT_LE(r2[static_cast<std::size_t>(i)].min_v,
              r1[static_cast<std::size_t>(i)].min_v + 1e-6f);
    EXPECT_GE(r2[static_cast<std::size_t>(i)].max_v,
              r1[static_cast<std::size_t>(i)].max_v - 1e-6f);
  }
}

}  // namespace
}  // namespace qmcu::nn
