// Unit tests for the float reference kernels (nn/ops/float_kernels.h).
#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "nn/ops/float_kernels.h"

namespace qmcu::nn::ops {
namespace {

Layer conv_layer(int out_c, int k, int s, int p,
                 Activation act = Activation::None) {
  Layer l;
  l.kind = OpKind::Conv2D;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  l.out_channels = out_c;
  l.act = act;
  return l;
}

TEST(Conv2D, IdentityKernelCopiesInput) {
  Tensor in(TensorShape{3, 3, 1});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) in.at(y, x, 0) = static_cast<float>(y * 3 + x);
  }
  // 1x1 kernel with weight 1.
  const std::array<float, 1> w{1.0f};
  const Tensor out = conv2d_f32(in, conv_layer(1, 1, 1, 0), w, {});
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      EXPECT_FLOAT_EQ(out.at(y, x, 0), in.at(y, x, 0));
    }
  }
}

TEST(Conv2D, SumKernelWithZeroPadding) {
  Tensor in(TensorShape{2, 2, 1});
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 1, 0) = 2.0f;
  in.at(1, 0, 0) = 3.0f;
  in.at(1, 1, 0) = 4.0f;
  const std::array<float, 9> w{1, 1, 1, 1, 1, 1, 1, 1, 1};
  const Tensor out = conv2d_f32(in, conv_layer(1, 3, 1, 1), w, {});
  // Centre of the padded sum at (0,0): covers the whole 2x2 input.
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 10.0f);
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 10.0f);
}

TEST(Conv2D, BiasAndReluApplied) {
  Tensor in(TensorShape{1, 1, 1});
  in.at(0, 0, 0) = -5.0f;
  const std::array<float, 1> w{1.0f};
  const std::array<float, 1> bias{2.0f};
  const Tensor out =
      conv2d_f32(in, conv_layer(1, 1, 1, 0, Activation::ReLU), w, bias);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);  // relu(-5 + 2)
}

TEST(Conv2D, Relu6Clamps) {
  Tensor in(TensorShape{1, 1, 1});
  in.at(0, 0, 0) = 100.0f;
  const std::array<float, 1> w{1.0f};
  const Tensor out =
      conv2d_f32(in, conv_layer(1, 1, 1, 0, Activation::ReLU6), w, {});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 6.0f);
}

TEST(Conv2D, StrideSkipsPositions) {
  Tensor in(TensorShape{4, 4, 1});
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) in.at(y, x, 0) = static_cast<float>(y * 4 + x);
  }
  const std::array<float, 1> w{1.0f};
  Layer l = conv_layer(1, 1, 2, 0);
  const Tensor out = conv2d_f32(in, l, w, {});
  EXPECT_EQ(out.shape().h, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 0.0f);
  EXPECT_FLOAT_EQ(out.at(0, 1, 0), 2.0f);
  EXPECT_FLOAT_EQ(out.at(1, 0, 0), 8.0f);
}

TEST(Conv2D, MultiChannelAccumulatesOverInputChannels) {
  Tensor in(TensorShape{1, 1, 3});
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 0, 1) = 2.0f;
  in.at(0, 0, 2) = 3.0f;
  const std::array<float, 6> w{1, 1, 1,    // out channel 0
                               2, 0, -1};  // out channel 1
  const Tensor out = conv2d_f32(in, conv_layer(2, 1, 1, 0), w, {});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), -1.0f);
}

TEST(DepthwiseConv2D, ChannelsIndependent) {
  Tensor in(TensorShape{1, 1, 2});
  in.at(0, 0, 0) = 3.0f;
  in.at(0, 0, 1) = 5.0f;
  const std::array<float, 2> w{2.0f, -1.0f};  // 1x1 per-channel weights
  Layer l;
  l.kind = OpKind::DepthwiseConv2D;
  l.kernel_h = l.kernel_w = 1;
  const Tensor out = depthwise_conv2d_f32(in, l, w, {});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 6.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), -5.0f);
}

TEST(FullyConnected, MatchesMatrixVectorProduct) {
  Tensor in(TensorShape{1, 2, 2});  // flattened: [a b c d]
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 0, 1) = 2.0f;
  in.at(0, 1, 0) = 3.0f;
  in.at(0, 1, 1) = 4.0f;
  Layer l;
  l.kind = OpKind::FullyConnected;
  l.out_channels = 2;
  const std::array<float, 8> w{1, 0, 0, 0,   // picks element 0
                               0, 1, 1, 1};  // sums elements 1..3
  const Tensor out = fully_connected_f32(in, l, w, {});
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 9.0f);
}

Layer pool_layer(OpKind kind, int k, int s, int p) {
  Layer l;
  l.kind = kind;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  return l;
}

TEST(MaxPool, PicksWindowMaximum) {
  Tensor in(TensorShape{2, 2, 1});
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 1, 0) = 9.0f;
  in.at(1, 0, 0) = -3.0f;
  in.at(1, 1, 0) = 4.0f;
  const Tensor out = max_pool_f32(in, pool_layer(OpKind::MaxPool, 2, 2, 0));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 9.0f);
}

TEST(MaxPool, PaddingDoesNotIntroduceZeros) {
  // All-negative input with padding: max must stay negative (padding is
  // excluded from the max, not treated as zero).
  Tensor in(TensorShape{2, 2, 1});
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) in.at(y, x, 0) = -5.0f;
  }
  const Tensor out = max_pool_f32(in, pool_layer(OpKind::MaxPool, 3, 1, 1));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), -5.0f);
}

TEST(AvgPool, AveragesOnlyValidElements) {
  Tensor in(TensorShape{2, 2, 1});
  in.at(0, 0, 0) = 2.0f;
  in.at(0, 1, 0) = 4.0f;
  in.at(1, 0, 0) = 6.0f;
  in.at(1, 1, 0) = 8.0f;
  // 2x2 window at stride 1 with pad 1: corner window sees one element.
  const Tensor out = avg_pool_f32(in, pool_layer(OpKind::AvgPool, 2, 1, 1));
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.0f);   // only (0,0) valid
  EXPECT_FLOAT_EQ(out.at(1, 1, 0), 5.0f);   // full window
}

TEST(GlobalAvgPool, AveragesWholeMap) {
  Tensor in(TensorShape{2, 2, 2});
  float v = 1.0f;
  for (int y = 0; y < 2; ++y) {
    for (int x = 0; x < 2; ++x) {
      in.at(y, x, 0) = v;
      in.at(y, x, 1) = -v;
      v += 1.0f;
    }
  }
  const Tensor out = global_avg_pool_f32(in);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 2.5f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), -2.5f);
}

TEST(Add, ElementwiseWithActivation) {
  Tensor a(TensorShape{1, 1, 2});
  Tensor b(TensorShape{1, 1, 2});
  a.at(0, 0, 0) = 1.0f;
  b.at(0, 0, 0) = 2.0f;
  a.at(0, 0, 1) = -4.0f;
  b.at(0, 0, 1) = 1.0f;
  const Tensor out = add_f32(a, b, Activation::ReLU);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 3.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 1), 0.0f);
}

TEST(Concat, InterleavesChannelsInInputOrder) {
  Tensor a(TensorShape{1, 1, 2});
  Tensor b(TensorShape{1, 1, 1});
  a.at(0, 0, 0) = 1.0f;
  a.at(0, 0, 1) = 2.0f;
  b.at(0, 0, 0) = 3.0f;
  const std::array<const Tensor*, 2> ins{&a, &b};
  const Tensor out = concat_f32(ins);
  EXPECT_EQ(out.shape().c, 3);
  EXPECT_FLOAT_EQ(out.at(0, 0, 0), 1.0f);
  EXPECT_FLOAT_EQ(out.at(0, 0, 2), 3.0f);
}

TEST(Softmax, NormalisesAndOrdersProbabilities) {
  Tensor in(TensorShape{1, 1, 3});
  in.at(0, 0, 0) = 1.0f;
  in.at(0, 0, 1) = 2.0f;
  in.at(0, 0, 2) = 3.0f;
  const Tensor out = softmax_f32(in);
  float sum = 0.0f;
  for (int c = 0; c < 3; ++c) sum += out.at(0, 0, c);
  EXPECT_NEAR(sum, 1.0f, 1e-6f);
  EXPECT_LT(out.at(0, 0, 0), out.at(0, 0, 1));
  EXPECT_LT(out.at(0, 0, 1), out.at(0, 0, 2));
}

TEST(Softmax, StableForLargeLogits) {
  Tensor in(TensorShape{1, 1, 2});
  in.at(0, 0, 0) = 1000.0f;
  in.at(0, 0, 1) = 1001.0f;
  const Tensor out = softmax_f32(in);
  EXPECT_FALSE(std::isnan(out.at(0, 0, 0)));
  EXPECT_NEAR(out.at(0, 0, 0) + out.at(0, 0, 1), 1.0f, 1e-6f);
}

}  // namespace
}  // namespace qmcu::nn::ops
