// Unit tests for fixed-point requantization (nn/ops/requantize.h) — the
// gemmlowp/TFLite-Micro integer rescale path.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/ops/requantize.h"
#include "nn/rng.h"

namespace qmcu::nn::ops {
namespace {

TEST(QuantizeMultiplier, ReconstructsRealValue) {
  for (double real : {0.00037, 0.01, 0.25, 0.4999, 0.75, 1.0, 1.5, 7.3}) {
    const FixedPointMultiplier m = quantize_multiplier(real);
    const double reconstructed =
        static_cast<double>(m.mantissa) / (1ll << 31) *
        std::pow(2.0, -m.right_shift);
    EXPECT_NEAR(reconstructed, real, real * 1e-8) << "real " << real;
  }
}

TEST(QuantizeMultiplier, RejectsNonPositive) {
  EXPECT_THROW(quantize_multiplier(0.0), std::invalid_argument);
  EXPECT_THROW(quantize_multiplier(-1.0), std::invalid_argument);
}

TEST(SaturatingRoundingDoublingHighMul, MatchesReference) {
  // (a * b * 2) >> 32 with rounding.
  EXPECT_EQ(saturating_rounding_doubling_high_mul(1 << 30, 1 << 30),
            1 << 29);
  EXPECT_EQ(saturating_rounding_doubling_high_mul(0, 12345), 0);
}

TEST(SaturatingRoundingDoublingHighMul, SaturatesMinTimesMin) {
  constexpr std::int32_t min = std::numeric_limits<std::int32_t>::min();
  EXPECT_EQ(saturating_rounding_doubling_high_mul(min, min),
            std::numeric_limits<std::int32_t>::max());
}

TEST(RoundingDivideByPot, RoundsHalfAwayFromZero) {
  EXPECT_EQ(rounding_divide_by_pot(5, 1), 3);    // 2.5 -> 3
  EXPECT_EQ(rounding_divide_by_pot(-5, 1), -3);  // -2.5 -> -3 (away)
  EXPECT_EQ(rounding_divide_by_pot(4, 1), 2);
  EXPECT_EQ(rounding_divide_by_pot(-4, 1), -2);
  EXPECT_EQ(rounding_divide_by_pot(7, 2), 2);    // 1.75 -> 2
}

TEST(RoundingDivideByPot, ZeroShiftIsIdentity) {
  EXPECT_EQ(rounding_divide_by_pot(123456, 0), 123456);
  EXPECT_EQ(rounding_divide_by_pot(-7, 0), -7);
}

// Property sweep: fixed-point rescale of random accumulators must track the
// real-valued product within 1 ulp of the output grid.
TEST(ApplyMultiplier, TracksRealArithmeticWithinOneUnit) {
  nn::Rng rng(123);
  for (int trial = 0; trial < 2000; ++trial) {
    const double real_mult = std::exp(rng.uniform(std::log(1e-5), 0.0));
    const auto acc = static_cast<std::int32_t>(rng.uniform(-1e6, 1e6));
    const FixedPointMultiplier m = quantize_multiplier(real_mult);
    const std::int32_t fixed = apply_multiplier(acc, m);
    const double expected = static_cast<double>(acc) * real_mult;
    EXPECT_NEAR(static_cast<double>(fixed), expected, 1.0)
        << "acc " << acc << " mult " << real_mult;
  }
}

TEST(ApplyMultiplier, MultiplierAboveOneUsesLeftShift) {
  const FixedPointMultiplier m = quantize_multiplier(2.0);
  EXPECT_EQ(apply_multiplier(100, m), 200);
  EXPECT_EQ(apply_multiplier(-50, m), -100);
}

TEST(ClampTo, BoundsRespected) {
  EXPECT_EQ(clamp_to(5, -128, 127), 5);
  EXPECT_EQ(clamp_to(500, -128, 127), 127);
  EXPECT_EQ(clamp_to(-500, -128, 127), -128);
}

}  // namespace
}  // namespace qmcu::nn::ops
