// Tests for the proxy accuracy model (core/accuracy_model.h).
#include <gtest/gtest.h>

#include "core/accuracy_model.h"

namespace qmcu::core {
namespace {

TEST(BaseAccuracy, MobileNetV2MatchesPaperBaseline) {
  // Table II baseline row: 71.9% Top-1.
  EXPECT_DOUBLE_EQ(base_accuracy("mobilenetv2").imagenet_top1, 71.9);
}

TEST(BaseAccuracy, AllZooModelsCovered) {
  for (const char* name :
       {"mobilenetv2", "inceptionv3", "squeezenet", "resnet18", "vgg16",
        "mcunet", "mnasnet", "fbnet_a", "ofa_cpu"}) {
    const AccuracyBase b = base_accuracy(name);
    EXPECT_GT(b.imagenet_top1, 40.0) << name;
    EXPECT_GT(b.imagenet_top5, b.imagenet_top1) << name;
    EXPECT_GT(b.voc_map, 20.0) << name;
  }
}

TEST(BaseAccuracy, UnknownModelRejected) {
  EXPECT_THROW(base_accuracy("lenet"), std::invalid_argument);
}

TEST(AccuracyModel, FloatDeploymentIsLossless) {
  const AccuracyModel m;
  NoiseSummary s;
  s.any_quantization = false;
  EXPECT_DOUBLE_EQ(m.top1_penalty_pp(s), 0.0);
}

TEST(AccuracyModel, Int8FloorIsSmall) {
  const AccuracyModel m;
  NoiseSummary s;
  s.any_quantization = true;
  s.mean_relative_mse = 1e-4;  // typical int8 noise
  const double p = m.top1_penalty_pp(s);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.5);
}

TEST(AccuracyModel, PenaltyMonotoneInNoise) {
  const AccuracyModel m;
  NoiseSummary a;
  a.any_quantization = true;
  a.mean_relative_mse = 0.01;
  NoiseSummary b = a;
  b.mean_relative_mse = 0.2;
  EXPECT_LT(m.top1_penalty_pp(a), m.top1_penalty_pp(b));
}

TEST(AccuracyModel, CrushedOutliersDominateBlindSubByte) {
  const AccuracyModel m;
  // VDPC-guarded: sub-byte noise but no crushed outliers.
  NoiseSummary guarded;
  guarded.any_quantization = true;
  guarded.mean_relative_mse = 0.02;
  guarded.crushed_outlier_fraction = 0.0;
  // Blind (w/o VDPC): same noise plus fully crushed outliers.
  NoiseSummary blind = guarded;
  blind.crushed_outlier_fraction = 1.0;
  blind.crush_severity = 0.3;
  const double p_guarded = m.top1_penalty_pp(guarded);
  const double p_blind = m.top1_penalty_pp(blind);
  EXPECT_LT(p_guarded, 1.5);   // paper: <1% loss with VDPC
  EXPECT_GT(p_blind, 8.0);     // paper: 10-15% loss without
}

TEST(AccuracyModel, Top5DegradesSlowerThanTop1) {
  const AccuracyModel m;
  NoiseSummary s;
  s.any_quantization = true;
  s.mean_relative_mse = 0.1;
  s.crushed_outlier_fraction = 0.5;
  s.crush_severity = 0.2;
  EXPECT_LT(m.top5_penalty_pp(s), m.top1_penalty_pp(s));
}

TEST(AccuracyModel, MapDegradesFasterThanTop1) {
  const AccuracyModel m;
  NoiseSummary s;
  s.any_quantization = true;
  s.mean_relative_mse = 0.1;
  EXPECT_GT(m.map_penalty_pp(s), m.top1_penalty_pp(s));
}

TEST(AccuracyModel, SeverityClampedToUnitInterval) {
  const AccuracyModel m;
  NoiseSummary s;
  s.any_quantization = true;
  s.crushed_outlier_fraction = 1.0;
  s.crush_severity = 50.0;  // bogus measurement must not explode
  NoiseSummary capped = s;
  capped.crush_severity = 1.0;
  EXPECT_DOUBLE_EQ(m.top1_penalty_pp(s), m.top1_penalty_pp(capped));
}

}  // namespace
}  // namespace qmcu::core
