// Pipelined patch->tail dataflow execution (compiled_patch_model.h +
// worker_pool.h run_graph): the dependency-driven run(input, pool) must be
// bit-identical to the sequential compiled path — and to the PR-3 barrier
// runtime — for every model, quant mode, grid shape, worker count and
// branch readiness order; the row-band structure must wire its
// dependencies to exactly the producers of its input rows; and the
// widened-lifetime pipelined arena plan must keep everything live during
// the overlap window byte-disjoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/zoo.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "nn/runtime/arena_slab.h"
#include "nn/runtime/worker_pool.h"
#include "patch/compiled_patch_model.h"
#include "patch/mcunetv2.h"
#include "patch/patch_executor.h"
#include "patch/patch_quant_executor.h"
#include "quant/calibration.h"

namespace qmcu {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

models::ModelConfig small_cfg() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return cfg;
}

void expect_f_identical(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(a.data()[i], b.data()[i]) << "element " << i;
  }
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

// A spec with the default mcunetv2 cut but a caller-chosen grid.
patch::PatchSpec grid_spec(const nn::Graph& g, int rows, int cols) {
  patch::PatchSpec spec = patch::plan_mcunetv2(g, {2, 2});
  spec.grid_rows = rows;
  spec.grid_cols = cols;
  return spec;
}

// --- float parity across the zoo, pipelined vs sequential vs barrier --------

TEST(PipelinedPatch, FloatBitExactAcrossZooAndWorkerCounts) {
  for (const char* name : {"mobilenetv2", "mcunet", "mnasnet"}) {
    const nn::Graph g = models::make_model(name, small_cfg());
    const patch::PatchPlan plan =
        patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
    const patch::CompiledPatchModel model(g, plan);
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      const nn::Tensor in = random_input(g.shape(0), seed);
      const nn::Tensor expect = model.run(in);
      for (const int workers : {2, 3, 4, 8}) {
        nn::WorkerPool pool(workers);
        expect_f_identical(model.run(in, &pool), expect);
        expect_f_identical(model.run_barrier(in, &pool), expect);
      }
    }
  }
}

// --- quantized parity: int8, sub-byte ----------------------------------------

TEST(PipelinedPatch, QuantBitExactAcrossBitwidths) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 5)});
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  for (const int bits : {8, 4}) {
    const auto cfg = quant::make_quant_config(g, ranges,
                                              nn::uniform_bits(g, bits));
    const patch::CompiledPatchQuantModel model(g, plan, cfg);
    for (std::uint64_t seed = 11; seed <= 12; ++seed) {
      const nn::Tensor in = random_input(g.shape(0), seed);
      const nn::QTensor expect = model.run(in);
      for (const int workers : {2, 4}) {
        nn::WorkerPool pool(workers);
        expect_q_identical(model.run(in, &pool), expect);
        expect_q_identical(model.run_barrier(in, &pool), expect);
      }
    }
  }
}

TEST(PipelinedPatch, MixedModeBitExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);
  const patch::CompiledPatchQuantModel model(g, plan.patch_plan, deploy_cfg,
                                             branch_cfgs);
  for (int i = 17; i < 19; ++i) {
    const nn::Tensor in = ds.image(i);
    const nn::QTensor expect = model.run(in);
    for (const int workers : {2, 3, 4}) {
      nn::WorkerPool pool(workers);
      expect_q_identical(model.run(in, &pool), expect);
    }
  }
}

// --- degenerate and uneven grids ---------------------------------------------

TEST(PipelinedPatch, OneByNGridStillOverlapsAndMatches) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  // A 1xN grid: every branch merges into the same (only) grid row, so the
  // first tail bands all wait on the full branch set — the degenerate
  // pipeline must still be exact.
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, grid_spec(g, 1, 4));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor in = random_input(g.shape(0), 21);
  const nn::Tensor expect = model.run(in);
  for (const int workers : {2, 4}) {
    nn::WorkerPool pool(workers);
    expect_f_identical(model.run(in, &pool), expect);
  }
}

TEST(PipelinedPatch, BorderHeavyUnevenGridMatches) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  // 3x5 over a map whose extent does not divide evenly: tiles (and branch
  // costs) differ row by row and column by column, exercising the
  // cost-weighted chunking and uneven row-readiness intervals.
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, grid_spec(g, 3, 5));
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 23)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);
  const nn::Tensor in = random_input(g.shape(0), 24);
  const nn::QTensor expect = model.run(in);
  for (const int workers : {2, 3, 8}) {
    nn::WorkerPool pool(workers);
    expect_q_identical(model.run(in, &pool), expect);
    expect_q_identical(model.run_barrier(in, &pool), expect);
  }
}

// --- adversarial readiness orders -------------------------------------------

TEST(PipelinedPatch, AdversarialReadinessOrdersStayBitExact) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const nn::Tensor in = random_input(g.shape(0), 31);
  const nn::Tensor expect = model.run(in);
  const int branches = static_cast<int>(plan.branches.size());
  const int cols = plan.spec.grid_cols;

  // Three adversarial schedules: stall the first grid row (tail rows
  // become ready bottom-up), stall the last (top-down — the natural order,
  // but with maximum skew), and stall even branches (interleaved).
  const auto stall_if = [&](auto pred) {
    return [pred](int branch) {
      if (pred(branch)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    };
  };
  using Pred = std::function<bool(int)>;
  const std::vector<Pred> schedules = {
      [&](int b) { return b / cols == 0; },
      [&](int b) { return b / cols == plan.spec.grid_rows - 1; },
      [&](int b) { return b % 2 == 0; },
  };
  for (const auto& pred : schedules) {
    model.set_branch_completion_hook(stall_if(pred));
    for (const int workers : {2, 4}) {
      nn::WorkerPool pool(workers);
      expect_f_identical(model.run(in, &pool), expect);
    }
  }
  model.set_branch_completion_hook({});
  // Hook sanity: it must have been called once per branch per run.
  std::atomic<int> calls{0};
  model.set_branch_completion_hook([&](int) { ++calls; });
  nn::WorkerPool pool(4);
  expect_f_identical(model.run(in, &pool), expect);
  EXPECT_EQ(calls.load(), branches);
  model.set_branch_completion_hook({});
}

// --- pipeline structure invariants -------------------------------------------

TEST(PipelinedPatch, BandDependenciesCoverInputRows) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchModel model(g, plan);
  const auto prefix = model.pipelined_tail();
  ASSERT_FALSE(prefix.empty())
      << "mobilenetv2's tail should start with bandable layers";

  const int split = plan.spec.split_layer;
  for (std::size_t pi = 0; pi < prefix.size(); ++pi) {
    const patch::PipelinedTailLayer& pl = prefix[pi];
    ASSERT_EQ(pl.layer_id, split + 1 + static_cast<int>(pi));
    const nn::TensorShape& os = g.shape(pl.layer_id);
    // Bands partition the output rows in order.
    int next_row = 0;
    for (const patch::Interval& band : pl.bands) {
      EXPECT_EQ(band.begin, next_row);
      EXPECT_GT(band.size(), 0);
      next_row = band.end;
    }
    EXPECT_EQ(next_row, os.h);
    ASSERT_EQ(pl.grid_row_deps.size(), pl.bands.size());
    ASSERT_EQ(pl.band_deps.size(), pl.bands.size());
    // The layer right after the cut must depend on at least one grid row
    // per band, and only on valid rows / upstream bands.
    for (std::size_t j = 0; j < pl.bands.size(); ++j) {
      if (pi == 0) EXPECT_FALSE(pl.grid_row_deps[j].empty());
      for (const int r : pl.grid_row_deps[j]) {
        EXPECT_GE(r, 0);
        EXPECT_LT(r, plan.spec.grid_rows);
      }
      for (const auto& [qi, k] : pl.band_deps[j]) {
        ASSERT_GE(qi, 0);
        ASSERT_LT(qi, static_cast<int>(pi));
        ASSERT_GE(k, 0);
        ASSERT_LT(k, static_cast<int>(
                         prefix[static_cast<std::size_t>(qi)].bands.size()));
      }
    }
  }
}

TEST(PipelinedPatch, PipelinedPlanKeepsOverlapWindowDisjoint) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 41)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::CompiledPatchQuantModel model(g, plan, cfg);

  for (const int workers : {2, 4}) {
    const nn::ParallelArenaPlan& p = model.pipelined_plan(workers);
    const nn::ParallelArenaPlan& barrier = model.parallel_plan(workers);
    // The widened window can only grow the shared region, and the slices
    // are untouched.
    EXPECT_GE(p.shared.peak_bytes, barrier.shared.peak_bytes);
    EXPECT_EQ(p.slice.peak_bytes, barrier.slice.peak_bytes);
    // Everything alive during the overlap (first_step == 0 after
    // widening: assembled map, quantized input, banded tail layers) must
    // be pairwise byte-disjoint.
    for (std::size_t a = 0; a < p.shared.slots.size(); ++a) {
      for (std::size_t b = a + 1; b < p.shared.slots.size(); ++b) {
        if (p.shared.slots[a].overlaps_lifetime(p.shared.slots[b])) {
          EXPECT_FALSE(p.shared.slots[a].overlaps_bytes(p.shared.slots[b]))
              << "slots " << a << "/" << b;
        }
      }
    }
  }
  // A pipelined run must stay inside its plan.
  nn::WorkerPool pool(4);
  (void)model.run(random_input(g.shape(0), 42), &pool);
  EXPECT_LE(model.measured_high_water(),
            model.pipelined_plan(4).total_bytes());
}

// --- repeated + interleaved runs reuse state cleanly -------------------------

TEST(PipelinedPatch, InterleavedModesReuseModelState) {
  const nn::Graph g = models::make_model("mcunet", small_cfg());
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));
  const patch::PatchExecutor exec(g, plan);
  nn::WorkerPool pool(3);
  for (std::uint64_t seed = 50; seed < 53; ++seed) {
    const nn::Tensor in = random_input(g.shape(0), seed);
    const nn::Tensor expect = exec.run(in);
    expect_f_identical(exec.run_parallel(in, &pool), expect);
    expect_f_identical(exec.run_parallel_barrier(in, &pool), expect);
    expect_f_identical(exec.run_parallel(in, &pool), expect);
  }
}

// --- arena slab leasing ------------------------------------------------------

// The pipelined TaskGraph skeleton is built once per worker count and
// reused across runs: repeated runs must not grow the cache (no per-run
// closure rebuilding) and must stay bit-identical to the first.
TEST(PipelinedPatch, TaskGraphCachedPerWorkerCount) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 41)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));

  const patch::CompiledPatchModel fmodel(g, plan);
  const patch::CompiledPatchQuantModel qmodel(g, plan, cfg);
  EXPECT_EQ(fmodel.cached_pipeline_graphs(), 0u);
  EXPECT_EQ(qmodel.cached_pipeline_graphs(), 0u);

  const nn::Tensor in = random_input(g.shape(0), 42);
  nn::WorkerPool pool2(2);
  const nn::Tensor fexpect = fmodel.run(in, &pool2);
  const nn::QTensor qexpect = qmodel.run(in, &pool2);
  EXPECT_EQ(fmodel.cached_pipeline_graphs(), 1u);
  EXPECT_EQ(qmodel.cached_pipeline_graphs(), 1u);

  for (int rep = 0; rep < 3; ++rep) {
    expect_f_identical(fmodel.run(in, &pool2), fexpect);
    expect_q_identical(qmodel.run(in, &pool2), qexpect);
  }
  // Same worker count -> same cached skeleton, no growth.
  EXPECT_EQ(fmodel.cached_pipeline_graphs(), 1u);
  EXPECT_EQ(qmodel.cached_pipeline_graphs(), 1u);

  // A new worker count builds (and caches) a second skeleton; results stay
  // bit-identical, and re-running at either width grows nothing further.
  nn::WorkerPool pool4(4);
  expect_f_identical(fmodel.run(in, &pool4), fexpect);
  expect_q_identical(qmodel.run(in, &pool4), qexpect);
  EXPECT_EQ(fmodel.cached_pipeline_graphs(), 2u);
  EXPECT_EQ(qmodel.cached_pipeline_graphs(), 2u);
  expect_f_identical(fmodel.run(in, &pool2), fexpect);
  expect_q_identical(qmodel.run(in, &pool2), qexpect);
  EXPECT_EQ(fmodel.cached_pipeline_graphs(), 2u);
  EXPECT_EQ(qmodel.cached_pipeline_graphs(), 2u);
}

TEST(PipelinedPatch, ArenaSlabLeasesAcrossModelsAndModes) {
  const nn::Graph g = models::make_model("mobilenetv2", small_cfg());
  const auto ranges = quant::calibrate_ranges(
      g, std::vector<nn::Tensor>{random_input(g.shape(0), 61)});
  const auto cfg = quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const patch::PatchPlan plan =
      patch::build_patch_plan(g, patch::plan_mcunetv2(g, {2, 2}));

  const patch::CompiledPatchQuantModel reference(g, plan, cfg);
  const nn::Tensor in = random_input(g.shape(0), 62);
  const nn::QTensor expect = reference.run(in);

  auto slab = std::make_shared<nn::ArenaSlab>();
  patch::CompiledPatchQuantModel a(g, plan, cfg);
  patch::CompiledPatchQuantModel b(g, plan, cfg);
  a.set_arena_source(slab);
  b.set_arena_source(slab);

  // Sequential traffic across two models: leases are returned after each
  // run, so the slab backs both models with one block (max, not sum).
  expect_q_identical(a.run(in), expect);
  expect_q_identical(b.run(in), expect);
  EXPECT_EQ(slab->outstanding_leases(), 0);
  EXPECT_EQ(slab->footprint_bytes(), a.arena_bytes());
  EXPECT_EQ(slab->high_water_bytes(), a.arena_bytes());

  // Parallel (pipelined) runs lease the bigger slice+shared layout; the
  // block grows but is still shared across models and released after.
  nn::WorkerPool pool(2);
  expect_q_identical(a.run(in, &pool), expect);
  expect_q_identical(b.run(in, &pool), expect);
  EXPECT_EQ(slab->outstanding_leases(), 0);
  EXPECT_LE(slab->footprint_bytes(),
            a.arena_bytes() + a.pipelined_plan(2).total_bytes());
}

}  // namespace
}  // namespace qmcu
