// Tests for the patch-method planners: MCUNetV2 split selection, Cipolletta
// restructuring search, RNNPool stem replacement.
#include <gtest/gtest.h>

#include "models/weights.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "patch/mcunetv2.h"
#include "patch/patch_cost.h"
#include "patch/restructuring.h"
#include "patch/rnnpool.h"

namespace qmcu::patch {
namespace {

nn::Graph test_model() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 64;
  cfg.num_classes = 10;
  cfg.init_weights = false;
  return models::make_mobilenet_v2(cfg);
}

TEST(McuNetV2Planner, SplitsAtRoughlyQuarterResolution) {
  const nn::Graph g = test_model();
  const PatchSpec spec = plan_mcunetv2(g, {3, 4});
  ASSERT_GE(spec.split_layer, 0);
  EXPECT_LE(g.shape(spec.split_layer).h, 64 / 4);
  EXPECT_EQ(spec.grid_rows, 3);
}

TEST(McuNetV2Planner, DeeperDownsampleTargetSplitsDeeper) {
  const nn::Graph g = test_model();
  const PatchSpec s4 = plan_mcunetv2(g, {2, 4});
  const PatchSpec s8 = plan_mcunetv2(g, {2, 8});
  EXPECT_GT(s8.split_layer, s4.split_layer);
}

TEST(McuNetV2Planner, ProducesValidPlan) {
  const nn::Graph g = test_model();
  const PatchSpec spec = plan_mcunetv2(g, {3, 4});
  EXPECT_NO_THROW(build_patch_plan(g, spec));
}

TEST(Restructuring, BeatsDefaultPlanOnPeakMemory) {
  const nn::Graph g = test_model();
  const mcu::CostModel cm(mcu::arduino_nano_33_ble_sense());
  const RestructuringResult best = restructure_for_memory(g, cm);
  // Against the MCUNetV2 default:
  const PatchPlan def = build_patch_plan(g, plan_mcunetv2(g, {3, 4}));
  const PatchCost def_cost = evaluate_patch_cost(
      g, def, uniform_branch_bits(def, 8), nn::uniform_bits(g, 8), cm);
  EXPECT_LE(best.cost.peak_bytes, def_cost.peak_bytes);
  EXPECT_GT(best.candidates_tried, 1);
}

TEST(Restructuring, TradesComputeForMemory) {
  // The paper's Table I: Cipolletta has the lowest peak but the highest
  // BitOPs of the patch methods. At minimum, its redundancy must be real.
  const nn::Graph g = test_model();
  const mcu::CostModel cm(mcu::arduino_nano_33_ble_sense());
  const RestructuringResult best = restructure_for_memory(g, cm);
  const std::int64_t layer_bitops = g.total_macs() * 64;
  EXPECT_GT(best.cost.bitops, layer_bitops);
}

TEST(Restructuring, RespectsCandidateGrids) {
  const nn::Graph g = test_model();
  const mcu::CostModel cm(mcu::arduino_nano_33_ble_sense());
  const std::array<int, 1> only2{2};
  const RestructuringResult best = restructure_for_memory(g, cm, only2);
  EXPECT_EQ(best.spec.grid_rows, 2);
  EXPECT_EQ(best.spec.grid_cols, 2);
}

TEST(RnnPool, ReplacementPreservesInterfaceShapes) {
  const nn::Graph g = test_model();
  const RnnPoolResult r = make_rnnpool_variant(g);
  EXPECT_EQ(r.graph.shape(0), g.shape(0));  // same input
  EXPECT_EQ(r.graph.shape(r.graph.output()), g.shape(g.output()));
}

TEST(RnnPool, BlockMacsRoughlyMatchReplacedStage) {
  const nn::Graph g = test_model();
  const RnnPoolResult r = make_rnnpool_variant(g);
  EXPECT_GT(r.original_stage_macs, 0);
  const double ratio = static_cast<double>(r.block_macs) /
                       static_cast<double>(r.original_stage_macs);
  EXPECT_GT(ratio, 0.4);
  EXPECT_LT(ratio, 1.6);
}

TEST(RnnPool, VariantExecutesAfterWeightInit) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(cfg);  // with weights
  RnnPoolResult r = make_rnnpool_variant(g);
  models::init_parameters(r.graph, 5);  // fills only the new stem
  const nn::Executor exec(r.graph);
  nn::Tensor in(r.graph.shape(0));
  nn::Rng rng(3);
  for (float& v : in.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  const nn::Tensor out = exec.run(in);
  float sum = 0.0f;
  for (float v : out.data()) sum += v;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);
}

TEST(RnnPool, TailWeightsAreCopiedVerbatim) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_mobilenet_v2(cfg);
  const RnnPoolResult r = make_rnnpool_variant(g);
  // The classifier FC is the 2nd-to-last layer in both graphs (softmax
  // last); its weights must be identical.
  const int orig_fc = g.output() - 1;
  const int new_fc = r.graph.output() - 1;
  ASSERT_EQ(g.layer(orig_fc).kind, nn::OpKind::FullyConnected);
  ASSERT_EQ(r.graph.layer(new_fc).kind, nn::OpKind::FullyConnected);
  const auto a = g.weights(orig_fc);
  const auto b = r.graph.weights(new_fc);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_FLOAT_EQ(a[i], b[i]);
}

TEST(RnnPool, EliminatesLargeEarlyFeatureMaps) {
  const nn::Graph g = test_model();
  const RnnPoolResult r = make_rnnpool_variant(g);
  const auto orig = nn::plan_layer_based(g, nn::uniform_bits(g, 8));
  const auto pooled =
      nn::plan_layer_based(r.graph, nn::uniform_bits(r.graph, 8));
  EXPECT_LT(pooled.peak_bytes, orig.peak_bytes);
}

}  // namespace
}  // namespace qmcu::patch
