// Tests for bounds-aware region pooling (patch/region_pool.h) — padding
// must be excluded from pool windows, exactly as in layer-based execution.
#include <gtest/gtest.h>

#include "nn/ops/float_kernels.h"
#include "nn/ops/int8_kernels.h"
#include "nn/rng.h"
#include "patch/region_pool.h"

namespace qmcu::patch {
namespace {

nn::Layer pool(nn::OpKind kind, int k, int s, int p) {
  nn::Layer l;
  l.kind = kind;
  l.kernel_h = l.kernel_w = k;
  l.stride_h = l.stride_w = s;
  l.pad_h = l.pad_w = p;
  return l;
}

nn::Tensor random_tensor(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(RegionPool, FullRegionMatchesLayerKernelMax) {
  const nn::Tensor in = random_tensor({7, 7, 3}, 1);
  const nn::Layer l = pool(nn::OpKind::MaxPool, 3, 2, 1);
  const nn::Tensor ref = nn::ops::max_pool_f32(in, l);
  const Region out_region = full_region(ref.shape());
  const nn::Tensor got =
      pool_region_f32(in, full_region(in.shape()), l, out_region, in.shape());
  ASSERT_EQ(got.shape(), ref.shape());
  for (std::size_t i = 0; i < ref.data().size(); ++i) {
    ASSERT_FLOAT_EQ(got.data()[i], ref.data()[i]);
  }
}

TEST(RegionPool, FullRegionMatchesLayerKernelAvg) {
  const nn::Tensor in = random_tensor({6, 6, 2}, 2);
  const nn::Layer l = pool(nn::OpKind::AvgPool, 2, 1, 1);
  const nn::Tensor ref = nn::ops::avg_pool_f32(in, l);
  const nn::Tensor got = pool_region_f32(in, full_region(in.shape()), l,
                                         full_region(ref.shape()), in.shape());
  for (std::size_t i = 0; i < ref.data().size(); ++i) {
    ASSERT_FLOAT_EQ(got.data()[i], ref.data()[i]);
  }
}

TEST(RegionPool, AllNegativeWindowKeepsNegativeMax) {
  // The regression this module exists for: a zero-filled crop would make
  // the padded corner max 0 instead of the true negative maximum.
  nn::Tensor in(nn::TensorShape{2, 2, 1});
  for (float& v : in.data()) v = -3.0f;
  const nn::Layer l = pool(nn::OpKind::MaxPool, 3, 1, 1);
  const nn::Tensor got = pool_region_f32(in, full_region(in.shape()), l,
                                         Region{{0, 1}, {0, 1}}, in.shape());
  EXPECT_FLOAT_EQ(got.at(0, 0, 0), -3.0f);
}

TEST(RegionPool, AvgDividesByValidCountOnly) {
  nn::Tensor in(nn::TensorShape{2, 2, 1});
  in.at(0, 0, 0) = 4.0f;
  in.at(0, 1, 0) = 4.0f;
  in.at(1, 0, 0) = 4.0f;
  in.at(1, 1, 0) = 4.0f;
  const nn::Layer l = pool(nn::OpKind::AvgPool, 2, 1, 1);
  // Corner window covers one valid element; mean must be 4, not 1.
  const nn::Tensor got = pool_region_f32(in, full_region(in.shape()), l,
                                         Region{{0, 1}, {0, 1}}, in.shape());
  EXPECT_FLOAT_EQ(got.at(0, 0, 0), 4.0f);
}

TEST(RegionPool, SubRegionReadsFromRegionTensorOffsets) {
  const nn::Tensor full = random_tensor({8, 8, 1}, 3);
  const nn::Layer l = pool(nn::OpKind::MaxPool, 2, 2, 0);
  const nn::Tensor ref = nn::ops::max_pool_f32(full, l);
  // The producer region covers rows/cols 2..8; pool output region 1..4
  // (which reads inputs 2..8) must match the reference slice.
  const Region avail{{2, 8}, {2, 8}};
  nn::Tensor region(nn::TensorShape{6, 6, 1});
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 6; ++x) region.at(y, x, 0) = full.at(y + 2, x + 2, 0);
  }
  const Region out_region{{1, 4}, {1, 4}};
  const nn::Tensor got =
      pool_region_f32(region, avail, l, out_region, full.shape());
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      ASSERT_FLOAT_EQ(got.at(y, x, 0), ref.at(y + 1, x + 1, 0));
    }
  }
}

TEST(RegionPool, FailsWhenWindowDataMissing) {
  const nn::Tensor in = random_tensor({4, 4, 1}, 4);
  const nn::Layer l = pool(nn::OpKind::MaxPool, 3, 1, 1);
  // Producer region covers only rows 0..2 but output row 2 needs row 3.
  nn::Tensor region(nn::TensorShape{2, 4, 1});
  EXPECT_THROW(pool_region_f32(region, Region{{0, 2}, {0, 4}}, l,
                               Region{{2, 3}, {0, 4}}, in.shape()),
               std::logic_error);
}

TEST(RegionPool, QuantizedMatchesLayerKernel) {
  const nn::QuantParams p = nn::choose_quant_params(-2.0f, 2.0f, 8);
  nn::QTensor in(nn::TensorShape{5, 5, 2}, p);
  nn::Rng rng(5);
  for (auto& v : in.data()) {
    v = static_cast<std::int8_t>(rng.uniform(-100, 100));
  }
  for (auto kind : {nn::OpKind::MaxPool, nn::OpKind::AvgPool}) {
    const nn::Layer l = pool(kind, 3, 2, 1);
    const nn::QTensor ref = kind == nn::OpKind::MaxPool
                                ? nn::ops::max_pool_q(in, l)
                                : nn::ops::avg_pool_q(in, l);
    const nn::QTensor got =
        pool_region_q(in, full_region(in.shape()), l,
                      full_region(ref.shape()), in.shape());
    ASSERT_EQ(got.shape(), ref.shape());
    for (std::size_t i = 0; i < ref.data().size(); ++i) {
      ASSERT_EQ(static_cast<int>(got.data()[i]),
                static_cast<int>(ref.data()[i]))
          << to_string(kind) << " element " << i;
    }
  }
}

TEST(RegionPool, RejectsNonPoolOps) {
  const nn::Tensor in = random_tensor({4, 4, 1}, 6);
  nn::Layer conv;
  conv.kind = nn::OpKind::Conv2D;
  EXPECT_THROW(pool_region_f32(in, full_region(in.shape()), conv,
                               Region{{0, 1}, {0, 1}}, in.shape()),
               std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::patch
