// Unit tests for the graph IR (nn/graph.h): shape inference, MAC counting,
// consumer tracking, parameter validation.
#include <gtest/gtest.h>

#include <array>

#include "nn/graph.h"

namespace qmcu::nn {
namespace {

TEST(Graph, ConvShapeInferenceSamePadding) {
  Graph g("t");
  const int in = g.add_input(TensorShape{32, 32, 3});
  const int c = g.add_conv2d(in, 16, 3, 1, 1, Activation::ReLU);
  EXPECT_EQ(g.shape(c), (TensorShape{32, 32, 16}));
}

TEST(Graph, ConvShapeInferenceStride2) {
  Graph g("t");
  const int in = g.add_input(TensorShape{32, 32, 3});
  const int c = g.add_conv2d(in, 8, 3, 2, 1, Activation::None);
  EXPECT_EQ(g.shape(c), (TensorShape{16, 16, 8}));
}

TEST(Graph, OddExtentStride2RoundsLikeCeilHalf) {
  Graph g("t");
  const int in = g.add_input(TensorShape{15, 15, 1});
  const int c = g.add_conv2d(in, 1, 3, 2, 1, Activation::None);
  EXPECT_EQ(g.shape(c).h, 8);  // ceil(15/2)
}

TEST(Graph, DepthwisePreservesChannels) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 24});
  const int d = g.add_depthwise_conv2d(in, 3, 1, 1, Activation::ReLU6);
  EXPECT_EQ(g.shape(d), (TensorShape{8, 8, 24}));
}

TEST(Graph, FullyConnectedFlattensInput) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 8});
  const int f = g.add_fully_connected(in, 10, Activation::None);
  EXPECT_EQ(g.shape(f), (TensorShape{1, 1, 10}));
  EXPECT_EQ(g.macs(f), 4 * 4 * 8 * 10);
}

TEST(Graph, ConcatSumsChannels) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 6, 1, 1, 0, Activation::ReLU);
  const int b = g.add_conv2d(in, 10, 1, 1, 0, Activation::ReLU);
  const std::array<int, 2> ins{a, b};
  const int c = g.add_concat(ins);
  EXPECT_EQ(g.shape(c), (TensorShape{8, 8, 16}));
}

TEST(Graph, ConcatRejectsSpatialMismatch) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 4, 1, 1, 0, Activation::None);
  const int b = g.add_conv2d(in, 4, 3, 2, 1, Activation::None);
  const std::array<int, 2> ins{a, b};
  EXPECT_THROW(g.add_concat(ins), std::invalid_argument);
}

TEST(Graph, ResidualAddRequiresMatchingShapes) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, Activation::None);
  const int b = g.add_conv2d(in, 8, 3, 1, 1, Activation::None);
  EXPECT_THROW(g.add_residual_add(a, b, Activation::None),
               std::invalid_argument);
  const int c = g.add_conv2d(in, 4, 3, 1, 1, Activation::None);
  EXPECT_NO_THROW(g.add_residual_add(a, c, Activation::ReLU));
}

TEST(Graph, ConvMacsMatchClosedForm) {
  Graph g("t");
  const int in = g.add_input(TensorShape{16, 16, 3});
  const int c = g.add_conv2d(in, 8, 3, 1, 1, Activation::None);
  EXPECT_EQ(g.macs(c), 16LL * 16 * 8 * 3 * 3 * 3);
}

TEST(Graph, DepthwiseMacsMatchClosedForm) {
  Graph g("t");
  const int in = g.add_input(TensorShape{16, 16, 12});
  const int d = g.add_depthwise_conv2d(in, 5, 1, 2, Activation::None);
  EXPECT_EQ(g.macs(d), 16LL * 16 * 12 * 5 * 5);
}

TEST(Graph, NonMacOpsReportZeroMacs) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int p = g.add_max_pool(in, 2, 2, 0);
  const int q = g.add_global_avg_pool(p);
  EXPECT_EQ(g.macs(in), 0);
  EXPECT_EQ(g.macs(p), 0);
  EXPECT_EQ(g.macs(q), 0);
}

TEST(Graph, ConsumersTracksAllEdges) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, Activation::None);
  const int b = g.add_conv2d(in, 4, 3, 1, 1, Activation::None);
  const int c = g.add_residual_add(a, b, Activation::None);
  EXPECT_EQ(g.consumers(in).size(), 2u);
  EXPECT_EQ(g.consumers(a), std::vector<int>{c});
  EXPECT_TRUE(g.consumers(c).empty());
}

TEST(Graph, SetParametersValidatesCounts) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  const int c = g.add_conv2d(in, 3, 1, 1, 0, Activation::None);
  EXPECT_EQ(g.weight_count(c), 6);
  EXPECT_THROW(g.set_parameters(c, std::vector<float>(5), {}),
               std::invalid_argument);
  EXPECT_THROW(
      g.set_parameters(c, std::vector<float>(6), std::vector<float>(2)),
      std::invalid_argument);
  EXPECT_NO_THROW(
      g.set_parameters(c, std::vector<float>(6), std::vector<float>(3)));
  EXPECT_TRUE(g.has_parameters(c));
}

TEST(Graph, RejectsParametersOnNonMacLayer) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 2});
  const int p = g.add_max_pool(in, 2, 2, 0);
  EXPECT_THROW(g.set_parameters(p, {}, {}), std::invalid_argument);
}

TEST(Graph, KernelLargerThanInputRejected) {
  Graph g("t");
  const int in = g.add_input(TensorShape{2, 2, 1});
  EXPECT_THROW(g.add_conv2d(in, 1, 5, 1, 0, Activation::None),
               std::invalid_argument);
}

TEST(Graph, TotalMacsIsSumOverLayers) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 3});
  const int a = g.add_conv2d(in, 4, 3, 1, 1, Activation::ReLU);
  const int b = g.add_conv2d(a, 8, 1, 1, 0, Activation::ReLU);
  EXPECT_EQ(g.total_macs(), g.macs(a) + g.macs(b));
}

TEST(Graph, ElementOpsForPoolAndAdd) {
  Graph g("t");
  const int in = g.add_input(TensorShape{8, 8, 4});
  const int p = g.add_avg_pool(in, 2, 2, 0);
  EXPECT_EQ(g.element_ops(p), 4LL * 4 * 4 * 2 * 2);
  const int a = g.add_conv2d(p, 4, 1, 1, 0, Activation::None);
  const int s = g.add_residual_add(p, a, Activation::None);
  EXPECT_EQ(g.element_ops(s), 4LL * 4 * 4);
}

TEST(Graph, LayerNamesAutoGeneratedWhenEmpty) {
  Graph g("t");
  const int in = g.add_input(TensorShape{4, 4, 1});
  const int c = g.add_conv2d(in, 1, 1, 1, 0, Activation::None);
  EXPECT_FALSE(g.layer(c).name.empty());
}

}  // namespace
}  // namespace qmcu::nn
