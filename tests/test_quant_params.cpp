// Unit tests for the affine quantization contract (nn/quant_params.h).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/quant_params.h"

namespace qmcu::nn {
namespace {

class QuantParamsBits : public ::testing::TestWithParam<int> {};

TEST_P(QuantParamsBits, RangeEndpointsRepresentable) {
  const int bits = GetParam();
  const QuantParams p = choose_quant_params(-3.0f, 5.0f, bits);
  EXPECT_NEAR(p.dequantize(p.quantize(-3.0f)), -3.0f, p.scale);
  EXPECT_NEAR(p.dequantize(p.quantize(5.0f)), 5.0f, p.scale);
}

TEST_P(QuantParamsBits, ZeroIsExactlyRepresentable) {
  const int bits = GetParam();
  const QuantParams p = choose_quant_params(0.7f, 5.0f, bits);  // min > 0
  EXPECT_EQ(p.quantize_dequantize(0.0f), 0.0f);
}

TEST_P(QuantParamsBits, RoundTripErrorBoundedByHalfScale) {
  const int bits = GetParam();
  const QuantParams p = choose_quant_params(-4.0f, 4.0f, bits);
  for (float v = -4.0f; v <= 4.0f; v += 0.37f) {
    EXPECT_LE(std::abs(p.quantize_dequantize(v) - v), p.scale * 0.5f + 1e-6f)
        << "value " << v << " bits " << bits;
  }
}

TEST_P(QuantParamsBits, SaturatesOutOfRangeValues) {
  const int bits = GetParam();
  const QuantParams p = choose_quant_params(-1.0f, 1.0f, bits);
  EXPECT_EQ(p.quantize(100.0f), p.qmax());
  EXPECT_EQ(p.quantize(-100.0f), p.qmin());
}

TEST_P(QuantParamsBits, QRangeMatchesBitWidth) {
  const int bits = GetParam();
  QuantParams p;
  p.bits = bits;
  EXPECT_EQ(p.qmax() - p.qmin() + 1, 1 << bits);
  EXPECT_EQ(p.qmin(), -(1 << (bits - 1)));
}

INSTANTIATE_TEST_SUITE_P(AllBitwidths, QuantParamsBits,
                         ::testing::Values(2, 4, 8));

TEST(QuantParams, SymmetricHasZeroZeroPoint) {
  const QuantParams p = choose_symmetric_quant_params(2.5f, 8);
  EXPECT_EQ(p.zero_point, 0);
  EXPECT_NEAR(p.scale, 2.5f / 127.0f, 1e-7f);
}

TEST(QuantParams, SymmetricRoundTripsAbsmax) {
  const QuantParams p = choose_symmetric_quant_params(1.0f, 8);
  EXPECT_NEAR(p.quantize_dequantize(1.0f), 1.0f, p.scale * 0.5f);
  EXPECT_NEAR(p.quantize_dequantize(-1.0f), -1.0f, p.scale);  // -128 clamp
}

TEST(QuantParams, DegenerateRangeYieldsValidParams) {
  const QuantParams p = choose_quant_params(0.0f, 0.0f, 8);
  EXPECT_GT(p.scale, 0.0f);
  EXPECT_EQ(p.quantize_dequantize(0.0f), 0.0f);
}

TEST(QuantParams, NegativeOnlyRangeWidenedToIncludeZero) {
  const QuantParams p = choose_quant_params(-8.0f, -2.0f, 8);
  EXPECT_EQ(p.quantize_dequantize(0.0f), 0.0f);
  EXPECT_NEAR(p.quantize_dequantize(-8.0f), -8.0f, p.scale);
}

TEST(QuantParams, RejectsInvalidBits) {
  EXPECT_THROW(choose_quant_params(0.0f, 1.0f, 1), std::invalid_argument);
  EXPECT_THROW(choose_quant_params(0.0f, 1.0f, 16), std::invalid_argument);
}

TEST(QuantParams, RejectsInvertedRange) {
  EXPECT_THROW(choose_quant_params(2.0f, 1.0f, 8), std::invalid_argument);
}

TEST(QuantParams, ScaleCoversRangeExactly) {
  const QuantParams p = choose_quant_params(0.0f, 6.0f, 8);
  EXPECT_NEAR(p.scale * 255.0f, 6.0f, 1e-5f);
}

}  // namespace
}  // namespace qmcu::nn
