// The quantized deployment path: patch-based integer inference must be
// bit-identical to layer-based integer inference in uniform mode, and the
// mixed-precision mode (the VDQS assignment actually executing) must track
// the float reference within quantization noise.
#include <gtest/gtest.h>

#include "core/quantmcu.h"
#include "data/synthetic.h"
#include "models/weights.h"
#include "models/zoo.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "patch/mcunetv2.h"
#include "patch/patch_quant_executor.h"
#include "quant/calibration.h"
#include "quant/fake_quant.h"

namespace qmcu::patch {
namespace {

nn::Tensor random_input(nn::TensorShape s, std::uint64_t seed) {
  nn::Tensor t(s);
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

// Stage with a *non-activated* conv before a padded max pool: the padding
// exclusion semantics matter here (negative values reach the pool window).
nn::Graph pooled_net() {
  nn::Graph g("pooled");
  const int in = g.add_input(nn::TensorShape{19, 19, 3});
  const int a = g.add_conv2d(in, 8, 3, 1, 1, nn::Activation::None);
  const int p = g.add_max_pool(a, 3, 2, 1);
  const int b = g.add_conv2d(p, 8, 3, 1, 1, nn::Activation::ReLU);
  const int q = g.add_avg_pool(b, 3, 2, 1);
  const int c = g.add_conv2d(q, 16, 1, 1, 0, nn::Activation::ReLU);
  g.add_global_avg_pool(c);
  g.add_fully_connected(g.size() - 1, 10, nn::Activation::None);
  models::init_parameters(g, 77);
  return g;
}

nn::Graph mbv2_net() {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  return models::make_mobilenet_v2(cfg);
}

void expect_q_identical(const nn::QTensor& a, const nn::QTensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  ASSERT_EQ(a.params(), b.params());
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_EQ(static_cast<int>(a.data()[i]), static_cast<int>(b.data()[i]))
        << "element " << i;
  }
}

struct QuantEquivCase {
  int split;
  int grid;
};

class QuantPatchEquivalence
    : public ::testing::TestWithParam<QuantEquivCase> {};

TEST_P(QuantPatchEquivalence, UniformInt8MatchesLayerBasedExactly) {
  const auto [split, grid] = GetParam();
  const nn::Graph g = pooled_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 1),
                                      random_input(g.shape(0), 2)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));

  PatchSpec spec;
  spec.split_layer = split;
  spec.grid_rows = spec.grid_cols = grid;
  const PatchQuantExecutor pexec(g, build_patch_plan(g, spec), cfg);
  const nn::QuantExecutor qexec(g, cfg);

  const nn::Tensor in = random_input(g.shape(0), 3);
  expect_q_identical(pexec.run(in), qexec.run(in));
}

INSTANTIATE_TEST_SUITE_P(SplitsAndGrids, QuantPatchEquivalence,
                         ::testing::Values(QuantEquivCase{1, 2},
                                           QuantEquivCase{2, 2},
                                           QuantEquivCase{2, 3},
                                           QuantEquivCase{4, 2},
                                           QuantEquivCase{5, 3}));

TEST(QuantPatchEquivalence, MobileNetV2UniformInt8Exact) {
  const nn::Graph g = mbv2_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 4)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const PatchSpec spec = plan_mcunetv2(g, {2, 4});
  const PatchQuantExecutor pexec(g, build_patch_plan(g, spec), cfg);
  const nn::QuantExecutor qexec(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 5);
  expect_q_identical(pexec.run(in), qexec.run(in));
}

TEST(QuantPatchExecutor, AssembledStageMatchesLayerBasedInt8) {
  const nn::Graph g = pooled_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 6)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  PatchSpec spec;
  spec.split_layer = 4;
  spec.grid_rows = spec.grid_cols = 3;
  const PatchQuantExecutor pexec(g, build_patch_plan(g, spec), cfg);
  const nn::QuantExecutor qexec(g, cfg);
  const nn::Tensor in = random_input(g.shape(0), 7);
  const auto memo = qexec.run_all(in);
  expect_q_identical(pexec.run_stage_assembled(in), memo[4]);
}

TEST(QuantPatchExecutor, MixedPrecisionFromQuantMcuPlanRuns) {
  const nn::Graph g = mbv2_net();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);

  const PatchQuantExecutor pexec(g, plan.patch_plan, deploy_cfg,
                                 branch_cfgs);
  const nn::Executor ref(g);
  const nn::Tensor in = ds.image(11);
  const nn::QTensor out = pexec.run(in);
  const nn::Tensor deq = nn::dequantize(out);
  const nn::Tensor ref_out = ref.run(in);
  // Mixed-precision output must stay a valid distribution near the float
  // reference (sub-byte noise allowed, NaNs and garbage are not).
  float sum = 0.0f;
  for (float v : deq.data()) {
    EXPECT_GE(v, -0.01f);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0f, 0.2f);
  EXPECT_LT(quant::output_mse(deq, ref_out), 0.05);
}

TEST(QuantPatchExecutor, MixedPrecisionNoisierThanUniformInt8) {
  const nn::Graph g = mbv2_net();
  data::DataConfig dc;
  dc.resolution = 48;
  const data::SyntheticDataset ds(dc);
  const std::vector<nn::Tensor> calib = ds.batch(0, 2);
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg8 =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));

  core::QuantMcuConfig qcfg;
  qcfg.patch.grid = 2;
  qcfg.patch.stage_downsample = 4;
  const core::QuantMcuPlan plan = core::build_quantmcu_plan(
      g, mcu::arduino_nano_33_ble_sense(), calib, qcfg);
  const auto branch_cfgs = core::make_branch_quant_configs(g, plan, ranges);
  const auto deploy_cfg = core::make_deployment_quant_config(g, plan, ranges);

  const PatchQuantExecutor uniform(g, plan.patch_plan, cfg8);
  const PatchQuantExecutor mixed(g, plan.patch_plan, deploy_cfg, branch_cfgs);
  const nn::Executor ref(g);

  double err_uniform = 0.0;
  double err_mixed = 0.0;
  for (int i = 10; i < 13; ++i) {
    const nn::Tensor in = ds.image(i);
    const nn::Tensor ref_out = ref.run(in);
    err_uniform +=
        quant::output_mse(nn::dequantize(uniform.run(in)), ref_out);
    err_mixed += quant::output_mse(nn::dequantize(mixed.run(in)), ref_out);
  }
  EXPECT_LE(err_uniform, err_mixed + 1e-9);
}

TEST(QuantPatchExecutor, ValidatesBranchConfigShapes) {
  const nn::Graph g = pooled_net();
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 8)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto cfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  PatchSpec spec;
  spec.split_layer = 2;
  spec.grid_rows = spec.grid_cols = 2;
  const PatchPlan plan = build_patch_plan(g, spec);
  std::vector<BranchQuantConfig> bad(plan.branches.size() - 1);
  EXPECT_THROW(PatchQuantExecutor(g, plan, cfg, bad), std::invalid_argument);
}

TEST(CropFromRegionQ, FillsPaddingWithZeroPoint) {
  const nn::QuantParams p = nn::choose_quant_params(-1.0f, 3.0f, 8);
  nn::QTensor have(nn::TensorShape{2, 2, 1}, p);
  have.at(0, 0, 0) = 5;
  const nn::QTensor out = crop_from_region_q(
      have, Region{{0, 2}, {0, 2}}, Region{{-1, 2}, {-1, 2}}, {2, 2, 1});
  EXPECT_EQ(out.at(0, 0, 0), static_cast<std::int8_t>(p.zero_point));
  EXPECT_EQ(out.at(1, 1, 0), 5);
}

}  // namespace
}  // namespace qmcu::patch

// ---------------------------------------------------------------------------
// Zoo subset for the integer path (pooling-heavy and branched topologies).
namespace qmcu::patch {
namespace {

class ZooWideQuantEquivalence : public ::testing::TestWithParam<std::string> {
};

TEST_P(ZooWideQuantEquivalence, UniformInt8BitExact) {
  models::ModelConfig cfg;
  cfg.width_multiplier = 0.25f;
  cfg.resolution = 48;
  cfg.num_classes = 10;
  const nn::Graph g = models::make_model(GetParam(), cfg);
  const std::vector<nn::Tensor> calib{random_input(g.shape(0), 31)};
  const auto ranges = quant::calibrate_ranges(g, calib);
  const auto qcfg =
      quant::make_quant_config(g, ranges, nn::uniform_bits(g, 8));
  const PatchSpec spec = plan_mcunetv2(g, {2, 4});
  const PatchQuantExecutor pexec(g, build_patch_plan(g, spec), qcfg);
  const nn::QuantExecutor qexec(g, qcfg);
  const nn::Tensor in = random_input(g.shape(0), 32);
  expect_q_identical(pexec.run(in), qexec.run(in));
}

INSTANTIATE_TEST_SUITE_P(ZooSubset, ZooWideQuantEquivalence,
                         ::testing::Values("mobilenetv2", "squeezenet",
                                           "inceptionv3", "resnet18",
                                           "vgg16"));

}  // namespace
}  // namespace qmcu::patch
