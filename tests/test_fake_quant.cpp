// Tests for the simulated-quantization forward pass (quant/fake_quant.h).
#include <gtest/gtest.h>

#include "models/weights.h"
#include "nn/executor.h"
#include "nn/memory_planner.h"
#include "nn/rng.h"
#include "quant/fake_quant.h"

namespace qmcu::quant {
namespace {

nn::Graph net() {
  nn::Graph g("t");
  const int in = g.add_input(nn::TensorShape{12, 12, 3});
  const int a = g.add_conv2d(in, 8, 3, 2, 1, nn::Activation::ReLU6);
  const int b = g.add_conv2d(a, 8, 3, 1, 1, nn::Activation::ReLU);
  const int gap = g.add_global_avg_pool(b);
  g.add_fully_connected(gap, 4, nn::Activation::None);
  models::init_parameters(g, 21);
  return g;
}

nn::Tensor input(std::uint64_t seed) {
  nn::Tensor t(nn::TensorShape{12, 12, 3});
  nn::Rng rng(seed);
  for (float& v : t.data()) v = static_cast<float>(rng.normal(0.0, 1.0));
  return t;
}

TEST(FakeQuantRun, EightBitStaysCloseToFloat) {
  const nn::Graph g = net();
  const std::vector<nn::Tensor> calib{input(1), input(2)};
  const auto ranges = calibrate_ranges(g, calib);
  const nn::Executor exec(g);
  const nn::Tensor in = input(3);
  const nn::Tensor ref = exec.run(in);
  const nn::Tensor fq =
      run_fake_quantized(g, ranges, nn::uniform_bits(g, 8), in);
  EXPECT_LT(output_mse(fq, ref), 1e-3);
}

TEST(FakeQuantRun, MseGrowsAsBitsShrink) {
  const nn::Graph g = net();
  const std::vector<nn::Tensor> calib{input(4)};
  const auto ranges = calibrate_ranges(g, calib);
  const nn::Executor exec(g);
  const nn::Tensor in = input(5);
  const nn::Tensor ref = exec.run(in);
  const double e8 =
      output_mse(run_fake_quantized(g, ranges, nn::uniform_bits(g, 8), in), ref);
  const double e4 =
      output_mse(run_fake_quantized(g, ranges, nn::uniform_bits(g, 4), in), ref);
  const double e2 =
      output_mse(run_fake_quantized(g, ranges, nn::uniform_bits(g, 2), in), ref);
  EXPECT_LE(e8, e4);
  EXPECT_LT(e4, e2);
}

TEST(FakeQuantRun, PerLayerBitsAreHonoured) {
  const nn::Graph g = net();
  const std::vector<nn::Tensor> calib{input(6)};
  const auto ranges = calibrate_ranges(g, calib);
  const nn::Tensor in = input(7);
  // Degrading only the first conv differs from degrading only the second.
  std::vector<int> first_low = nn::uniform_bits(g, 8);
  first_low[1] = 2;
  std::vector<int> second_low = nn::uniform_bits(g, 8);
  second_low[2] = 2;
  const nn::Tensor a = run_fake_quantized(g, ranges, first_low, in);
  const nn::Tensor b = run_fake_quantized(g, ranges, second_low, in);
  EXPECT_GT(output_mse(a, b), 0.0);
}

TEST(FakeQuantRun, ValidatesVectorSizes) {
  const nn::Graph g = net();
  const std::vector<nn::Tensor> calib{input(8)};
  const auto ranges = calibrate_ranges(g, calib);
  const std::vector<int> short_bits{8};
  EXPECT_THROW(run_fake_quantized(g, ranges, short_bits, input(9)),
               std::invalid_argument);
}

TEST(OutputMse, ZeroForIdenticalTensors) {
  const nn::Tensor t = input(10);
  EXPECT_DOUBLE_EQ(output_mse(t, t), 0.0);
}

TEST(OutputMse, RejectsShapeMismatch) {
  const nn::Tensor a = input(11);
  nn::Tensor b(nn::TensorShape{6, 6, 3});
  EXPECT_THROW(output_mse(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace qmcu::quant
